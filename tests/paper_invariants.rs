//! Paper-level invariants checked across crates: Table 2/3 numbers, path
//! structure, pattern structure, VC budgets.

use std::sync::Arc;
use tugal_suite::routing::{all_vlb_paths, min_paths, required_vcs, PathTable, VcScheme, VlbRule};
use tugal_suite::topology::{Dragonfly, DragonflyParams, SwitchId};
use tugal_suite::traffic::{type_1_set, TrafficPattern};

#[test]
fn table2_topologies_build_with_correct_shape() {
    let expect = [
        (DragonflyParams::new(4, 8, 4, 33), 1056, 264, 1),
        (DragonflyParams::new(4, 8, 4, 17), 544, 136, 2), // 136: paper's "135" is a typo
        (DragonflyParams::new(4, 8, 4, 9), 288, 72, 4),
        (DragonflyParams::new(13, 26, 13, 27), 9126, 702, 13),
    ];
    for (params, nodes, switches, links) in expect {
        let t = Dragonfly::new(params).unwrap();
        assert_eq!(t.num_nodes(), nodes, "{params}");
        assert_eq!(t.num_switches(), switches, "{params}");
        assert_eq!(t.links_per_group_pair(), links, "{params}");
    }
}

#[test]
fn paper_path_length_taxonomy() {
    // §2.2: MIN <= 3 hops with <= 1 global; VLB 2..=6 hops with exactly 2
    // globals.  Checked on the paper's dense topology.
    let t = Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap();
    let (s, d) = (SwitchId(0), SwitchId(9));
    for p in min_paths(&t, s, d) {
        assert!(p.hops() >= 1 && p.hops() <= 3);
        assert!(p.global_hops(&t) <= 1);
    }
    for p in all_vlb_paths(&t, s, d) {
        assert!(p.hops() >= 2 && p.hops() <= 6, "{p:?}");
        assert_eq!(p.global_hops(&t), 2, "{p:?}");
    }
}

#[test]
fn vc_budgets_match_table3() {
    assert_eq!(required_vcs(VcScheme::Compact, false), 4); // UGAL-L / UGAL-G
    assert_eq!(required_vcs(VcScheme::Compact, true), 5); // PAR
    assert_eq!(required_vcs(VcScheme::PerHop, false), 6); // routing(6), Fig. 18
}

#[test]
fn type_1_set_size_matches_paper_formula() {
    // (g-1) * a patterns (§3.3.1).
    for (p, a, h, g) in [(2u32, 4u32, 2u32, 9u32), (2, 4, 2, 5), (2, 4, 2, 3)] {
        let t = Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap();
        assert_eq!(type_1_set(&t).len() as u32, (g - 1) * a);
    }
}

#[test]
fn tvlb_tables_shrink_mean_hops_monotonically() {
    // Table-level sanity for the motivation computation in §3.1: tighter
    // rules give shorter mean VLB paths.
    let t = Dragonfly::new(DragonflyParams::new(2, 4, 2, 3)).unwrap();
    let all = PathTable::build_all(&t).mean_vlb_hops();
    let five = PathTable::build_with_rule(
        &t,
        VlbRule::ClassLimit {
            max_hops: 5,
            frac_next: 0.0,
        },
        0,
    )
    .mean_vlb_hops();
    let four = PathTable::build_with_rule(
        &t,
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.0,
        },
        0,
    )
    .mean_vlb_hops();
    assert!(four < five && five < all, "{four} {five} {all}");
}

#[test]
fn motivation_arithmetic_of_section_3_1() {
    // "Assume 70% of packets are delivered with MIN paths ... 3.9 hops";
    // with T-VLB at 4.8 mean hops, 3.54 hops and ~10% saving.  Pure
    // arithmetic, kept here as an executable record of §3.1.
    let ugal: f64 = 0.7 * 3.0 + 0.3 * 6.0;
    let tugal: f64 = 0.7 * 3.0 + 0.3 * 4.8;
    assert!((ugal - 3.9).abs() < 1e-12);
    assert!((tugal - 3.54).abs() < 1e-12);
    assert!((ugal / tugal - 1.0 - 0.10).abs() < 0.02);
}

#[test]
fn adversarial_demands_concentrate_on_one_group_pair() {
    // §3.1: shift patterns push an entire group's traffic at one other
    // group — the property that makes them the most demanding patterns.
    let t = Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 9)).unwrap());
    let demands = tugal_suite::traffic::Shift::new(&t, 1, 0)
        .demands()
        .unwrap();
    for (s, d, _) in demands {
        assert_eq!((s / 4 + 1) % 9, d / 4);
    }
}
