//! Property-based tests over the simulator's public interface: for random
//! (but valid) configurations and loads, physical invariants must hold.

use proptest::prelude::*;
use std::sync::Arc;
use tugal_suite::netsim::{Config, RoutingAlgorithm, Simulator};
use tugal_suite::routing::TableProvider;
use tugal_suite::topology::{Dragonfly, DragonflyParams};
use tugal_suite::traffic::{Shift, TrafficPattern, Uniform};

fn tiny_config(routing: RoutingAlgorithm, seed: u64) -> Config {
    let mut cfg = Config::quick().for_routing(routing);
    cfg.window = 800;
    cfg.warmup_windows = 1;
    cfg.seed = seed;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_simulation_invariants(
        seed in 0u64..1000,
        rate in 0.02f64..0.5,
        routing_idx in 0usize..5,
        adversarial in proptest::bool::ANY,
    ) {
        let routing = [
            RoutingAlgorithm::Min,
            RoutingAlgorithm::Vlb,
            RoutingAlgorithm::UgalL,
            RoutingAlgorithm::UgalG,
            RoutingAlgorithm::Par,
        ][routing_idx];
        let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap());
        let provider = Arc::new(TableProvider::all_paths(topo.clone()));
        let pattern: Arc<dyn TrafficPattern> = if adversarial {
            Arc::new(Shift::new(&topo, 1, 0))
        } else {
            Arc::new(Uniform::new(&topo))
        };
        let r = Simulator::new(topo, provider, pattern, routing, tiny_config(routing, seed))
            .run(rate);

        // Physical invariants.
        prop_assert!(r.delivered <= r.injected + 20_000, "{r:?}");
        prop_assert!(r.throughput >= 0.0 && r.throughput <= 1.0 + 1e-9, "{r:?}");
        prop_assert!(r.max_channel_util <= 1.0 + 1e-9, "{r:?}");
        prop_assert!(!r.deadlock_suspected, "{r:?}");
        prop_assert!(r.vlb_fraction >= 0.0 && r.vlb_fraction <= 1.0);
        if r.delivered > 0 {
            // Hops within the structural range (0 for same-switch pairs,
            // up to 7 with a PAR reroute).
            prop_assert!(r.avg_hops >= 0.0 && r.avg_hops <= 7.0, "{r:?}");
            // A delivered packet spends at least injection + ejection time.
            prop_assert!(r.avg_latency >= 2.0, "{r:?}");
            prop_assert!(r.latency_p99 >= r.latency_p50, "{r:?}");
        }
        match routing {
            RoutingAlgorithm::Min => prop_assert!(r.vlb_fraction == 0.0),
            RoutingAlgorithm::Vlb if adversarial => {
                prop_assert!(r.vlb_fraction > 0.9, "{r:?}")
            }
            _ => {}
        }
    }

    #[test]
    fn prop_determinism_across_routings(seed in 0u64..200, routing_idx in 0usize..5) {
        let routing = [
            RoutingAlgorithm::Min,
            RoutingAlgorithm::Vlb,
            RoutingAlgorithm::UgalL,
            RoutingAlgorithm::UgalG,
            RoutingAlgorithm::Par,
        ][routing_idx];
        let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 3)).unwrap());
        let provider = Arc::new(TableProvider::all_paths(topo.clone()));
        let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&topo));
        let run = || {
            Simulator::new(
                topo.clone(),
                provider.clone(),
                pattern.clone(),
                routing,
                tiny_config(routing, seed),
            )
            .run(0.2)
        };
        prop_assert_eq!(run(), run());
    }
}
