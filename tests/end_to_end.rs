//! Cross-crate integration: topology → paths → Algorithm 1 → simulation,
//! exercised exactly the way the examples and benches use the system.

use std::sync::Arc;
use tugal_suite::netsim::{
    latency_curve, saturation_throughput, Config, RoutingAlgorithm, Simulator, SweepOptions,
};
use tugal_suite::routing::VlbRule;
use tugal_suite::topology::{Dragonfly, DragonflyParams};
use tugal_suite::traffic::{Shift, TrafficPattern, Uniform};
use tugal_suite::tugal::{compute_tvlb, conventional_provider, TUgalConfig};

fn topo(p: u32, a: u32, h: u32, g: u32) -> Arc<Dragonfly> {
    Arc::new(Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap())
}

/// The headline claim of the paper on a dense (CI-sized) topology:
/// T-UGAL-L sustains at least as much adversarial load as UGAL-L and is
/// not worse at low load, while using shorter VLB paths.
#[test]
fn tugal_dominates_ugal_on_dense_topology() {
    let t = topo(2, 4, 2, 3);
    let result = compute_tvlb(t.clone(), &TUgalConfig::quick());
    assert!(
        result.report.mean_hops_tvlb < result.report.mean_hops_all,
        "T-VLB must be shorter on average"
    );

    let conventional = conventional_provider(t.clone(), 300);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let opts = SweepOptions {
        seeds: vec![11, 12],
        resolution: 0.02,
    };
    let cfg = Config::quick().for_routing(RoutingAlgorithm::UgalL);
    let sat_ugal = saturation_throughput(
        &t,
        &conventional,
        &pattern,
        RoutingAlgorithm::UgalL,
        &cfg,
        &opts,
    );
    let sat_tugal = saturation_throughput(
        &t,
        &result.provider,
        &pattern,
        RoutingAlgorithm::UgalL,
        &cfg,
        &opts,
    );
    assert!(
        sat_tugal >= sat_ugal - 0.02,
        "T-UGAL-L saturation {sat_tugal} must not fall below UGAL-L {sat_ugal}"
    );
    // Low-load latency: T-UGAL should not be worse (it is usually better,
    // since misrouted packets take shorter VLB paths).
    let low = 0.05;
    let curve_u = latency_curve(
        &t,
        &conventional,
        &pattern,
        RoutingAlgorithm::UgalL,
        &cfg,
        &[low],
        &opts,
    );
    let curve_t = latency_curve(
        &t,
        &result.provider,
        &pattern,
        RoutingAlgorithm::UgalL,
        &cfg,
        &[low],
        &opts,
    );
    assert!(
        curve_t[0].result.avg_latency <= curve_u[0].result.avg_latency + 2.0,
        "low-load latency {} vs {}",
        curve_t[0].result.avg_latency,
        curve_u[0].result.avg_latency
    );
}

/// All five routings run end-to-end on every paper-shaped small topology.
#[test]
fn all_routings_run_on_all_arrangement_sizes() {
    for (p, a, h, g) in [(2, 4, 2, 3), (2, 4, 2, 5), (2, 4, 2, 9)] {
        let t = topo(p, a, h, g);
        let provider = conventional_provider(t.clone(), 300);
        let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
        for routing in [
            RoutingAlgorithm::Min,
            RoutingAlgorithm::Vlb,
            RoutingAlgorithm::UgalL,
            RoutingAlgorithm::UgalG,
            RoutingAlgorithm::Par,
        ] {
            let cfg = Config::quick().for_routing(routing);
            let r =
                Simulator::new(t.clone(), provider.clone(), pattern.clone(), routing, cfg).run(0.1);
            assert!(
                r.delivered > 0 && !r.saturated,
                "{} on dfly({p},{a},{h},{g}): {r:?}",
                routing.name()
            );
        }
    }
}

/// The model and the simulator must agree on orderings: a topology whose
/// MIN capacity is tiny for adversarial traffic gains a lot from VLB, and
/// the model's all-VLB throughput is an optimistic (upper) estimate of the
/// simulated UGAL-G saturation point.
#[test]
fn model_upper_bounds_simulated_saturation() {
    use tugal_suite::model::{modeled_throughput, ModelVariant};

    let t = topo(2, 4, 2, 3);
    let demands = Shift::new(&t, 1, 0).demands().unwrap();
    let modeled =
        modeled_throughput(&t, &demands, VlbRule::All, ModelVariant::DrawProportional).unwrap();

    let provider = conventional_provider(t.clone(), 300);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let cfg = Config::quick().for_routing(RoutingAlgorithm::UgalG);
    let opts = SweepOptions {
        seeds: vec![3],
        resolution: 0.02,
    };
    let sat = saturation_throughput(
        &t,
        &provider,
        &pattern,
        RoutingAlgorithm::UgalG,
        &cfg,
        &opts,
    );
    assert!(
        modeled >= sat - 0.05,
        "fluid model {modeled} should not sit below simulated saturation {sat}"
    );
    assert!(sat > 0.1, "UGAL-G should sustain real load: {sat}");
}

/// T-UGAL is provider-compatible with every UGAL variant (the paper's
/// T-UGAL-L / T-UGAL-G / T-PAR).
#[test]
fn tvlb_provider_works_with_all_ugal_variants() {
    let t = topo(2, 4, 2, 3);
    let result = compute_tvlb(t.clone(), &TUgalConfig::quick());
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    for routing in [
        RoutingAlgorithm::UgalL,
        RoutingAlgorithm::UgalG,
        RoutingAlgorithm::Par,
    ] {
        let cfg = Config::quick().for_routing(routing);
        let r = Simulator::new(
            t.clone(),
            result.provider.clone(),
            pattern.clone(),
            routing,
            cfg,
        )
        .run(0.15);
        assert!(
            r.delivered > 0 && !r.saturated,
            "T-{}: {r:?}",
            routing.name()
        );
    }
}
