#![allow(clippy::needless_range_loop)] // `h` indexes hop-count bins

//! Consistency between the two representations of a candidate set:
//! the O(1)-memory rejection sampler (`RuleProvider`) must draw paths with
//! the class distribution the model's analytic realization counts
//! (`PairStats`) predict — they are the same object seen from two sides.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use tugal_suite::model::PairStats;
use tugal_suite::routing::{PathProvider, RuleProvider, VlbRule};
use tugal_suite::topology::{Dragonfly, DragonflyParams, SwitchId};

#[test]
fn rule_provider_class_distribution_matches_pair_stats() {
    let topo = Arc::new(Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap());
    let (s, d) = (SwitchId(0), SwitchId(9));
    let stats = PairStats::compute(&topo, s, d);
    let provider = RuleProvider::new(topo.clone(), VlbRule::All);
    let mut rng = SmallRng::seed_from_u64(42);

    let draws = 20_000;
    let mut observed = [0f64; 8];
    for _ in 0..draws {
        let p = provider.sample_vlb(s, d, &mut rng);
        observed[p.hops()] += 1.0;
    }
    let total = stats.total_count();
    for h in 2..=6 {
        let expected = stats.class_count(h) / total;
        let seen = observed[h] / draws as f64;
        assert!(
            (seen - expected).abs() < 0.02,
            "class {h}: sampled {seen:.4} vs analytic {expected:.4}"
        );
    }
}

#[test]
fn class_limited_sampler_matches_conditioned_distribution() {
    let topo = Arc::new(Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap());
    let (s, d) = (SwitchId(3), SwitchId(20));
    let stats = PairStats::compute(&topo, s, d);
    let rule = VlbRule::ClassLimit {
        max_hops: 4,
        frac_next: 0.5,
    };
    let provider = RuleProvider::new(topo.clone(), rule);
    let mut rng = SmallRng::seed_from_u64(7);

    let draws = 20_000;
    let mut observed = [0f64; 8];
    for _ in 0..draws {
        let p = provider.sample_vlb(s, d, &mut rng);
        assert!(p.hops() <= 5, "rule violated: {p:?}");
        observed[p.hops()] += 1.0;
    }
    // Conditioned weights: classes <= 4 full, class 5 at 50%.
    let weight = |h: usize| {
        stats.class_count(h)
            * if h == 5 {
                0.5
            } else if h <= 4 {
                1.0
            } else {
                0.0
            }
    };
    let total: f64 = (2..=5).map(weight).sum();
    for h in 2..=5 {
        let expected = weight(h) / total;
        let seen = observed[h] / draws as f64;
        assert!(
            (seen - expected).abs() < 0.02,
            "class {h}: sampled {seen:.4} vs analytic {expected:.4}"
        );
    }
}

#[test]
fn table_mean_hops_close_to_stats_mean_hops() {
    // The explicit table dedups identical walks while the stats count
    // realizations; the induced mean-hop difference must stay small (it is
    // the modeling approximation documented in the PairStats docs).
    let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap());
    let provider = tugal_suite::routing::TableProvider::all_paths(topo.clone());
    let table_mean = provider.mean_vlb_hops();
    let stats = PairStats::compute(&topo, SwitchId(0), SwitchId(6));
    assert!(
        (table_mean - stats.mean_vlb_hops()).abs() < 0.6,
        "table {table_mean} vs stats {}",
        stats.mean_vlb_hops()
    );
}
