//! Parsers for the `tugal` command-line tool, kept in the library so they
//! are unit-testable.

use std::sync::Arc;
use tugal_netsim::RoutingAlgorithm;
use tugal_routing::VlbRule;
use tugal_topology::{Dragonfly, DragonflyParams};
use tugal_traffic::{
    GroupPermutation, Mixed, NodePermutation, Shift, TMixed, Tornado, TrafficPattern, Uniform,
};

/// Parses `p,a,h,g` into topology parameters.
pub fn parse_topology(v: &str) -> Result<DragonflyParams, String> {
    let parts: Vec<u32> = v
        .split(',')
        .map(|x| x.trim().parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad topology '{v}': {e}"))?;
    if parts.len() != 4 {
        return Err(format!("bad topology '{v}': need p,a,h,g"));
    }
    Ok(DragonflyParams::new(parts[0], parts[1], parts[2], parts[3]))
}

/// Parses a candidate-set rule: `all`, `H` (hop limit), `H+P%`
/// (hop limit plus a percentage of the next class) or `strategic:2|3`.
pub fn parse_rule(s: &str) -> Result<VlbRule, String> {
    if s == "all" {
        return Ok(VlbRule::All);
    }
    if let Some(first) = s.strip_prefix("strategic:") {
        let first_seg: u8 = first.parse().map_err(|e| format!("bad rule '{s}': {e}"))?;
        if !(2..=3).contains(&first_seg) {
            return Err(format!(
                "strategic first segment must be 2 or 3, got {first_seg}"
            ));
        }
        return Ok(VlbRule::Strategic { first_seg });
    }
    if let Some((hops, pct)) = s.split_once('+') {
        let max_hops: u8 = hops.parse().map_err(|e| format!("bad rule '{s}': {e}"))?;
        let pct = pct.trim_end_matches('%');
        let frac_next: f64 = pct
            .parse::<f64>()
            .map_err(|e| format!("bad rule '{s}': {e}"))?
            / 100.0;
        if !(0.0..=1.0).contains(&frac_next) {
            return Err(format!("bad rule '{s}': percentage out of range"));
        }
        return Ok(VlbRule::ClassLimit {
            max_hops,
            frac_next,
        });
    }
    let max_hops: u8 = s.parse().map_err(|_| format!("bad rule '{s}'"))?;
    Ok(VlbRule::ClassLimit {
        max_hops,
        frac_next: 0.0,
    })
}

/// Parses a routing algorithm name.
pub fn parse_routing(s: &str) -> Result<RoutingAlgorithm, String> {
    match s {
        "min" => Ok(RoutingAlgorithm::Min),
        "vlb" => Ok(RoutingAlgorithm::Vlb),
        "ugal-l" => Ok(RoutingAlgorithm::UgalL),
        "ugal-g" => Ok(RoutingAlgorithm::UgalG),
        "par" => Ok(RoutingAlgorithm::Par),
        _ => Err(format!("unknown routing '{s}'")),
    }
}

/// Parses a traffic-pattern spec (`uniform`, `shift:DG,DS`, `tornado`,
/// `perm:SEED`, `type2:SEED`, `mixed:UR%,DG`, `tmixed:UR%,DG`).
pub fn parse_pattern(s: &str, topo: &Arc<Dragonfly>) -> Result<Arc<dyn TrafficPattern>, String> {
    let (name, arg) = s.split_once(':').unwrap_or((s, ""));
    let nums = || -> Result<Vec<u32>, String> {
        arg.split(',')
            .filter(|x| !x.is_empty())
            .map(|x| {
                x.parse::<u32>()
                    .map_err(|e| format!("bad pattern '{s}': {e}"))
            })
            .collect()
    };
    match name {
        "uniform" | "ur" => Ok(Arc::new(Uniform::new(topo))),
        "shift" => {
            let v = nums()?;
            if v.len() != 2 {
                return Err(format!("shift needs DG,DS in '{s}'"));
            }
            if v[0] >= topo.params().g || v[1] >= topo.params().a {
                return Err(format!("shift out of range in '{s}'"));
            }
            Ok(Arc::new(Shift::new(topo, v[0], v[1])))
        }
        "tornado" => Ok(Arc::new(Tornado::new(topo))),
        "perm" => {
            let v = nums()?;
            Ok(Arc::new(NodePermutation::random(
                topo,
                v.first().copied().unwrap_or(1) as u64,
            )))
        }
        "type2" => {
            let v = nums()?;
            Ok(Arc::new(GroupPermutation::random(
                topo,
                v.first().copied().unwrap_or(1) as u64,
            )))
        }
        "mixed" => {
            let v = nums()?;
            if v.len() != 2 || v[0] > 100 {
                return Err(format!("mixed needs UR%,DG in '{s}'"));
            }
            Ok(Arc::new(Mixed::new(
                topo,
                v[0],
                Shift::new(topo, v[1], 0),
                7,
            )))
        }
        "tmixed" => {
            let v = nums()?;
            if v.len() != 2 || v[0] > 100 {
                return Err(format!("tmixed needs UR%,DG in '{s}'"));
            }
            Ok(Arc::new(TMixed::new(topo, v[0], Shift::new(topo, v[1], 0))))
        }
        _ => Err(format!("unknown pattern '{s}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_parsing() {
        assert_eq!(
            parse_topology("4,8,4,9").unwrap(),
            DragonflyParams::new(4, 8, 4, 9)
        );
        assert_eq!(
            parse_topology(" 2, 4, 2, 3 ").unwrap(),
            DragonflyParams::new(2, 4, 2, 3)
        );
        assert!(parse_topology("4,8,4").is_err());
        assert!(parse_topology("a,b,c,d").is_err());
    }

    #[test]
    fn rule_parsing() {
        assert_eq!(parse_rule("all").unwrap(), VlbRule::All);
        assert_eq!(
            parse_rule("4").unwrap(),
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.0
            }
        );
        assert_eq!(
            parse_rule("4+60%").unwrap(),
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.6
            }
        );
        assert_eq!(
            parse_rule("4+60").unwrap(),
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.6
            }
        );
        assert_eq!(
            parse_rule("strategic:2").unwrap(),
            VlbRule::Strategic { first_seg: 2 }
        );
        assert!(parse_rule("strategic:4").is_err());
        assert!(parse_rule("4+150%").is_err());
        assert!(parse_rule("nope").is_err());
    }

    #[test]
    fn routing_parsing() {
        assert_eq!(parse_routing("min").unwrap(), RoutingAlgorithm::Min);
        assert_eq!(parse_routing("ugal-g").unwrap(), RoutingAlgorithm::UgalG);
        assert!(parse_routing("ugal").is_err());
    }

    #[test]
    fn pattern_parsing() {
        let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 9)).unwrap());
        for spec in [
            "uniform",
            "shift:1,0",
            "tornado",
            "perm:7",
            "type2:3",
            "mixed:50,1",
            "tmixed:25,2",
        ] {
            assert!(parse_pattern(spec, &topo).is_ok(), "{spec}");
        }
        assert!(parse_pattern("shift:9,0", &topo).is_err()); // dg out of range
        assert!(parse_pattern("mixed:150,1", &topo).is_err());
        assert!(parse_pattern("martian", &topo).is_err());
    }
}
