//! # tugal-suite
//!
//! Umbrella crate of the *Topology-Custom UGAL Routing on Dragonfly*
//! (SC '19) reproduction: re-exports every layer of the system so the
//! examples and integration tests read naturally.
//!
//! * [`topology`] — `dfly(p,a,h,g)` networks and global-link arrangements,
//! * [`routing`] — MIN/VLB paths, path tables, candidate providers, VCs,
//! * [`traffic`] — UR / shift / permutation / MIXED / TMIXED / TYPE sets,
//! * [`lp`] — simplex and Garg–Könemann substrates (the CPLEX substitute),
//! * [`model`] — the UGAL throughput model (Step-1 coarse grain),
//! * [`netsim`] — the cycle-accurate flit-level simulator (the BookSim
//!   substitute),
//! * [`tugal`] — Algorithm 1: computing T-VLB and wiring T-UGAL.
//!
//! See `examples/quickstart.rs` for the five-minute tour.

#![warn(missing_docs)]

pub mod cli;

pub use tugal;
pub use tugal_lp as lp;
pub use tugal_model as model;
pub use tugal_netsim as netsim;
pub use tugal_routing as routing;
pub use tugal_topology as topology;
pub use tugal_traffic as traffic;
