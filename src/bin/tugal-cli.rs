//! `tugal-cli` — command-line front end of the T-UGAL reproduction suite.
//!
//! ```text
//! tugal-cli info     -t 4,8,4,9
//! tugal-cli paths    -t 4,8,4,9 --from 0 --to 9
//! tugal-cli model    -t 4,8,4,9 --pattern shift:2,0 [--rule 4+60%]
//! tugal-cli tvlb     -t 2,4,2,3 [--out tvlb.bin]
//! tugal-cli simulate -t 4,8,4,9 --pattern shift:2,0 --routing ugal-l \
//!                [--rate 0.1] [--rule all|4+60%|tvlb.bin] [--full]
//! ```
//!
//! Subcommands mirror the library layers: `info` (topology), `paths`
//! (MIN/VLB enumeration), `model` (LP throughput + bottlenecks), `tvlb`
//! (Algorithm 1, optionally persisting the table), `simulate`
//! (cycle-accurate run).

use std::process::ExitCode;
use std::sync::Arc;
use tugal_suite::cli::{parse_pattern, parse_routing, parse_rule, parse_topology};
use tugal_suite::model::{modeled_bottlenecks, modeled_throughput, ModelVariant};
use tugal_suite::netsim::{Config, Simulator};
use tugal_suite::routing::{
    all_vlb_paths, min_paths, PathProvider, PathTable, RuleProvider, TableProvider,
};
use tugal_suite::topology::{ChannelKind, Dragonfly, DragonflyParams, SwitchId};
use tugal_suite::tugal::{compute_tvlb, TUgalConfig};

fn usage() -> &'static str {
    "usage: tugal-cli <info|paths|model|tvlb|simulate> -t p,a,h,g [options]\n\
     options:\n\
       -t, --topology p,a,h,g     Dragonfly parameters (required)\n\
       --pattern NAME             uniform | shift:DG,DS | tornado | perm:SEED\n\
                                  | type2:SEED | mixed:UR%,DG | tmixed:UR%,DG\n\
       --routing NAME             min | vlb | ugal-l | ugal-g | par\n\
       --rule RULE                all | H (hop limit) | H+P% | strategic:2|3\n\
       --rate R                   offered load, packets/cycle/node (default 0.1)\n\
       --from S --to D            switch ids for `paths`\n\
       --out FILE                 write the computed T-VLB table (tvlb)\n\
       --seed N                   RNG seed (default 1)\n\
       --full                     paper-scale windows instead of quick mode"
}

struct Args {
    topo: Option<DragonflyParams>,
    pattern: String,
    routing: String,
    rule: String,
    rate: f64,
    from: u32,
    to: u32,
    out: Option<String>,
    seed: u64,
    full: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<(String, Args), String> {
    let cmd = argv.next().ok_or_else(|| usage().to_string())?;
    let mut args = Args {
        topo: None,
        pattern: "uniform".into(),
        routing: "ugal-l".into(),
        rule: "all".into(),
        rate: 0.1,
        from: 0,
        to: 1,
        out: None,
        seed: 1,
        full: false,
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "-t" | "--topology" => {
                args.topo = Some(parse_topology(&value(&flag)?)?);
            }
            "--pattern" => args.pattern = value(&flag)?,
            "--routing" => args.routing = value(&flag)?,
            "--rule" => args.rule = value(&flag)?,
            "--rate" => {
                args.rate = value(&flag)?
                    .parse()
                    .map_err(|e| format!("bad rate: {e}"))?
            }
            "--from" => {
                args.from = value(&flag)?
                    .parse()
                    .map_err(|e| format!("bad --from: {e}"))?
            }
            "--to" => {
                args.to = value(&flag)?
                    .parse()
                    .map_err(|e| format!("bad --to: {e}"))?
            }
            "--out" => args.out = Some(value(&flag)?),
            "--seed" => {
                args.seed = value(&flag)?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--full" => args.full = true,
            "-h" | "--help" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok((cmd, args))
}

/// Provider from `--rule`: a rule string, or a file written by `tvlb --out`.
fn provider_from_rule(rule: &str, topo: &Arc<Dragonfly>) -> Result<Arc<dyn PathProvider>, String> {
    if std::path::Path::new(rule).exists() {
        let bytes = std::fs::read(rule).map_err(|e| format!("reading {rule}: {e}"))?;
        let table =
            PathTable::from_bytes(&bytes).ok_or_else(|| format!("{rule}: not a T-VLB table"))?;
        if table.num_switches() != topo.num_switches() {
            return Err(format!(
                "{rule}: table is for {} switches, topology has {}",
                table.num_switches(),
                topo.num_switches()
            ));
        }
        return Ok(Arc::new(TableProvider::new(topo.clone(), table)));
    }
    let rule = parse_rule(rule)?;
    Ok(Arc::new(RuleProvider::new(topo.clone(), rule)))
}

fn run(cmd: &str, args: Args) -> Result<(), String> {
    let params = args.topo.ok_or("missing -t p,a,h,g")?;
    params.validate().map_err(|e| e.to_string())?;
    let topo = Arc::new(Dragonfly::new(params).map_err(|e| e.to_string())?);
    match cmd {
        "info" => {
            println!("{params}");
            println!("  switches            {}", topo.num_switches());
            println!("  compute nodes       {}", topo.num_nodes());
            println!("  groups              {}", topo.num_groups());
            println!("  switch radix        {}", params.switch_radix());
            println!("  links/group pair    {}", topo.links_per_group_pair());
            println!("  balanced (a=2p=2h)  {}", params.is_balanced());
            let locals = topo
                .channels()
                .iter()
                .filter(|c| c.kind == ChannelKind::Local)
                .count();
            let globals = topo
                .channels()
                .iter()
                .filter(|c| c.kind == ChannelKind::Global)
                .count();
            println!("  directed channels   {locals} local + {globals} global");
            Ok(())
        }
        "paths" => {
            let (s, d) = (SwitchId(args.from), SwitchId(args.to));
            if args.from as usize >= topo.num_switches() || args.to as usize >= topo.num_switches()
            {
                return Err("switch id out of range".into());
            }
            let min = min_paths(&topo, s, d);
            println!("MIN paths {s} -> {d} ({}):", min.len());
            for p in &min {
                println!("  {p:?}");
            }
            let vlb = all_vlb_paths(&topo, s, d);
            let mut by_len = [0usize; 8];
            for p in &vlb {
                by_len[p.hops()] += 1;
            }
            println!("VLB paths: {} total", vlb.len());
            for (h, n) in by_len.iter().enumerate() {
                if *n > 0 {
                    println!("  {h}-hop: {n}");
                }
            }
            Ok(())
        }
        "model" => {
            let pattern = parse_pattern(&args.pattern, &topo)?;
            let demands = pattern
                .demands()
                .ok_or("pattern is randomized; the model needs a deterministic pattern")?;
            let rule = parse_rule(&args.rule)?;
            let theta = modeled_throughput(&topo, &demands, rule, ModelVariant::DrawProportional)
                .map_err(|e| e.to_string())?;
            println!(
                "modeled throughput of {} under {rule}: {theta:.4} packets/cycle/node",
                pattern.name()
            );
            let (_, hot) = modeled_bottlenecks(&topo, &demands, rule).map_err(|e| e.to_string())?;
            println!("binding links: {}", hot.len());
            for (c, price) in hot.iter().take(5) {
                let ch = topo.channel(*c);
                println!("  {:?} -> {:?}  dθ/dcap = {price:.4}", ch.src, ch.dst);
            }
            Ok(())
        }
        "tvlb" => {
            let cfg = if args.full {
                TUgalConfig::default()
            } else {
                TUgalConfig::quick()
            };
            let result = compute_tvlb(topo.clone(), &cfg);
            println!("chosen: {}", result.chosen);
            println!(
                "mean VLB hops: {:.3} (all paths: {:.3})",
                result.report.mean_hops_tvlb, result.report.mean_hops_all
            );
            for s in &result.report.scores {
                println!(
                    "  candidate {:>18}: saturation {:.3}, mean VLB hops {:.2}",
                    s.rule.to_string(),
                    s.throughput,
                    s.mean_vlb_hops
                );
            }
            if let Some(out) = args.out {
                // Re-materialize the chosen rule as an explicit table for
                // shipping (Algorithm 1's provider may be rule-based on
                // huge networks, where no table fits).
                if topo.num_switches() > 300 {
                    return Err("table export supported for <=300 switches".into());
                }
                let mut table = PathTable::build_with_rule(&topo, result.chosen, cfg.seed);
                if !result.chosen.is_all() {
                    tugal_suite::tugal::balance::adjust(&mut table, &topo, &cfg.balance);
                }
                std::fs::write(&out, table.to_bytes())
                    .map_err(|e| format!("writing {out}: {e}"))?;
                println!("T-VLB table written to {out}");
            }
            Ok(())
        }
        "simulate" => {
            let pattern = parse_pattern(&args.pattern, &topo)?;
            let routing = parse_routing(&args.routing)?;
            let provider = provider_from_rule(&args.rule, &topo)?;
            let mut cfg = if args.full {
                Config::paper_default()
            } else {
                Config::quick()
            }
            .for_routing(routing);
            cfg.seed = args.seed;
            let r = Simulator::new(topo, provider, pattern, routing, cfg).run(args.rate);
            println!("offered load      {:.3} packets/cycle/node", args.rate);
            println!("accepted          {:.3} packets/cycle/node", r.throughput);
            println!("avg latency       {:.1} cycles", r.avg_latency);
            println!(
                "p50 / p99 latency {:.0} / {:.0} cycles",
                r.latency_p50, r.latency_p99
            );
            println!("avg hops          {:.2}", r.avg_hops);
            println!("VLB fraction      {:.1}%", r.vlb_fraction * 100.0);
            println!(
                "link utilization  max {:.2}, mean global {:.2}, mean local {:.2}",
                r.max_channel_util, r.mean_global_util, r.mean_local_util
            );
            println!("saturated         {}", r.saturated);
            Ok(())
        }
        _ => Err(usage().to_string()),
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok((cmd, args)) => match run(&cmd, args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
