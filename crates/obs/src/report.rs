//! The serializable summary a [`crate::MetricsObserver`] produces — the
//! `metrics` section of `results/*.json`.
//!
//! ## JSON schema
//!
//! ```text
//! {
//!   "runs": u32,                 // merged seed replications
//!   "cycles": u64,               // executed cycles, summed over runs
//!   "injected": u64, "delivered": u64, "dropped": u64, "in_flight_at_end": u64,
//!   "decisions": { "min_intra", "vlb_intra", "min_inter", "vlb_inter", "par_reroutes" },
//!   "latency":   { "count", "mean", "max", "p50", "p90", "p99", "p999" },
//!   "hops":      { "mean", "p50", "p99", "counts": [u64; max_hops+1] },
//!   "links": {
//!     "local":  { "channels", "flits", "mean_load", "max_load" },
//!     "global": { "channels", "flits", "mean_load", "max_load" },
//!     "per_local_load":  [f64],  // flits/cycle per channel; empty unless per_channel
//!     "per_global_load": [f64]
//!   },
//!   "occupancy": { "local": { "samples", "mean", "max" }, "global": {...} },
//!   "timeseries": [ { "cycle", "injected", "delivered", "dropped",
//!                     "local_flits", "global_flits" } ]  // per-interval deltas
//! }
//! ```
//!
//! Latency and hop statistics cover the measurement window when it opened
//! (whole run otherwise — the same fallback the engine's scalar statistics
//! use); link loads and the time series cover the whole run.

use serde::Serialize;

/// MIN/VLB decision mix, split by whether source and destination switch
/// share a dragonfly group, plus PAR's one-shot revisions.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DecisionCounts {
    /// MIN chosen for an intra-group destination.
    pub min_intra: u64,
    /// VLB chosen for an intra-group destination.
    pub vlb_intra: u64,
    /// MIN chosen for an inter-group destination.
    pub min_inter: u64,
    /// VLB chosen for an inter-group destination.
    pub vlb_inter: u64,
    /// PAR reroutes (a MIN decision revised to VLB in the source group).
    pub par_reroutes: u64,
}

impl DecisionCounts {
    /// Initial routing decisions (excludes reroutes).
    pub fn routed(&self) -> u64 {
        self.min_intra + self.vlb_intra + self.min_inter + self.vlb_inter
    }

    /// VLB share including reroutes — the quantity
    /// `tugal_netsim::SimResult::vlb_fraction` reports.
    pub fn vlb_fraction(&self) -> f64 {
        let routed = self.routed();
        if routed == 0 {
            0.0
        } else {
            (self.vlb_intra + self.vlb_inter + self.par_reroutes) as f64 / routed as f64
        }
    }
}

/// Summary of a latency histogram (cycles).
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Recorded deliveries.
    pub count: u64,
    /// Mean latency (`NaN` serializes as `null` when nothing delivered).
    pub mean: f64,
    /// Largest recorded latency.
    pub max: u64,
    /// Exact median (see [`crate::hist::LogHistogram::percentile`]).
    pub p50: f64,
    /// Exact 90th percentile.
    pub p90: f64,
    /// Exact 99th percentile.
    pub p99: f64,
    /// Exact 99.9th percentile.
    pub p999: f64,
}

/// Summary of the hop-count histogram.
#[derive(Debug, Clone, Serialize)]
pub struct HopSummary {
    /// Mean switch-to-switch hops per delivered packet.
    pub mean: f64,
    /// Exact median hop count.
    pub p50: f64,
    /// Exact 99th-percentile hop count.
    pub p99: f64,
    /// Deliveries per hop count (index = hops).
    pub counts: Vec<u64>,
}

/// Aggregate load of one channel class (local or global).
#[derive(Debug, Clone, Default, Serialize)]
pub struct ClassLoad {
    /// Directed channels of this class.
    pub channels: u32,
    /// Flit traversals summed over the class.
    pub flits: u64,
    /// Mean per-channel load, flits/cycle.
    pub mean_load: f64,
    /// Highest per-channel load, flits/cycle.
    pub max_load: f64,
}

/// Per-class and (optionally) per-channel link loads.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LinkSummary {
    /// Intra-group channels.
    pub local: ClassLoad,
    /// Inter-group channels.
    pub global: ClassLoad,
    /// Per-channel load (flits/cycle) of every local channel, in dense
    /// channel order; empty unless `MetricsConfig::per_channel`.
    pub per_local_load: Vec<f64>,
    /// Per-channel load of every global channel, in dense channel order.
    pub per_global_load: Vec<f64>,
}

/// Input-buffer occupancy statistics of one channel class.
#[derive(Debug, Clone, Default, Serialize)]
pub struct OccupancyClass {
    /// (channel, VC) samples taken.
    pub samples: u64,
    /// Mean sampled occupancy, flits.
    pub mean: f64,
    /// Highest sampled occupancy, flits.
    pub max: u32,
}

/// Occupancy sampling summary (all zeros when the cadence was 0).
#[derive(Debug, Clone, Default, Serialize)]
pub struct OccupancySummary {
    /// Local channels.
    pub local: OccupancyClass,
    /// Global channels.
    pub global: OccupancyClass,
}

/// One time-series sample: event counts in the interval ending at `cycle`.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TimeSample {
    /// Cycle the interval ended at.
    pub cycle: u64,
    /// Packets injected during the interval.
    pub injected: u64,
    /// Packets delivered during the interval.
    pub delivered: u64,
    /// Packets dropped at source queues during the interval.
    pub dropped: u64,
    /// Flits sent on local channels during the interval.
    pub local_flits: u64,
    /// Flits sent on global channels during the interval.
    pub global_flits: u64,
}

/// Everything one (or several merged) instrumented runs measured.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsReport {
    /// Merged seed replications behind these numbers.
    pub runs: u32,
    /// Executed cycles, summed over the merged runs (the normalizer for
    /// every load in [`MetricsReport::links`]).
    pub cycles: u64,
    /// Packets created (includes dropped ones).
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped at overflowing source queues.
    pub dropped: u64,
    /// Packets still in the network when the runs ended.
    pub in_flight_at_end: u64,
    /// MIN/VLB/PAR-reroute decision mix per traffic class.
    pub decisions: DecisionCounts,
    /// Exact-percentile latency summary.
    pub latency: LatencySummary,
    /// Exact-percentile hop summary.
    pub hops: HopSummary,
    /// Per-class (and optional per-channel) link loads.
    pub links: LinkSummary,
    /// Input-buffer occupancy sampling summary.
    pub occupancy: OccupancySummary,
    /// Per-interval event counts (empty when `sample_every` was 0).
    pub timeseries: Vec<TimeSample>,
}
