//! # Metrics layer over the netsim observer seam
//!
//! The simulator's scalar end-of-run aggregates say *whether* a routing
//! saturates; the paper's argument (§4) is about *where load lands* —
//! channel load on global links, the MIN/VLB decision mix, latency
//! distributions.  This crate turns the zero-cost
//! [`tugal_netsim::SimObserver`] seam into that telemetry:
//!
//! * **per-channel traversal counters**, split local/global, normalized to
//!   flits/cycle — the channel-load profiles behind Figures 4–18,
//! * **log-bucketed (HDR-style) latency and hop histograms** with *exact*
//!   p50/p99 below 4096 cycles (every unsaturated run) — see
//!   [`hist::LogHistogram`],
//! * **MIN/VLB/PAR-reroute decision counters** per traffic class
//!   (intra-group vs inter-group destinations),
//! * optional **time-series sampling** of injection/delivery/link activity
//!   at a configurable cycle cadence, and optional input-buffer
//!   **occupancy sampling** driven by the engine.
//!
//! Everything is off by default ([`MetricsConfig::default`]); an
//! un-instrumented run still goes through the monomorphized
//! `NoopObserver` engine and pays nothing.
//!
//! ```no_run
//! use std::sync::Arc;
//! use tugal_netsim::{Config, RoutingAlgorithm, Simulator, SimWorkspace};
//! use tugal_obs::{MetricsConfig, MetricsObserver};
//! use tugal_routing::TableProvider;
//! use tugal_topology::{Dragonfly, DragonflyParams};
//! use tugal_traffic::Uniform;
//!
//! let topo = Arc::new(Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap());
//! let provider = Arc::new(TableProvider::all_paths(topo.clone()));
//! let pattern = Arc::new(Uniform::new(&topo));
//! let sim = Simulator::new(topo.clone(), provider, pattern,
//!     RoutingAlgorithm::UgalL, Config::quick());
//! let mut obs = MetricsObserver::new(&topo, &MetricsConfig::summary());
//! let result = sim.run_observed(0.2, &mut SimWorkspace::new(), &mut obs);
//! let metrics = obs.report();
//! println!("global mean load {:.3} flits/cycle, exact p99 {:.0} cycles",
//!     metrics.links.global.mean_load, metrics.latency.p99);
//! # let _ = result;
//! ```

#![warn(missing_docs)]

pub mod hist;
mod metrics;
mod report;
mod stall;

pub use hist::LogHistogram;
pub use metrics::{MetricsConfig, MetricsObserver};
pub use report::{
    ClassLoad, DecisionCounts, HopSummary, LatencySummary, LinkSummary, MetricsReport,
    OccupancyClass, OccupancySummary, TimeSample,
};
pub use stall::render_stall;
