//! The [`MetricsObserver`]: a [`SimObserver`] that turns the engine's
//! event seam into the paper's §4 telemetry.

use crate::hist::LogHistogram;
use crate::report::{
    ClassLoad, DecisionCounts, HopSummary, LatencySummary, LinkSummary, MetricsReport,
    OccupancyClass, OccupancySummary, TimeSample,
};
use tugal_netsim::SimObserver;
use tugal_topology::{ChannelKind, Dragonfly, NodeId, SwitchId};

/// What the metrics layer should collect.  The default is fully disabled —
/// harnesses behave exactly as before unless a config turns metrics on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Master switch; when false no observer is attached at all.
    pub enabled: bool,
    /// Time-series cadence in cycles (0 disables the time series).
    pub sample_every: u64,
    /// Engine-driven input-buffer occupancy sampling cadence in cycles
    /// (0 disables sampling and compiles the sampling loop out for the
    /// plain observer path).
    pub occupancy_every: u64,
    /// Include per-channel load vectors in the report (the channel-load
    /// profiles of the paper's figures; sized `O(channels)` per series ×
    /// rate, so large-topology sweeps may want it off).
    pub per_channel: bool,
}

impl MetricsConfig {
    /// Metrics on with summary collection only: no time series, no
    /// occupancy sampling, per-channel load vectors included.
    pub fn summary() -> Self {
        MetricsConfig {
            enabled: true,
            sample_every: 0,
            occupancy_every: 0,
            per_channel: true,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct OccAcc {
    samples: u64,
    sum: u64,
    max: u32,
}

impl OccAcc {
    fn add(&mut self, occ: u32) {
        self.samples += 1;
        self.sum += occ as u64;
        self.max = self.max.max(occ);
    }
    fn merge(&mut self, o: &OccAcc) {
        self.samples += o.samples;
        self.sum += o.sum;
        self.max = self.max.max(o.max);
    }
    fn summary(&self) -> OccupancyClass {
        OccupancyClass {
            samples: self.samples,
            mean: if self.samples == 0 {
                0.0
            } else {
                self.sum as f64 / self.samples as f64
            },
            max: self.max,
        }
    }
}

/// Per-interval accumulators behind the time series.
#[derive(Debug, Clone, Copy, Default)]
struct TsWindow {
    injected: u64,
    delivered: u64,
    dropped: u64,
    local_flits: u64,
    global_flits: u64,
}

/// Collects per-channel link loads, exact latency/hop histograms, the
/// MIN/VLB decision mix and (optionally) time-series samples from one
/// simulation run; [`MetricsObserver::merge`] folds seed replications
/// together and [`MetricsObserver::report`] emits the serializable
/// [`MetricsReport`].
///
/// Attaching the observer cannot change simulation results: every hook
/// only reads the event arguments (pinned by the neutrality test in
/// `tests/metrics.rs`).
#[derive(Debug, Clone)]
pub struct MetricsObserver {
    cfg: MetricsConfig,
    switches_per_group: u32,
    /// Channel class of the first `n_network` dense channel ids.
    is_global: Vec<bool>,

    runs: u32,
    /// `on_cycle` calls (executed cycles).
    cycles: u64,
    /// Engine-equivalent elapsed cycles (`end_now + 1`, summed over runs)
    /// — the load normalizer, matching `SimResult`'s utilization fields.
    elapsed: u64,
    injected: u64,
    delivered: u64,
    dropped: u64,
    in_flight_at_end: u64,
    decisions: DecisionCounts,

    /// Latency histogram; reset when the measurement window opens, so it
    /// mirrors the engine's window/whole-run fallback.
    latency: LogHistogram,
    /// Hop histogram, window-aligned like `latency`.
    hops: Vec<u64>,
    hops_sum: u64,
    hops_count: u64,

    /// Flit traversals per network channel (whole run).
    link_flits: Vec<u64>,

    occ_local: OccAcc,
    occ_global: OccAcc,

    ts: Vec<TimeSample>,
    ts_cur: TsWindow,
    ts_last_flush: u64,
}

impl MetricsObserver {
    /// An observer for runs over `topo` collecting what `cfg` asks for.
    pub fn new(topo: &Dragonfly, cfg: &MetricsConfig) -> Self {
        let n_network = topo.num_network_channels();
        let is_global = topo.channels()[..n_network]
            .iter()
            .map(|c| c.kind == ChannelKind::Global)
            .collect();
        MetricsObserver {
            cfg: cfg.clone(),
            switches_per_group: (topo.num_switches() / topo.num_groups().max(1)).max(1) as u32,
            is_global,
            runs: 1,
            cycles: 0,
            elapsed: 0,
            injected: 0,
            delivered: 0,
            dropped: 0,
            in_flight_at_end: 0,
            decisions: DecisionCounts::default(),
            latency: LogHistogram::new(),
            hops: Vec::new(),
            hops_sum: 0,
            hops_count: 0,
            link_flits: vec![0; n_network],
            occ_local: OccAcc::default(),
            occ_global: OccAcc::default(),
            ts: Vec::new(),
            ts_cur: TsWindow::default(),
            ts_last_flush: 0,
        }
    }

    fn group_of(&self, s: SwitchId) -> u32 {
        s.0 / self.switches_per_group
    }

    fn flush_timeseries(&mut self, cycle: u64) {
        let w = std::mem::take(&mut self.ts_cur);
        self.ts.push(TimeSample {
            cycle,
            injected: w.injected,
            delivered: w.delivered,
            dropped: w.dropped,
            local_flits: w.local_flits,
            global_flits: w.global_flits,
        });
        self.ts_last_flush = cycle;
    }

    /// Folds another replication's collections into this one.  Histograms
    /// and counters add; time series add element-wise by sample index
    /// (replications share a cadence, so indexes line up; a shorter
    /// series — an early-saturated run — simply stops contributing).
    pub fn merge(&mut self, other: &MetricsObserver) {
        self.runs += other.runs;
        self.cycles += other.cycles;
        self.elapsed += other.elapsed;
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.in_flight_at_end += other.in_flight_at_end;
        self.decisions.min_intra += other.decisions.min_intra;
        self.decisions.vlb_intra += other.decisions.vlb_intra;
        self.decisions.min_inter += other.decisions.min_inter;
        self.decisions.vlb_inter += other.decisions.vlb_inter;
        self.decisions.par_reroutes += other.decisions.par_reroutes;
        self.latency.merge(&other.latency);
        if other.hops.len() > self.hops.len() {
            self.hops.resize(other.hops.len(), 0);
        }
        for (a, &b) in self.hops.iter_mut().zip(&other.hops) {
            *a += b;
        }
        self.hops_sum += other.hops_sum;
        self.hops_count += other.hops_count;
        for (a, &b) in self.link_flits.iter_mut().zip(&other.link_flits) {
            *a += b;
        }
        self.occ_local.merge(&other.occ_local);
        self.occ_global.merge(&other.occ_global);
        if other.ts.len() > self.ts.len() {
            self.ts.resize(other.ts.len(), TimeSample::default());
            for (a, b) in self.ts.iter_mut().zip(&other.ts) {
                a.cycle = b.cycle;
            }
        }
        for (a, b) in self.ts.iter_mut().zip(&other.ts) {
            a.injected += b.injected;
            a.delivered += b.delivered;
            a.dropped += b.dropped;
            a.local_flits += b.local_flits;
            a.global_flits += b.global_flits;
        }
    }

    /// Exact median latency (cycles) — `NaN` when nothing was delivered.
    pub fn latency_p50(&self) -> f64 {
        self.latency.percentile(0.50)
    }

    /// Exact 99th-percentile latency (cycles).
    pub fn latency_p99(&self) -> f64 {
        self.latency.percentile(0.99)
    }

    /// Summarizes everything collected so far into the serializable
    /// report.
    pub fn report(&self) -> MetricsReport {
        let elapsed = self.elapsed.max(self.cycles).max(1) as f64;
        let class = |global: bool| -> (ClassLoad, Vec<f64>) {
            let mut load = ClassLoad::default();
            let mut per = Vec::new();
            let mut sum = 0.0f64;
            for (ch, &flits) in self.link_flits.iter().enumerate() {
                if self.is_global[ch] != global {
                    continue;
                }
                let l = flits as f64 / elapsed;
                load.channels += 1;
                load.flits += flits;
                load.max_load = load.max_load.max(l);
                sum += l;
                if self.cfg.per_channel {
                    per.push(l);
                }
            }
            if load.channels > 0 {
                load.mean_load = sum / load.channels as f64;
            }
            (load, per)
        };
        let (local, per_local_load) = class(false);
        let (global, per_global_load) = class(true);
        MetricsReport {
            runs: self.runs,
            cycles: self.cycles,
            injected: self.injected,
            delivered: self.delivered,
            dropped: self.dropped,
            in_flight_at_end: self.in_flight_at_end,
            decisions: self.decisions.clone(),
            latency: LatencySummary {
                count: self.latency.count(),
                mean: self.latency.mean(),
                max: self.latency.max(),
                p50: self.latency.percentile(0.50),
                p90: self.latency.percentile(0.90),
                p99: self.latency.percentile(0.99),
                p999: self.latency.percentile(0.999),
            },
            hops: HopSummary {
                mean: if self.hops_count == 0 {
                    0.0
                } else {
                    self.hops_sum as f64 / self.hops_count as f64
                },
                p50: hop_percentile(&self.hops, self.hops_count, 0.50),
                p99: hop_percentile(&self.hops, self.hops_count, 0.99),
                counts: self.hops.clone(),
            },
            links: LinkSummary {
                local,
                global,
                per_local_load,
                per_global_load,
            },
            occupancy: OccupancySummary {
                local: self.occ_local.summary(),
                global: self.occ_global.summary(),
            },
            timeseries: self.ts.clone(),
        }
    }
}

fn hop_percentile(counts: &[u64], total: u64, p: f64) -> f64 {
    if total == 0 {
        return f64::NAN;
    }
    let target = (p * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (h, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            return h as f64;
        }
    }
    (counts.len().saturating_sub(1)) as f64
}

impl SimObserver for MetricsObserver {
    fn on_cycle(&mut self, now: u64) {
        self.cycles += 1;
        if self.cfg.sample_every != 0 && now != 0 && now.is_multiple_of(self.cfg.sample_every) {
            self.flush_timeseries(now);
        }
    }

    fn on_measurement_start(&mut self, _now: u64) {
        // Mirror the engine: window statistics restart when the
        // measurement window opens, whole-run collections keep going.
        self.latency.clear();
        self.hops.iter_mut().for_each(|c| *c = 0);
        self.hops_sum = 0;
        self.hops_count = 0;
    }

    fn on_inject(&mut self, _now: u64, _src: NodeId, _dst: NodeId) {
        self.injected += 1;
        self.ts_cur.injected += 1;
    }

    fn on_drop(&mut self, _now: u64, _src: NodeId, _dst: NodeId) {
        self.dropped += 1;
        self.ts_cur.dropped += 1;
    }

    fn on_route(&mut self, _now: u64, src: SwitchId, dst: SwitchId, used_vlb: bool, reroute: bool) {
        if reroute {
            self.decisions.par_reroutes += 1;
            return;
        }
        let intra = self.group_of(src) == self.group_of(dst);
        match (intra, used_vlb) {
            (true, false) => self.decisions.min_intra += 1,
            (true, true) => self.decisions.vlb_intra += 1,
            (false, false) => self.decisions.min_inter += 1,
            (false, true) => self.decisions.vlb_inter += 1,
        }
    }

    fn on_link_traverse(&mut self, _now: u64, chan: u32, global: bool) {
        self.link_flits[chan as usize] += 1;
        if global {
            self.ts_cur.global_flits += 1;
        } else {
            self.ts_cur.local_flits += 1;
        }
    }

    fn occupancy_cadence(&self) -> u64 {
        self.cfg.occupancy_every
    }

    fn on_vc_occupancy_sample(&mut self, _now: u64, chan: u32, _vc: u8, occupancy: u32) {
        if self.is_global[chan as usize] {
            self.occ_global.add(occupancy);
        } else {
            self.occ_local.add(occupancy);
        }
    }

    fn on_deliver(&mut self, _now: u64, latency: u64, hops: u8) {
        self.delivered += 1;
        self.ts_cur.delivered += 1;
        self.latency.record(latency);
        let h = hops as usize;
        if h >= self.hops.len() {
            self.hops.resize(h + 1, 0);
        }
        self.hops[h] += 1;
        self.hops_sum += hops as u64;
        self.hops_count += 1;
    }

    fn on_run_end(&mut self, now: u64, in_flight: u64) {
        self.in_flight_at_end += in_flight;
        self.elapsed += now + 1;
        if self.cfg.sample_every != 0 && now > self.ts_last_flush {
            self.flush_timeseries(now);
        }
    }
}
