//! Log-bucketed (HDR-style) value histogram.
//!
//! Values below [`LINEAR_MAX`] are counted exactly, one bucket per value;
//! larger values fall into power-of-two octaves subdivided into
//! [`SUBBUCKETS`] linear sub-buckets each, bounding the relative
//! quantization error by `1 / SUBBUCKETS`.  Packet latencies in this
//! simulator are far below [`LINEAR_MAX`] whenever the run is worth
//! measuring (the saturation rule fires at 500 cycles), so the p50/p99 the
//! histogram reports are *exact* for every unsaturated run — which is what
//! lets the metrics layer replace the coarse power-of-two estimator in
//! `tugal_netsim::SimResult`.

/// Values below this are recorded exactly (one bucket per value).
pub const LINEAR_MAX: u64 = 4096;

/// Sub-buckets per octave above the linear range (relative error ≤ 1/2048).
pub const SUBBUCKETS: u64 = 2048;

const LINEAR_BITS: u32 = LINEAR_MAX.trailing_zeros(); // 12
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros(); // 11

/// A growable log-bucketed histogram of `u64` values.
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

/// Bucket index of a value.
#[inline]
fn index_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros(); // ≥ LINEAR_BITS
        let sub = (v >> (octave - SUB_BITS)) & (SUBBUCKETS - 1);
        LINEAR_MAX as usize + (octave - LINEAR_BITS) as usize * SUBBUCKETS as usize + sub as usize
    }
}

/// Representative value of a bucket (exact below the linear range, the
/// sub-bucket midpoint above it).
fn value_of(idx: usize) -> f64 {
    if idx < LINEAR_MAX as usize {
        idx as f64
    } else {
        let rel = idx - LINEAR_MAX as usize;
        let octave = LINEAR_BITS + (rel / SUBBUCKETS as usize) as u32;
        let sub = (rel % SUBBUCKETS as usize) as u64;
        let width = 1u64 << (octave - SUB_BITS);
        let lo = (SUBBUCKETS + sub) * width;
        lo as f64 + width as f64 / 2.0
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = index_of(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile (`0 < p ≤ 1`) of the recorded values: exact for
    /// values below [`LINEAR_MAX`], within `1/SUBBUCKETS` relative error
    /// above.  `NaN` when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return value_of(i);
            }
        }
        self.max as f64
    }

    /// Adds every recorded value of `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Clears the histogram, keeping its allocation.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_linear_range() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(v);
        }
        // Exact order statistics: p50 over 10 values is the 5th (ceil).
        assert_eq!(h.percentile(0.50), 50.0);
        assert_eq!(h.percentile(0.99), 100.0);
        assert_eq!(h.percentile(0.10), 10.0);
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 55.0);
    }

    #[test]
    fn duplicates_and_zero() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(7);
        h.record(7);
        h.record(7);
        assert_eq!(h.percentile(0.25), 0.0);
        assert_eq!(h.percentile(0.5), 7.0);
        assert_eq!(h.percentile(1.0), 7.0);
    }

    #[test]
    fn bounded_relative_error_above_linear_range() {
        let mut h = LogHistogram::new();
        for v in [5_000u64, 70_000, 1_000_000, u64::from(u32::MAX)] {
            h.clear();
            h.record(v);
            let got = h.percentile(0.5);
            let rel = (got - v as f64).abs() / v as f64;
            assert!(rel <= 1.0 / SUBBUCKETS as f64, "value {v}: got {got}");
        }
    }

    #[test]
    fn merge_matches_combined_recording() {
        let (mut a, mut b, mut c) = (
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        );
        for v in 0..500u64 {
            a.record(v * 3);
            c.record(v * 3);
        }
        for v in 0..300u64 {
            b.record(v * 7 + 10_000);
            c.record(v * 7 + 10_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        for p in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(p), c.percentile(p));
        }
    }

    #[test]
    fn empty_is_nan() {
        let h = LogHistogram::new();
        assert!(h.percentile(0.5).is_nan());
        assert!(h.mean().is_nan());
        assert_eq!(h.count(), 0);
    }
}
