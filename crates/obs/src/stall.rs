//! Human-readable rendering of engine [`StallReport`]s.
//!
//! The engine's watchdog returns a structured report; this module turns it
//! into the multi-line diagnostic harnesses print when a job fails —
//! mirroring how the `metrics` section turns raw observer counters into a
//! readable summary.

use std::fmt::Write;
use tugal_netsim::StallReport;
use tugal_topology::{ChannelKind, Dragonfly};

/// How many occupancy lines [`render_stall`] prints before eliding.
const MAX_OCCUPANCY_LINES: usize = 8;

/// How many flight-recorder frames [`render_stall`] prints before eliding
/// (the oldest frames are elided — the most recent cycles matter most).
const MAX_FLIGHT_LINES: usize = 12;

/// Renders `report` as an indented multi-line diagnostic.  With a
/// topology, channels in the occupancy snapshot and the oldest packet's
/// position are annotated with their class (local / global / terminal) and
/// endpoints; without one they are printed as bare channel ids.
pub fn render_stall(report: &StallReport, topo: Option<&Dragonfly>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "watchdog trip: {} at cycle {}",
        report.kind.name(),
        report.cycle
    );
    let _ = writeln!(
        out,
        "  last delivery: cycle {} ({} cycles before the trip)",
        report.last_delivery,
        report.cycle.saturating_sub(report.last_delivery)
    );
    let l = &report.ledger;
    let _ = writeln!(
        out,
        "  ledger: injected {} = delivered {} + dropped {} + in flight {} ({})",
        l.injected,
        l.delivered,
        l.dropped,
        l.in_flight,
        if l.balanced() {
            "balanced".to_string()
        } else {
            format!("IMBALANCE {:+}", l.imbalance())
        }
    );
    let d = &report.decisions;
    let vlb_pct = if d.routed > 0 {
        100.0 * d.vlb_chosen as f64 / d.routed as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  decisions: {} routed, {} took VLB ({:.1}%)",
        d.routed, d.vlb_chosen, vlb_pct
    );
    if let Some(o) = &report.oldest {
        let _ = writeln!(
            out,
            "  oldest in flight: node {} -> {}, born cycle {} (age {}), {} hops, on {}",
            o.src,
            o.dst,
            o.birth,
            o.age,
            o.hops_taken,
            channel_desc(o.cur_chan, topo)
        );
    }
    if report.occupancy.is_empty() {
        let _ = writeln!(out, "  no occupied VC buffers");
    } else {
        let shown = report.occupancy.len().min(MAX_OCCUPANCY_LINES);
        let _ = writeln!(
            out,
            "  occupied VC buffers ({} shown of {}):",
            shown,
            report.occupancy.len()
        );
        for snap in report.occupancy.iter().take(shown) {
            let _ = writeln!(
                out,
                "    {} vc {}: {} flits",
                channel_desc(snap.chan, topo),
                snap.vc,
                snap.occupancy
            );
        }
    }
    if !report.recent.is_empty() {
        let shown = report.recent.len().min(MAX_FLIGHT_LINES);
        let _ = writeln!(
            out,
            "  flight recorder ({} shown of {} frames, most recent last):",
            shown,
            report.recent.len()
        );
        for f in report.recent.iter().skip(report.recent.len() - shown) {
            let _ = writeln!(
                out,
                "    cycle {} shard {}: in flight {}, injected {}, delivered {}, \
                 dropped {}, boundary {}/{} sent/recv",
                f.cycle,
                f.shard,
                f.in_flight,
                f.injected,
                f.delivered,
                f.dropped,
                f.boundary_sent,
                f.boundary_recv
            );
        }
    }
    out
}

/// `chan 12 (global s3 -> s7)` with a topology, `chan 12` without.
fn channel_desc(chan: u32, topo: Option<&Dragonfly>) -> String {
    let Some(topo) = topo else {
        return format!("chan {chan}");
    };
    let Some(ch) = topo.channels().get(chan as usize) else {
        return format!("chan {chan}");
    };
    let kind = match ch.kind {
        ChannelKind::Local => "local",
        ChannelKind::Global => "global",
        _ => "terminal",
    };
    format!("chan {chan} ({kind} {:?} -> {:?})", ch.src, ch.dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tugal_netsim::{ConservationLedger, OldestPacket, RoutingCounters, StallKind, VcSnapshot};

    fn report() -> StallReport {
        StallReport {
            kind: StallKind::Livelock,
            cycle: 5000,
            last_delivery: 3200,
            ledger: ConservationLedger {
                injected: 90,
                delivered: 40,
                dropped: 20,
                in_flight: 30,
            },
            occupancy: vec![
                VcSnapshot {
                    chan: 2,
                    vc: 0,
                    occupancy: 12,
                },
                VcSnapshot {
                    chan: 5,
                    vc: 1,
                    occupancy: 7,
                },
            ],
            oldest: Some(OldestPacket {
                birth: 100,
                age: 4900,
                src: 0,
                dst: 9,
                hops_taken: 3,
                cur_chan: 2,
            }),
            decisions: RoutingCounters {
                routed: 88,
                vlb_chosen: 44,
            },
            recent: vec![],
        }
    }

    #[test]
    fn renders_every_section() {
        let text = render_stall(&report(), None);
        assert!(text.contains("livelock"), "{text}");
        assert!(text.contains("cycle 5000"), "{text}");
        assert!(text.contains("balanced"), "{text}");
        assert!(text.contains("oldest in flight: node 0 -> 9"), "{text}");
        assert!(text.contains("chan 2 vc 0: 12 flits"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
    }

    #[test]
    fn reports_ledger_imbalance() {
        let mut r = report();
        r.kind = StallKind::ConservationViolation;
        r.ledger.in_flight = 25; // five packets unaccounted for
        let text = render_stall(&r, None);
        assert!(text.contains("conservation-violation"), "{text}");
        assert!(text.contains("IMBALANCE +5"), "{text}");
    }

    #[test]
    fn renders_flight_recorder_frames_most_recent_last() {
        use tugal_netsim::FlightFrame;
        let mut r = report();
        r.recent = (0..20)
            .map(|i| FlightFrame {
                cycle: 4980 + i,
                shard: (i % 2) as u32,
                in_flight: 30,
                injected: 90,
                delivered: 40,
                dropped: 20,
                boundary_sent: i,
                boundary_recv: i,
            })
            .collect();
        let text = render_stall(&r, None);
        assert!(
            text.contains("flight recorder (12 shown of 20 frames"),
            "{text}"
        );
        // The oldest frames are elided, the newest kept.
        assert!(!text.contains("cycle 4980 "), "{text}");
        assert!(text.contains("cycle 4999 shard 1"), "{text}");
        assert!(text.contains("boundary 19/19 sent/recv"), "{text}");
    }

    #[test]
    fn annotates_channels_with_topology() {
        use tugal_topology::{Dragonfly, DragonflyParams};
        let topo = Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap();
        let text = render_stall(&report(), Some(&topo));
        assert!(
            text.contains("local") || text.contains("global") || text.contains("terminal"),
            "{text}"
        );
    }
}
