//! Metrics-layer contracts: attaching a [`MetricsObserver`] cannot change
//! the physics, and what it collects must agree with the engine's own
//! scalar statistics wherever the two overlap.

use std::sync::Arc;
use tugal_netsim::{Config, RoutingAlgorithm, SimWorkspace, Simulator};
use tugal_obs::{MetricsConfig, MetricsObserver};
use tugal_routing::TableProvider;
use tugal_topology::{ChannelKind, Dragonfly, DragonflyParams};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

fn topo() -> Arc<Dragonfly> {
    Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap())
}

fn simulator(t: &Arc<Dragonfly>, routing: RoutingAlgorithm, adversarial: bool) -> Simulator {
    let provider = Arc::new(TableProvider::all_paths(t.clone()));
    let pattern: Arc<dyn TrafficPattern> = if adversarial {
        Arc::new(Shift::new(t, 1, 0))
    } else {
        Arc::new(Uniform::new(t))
    };
    let mut cfg = Config::quick().for_routing(routing);
    cfg.seed = 17;
    Simulator::new(t.clone(), provider, pattern, routing, cfg)
}

fn full_cfg() -> MetricsConfig {
    MetricsConfig {
        enabled: true,
        sample_every: 500,
        occupancy_every: 250,
        per_channel: true,
    }
}

#[test]
fn metrics_observation_is_physics_neutral() {
    let t = topo();
    for routing in [
        RoutingAlgorithm::Min,
        RoutingAlgorithm::UgalL,
        RoutingAlgorithm::Par,
    ] {
        let sim = simulator(&t, routing, false);
        let plain = sim.run(0.25);
        let mut obs = MetricsObserver::new(&t, &full_cfg());
        let observed = sim.run_observed(0.25, &mut SimWorkspace::new(), &mut obs);
        assert_eq!(plain, observed, "{routing:?}: metrics must not perturb");
    }
}

#[test]
fn link_flits_match_engine_utilization() {
    let t = topo();
    let sim = simulator(&t, RoutingAlgorithm::UgalL, true);
    let mut obs = MetricsObserver::new(&t, &MetricsConfig::summary());
    let result = sim.run_observed(0.12, &mut SimWorkspace::new(), &mut obs);
    let rep = obs.report();

    // The engine's mean utilizations are per-channel flits/(now+1) averaged
    // over each class; the observer counts the same traversals, so the
    // class means must coincide.
    assert!(
        (rep.links.global.mean_load - result.mean_global_util).abs() < 1e-12,
        "global: observer {} vs engine {}",
        rep.links.global.mean_load,
        result.mean_global_util
    );
    assert!((rep.links.local.mean_load - result.mean_local_util).abs() < 1e-12);

    // Per-channel vectors cover every network channel of each class.
    let globals = t.channels()[..t.num_network_channels()]
        .iter()
        .filter(|c| c.kind == ChannelKind::Global)
        .count();
    assert_eq!(rep.links.per_global_load.len(), globals);
    assert_eq!(
        rep.links.per_local_load.len(),
        t.num_network_channels() - globals
    );
    assert!(
        rep.links.global.flits > 0,
        "adversarial load must use globals"
    );
}

#[test]
fn conservation_and_decision_mix_match_the_engine() {
    let t = topo();
    for (routing, adversarial) in [
        (RoutingAlgorithm::UgalL, true),
        (RoutingAlgorithm::UgalG, false),
        (RoutingAlgorithm::Par, true),
    ] {
        let sim = simulator(&t, routing, adversarial);
        let mut obs = MetricsObserver::new(&t, &full_cfg());
        let result = sim.run_observed(0.2, &mut SimWorkspace::new(), &mut obs);
        let rep = obs.report();

        // Every injected packet is dropped, delivered, or still in flight.
        assert_eq!(
            rep.injected,
            rep.delivered + rep.dropped + rep.in_flight_at_end,
            "{routing:?}: packet conservation"
        );

        // The observer's decision mix reproduces the engine's VLB share
        // bit-for-bit (both divide the same integer counters).
        assert_eq!(
            rep.decisions.vlb_fraction(),
            result.vlb_fraction,
            "{routing:?}: decision mix"
        );
        if routing == RoutingAlgorithm::Par && adversarial {
            assert!(rep.decisions.par_reroutes > 0, "PAR must revise on shift");
        } else if routing != RoutingAlgorithm::Par {
            assert_eq!(rep.decisions.par_reroutes, 0);
        }
    }
}

#[test]
fn window_histogram_counts_match_window_deliveries() {
    let t = topo();
    let sim = simulator(&t, RoutingAlgorithm::Min, false);
    let mut obs = MetricsObserver::new(&t, &MetricsConfig::summary());
    let result = sim.run_observed(0.2, &mut SimWorkspace::new(), &mut obs);
    let rep = obs.report();
    // Unsaturated run: the histogram restarts at window open, so its count
    // is exactly the engine's window delivery count, and the exact
    // percentiles are plausible latencies.
    assert_eq!(rep.latency.count, result.delivered);
    assert!(rep.latency.p50 <= rep.latency.p99);
    assert!(rep.latency.p99 <= rep.latency.max as f64);
    assert!(rep.latency.p50 > 0.0);
    // The exact percentiles land inside the power-of-two estimator's
    // bucket resolution (a factor of two in each direction).
    assert!(rep.latency.p50 <= result.latency_p50 * 2.0);
    assert!(rep.latency.p50 >= result.latency_p50 / 2.0);
    // Hop statistics agree with the scalar mean.
    assert!((rep.hops.mean - result.avg_hops).abs() < 1e-12);
}

#[test]
fn merge_folds_replications() {
    let t = topo();
    let provider = Arc::new(TableProvider::all_paths(t.clone()));
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let mut merged: Option<MetricsObserver> = None;
    let mut total_delivered = 0u64;
    for seed in [1u64, 2, 3] {
        let mut cfg = Config::quick().for_routing(RoutingAlgorithm::UgalL);
        cfg.seed = seed;
        let sim = Simulator::new(
            t.clone(),
            provider.clone(),
            pattern.clone(),
            RoutingAlgorithm::UgalL,
            cfg,
        );
        let mut obs = MetricsObserver::new(&t, &full_cfg());
        let r = sim.run_observed(0.2, &mut SimWorkspace::new(), &mut obs);
        total_delivered += r.delivered;
        match &mut merged {
            None => merged = Some(obs),
            Some(m) => m.merge(&obs),
        }
    }
    let rep = merged.unwrap().report();
    assert_eq!(rep.runs, 3);
    assert_eq!(rep.latency.count, total_delivered);
    assert!(
        !rep.timeseries.is_empty(),
        "cadence 500 must produce samples"
    );
    assert!(rep.occupancy.local.samples > 0);
    // Element-wise time-series merge: each interval's deliveries summed
    // over seeds must add back up to the whole-run delivered count.
    let ts_delivered: u64 = rep.timeseries.iter().map(|s| s.delivered).sum();
    assert_eq!(ts_delivered, rep.delivered);
}

#[test]
fn report_serializes_to_json() {
    let t = topo();
    let sim = simulator(&t, RoutingAlgorithm::UgalL, false);
    let mut obs = MetricsObserver::new(&t, &full_cfg());
    let _ = sim.run_observed(0.15, &mut SimWorkspace::new(), &mut obs);
    let json = serde_json::to_string(&obs.report()).expect("report must serialize");
    for key in [
        "\"decisions\"",
        "\"latency\"",
        "\"links\"",
        "\"per_global_load\"",
        "\"timeseries\"",
        "\"occupancy\"",
    ] {
        assert!(json.contains(key), "metrics JSON must contain {key}");
    }
}
