//! Additional standard interconnect patterns and trace replay.
//!
//! The paper evaluates five pattern families (§4.1.3); these extras are
//! the remaining classics of the BookSim suite plus a replayable trace,
//! rounding the crate out into a general evaluation library.

use crate::TrafficPattern;
use rand::rngs::SmallRng;
use tugal_topology::{Dragonfly, NodeId};

/// Bit-complement: node `i` sends to node `N − 1 − i` (with `N` nodes).
///
/// On Dragonfly this pairs the first group with the last, producing a
/// symmetric moderately adversarial load.
pub struct BitComplement {
    n: u32,
}

impl BitComplement {
    /// Bit-complement over the nodes of `topo`.
    pub fn new(topo: &Dragonfly) -> Self {
        Self {
            n: topo.num_nodes() as u32,
        }
    }
}

impl TrafficPattern for BitComplement {
    fn dest(&self, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        let d = self.n - 1 - src.0;
        (d != src.0).then_some(NodeId(d))
    }

    fn name(&self) -> String {
        "bit-complement".into()
    }
}

/// Group tornado: node `(g_i, s_j, n_k)` sends to
/// `(g_{(i + ⌈g/2⌉ − 1) mod g}, s_j, n_k)` — the classic tornado pattern
/// lifted to the group level (equivalent to `shift(⌈g/2⌉−1, 0)`).
pub struct Tornado {
    inner: crate::Shift,
}

impl Tornado {
    /// Tornado over the groups of `topo`.
    pub fn new(topo: &Dragonfly) -> Self {
        let g = topo.params().g;
        let dg = (g / 2).max(1);
        Self {
            inner: crate::Shift::new(topo, dg, 0),
        }
    }
}

impl TrafficPattern for Tornado {
    fn dest(&self, src: NodeId, rng: &mut SmallRng) -> Option<NodeId> {
        self.inner.dest(src, rng)
    }

    fn name(&self) -> String {
        "tornado".into()
    }

    fn demands(&self) -> Option<Vec<(u32, u32, u32)>> {
        self.inner.demands()
    }
}

/// Switch transpose: switch `s` exchanges traffic with switch
/// `(s · a + s / a)`-style transposition of the (group, local) coordinates
/// (requires `g == a`; falls back to reversing coordinates otherwise).
pub struct Transpose {
    a: u32,
    g: u32,
    p: u32,
}

impl Transpose {
    /// Transpose over the `(group, switch)` coordinate matrix.
    pub fn new(topo: &Dragonfly) -> Self {
        let params = topo.params();
        Self {
            a: params.a,
            g: params.g,
            p: params.p,
        }
    }
}

impl TrafficPattern for Transpose {
    fn dest(&self, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        let s = src.0 / self.p;
        let k = src.0 % self.p;
        let (gi, sj) = (s / self.a, s % self.a);
        // Swap coordinates modulo the respective ranges.
        let gd = sj % self.g;
        let sd = gi % self.a;
        let d = (gd * self.a + sd) * self.p + k;
        (d != src.0).then_some(NodeId(d))
    }

    fn name(&self) -> String {
        "transpose".into()
    }
}

/// Replays an explicit list of `(cycle, src, dst)` events.
///
/// Unlike the rate-driven patterns, a trace decides *when* packets enter:
/// the simulator still draws per-node Bernoulli injection, so the trace is
/// exposed as a per-source FIFO — each call pops the source's next
/// destination.  For exact-cycle replay drive the simulator at rate 1.0
/// and let exhausted sources idle.
pub struct Trace {
    queues: Vec<std::sync::Mutex<std::collections::VecDeque<NodeId>>>,
}

impl Trace {
    /// Builds per-source FIFOs from `(src, dst)` events in order.
    pub fn new(topo: &Dragonfly, events: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut queues: Vec<std::collections::VecDeque<NodeId>> =
            vec![std::collections::VecDeque::new(); topo.num_nodes()];
        for (src, dst) in events {
            queues[src.index()].push_back(dst);
        }
        Self {
            queues: queues.into_iter().map(std::sync::Mutex::new).collect(),
        }
    }

    /// Remaining events for a source.
    pub fn remaining(&self, src: NodeId) -> usize {
        self.queues[src.index()].lock().unwrap().len()
    }
}

impl TrafficPattern for Trace {
    fn dest(&self, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        self.queues[src.index()].lock().unwrap().pop_front()
    }

    fn name(&self) -> String {
        "trace".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tugal_topology::DragonflyParams;

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap()
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let t = topo();
        let p = BitComplement::new(&t);
        let mut rng = SmallRng::seed_from_u64(0);
        for n in 0..t.num_nodes() as u32 {
            if let Some(d) = p.dest(NodeId(n), &mut rng) {
                let back = p.dest(d, &mut rng).unwrap();
                assert_eq!(back, NodeId(n));
            }
        }
    }

    #[test]
    fn tornado_is_half_rotation() {
        let t = topo();
        let p = Tornado::new(&t);
        let mut rng = SmallRng::seed_from_u64(0);
        let d = p.dest(NodeId(0), &mut rng).unwrap();
        assert_eq!(t.group_of_node(d).0, 4); // ceil(9/2) = 4 groups away
        assert!(p.demands().is_some());
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let t = topo();
        let p = Transpose::new(&t);
        let mut rng = SmallRng::seed_from_u64(0);
        // (g=2, s=5, k=1) -> (g=5, s=2, k=1)
        let src = t.node_at(tugal_topology::GroupId(2), 5, 1);
        let d = p.dest(src, &mut rng).unwrap();
        let (gd, sd, kd) = t.node_coords(d);
        assert_eq!((gd.0, sd, kd), (5, 2, 1));
    }

    #[test]
    fn trace_replays_in_order_and_exhausts() {
        let t = topo();
        let trace = Trace::new(
            &t,
            vec![
                (NodeId(0), NodeId(5)),
                (NodeId(0), NodeId(9)),
                (NodeId(3), NodeId(1)),
            ],
        );
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(trace.remaining(NodeId(0)), 2);
        assert_eq!(trace.dest(NodeId(0), &mut rng), Some(NodeId(5)));
        assert_eq!(trace.dest(NodeId(0), &mut rng), Some(NodeId(9)));
        assert_eq!(trace.dest(NodeId(0), &mut rng), None);
        assert_eq!(trace.dest(NodeId(3), &mut rng), Some(NodeId(1)));
        assert_eq!(trace.dest(NodeId(7), &mut rng), None);
    }
}
