//! Traffic pattern tests.

use crate::*;
use proptest::prelude::*;
use std::collections::HashSet;
use tugal_topology::{Dragonfly, DragonflyParams, GroupId};

fn topo() -> Dragonfly {
    Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap()
}

fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[test]
fn uniform_never_self_and_covers_nodes() {
    let t = topo();
    let u = Uniform::new(&t);
    let mut r = rng(1);
    let src = NodeId(5);
    let mut seen = HashSet::new();
    for _ in 0..5000 {
        let d = u.dest(src, &mut r).unwrap();
        assert_ne!(d, src);
        seen.insert(d);
    }
    // With 5000 draws over 287 destinations we should see nearly all.
    assert!(seen.len() > 280, "{}", seen.len());
}

#[test]
fn shift_matches_paper_definition() {
    let t = topo();
    let s = Shift::new(&t, 2, 3);
    // Node (g1, s2, n1) -> (g3, s5, n1).
    let src = t.node_at(GroupId(1), 2, 1);
    let dst = t.node_at(GroupId(3), 5, 1);
    assert_eq!(s.map(src), dst);
    // Wrap-around.
    let src = t.node_at(GroupId(8), 7, 0);
    let dst = t.node_at(GroupId(1), 2, 0);
    assert_eq!(s.map(src), dst);
}

#[test]
fn shift_is_a_permutation() {
    let t = topo();
    for (dg, ds) in [(1, 0), (2, 0), (3, 5), (8, 7)] {
        let s = Shift::new(&t, dg, ds);
        let mut seen = vec![false; t.num_nodes()];
        for n in 0..t.num_nodes() as u32 {
            let d = s.map(NodeId(n));
            assert!(!std::mem::replace(&mut seen[d.index()], true));
        }
    }
}

#[test]
fn adv_pattern_keeps_router_index() {
    // "All nodes connecting to a router i in a group send to all nodes
    // connecting to router i in another group": shift(k, 0).
    let t = topo();
    let s = Shift::new(&t, 2, 0);
    for n in 0..t.num_nodes() as u32 {
        let n = NodeId(n);
        let d = s.map(n);
        assert_eq!(
            t.local_index(t.switch_of_node(n)),
            t.local_index(t.switch_of_node(d))
        );
        assert_eq!((t.group_of_node(n).0 + 2) % 9, t.group_of_node(d).0);
    }
}

#[test]
fn shift_demands_match_map() {
    let t = topo();
    let s = Shift::new(&t, 1, 1);
    let demands = s.demands().unwrap();
    assert_eq!(demands.len(), t.num_switches()); // no self-pairs for dg=1
    for (src_sw, dst_sw, flows) in demands {
        assert_eq!(flows, 4);
        // Check one representative node.
        let n = NodeId(src_sw * 4);
        assert_eq!(s.map(n).0 / 4, dst_sw);
    }
}

#[test]
fn node_permutation_roundtrip_and_partiality() {
    let t = topo();
    let p = NodePermutation::random(&t, 7);
    let mut r = rng(0);
    let mut targets = HashSet::new();
    let mut idle = 0;
    for n in 0..t.num_nodes() as u32 {
        match p.dest(NodeId(n), &mut r) {
            Some(d) => {
                assert!(targets.insert(d), "duplicate destination {d:?}");
            }
            None => idle += 1,
        }
    }
    // Fixed points are idle; a random permutation of 288 has about one.
    assert!(idle <= 5);
}

#[test]
#[should_panic(expected = "not a permutation")]
fn node_permutation_rejects_bad_mapping() {
    let _ = NodePermutation::from_vec(vec![NodeId(0), NodeId(0)]);
}

#[test]
fn mixed_respects_percentages() {
    let t = topo();
    let shift = Shift::new(&t, 1, 0);
    let m = Mixed::new(&t, 25, shift.clone(), 3);
    assert_eq!(m.name(), "MIXED(25,75)");
    let mut r = rng(5);
    let mut adversarial = 0;
    for n in 0..t.num_nodes() as u32 {
        let n = NodeId(n);
        // Adversarial nodes always produce the shift target; uniform nodes
        // almost never match it on a single draw.
        let d = m.dest(n, &mut r).unwrap();
        if d == shift.map(n) {
            adversarial += 1;
        }
    }
    // 75% of 288 = 216 adversarial (few uniform draws may coincide).
    assert!((214..=224).contains(&adversarial), "{adversarial}");
}

#[test]
fn tmixed_mixes_in_time() {
    let t = topo();
    let shift = Shift::new(&t, 1, 0);
    let m = TMixed::new(&t, 50, shift.clone());
    assert_eq!(m.name(), "TMIXED(50,50)");
    let mut r = rng(8);
    let src = NodeId(0);
    let hits = (0..2000)
        .filter(|_| m.dest(src, &mut r).unwrap() == shift.map(src))
        .count();
    assert!((900..1100).contains(&hits), "{hits}");
}

#[test]
fn type_1_set_size_and_coverage() {
    let t = topo();
    let set = type_1_set(&t);
    assert_eq!(set.len(), 8 * 8); // (g-1) * a
    let mut combos = HashSet::new();
    for s in &set {
        assert!(s.dg >= 1);
        combos.insert((s.dg, s.ds));
    }
    assert_eq!(combos.len(), 64);
}

#[test]
fn type_2_group_map_is_derangement() {
    let t = topo();
    for p in type_2_set(&t, 20, 99) {
        for (i, &d) in p.group_map().iter().enumerate() {
            assert_ne!(i as u32, d, "fixed point in group permutation");
        }
        // Group map is a permutation.
        let set: HashSet<_> = p.group_map().iter().collect();
        assert_eq!(set.len(), 9);
    }
}

#[test]
fn type_2_is_node_permutation_preserving_k() {
    let t = topo();
    let p = GroupPermutation::random(&t, 3);
    let mut r = rng(0);
    let mut seen = vec![false; t.num_nodes()];
    for n in 0..t.num_nodes() as u32 {
        let n = NodeId(n);
        let d = p.dest(n, &mut r).unwrap();
        assert!(!std::mem::replace(&mut seen[d.index()], true));
        let (_, _, k_src) = t.node_coords(n);
        let (_, _, k_dst) = t.node_coords(d);
        assert_eq!(k_src, k_dst);
        assert_ne!(t.group_of_node(n), t.group_of_node(d));
    }
    assert!(seen.iter().all(|&x| x));
}

#[test]
fn type_2_demands_are_switch_level_one_to_one() {
    let t = topo();
    let p = GroupPermutation::random(&t, 4);
    let d = p.demands().unwrap();
    assert_eq!(d.len(), t.num_switches());
    let srcs: HashSet<_> = d.iter().map(|x| x.0).collect();
    let dsts: HashSet<_> = d.iter().map(|x| x.1).collect();
    assert_eq!(srcs.len(), t.num_switches());
    assert_eq!(dsts.len(), t.num_switches());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_shift_wraps_correctly(dg in 1u32..9, ds in 0u32..8, n in 0u32..288) {
        let t = topo();
        let s = Shift::new(&t, dg, ds);
        let src = NodeId(n);
        let d = s.map(src);
        let (gs, ss, ks) = t.node_coords(src);
        let (gd, sd, kd) = t.node_coords(d);
        prop_assert_eq!(gd.0, (gs.0 + dg) % 9);
        prop_assert_eq!(sd, (ss + ds) % 8);
        prop_assert_eq!(ks, kd);
    }

    #[test]
    fn prop_type2_reproducible(seed in 0u64..500) {
        let t = topo();
        let a = GroupPermutation::random(&t, seed);
        let b = GroupPermutation::random(&t, seed);
        prop_assert_eq!(a.group_map(), b.group_map());
    }
}
