//! # Synthetic traffic patterns for Dragonfly evaluation
//!
//! Implements every pattern the paper uses:
//!
//! * **UR** — uniform random traffic (§4.1.3),
//! * **ADV / shift(Δg, Δs)** — adversarial shift: node `(g_i, s_j, n_k)`
//!   sends to `(g_{i+Δg mod g}, s_{j+Δs mod a}, n_k)` (§3.3.1); the paper's
//!   "ADV" is `shift(k, 0)`,
//! * **random node permutation** — each node sends to / receives from at
//!   most one peer,
//! * **MIXED(UR%, ADV%)** — a fixed random UR% of nodes send uniform
//!   traffic, the rest adversarial (space-domain mix),
//! * **TMIXED(UR%, ADV%)** — every packet flips a coin (time-domain mix),
//! * **TYPE_1_SET** — all `(g−1)·a` shift patterns used by Algorithm 1,
//! * **TYPE_2_SET** — random group-level permutations refined by per-pair
//!   switch-level permutations (§3.3.1).
//!
//! A pattern is queried per packet through [`TrafficPattern::dest`]: given
//! the source node it returns the destination node (or `None` when the
//! source is idle in this pattern, e.g. unmatched nodes of a partial
//! permutation).  Deterministic patterns ignore the RNG; randomized ones
//! (UR, TMIXED) draw from it, so simulation replications are reproducible
//! from their seeds.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;
use tugal_topology::{Dragonfly, DragonflyParams, NodeId};

/// A traffic pattern: maps a source node to a destination per packet.
pub trait TrafficPattern: Send + Sync {
    /// Destination for the next packet of `src`, or `None` if `src` does not
    /// transmit under this pattern.
    fn dest(&self, src: NodeId, rng: &mut SmallRng) -> Option<NodeId>;

    /// Short human-readable name used in reports.
    fn name(&self) -> String;

    /// The switch-level demand matrix of the pattern, when it is
    /// deterministic: `(src switch, dst switch, node flows)` triples.
    ///
    /// Used by the LP throughput model.  Randomized patterns (UR, TMIXED)
    /// return `None` and are evaluated by simulation only, matching the
    /// paper (the model is only applied to adversarial patterns).
    fn demands(&self) -> Option<Vec<(u32, u32, u32)>> {
        None
    }
}

/// Uniform random traffic: every other node is an equally likely
/// destination.
pub struct Uniform {
    num_nodes: u32,
}

impl Uniform {
    /// Uniform traffic over the nodes of `topo`.
    pub fn new(topo: &Dragonfly) -> Self {
        Self {
            num_nodes: topo.num_nodes() as u32,
        }
    }
}

impl TrafficPattern for Uniform {
    fn dest(&self, src: NodeId, rng: &mut SmallRng) -> Option<NodeId> {
        loop {
            let d = NodeId(rng.gen_range(0..self.num_nodes));
            if d != src {
                return Some(d);
            }
        }
    }

    fn name(&self) -> String {
        "UR".into()
    }
}

/// Adversarial shift pattern `shift(Δg, Δs)`.
///
/// Node `(g_i, s_j, n_k)` sends to `(g_{(i+Δg) mod g}, s_{(j+Δs) mod a},
/// n_k)`.  All traffic of a group targets a single other group, saturating
/// the few direct global links between the two — the most demanding traffic
/// on any Dragonfly (§3.1).
#[derive(Clone)]
pub struct Shift {
    params: DragonflyParams,
    /// Group shift Δg (`1 ..= g-1` for a cross-group pattern).
    pub dg: u32,
    /// Switch shift Δs (`0 ..= a-1`).
    pub ds: u32,
}

impl Shift {
    /// Creates `shift(dg, ds)` on the given topology.
    pub fn new(topo: &Dragonfly, dg: u32, ds: u32) -> Self {
        let params = topo.params();
        assert!(dg < params.g && ds < params.a, "shift out of range");
        Self { params, dg, ds }
    }

    /// Destination node as a pure function of the source coordinates.
    pub fn map(&self, src: NodeId) -> NodeId {
        let p = self.params;
        let s = src.0 / p.p;
        let k = src.0 % p.p;
        let (gi, sj) = (s / p.a, s % p.a);
        let gd = (gi + self.dg) % p.g;
        let sd = (sj + self.ds) % p.a;
        NodeId((gd * p.a + sd) * p.p + k)
    }
}

impl TrafficPattern for Shift {
    fn dest(&self, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        Some(self.map(src))
    }

    fn name(&self) -> String {
        format!("shift({},{})", self.dg, self.ds)
    }

    fn demands(&self) -> Option<Vec<(u32, u32, u32)>> {
        let p = self.params;
        let n_sw = p.num_switches() as u32;
        let mut out = Vec::with_capacity(n_sw as usize);
        for s in 0..n_sw {
            let (gi, sj) = (s / p.a, s % p.a);
            let gd = (gi + self.dg) % p.g;
            let sd = (sj + self.ds) % p.a;
            let d = gd * p.a + sd;
            if d != s {
                out.push((s, d, p.p));
            }
        }
        Some(out)
    }
}

/// A fixed node-level permutation: node `i` sends to `perm[i]`.
pub struct NodePermutation {
    perm: Vec<NodeId>,
}

impl NodePermutation {
    /// Random permutation over all nodes (self-loops are sent nowhere).
    pub fn random(topo: &Dragonfly, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut perm: Vec<NodeId> = (0..topo.num_nodes() as u32).map(NodeId).collect();
        perm.shuffle(&mut rng);
        Self { perm }
    }

    /// Wraps an explicit mapping.
    ///
    /// # Panics
    /// If `perm` is not a permutation of `0..len`.
    pub fn from_vec(perm: Vec<NodeId>) -> Self {
        let mut seen = vec![false; perm.len()];
        for d in &perm {
            assert!(
                !std::mem::replace(&mut seen[d.index()], true),
                "not a permutation"
            );
        }
        Self { perm }
    }

    /// The underlying mapping.
    pub fn mapping(&self) -> &[NodeId] {
        &self.perm
    }
}

impl TrafficPattern for NodePermutation {
    fn dest(&self, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        let d = self.perm[src.index()];
        (d != src).then_some(d)
    }

    fn name(&self) -> String {
        "permutation".into()
    }
}

/// Space-domain mix `MIXED(UR%, ADV%)`: a fixed random subset of nodes
/// sends uniform traffic, the rest follows an adversarial shift.
pub struct Mixed {
    uniform: Uniform,
    shift: Shift,
    is_uniform: Vec<bool>,
    ur_percent: u32,
}

impl Mixed {
    /// `ur_percent`% of nodes (selected with `seed`) are uniform; the rest
    /// run `shift`.
    pub fn new(topo: &Dragonfly, ur_percent: u32, shift: Shift, seed: u64) -> Self {
        assert!(ur_percent <= 100);
        let n = topo.num_nodes();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let cut = n * ur_percent as usize / 100;
        let mut is_uniform = vec![false; n];
        for &i in &idx[..cut] {
            is_uniform[i] = true;
        }
        Self {
            uniform: Uniform::new(topo),
            shift,
            is_uniform,
            ur_percent,
        }
    }
}

impl TrafficPattern for Mixed {
    fn dest(&self, src: NodeId, rng: &mut SmallRng) -> Option<NodeId> {
        if self.is_uniform[src.index()] {
            self.uniform.dest(src, rng)
        } else {
            self.shift.dest(src, rng)
        }
    }

    fn name(&self) -> String {
        format!("MIXED({},{})", self.ur_percent, 100 - self.ur_percent)
    }
}

/// Time-domain mix `TMIXED(UR%, ADV%)`: each packet is uniform with
/// probability UR% and adversarial otherwise.
pub struct TMixed {
    uniform: Uniform,
    shift: Shift,
    ur_prob: f64,
    ur_percent: u32,
}

impl TMixed {
    /// Every packet is uniform with probability `ur_percent`%.
    pub fn new(topo: &Dragonfly, ur_percent: u32, shift: Shift) -> Self {
        assert!(ur_percent <= 100);
        Self {
            uniform: Uniform::new(topo),
            shift,
            ur_prob: ur_percent as f64 / 100.0,
            ur_percent,
        }
    }
}

impl TrafficPattern for TMixed {
    fn dest(&self, src: NodeId, rng: &mut SmallRng) -> Option<NodeId> {
        if rng.gen_bool(self.ur_prob) {
            self.uniform.dest(src, rng)
        } else {
            self.shift.dest(src, rng)
        }
    }

    fn name(&self) -> String {
        format!("TMIXED({},{})", self.ur_percent, 100 - self.ur_percent)
    }
}

/// A TYPE_2 adversarial pattern (§3.3.1): a random group-level permutation
/// with no fixed points, refined by an independent random switch-level
/// permutation for every (source group → destination group) edge; node `k`
/// of a switch sends to node `k` of the matched switch.
pub struct GroupPermutation {
    params: DragonflyParams,
    /// `group_map[i]` = destination group of group `i`.
    group_map: Vec<u32>,
    /// `switch_map[i][j]` = destination switch local index for switch `j`
    /// of group `i`.
    switch_map: Vec<Vec<u32>>,
    seed: u64,
}

impl GroupPermutation {
    /// Generates a TYPE_2 pattern from a seed.
    pub fn random(topo: &Dragonfly, seed: u64) -> Self {
        let params = topo.params();
        let g = params.g as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        // Derangement at the group level: adversarial patterns keep all
        // traffic inter-group.  Rejection sampling terminates quickly
        // (acceptance -> 1/e).
        let mut group_map: Vec<u32> = (0..g as u32).collect();
        loop {
            group_map.shuffle(&mut rng);
            if group_map.iter().enumerate().all(|(i, &d)| i as u32 != d) {
                break;
            }
        }
        let switch_map = (0..g)
            .map(|_| {
                let mut m: Vec<u32> = (0..params.a).collect();
                m.shuffle(&mut rng);
                m
            })
            .collect();
        Self {
            params,
            group_map,
            switch_map,
            seed,
        }
    }

    /// The group-level permutation.
    pub fn group_map(&self) -> &[u32] {
        &self.group_map
    }
}

impl TrafficPattern for GroupPermutation {
    fn dest(&self, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        let p = self.params;
        let s = src.0 / p.p;
        let k = src.0 % p.p;
        let (gi, sj) = (s / p.a, s % p.a);
        let gd = self.group_map[gi as usize];
        let sd = self.switch_map[gi as usize][sj as usize];
        Some(NodeId((gd * p.a + sd) * p.p + k))
    }

    fn name(&self) -> String {
        format!("type2(seed={})", self.seed)
    }

    fn demands(&self) -> Option<Vec<(u32, u32, u32)>> {
        let p = self.params;
        let mut out = Vec::with_capacity(p.num_switches());
        for s in 0..p.num_switches() as u32 {
            let (gi, sj) = (s / p.a, s % p.a);
            let gd = self.group_map[gi as usize];
            let sd = self.switch_map[gi as usize][sj as usize];
            out.push((s, gd * p.a + sd, p.p));
        }
        Some(out)
    }
}

/// The `TYPE_1_SET` of Algorithm 1: `shift(Δg, Δs)` for all `Δg ∈ 1..g` and
/// `Δs ∈ 0..a` — `(g−1)·a` patterns.
pub fn type_1_set(topo: &Dragonfly) -> Vec<Shift> {
    let p = topo.params();
    let mut out = Vec::with_capacity(((p.g - 1) * p.a) as usize);
    for dg in 1..p.g {
        for ds in 0..p.a {
            out.push(Shift::new(topo, dg, ds));
        }
    }
    out
}

/// The `TYPE_2_SET` of Algorithm 1: `count` random group/switch permutation
/// patterns (the paper uses 20).
pub fn type_2_set(topo: &Dragonfly, count: usize, seed: u64) -> Vec<GroupPermutation> {
    (0..count as u64)
        .map(|i| GroupPermutation::random(topo, seed.wrapping_add(i)))
        .collect()
}

/// Convenience: the patterns Figure 6–9 use, by name, for harness code.
pub fn adversarial(topo: &Arc<Dragonfly>, dg: u32) -> Shift {
    Shift::new(topo, dg, 0)
}

impl fmt::Debug for GroupPermutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GroupPermutation(seed={}, map={:?})",
            self.seed, self.group_map
        )
    }
}

mod extra;

pub use extra::{BitComplement, Tornado, Trace, Transpose};

#[cfg(test)]
mod tests;
