//! Structural properties of the traffic patterns, checked across a grid
//! of valid `dfly(p,a,h,g)` shapes (the unit tests in `src/tests.rs` pin
//! exact values on the paper's reference topology; these tests pin the
//! *laws* — bijectivity, coordinate arithmetic, mix membership — on many
//! shapes, balanced and not).
//!
//! Everything is seeded: a failure reproduces byte-for-byte.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use tugal_topology::{Dragonfly, DragonflyParams, NodeId};
use tugal_traffic::{
    type_1_set, GroupPermutation, Mixed, NodePermutation, Shift, TMixed, TrafficPattern,
};

/// A spread of valid shapes: the tiny golden topology, the paper's
/// reference, and several unbalanced ones (`a ≠ 2p`, `a ≠ 2h`, uneven
/// `p`), all satisfying `(a·h) % (g−1) == 0`.
fn shapes() -> Vec<Arc<Dragonfly>> {
    [
        (1, 2, 1, 3),
        (2, 4, 2, 5),
        (1, 3, 2, 4),
        (3, 2, 2, 5),
        (2, 4, 2, 9),
        (3, 6, 3, 7),
        (4, 8, 4, 9),
    ]
    .into_iter()
    .map(|(p, a, h, g)| Arc::new(Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap()))
    .collect()
}

fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Collects `dest` over every source once and asserts no destination is
/// hit twice; returns how many sources were idle.
fn assert_injective(topo: &Dragonfly, pat: &dyn TrafficPattern, seed: u64) -> usize {
    let mut r = rng(seed);
    let mut hit = vec![false; topo.num_nodes()];
    let mut idle = 0;
    for n in 0..topo.num_nodes() as u32 {
        match pat.dest(NodeId(n), &mut r) {
            Some(d) => {
                assert_ne!(d, NodeId(n), "{} sent to itself under {}", n, pat.name());
                assert!(
                    !std::mem::replace(&mut hit[d.index()], true),
                    "duplicate destination {d:?} under {}",
                    pat.name()
                );
            }
            None => idle += 1,
        }
    }
    idle
}

/// Every member of the permutation family is injective on every shape;
/// the total ones (cross-group shifts, TYPE_2) are full bijections.
#[test]
fn permutation_family_is_bijective_on_all_shapes() {
    for topo in shapes() {
        let p = topo.params();
        // All cross-group shifts (the TYPE_1 set) are derangements of the
        // node set: zero idle sources.
        for s in type_1_set(&topo) {
            assert_eq!(assert_injective(&topo, &s, 1), 0, "{} on {p}", s.name());
        }
        // Intra-group shifts (dg = 0, ds ≥ 1) are derangements too: the
        // switch index always moves, so no node maps to itself.
        for ds in 1..p.a {
            let s = Shift::new(&topo, 0, ds);
            assert_eq!(assert_injective(&topo, &s, 1), 0, "{} on {p}", s.name());
        }
        // TYPE_2: node-level bijection (pinned stronger in src/tests.rs
        // for one shape; here: every shape, several seeds).
        for seed in [0, 3, 7] {
            let g = GroupPermutation::random(&topo, seed);
            assert_eq!(assert_injective(&topo, &g, 2), 0, "{} on {p}", g.name());
        }
        // Random node permutations are injective with only fixed points
        // idle.
        for seed in [0, 11] {
            let perm = NodePermutation::random(&topo, seed);
            let idle = assert_injective(&topo, &perm, 3);
            let fixed = perm
                .mapping()
                .iter()
                .enumerate()
                .filter(|(i, d)| *i == d.index())
                .count();
            assert_eq!(idle, fixed, "idle sources ≠ fixed points on {p}");
        }
    }
}

/// `shift(Δg, Δs)` is exactly the coordinate map of §3.3.1: group and
/// switch indices shift modulo their ranges, the terminal index rides
/// along — checked via `node_coords` on every node of every shape.
#[test]
fn shift_wraps_coordinates_on_all_shapes() {
    for topo in shapes() {
        let p = topo.params();
        for dg in 0..p.g {
            for ds in 0..p.a {
                let s = Shift::new(&topo, dg, ds);
                for n in 0..topo.num_nodes() as u32 {
                    let src = NodeId(n);
                    let (gs, ss, ks) = topo.node_coords(src);
                    let (gd, sd, kd) = topo.node_coords(s.map(src));
                    assert_eq!(gd.0, (gs.0 + dg) % p.g, "group wrap on {p}");
                    assert_eq!(sd, (ss + ds) % p.a, "switch wrap on {p}");
                    assert_eq!(kd, ks, "terminal index changed on {p}");
                }
            }
        }
    }
}

/// MIXED assigns each node to one component *permanently*: over repeated
/// draws a node either always produces the shift target (adversarial
/// member) or draws uniform destinations — and the split is exactly the
/// configured percentage of nodes.
#[test]
fn mixed_membership_is_fixed_and_exact() {
    for topo in shapes() {
        let p = topo.params();
        if topo.num_nodes() < 4 {
            continue; // percentages are degenerate on toy shapes
        }
        for ur in [0, 25, 50, 100] {
            let shift = Shift::new(&topo, 1, 0);
            let m = Mixed::new(&topo, ur, shift.clone(), 42);
            let mut r = rng(9);
            let mut uniform_members = 0;
            for n in 0..topo.num_nodes() as u32 {
                let src = NodeId(n);
                let target = shift.map(src);
                // 32 draws: an adversarial member matches the shift target
                // every time; a uniform member deviates almost surely (and
                // deterministically, under this seed).
                let all_shift = (0..32).all(|_| m.dest(src, &mut r).unwrap() == target);
                if !all_shift {
                    uniform_members += 1;
                }
            }
            assert_eq!(
                uniform_members,
                topo.num_nodes() * ur as usize / 100,
                "MIXED({ur},..) membership split on {p}"
            );
        }
    }
}

/// TMIXED mixes in *time*: the same source produces both components
/// across draws (at 50/50), and the endpoints collapse to pure shift /
/// pure uniform.
#[test]
fn tmixed_membership_is_per_packet() {
    for topo in shapes() {
        if topo.num_nodes() < 8 {
            continue;
        }
        let shift = Shift::new(&topo, 1, 0);
        let src = NodeId(0);
        let target = shift.map(src);

        // ur = 0: every packet is adversarial.
        let m = TMixed::new(&topo, 0, shift.clone());
        let mut r = rng(5);
        assert!((0..200).all(|_| m.dest(src, &mut r).unwrap() == target));

        // ur = 50: both components occur for a single source.
        let m = TMixed::new(&topo, 50, shift.clone());
        let mut r = rng(5);
        let hits = (0..400)
            .filter(|_| m.dest(src, &mut r).unwrap() == target)
            .count();
        assert!(
            (100..300).contains(&hits),
            "TMIXED(50,50) produced {hits}/400 shift packets on {}",
            topo.params()
        );

        // Every destination, from either component, is a real node and
        // never the source itself.
        let mut r = rng(6);
        for _ in 0..200 {
            let d = m.dest(src, &mut r).unwrap();
            assert!(d.index() < topo.num_nodes());
            assert_ne!(d, src);
        }
    }
}

/// The TYPE_1 set enumerates each `(Δg, Δs)` exactly once and every
/// member keeps traffic strictly inter-group.
#[test]
fn type_1_set_is_complete_and_cross_group() {
    for topo in shapes() {
        let p = topo.params();
        let set = type_1_set(&topo);
        assert_eq!(set.len(), ((p.g - 1) * p.a) as usize, "size on {p}");
        let mut seen = std::collections::HashSet::new();
        for s in &set {
            assert!(seen.insert((s.dg, s.ds)), "duplicate member on {p}");
            assert!(s.dg >= 1);
            for n in (0..topo.num_nodes() as u32).map(NodeId) {
                assert_ne!(
                    topo.group_of_node(n),
                    topo.group_of_node(s.map(n)),
                    "intra-group traffic in TYPE_1 member {} on {p}",
                    s.name()
                );
            }
        }
    }
}
