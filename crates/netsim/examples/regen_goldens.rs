//! Regenerates the golden-fixture strings in `tests/common/cases.rs`.
//!
//! Prints one line per fixture case (`CASE` / `FAULT` followed by the
//! case key and the `Debug` rendering of its `SimResult`).  Run after a
//! *deliberate* behavior change — an RNG-stream restructure, a phase-order
//! fix — and splice the printed strings into the fixture tables:
//!
//! ```text
//! cargo run --release -p tugal-netsim --example regen_goldens
//! ```
//!
//! The shard-parity suite (`tests/shard_parity.rs`) asserts that every
//! valid shard count reproduces these same strings, so regenerating from a
//! sequential run is sufficient for all fixtures.
#![allow(unused_imports, dead_code)]

include!("../tests/common/cases.rs");

fn main() {
    for (routing, adversarial, rate, _) in CASES {
        let r = run(routing, adversarial, 7, rate);
        println!("CASE\t{routing:?}\t{adversarial}\t{rate}\t{r:?}");
    }
    for (scenario, adversarial, rate, _) in FAULT_CASES {
        let r = simulator(RoutingAlgorithm::UgalL, adversarial, 7)
            .with_faults(schedule_of(scenario))
            .run(rate);
        println!("FAULT\t{scenario}\t{adversarial}\t{rate}\t{r:?}");
    }
    for (spec, lag, routing, adversarial, rate, _) in ZOO_CASES {
        let r = simulator_zoo(spec, lag, routing, adversarial, 7, 1).run(rate);
        println!("ZOO\t{spec}\t{lag}\t{routing:?}\t{adversarial}\t{rate}\t{r:?}");
    }
}
