//! Simulator configuration (Table 3 of the paper).

use tugal_routing::VcScheme;

/// Routing algorithm run by every router (§2.2 / §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingAlgorithm {
    /// Minimal routing only.
    Min,
    /// Valiant load balancing only (always the VLB candidate).
    Vlb,
    /// UGAL with local information: compares the source router's output
    /// queue for the two candidates, each weighted by path length.
    UgalL,
    /// UGAL with global information: compares total queue occupancy along
    /// the two candidate paths (an idealized scheme — the "genie" of the
    /// paper).
    UgalG,
    /// Progressive adaptive routing: UGAL-L whose MIN decision may be
    /// revised once at the second router within the source group.
    Par,
}

impl RoutingAlgorithm {
    /// True for PAR, which needs one extra VC (Table 3).
    pub fn progressive(self) -> bool {
        matches!(self, RoutingAlgorithm::Par)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            RoutingAlgorithm::Min => "MIN",
            RoutingAlgorithm::Vlb => "VLB",
            RoutingAlgorithm::UgalL => "UGAL-L",
            RoutingAlgorithm::UgalG => "UGAL-G",
            RoutingAlgorithm::Par => "PAR",
        }
    }
}

/// Network and measurement parameters.
///
/// [`Config::paper_default`] reproduces Table 3; [`Config::quick`] shrinks
/// the measurement windows for CI-speed runs (same network parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Virtual channels per channel.  Use
    /// [`tugal_routing::required_vcs`] for the scheme/routing at hand; more
    /// VCs than required is allowed (Figure 18 studies this).
    pub num_vcs: u8,
    /// Flit buffer depth per (channel, VC) — credits per VC.
    pub buf_size: u16,
    /// Local (intra-group) channel latency in cycles.
    pub local_latency: u32,
    /// Global (inter-group) channel latency in cycles.
    pub global_latency: u32,
    /// Injection/ejection channel latency in cycles.
    pub terminal_latency: u32,
    /// Router-internal speedup: switch-allocation rounds per cycle.
    pub speedup: u32,
    /// VC allocation scheme (deadlock freedom).
    pub vc_scheme: VcScheme,
    /// Warmup sample windows before measurement starts.
    pub warmup_windows: u32,
    /// Sample window length in cycles.
    pub window: u32,
    /// A run whose measured average latency exceeds this is saturated.
    pub sat_latency: f64,
    /// UGAL threshold `T` biasing the decision toward MIN (§2.2; the paper
    /// evaluates with `T = 0`).
    ///
    /// `i64::MAX` is a documented *force-MIN sentinel*: the UGAL-L/G (and
    /// PAR) decision short-circuits to the MIN candidate **without drawing
    /// the VLB candidate**, so such a run consumes the RNG exactly like
    /// [`RoutingAlgorithm::Min`] and is flit-for-flit identical to it
    /// (pinned by `tests/differential.rs`).  A merely huge *finite*
    /// threshold cannot achieve this — it still draws (and thus consumes
    /// randomness for) the VLB candidate, and `q_vlb + T` would overflow.
    pub ugal_threshold: i64,
    /// VLB candidates drawn per routing decision (the paper and the
    /// original UGAL use 1; Singh's thesis studies more).  The candidate
    /// with the smallest queue metric competes against the MIN candidate.
    pub vlb_candidates: u8,
    /// RNG seed (traffic, candidate draws, arbitration tie-breaks).
    pub seed: u64,
}

impl Config {
    /// Table 3 defaults: 4 VCs (callers bump to 5 for PAR via
    /// [`Config::for_routing`]), 32-flit buffers, 10/15-cycle link
    /// latencies, speedup 2, 10 000-cycle windows with 3 warmup windows.
    pub fn paper_default() -> Self {
        Config {
            num_vcs: 4,
            buf_size: 32,
            local_latency: 10,
            global_latency: 15,
            terminal_latency: 1,
            speedup: 2,
            vc_scheme: VcScheme::Compact,
            warmup_windows: 3,
            window: 10_000,
            sat_latency: 500.0,
            ugal_threshold: 0,
            vlb_candidates: 1,
            seed: 0xDF17,
        }
    }

    /// CI-speed settings: identical network parameters, shorter windows
    /// (1 warmup window of 2 000 cycles, 2 000-cycle measurement).
    pub fn quick() -> Self {
        Config {
            warmup_windows: 1,
            window: 2_000,
            ..Self::paper_default()
        }
    }

    /// Adjusts the VC count to the minimum required by `routing` under the
    /// configured VC scheme (5 for PAR, 4 otherwise with the compact
    /// scheme — exactly Table 3).
    pub fn for_routing(mut self, routing: RoutingAlgorithm) -> Self {
        self.num_vcs = self.num_vcs.max(tugal_routing::required_vcs(
            self.vc_scheme,
            routing.progressive(),
        ));
        self
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        (self.warmup_windows as u64 + 1) * self.window as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table3() {
        let c = Config::paper_default();
        assert_eq!(c.num_vcs, 4);
        assert_eq!(c.buf_size, 32);
        assert_eq!(c.local_latency, 10);
        assert_eq!(c.global_latency, 15);
        assert_eq!(c.speedup, 2);
        assert_eq!(c.window, 10_000);
        assert_eq!(c.warmup_windows, 3);
        assert_eq!(c.sat_latency, 500.0);
        assert_eq!(c.ugal_threshold, 0);
        assert_eq!(c.vlb_candidates, 1);
        assert_eq!(c.total_cycles(), 40_000);
    }

    #[test]
    fn for_routing_bumps_vcs_for_par() {
        let c = Config::paper_default().for_routing(RoutingAlgorithm::Par);
        assert_eq!(c.num_vcs, 5);
        let c = Config::paper_default().for_routing(RoutingAlgorithm::UgalG);
        assert_eq!(c.num_vcs, 4);
        // Explicitly oversized VC counts are preserved (Figure 18).
        let mut big = Config::paper_default();
        big.num_vcs = 6;
        assert_eq!(big.for_routing(RoutingAlgorithm::UgalL).num_vcs, 6);
    }

    #[test]
    fn routing_names() {
        assert_eq!(RoutingAlgorithm::UgalL.name(), "UGAL-L");
        assert!(RoutingAlgorithm::Par.progressive());
        assert!(!RoutingAlgorithm::UgalG.progressive());
    }
}
