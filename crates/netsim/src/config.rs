//! Simulator configuration (Table 3 of the paper).

use crate::ckpt::CkptConfig;
use crate::engine::WatchdogConfig;
use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use tugal_routing::VcScheme;

/// Routing algorithm run by every router (§2.2 / §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingAlgorithm {
    /// Minimal routing only.
    Min,
    /// Valiant load balancing only (always the VLB candidate).
    Vlb,
    /// UGAL with local information: compares the source router's output
    /// queue for the two candidates, each weighted by path length.
    UgalL,
    /// UGAL with global information: compares total queue occupancy along
    /// the two candidate paths (an idealized scheme — the "genie" of the
    /// paper).
    UgalG,
    /// Progressive adaptive routing: UGAL-L whose MIN decision may be
    /// revised once at the second router within the source group.
    Par,
}

impl RoutingAlgorithm {
    /// True for PAR, which needs one extra VC (Table 3).
    pub fn progressive(self) -> bool {
        matches!(self, RoutingAlgorithm::Par)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            RoutingAlgorithm::Min => "MIN",
            RoutingAlgorithm::Vlb => "VLB",
            RoutingAlgorithm::UgalL => "UGAL-L",
            RoutingAlgorithm::UgalG => "UGAL-G",
            RoutingAlgorithm::Par => "PAR",
        }
    }
}

/// Network and measurement parameters.
///
/// [`Config::paper_default`] reproduces Table 3; [`Config::quick`] shrinks
/// the measurement windows for CI-speed runs (same network parameters).
#[derive(Clone, PartialEq, Serialize)]
pub struct Config {
    /// Virtual channels per channel.  Use
    /// [`tugal_routing::required_vcs`] for the scheme/routing at hand; more
    /// VCs than required is allowed (Figure 18 studies this).
    pub num_vcs: u8,
    /// Flit buffer depth per (channel, VC) — credits per VC.
    pub buf_size: u16,
    /// Local (intra-group) channel latency in cycles.
    pub local_latency: u32,
    /// Global (inter-group) channel latency in cycles.
    pub global_latency: u32,
    /// Injection/ejection channel latency in cycles.
    pub terminal_latency: u32,
    /// Router-internal speedup: switch-allocation rounds per cycle.
    pub speedup: u32,
    /// VC allocation scheme (deadlock freedom).
    pub vc_scheme: VcScheme,
    /// Warmup sample windows before measurement starts.
    pub warmup_windows: u32,
    /// Sample window length in cycles.
    pub window: u32,
    /// A run whose measured average latency exceeds this is saturated.
    pub sat_latency: f64,
    /// UGAL threshold `T` biasing the decision toward MIN (§2.2; the paper
    /// evaluates with `T = 0`).
    ///
    /// `i64::MAX` is a documented *force-MIN sentinel*: the UGAL-L/G (and
    /// PAR) decision short-circuits to the MIN candidate **without drawing
    /// the VLB candidate**, so such a run consumes the RNG exactly like
    /// [`RoutingAlgorithm::Min`] and is flit-for-flit identical to it
    /// (pinned by `tests/differential.rs`).  A merely huge *finite*
    /// threshold cannot achieve this — it still draws (and thus consumes
    /// randomness for) the VLB candidate, and `q_vlb + T` would overflow.
    pub ugal_threshold: i64,
    /// VLB candidates drawn per routing decision (the paper and the
    /// original UGAL use 1; Singh's thesis studies more).  The candidate
    /// with the smallest queue metric competes against the MIN candidate.
    pub vlb_candidates: u8,
    /// RNG seed (traffic, candidate draws, arbitration tie-breaks).
    pub seed: u64,
    /// Shard workers the cycle engine partitions the network across: each
    /// shard owns `groups / shards` consecutive dragonfly groups and the
    /// shards exchange boundary flits/credits through mailboxes inside a
    /// barrier-synced cycle loop.  Must be ≥ 1, at most the group count,
    /// and divide it evenly (checked by [`Config::validate_shards`]).  `1`
    /// (the default) runs the plain sequential loop; any valid count
    /// produces **bit-identical results** — the determinism contract of
    /// the partitioned engine, pinned by `tests/shard_parity.rs`.
    ///
    /// Defaults to `1` when absent from serialized configs, so capsules
    /// and journals written before the field existed replay unchanged
    /// (see the hand-written [`Deserialize`] impl below).
    pub shards: u32,
    /// Opt-in engine watchdog (`None` = off, the default): periodic flit
    /// conservation, forward-progress/livelock detection and cycle/wall
    /// ceilings — see [`WatchdogConfig`].  All its checks are read-only,
    /// so arming it cannot change simulation results; a trip only *stops*
    /// the run early with a [`crate::StallReport`].
    pub watchdog: Option<WatchdogConfig>,
    /// Opt-in mid-simulation checkpointing (`None` = off, the default):
    /// the engine writes a restartable snapshot of the full deterministic
    /// state every [`CkptConfig::every`] cycles, and on startup resumes
    /// from the newest valid checkpoint in [`CkptConfig::dir`].  A
    /// resumed run is **bit-for-bit identical** to an uninterrupted one,
    /// at any valid shard count (pinned by `tests/ckpt.rs`); with `None`
    /// the engine hot path is untouched.
    pub checkpoint: Option<CkptConfig>,
}

// Hand-written so a `None` checkpoint field is omitted entirely: the
// `Debug` rendering of `Config` feeds FNV-1a digests (runner series keys,
// the perf baseline, checkpoint fingerprints), and appending a field to
// the derived output would silently invalidate every existing journal.
impl std::fmt::Debug for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Config");
        d.field("num_vcs", &self.num_vcs)
            .field("buf_size", &self.buf_size)
            .field("local_latency", &self.local_latency)
            .field("global_latency", &self.global_latency)
            .field("terminal_latency", &self.terminal_latency)
            .field("speedup", &self.speedup)
            .field("vc_scheme", &self.vc_scheme)
            .field("warmup_windows", &self.warmup_windows)
            .field("window", &self.window)
            .field("sat_latency", &self.sat_latency)
            .field("ugal_threshold", &self.ugal_threshold)
            .field("vlb_candidates", &self.vlb_candidates)
            .field("seed", &self.seed)
            .field("shards", &self.shards)
            .field("watchdog", &self.watchdog);
        if let Some(ck) = &self.checkpoint {
            d.field("checkpoint", ck);
        }
        d.finish()
    }
}

impl Config {
    /// Table 3 defaults: 4 VCs (callers bump to 5 for PAR via
    /// [`Config::for_routing`]), 32-flit buffers, 10/15-cycle link
    /// latencies, speedup 2, 10 000-cycle windows with 3 warmup windows.
    pub fn paper_default() -> Self {
        Config {
            num_vcs: 4,
            buf_size: 32,
            local_latency: 10,
            global_latency: 15,
            terminal_latency: 1,
            speedup: 2,
            vc_scheme: VcScheme::Compact,
            warmup_windows: 3,
            window: 10_000,
            sat_latency: 500.0,
            ugal_threshold: 0,
            vlb_candidates: 1,
            seed: 0xDF17,
            shards: 1,
            watchdog: None,
            checkpoint: None,
        }
    }

    /// CI-speed settings: identical network parameters, shorter windows
    /// (1 warmup window of 2 000 cycles, 2 000-cycle measurement).
    pub fn quick() -> Self {
        Config {
            warmup_windows: 1,
            window: 2_000,
            ..Self::paper_default()
        }
    }

    /// Adjusts the VC count to the minimum required by `routing` under the
    /// configured VC scheme (5 for PAR, 4 otherwise with the compact
    /// scheme — exactly Table 3).
    pub fn for_routing(mut self, routing: RoutingAlgorithm) -> Self {
        self.num_vcs = self.num_vcs.max(tugal_routing::required_vcs(
            self.vc_scheme,
            routing.progressive(),
        ));
        self
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        (self.warmup_windows as u64 + 1) * self.window as u64
    }

    /// Checks the structural parameters up front, so a malformed config is
    /// rejected before any job is scheduled instead of panicking deep in
    /// the engine.  Deliberately does *not* check routing-specific VC
    /// minimums — those depend on the routing algorithm and are asserted
    /// by [`crate::Simulator::new`] (which the replay machinery exercises
    /// as a reproducible panic).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_vcs == 0 {
            return Err(ConfigError::NoVirtualChannels);
        }
        if self.buf_size == 0 {
            return Err(ConfigError::NoBufferSpace);
        }
        if self.window == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        if self.speedup == 0 {
            return Err(ConfigError::ZeroSpeedup);
        }
        if !(self.sat_latency > 0.0 && self.sat_latency.is_finite()) {
            return Err(ConfigError::BadSaturationLatency(self.sat_latency));
        }
        if self.vlb_candidates == 0 {
            return Err(ConfigError::NoVlbCandidates);
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        Ok(())
    }

    /// Checks `shards` against a concrete topology's group count: a shard
    /// owns a fixed-size contiguous group range, so the count must be
    /// non-zero, at most `groups`, and divide it evenly.  (The
    /// topology-independent checks live in [`Config::validate`]; the
    /// runner calls this per series once the topology is known.)
    pub fn validate_shards(&self, groups: u32) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.shards > groups {
            return Err(ConfigError::ShardsExceedGroups {
                shards: self.shards,
                groups,
            });
        }
        if !groups.is_multiple_of(self.shards) {
            return Err(ConfigError::ShardsDontDivideGroups {
                shards: self.shards,
                groups,
            });
        }
        Ok(())
    }

    /// Applies the `TUGAL_SHARDS` environment override, if set and
    /// parseable; harness binaries route their configs through this so a
    /// CI job (or a user) can turn sharding on without touching code.
    pub fn with_env_shards(mut self) -> Self {
        if let Some(n) = std::env::var("TUGAL_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
        {
            self.shards = n;
        }
        self
    }

    /// Applies the `TUGAL_CKPT` / `TUGAL_CKPT_EVERY` environment override,
    /// if set (see [`CkptConfig::from_env`]); harness binaries route their
    /// configs through this so a CI job (or a user) can turn mid-run
    /// checkpointing on without touching code.
    pub fn with_env_ckpt(mut self) -> Self {
        if let Some(ck) = CkptConfig::from_env() {
            self.checkpoint = Some(ck);
        }
        self
    }
}

// Hand-written so `shards` can default when the field is missing: the
// vendored minimal serde derive has no `#[serde(default)]`, and configs
// serialized before the field existed (journals, replay capsules, the
// perf baseline) must keep deserializing to the same run they described —
// which is exactly the sequential `shards = 1`.
impl Deserialize for Config {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Config {
            num_vcs: Deserialize::from_value(serde::obj_field(v, "num_vcs")?)?,
            buf_size: Deserialize::from_value(serde::obj_field(v, "buf_size")?)?,
            local_latency: Deserialize::from_value(serde::obj_field(v, "local_latency")?)?,
            global_latency: Deserialize::from_value(serde::obj_field(v, "global_latency")?)?,
            terminal_latency: Deserialize::from_value(serde::obj_field(v, "terminal_latency")?)?,
            speedup: Deserialize::from_value(serde::obj_field(v, "speedup")?)?,
            vc_scheme: Deserialize::from_value(serde::obj_field(v, "vc_scheme")?)?,
            warmup_windows: Deserialize::from_value(serde::obj_field(v, "warmup_windows")?)?,
            window: Deserialize::from_value(serde::obj_field(v, "window")?)?,
            sat_latency: Deserialize::from_value(serde::obj_field(v, "sat_latency")?)?,
            ugal_threshold: Deserialize::from_value(serde::obj_field(v, "ugal_threshold")?)?,
            vlb_candidates: Deserialize::from_value(serde::obj_field(v, "vlb_candidates")?)?,
            seed: Deserialize::from_value(serde::obj_field(v, "seed")?)?,
            shards: match serde::obj_field(v, "shards") {
                Ok(s) => Deserialize::from_value(s)?,
                Err(_) => 1,
            },
            watchdog: Deserialize::from_value(serde::obj_field(v, "watchdog")?)?,
            checkpoint: match serde::obj_field(v, "checkpoint") {
                Ok(s) => Deserialize::from_value(s)?,
                Err(_) => None,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table3() {
        let c = Config::paper_default();
        assert_eq!(c.num_vcs, 4);
        assert_eq!(c.buf_size, 32);
        assert_eq!(c.local_latency, 10);
        assert_eq!(c.global_latency, 15);
        assert_eq!(c.speedup, 2);
        assert_eq!(c.window, 10_000);
        assert_eq!(c.warmup_windows, 3);
        assert_eq!(c.sat_latency, 500.0);
        assert_eq!(c.ugal_threshold, 0);
        assert_eq!(c.vlb_candidates, 1);
        assert_eq!(c.total_cycles(), 40_000);
    }

    #[test]
    fn for_routing_bumps_vcs_for_par() {
        let c = Config::paper_default().for_routing(RoutingAlgorithm::Par);
        assert_eq!(c.num_vcs, 5);
        let c = Config::paper_default().for_routing(RoutingAlgorithm::UgalG);
        assert_eq!(c.num_vcs, 4);
        // Explicitly oversized VC counts are preserved (Figure 18).
        let mut big = Config::paper_default();
        big.num_vcs = 6;
        assert_eq!(big.for_routing(RoutingAlgorithm::UgalL).num_vcs, 6);
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        assert!(Config::paper_default().validate().is_ok());
        assert!(Config::quick().validate().is_ok());

        let mut c = Config::quick();
        c.num_vcs = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoVirtualChannels));

        let mut c = Config::quick();
        c.buf_size = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoBufferSpace));

        let mut c = Config::quick();
        c.window = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroWindow));

        let mut c = Config::quick();
        c.speedup = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroSpeedup));

        let mut c = Config::quick();
        c.sat_latency = f64::INFINITY;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadSaturationLatency(_))
        ));
        c.sat_latency = -1.0;
        assert!(c.validate().is_err());

        let mut c = Config::quick();
        c.vlb_candidates = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoVlbCandidates));

        let mut c = Config::quick();
        c.shards = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroShards));
    }

    #[test]
    fn validate_shards_enforces_clean_group_division() {
        let mut c = Config::quick();
        assert!(c.validate_shards(9).is_ok()); // default 1 divides anything

        c.shards = 0;
        assert_eq!(c.validate_shards(9), Err(ConfigError::ZeroShards));

        c.shards = 3;
        assert!(c.validate_shards(9).is_ok());
        c.shards = 9;
        assert!(c.validate_shards(9).is_ok());

        c.shards = 12;
        assert_eq!(
            c.validate_shards(9),
            Err(ConfigError::ShardsExceedGroups {
                shards: 12,
                groups: 9
            })
        );

        c.shards = 4;
        assert_eq!(
            c.validate_shards(9),
            Err(ConfigError::ShardsDontDivideGroups {
                shards: 4,
                groups: 9
            })
        );
        assert!(c.validate_shards(8).is_ok());
    }

    #[test]
    fn shards_field_defaults_to_one_in_old_json() {
        // Configs serialized before the partitioned engine carry no
        // `shards` key; they must deserialize to the sequential path.
        let serde::Value::Object(mut fields) = serde::Serialize::to_value(&Config::quick()) else {
            panic!("Config serializes to an object");
        };
        fields.retain(|(k, _)| k != "shards");
        let back: Config = serde::Deserialize::from_value(&serde::Value::Object(fields)).unwrap();
        assert_eq!(back.shards, 1);
        assert_eq!(back, Config::quick());
    }

    #[test]
    fn config_roundtrips_through_json() {
        let mut c = Config::quick();
        c.watchdog = Some(WatchdogConfig::guard_for(&c));
        c.checkpoint = Some(CkptConfig::new("/tmp/ckpt"));
        let json = serde_json::to_string(&c).unwrap();
        let back: Config = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn checkpoint_field_defaults_to_none_in_old_json() {
        // Configs serialized before checkpointing existed carry no
        // `checkpoint` key; they must deserialize with it off.
        let serde::Value::Object(mut fields) = serde::Serialize::to_value(&Config::quick()) else {
            panic!("Config serializes to an object");
        };
        fields.retain(|(k, _)| k != "checkpoint");
        let back: Config = serde::Deserialize::from_value(&serde::Value::Object(fields)).unwrap();
        assert_eq!(back.checkpoint, None);
        assert_eq!(back, Config::quick());
    }

    #[test]
    fn debug_rendering_is_stable_when_checkpoint_is_off() {
        // The Debug string feeds series-key/perf digests; with
        // checkpointing off it must not mention the field at all, so
        // every pre-existing journal digest still matches.
        let mut c = Config::quick();
        let off = format!("{c:?}");
        assert!(!off.contains("checkpoint"), "{off}");
        assert!(off.contains("watchdog: None"), "{off}");
        c.checkpoint = Some(CkptConfig::new("d"));
        assert!(format!("{c:?}").contains("checkpoint"));
    }

    #[test]
    fn routing_names() {
        assert_eq!(RoutingAlgorithm::UgalL.name(), "UGAL-L");
        assert!(RoutingAlgorithm::Par.progressive());
        assert!(!RoutingAlgorithm::UgalG.progressive());
    }
}
