//! Simulator configuration (Table 3 of the paper).

use crate::engine::WatchdogConfig;
use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use tugal_routing::VcScheme;

/// Routing algorithm run by every router (§2.2 / §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingAlgorithm {
    /// Minimal routing only.
    Min,
    /// Valiant load balancing only (always the VLB candidate).
    Vlb,
    /// UGAL with local information: compares the source router's output
    /// queue for the two candidates, each weighted by path length.
    UgalL,
    /// UGAL with global information: compares total queue occupancy along
    /// the two candidate paths (an idealized scheme — the "genie" of the
    /// paper).
    UgalG,
    /// Progressive adaptive routing: UGAL-L whose MIN decision may be
    /// revised once at the second router within the source group.
    Par,
}

impl RoutingAlgorithm {
    /// True for PAR, which needs one extra VC (Table 3).
    pub fn progressive(self) -> bool {
        matches!(self, RoutingAlgorithm::Par)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            RoutingAlgorithm::Min => "MIN",
            RoutingAlgorithm::Vlb => "VLB",
            RoutingAlgorithm::UgalL => "UGAL-L",
            RoutingAlgorithm::UgalG => "UGAL-G",
            RoutingAlgorithm::Par => "PAR",
        }
    }
}

/// Network and measurement parameters.
///
/// [`Config::paper_default`] reproduces Table 3; [`Config::quick`] shrinks
/// the measurement windows for CI-speed runs (same network parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Virtual channels per channel.  Use
    /// [`tugal_routing::required_vcs`] for the scheme/routing at hand; more
    /// VCs than required is allowed (Figure 18 studies this).
    pub num_vcs: u8,
    /// Flit buffer depth per (channel, VC) — credits per VC.
    pub buf_size: u16,
    /// Local (intra-group) channel latency in cycles.
    pub local_latency: u32,
    /// Global (inter-group) channel latency in cycles.
    pub global_latency: u32,
    /// Injection/ejection channel latency in cycles.
    pub terminal_latency: u32,
    /// Router-internal speedup: switch-allocation rounds per cycle.
    pub speedup: u32,
    /// VC allocation scheme (deadlock freedom).
    pub vc_scheme: VcScheme,
    /// Warmup sample windows before measurement starts.
    pub warmup_windows: u32,
    /// Sample window length in cycles.
    pub window: u32,
    /// A run whose measured average latency exceeds this is saturated.
    pub sat_latency: f64,
    /// UGAL threshold `T` biasing the decision toward MIN (§2.2; the paper
    /// evaluates with `T = 0`).
    ///
    /// `i64::MAX` is a documented *force-MIN sentinel*: the UGAL-L/G (and
    /// PAR) decision short-circuits to the MIN candidate **without drawing
    /// the VLB candidate**, so such a run consumes the RNG exactly like
    /// [`RoutingAlgorithm::Min`] and is flit-for-flit identical to it
    /// (pinned by `tests/differential.rs`).  A merely huge *finite*
    /// threshold cannot achieve this — it still draws (and thus consumes
    /// randomness for) the VLB candidate, and `q_vlb + T` would overflow.
    pub ugal_threshold: i64,
    /// VLB candidates drawn per routing decision (the paper and the
    /// original UGAL use 1; Singh's thesis studies more).  The candidate
    /// with the smallest queue metric competes against the MIN candidate.
    pub vlb_candidates: u8,
    /// RNG seed (traffic, candidate draws, arbitration tie-breaks).
    pub seed: u64,
    /// Opt-in engine watchdog (`None` = off, the default): periodic flit
    /// conservation, forward-progress/livelock detection and cycle/wall
    /// ceilings — see [`WatchdogConfig`].  All its checks are read-only,
    /// so arming it cannot change simulation results; a trip only *stops*
    /// the run early with a [`crate::StallReport`].
    pub watchdog: Option<WatchdogConfig>,
}

impl Config {
    /// Table 3 defaults: 4 VCs (callers bump to 5 for PAR via
    /// [`Config::for_routing`]), 32-flit buffers, 10/15-cycle link
    /// latencies, speedup 2, 10 000-cycle windows with 3 warmup windows.
    pub fn paper_default() -> Self {
        Config {
            num_vcs: 4,
            buf_size: 32,
            local_latency: 10,
            global_latency: 15,
            terminal_latency: 1,
            speedup: 2,
            vc_scheme: VcScheme::Compact,
            warmup_windows: 3,
            window: 10_000,
            sat_latency: 500.0,
            ugal_threshold: 0,
            vlb_candidates: 1,
            seed: 0xDF17,
            watchdog: None,
        }
    }

    /// CI-speed settings: identical network parameters, shorter windows
    /// (1 warmup window of 2 000 cycles, 2 000-cycle measurement).
    pub fn quick() -> Self {
        Config {
            warmup_windows: 1,
            window: 2_000,
            ..Self::paper_default()
        }
    }

    /// Adjusts the VC count to the minimum required by `routing` under the
    /// configured VC scheme (5 for PAR, 4 otherwise with the compact
    /// scheme — exactly Table 3).
    pub fn for_routing(mut self, routing: RoutingAlgorithm) -> Self {
        self.num_vcs = self.num_vcs.max(tugal_routing::required_vcs(
            self.vc_scheme,
            routing.progressive(),
        ));
        self
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        (self.warmup_windows as u64 + 1) * self.window as u64
    }

    /// Checks the structural parameters up front, so a malformed config is
    /// rejected before any job is scheduled instead of panicking deep in
    /// the engine.  Deliberately does *not* check routing-specific VC
    /// minimums — those depend on the routing algorithm and are asserted
    /// by [`crate::Simulator::new`] (which the replay machinery exercises
    /// as a reproducible panic).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_vcs == 0 {
            return Err(ConfigError::NoVirtualChannels);
        }
        if self.buf_size == 0 {
            return Err(ConfigError::NoBufferSpace);
        }
        if self.window == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        if self.speedup == 0 {
            return Err(ConfigError::ZeroSpeedup);
        }
        if !(self.sat_latency > 0.0 && self.sat_latency.is_finite()) {
            return Err(ConfigError::BadSaturationLatency(self.sat_latency));
        }
        if self.vlb_candidates == 0 {
            return Err(ConfigError::NoVlbCandidates);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table3() {
        let c = Config::paper_default();
        assert_eq!(c.num_vcs, 4);
        assert_eq!(c.buf_size, 32);
        assert_eq!(c.local_latency, 10);
        assert_eq!(c.global_latency, 15);
        assert_eq!(c.speedup, 2);
        assert_eq!(c.window, 10_000);
        assert_eq!(c.warmup_windows, 3);
        assert_eq!(c.sat_latency, 500.0);
        assert_eq!(c.ugal_threshold, 0);
        assert_eq!(c.vlb_candidates, 1);
        assert_eq!(c.total_cycles(), 40_000);
    }

    #[test]
    fn for_routing_bumps_vcs_for_par() {
        let c = Config::paper_default().for_routing(RoutingAlgorithm::Par);
        assert_eq!(c.num_vcs, 5);
        let c = Config::paper_default().for_routing(RoutingAlgorithm::UgalG);
        assert_eq!(c.num_vcs, 4);
        // Explicitly oversized VC counts are preserved (Figure 18).
        let mut big = Config::paper_default();
        big.num_vcs = 6;
        assert_eq!(big.for_routing(RoutingAlgorithm::UgalL).num_vcs, 6);
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        assert!(Config::paper_default().validate().is_ok());
        assert!(Config::quick().validate().is_ok());

        let mut c = Config::quick();
        c.num_vcs = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoVirtualChannels));

        let mut c = Config::quick();
        c.buf_size = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoBufferSpace));

        let mut c = Config::quick();
        c.window = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroWindow));

        let mut c = Config::quick();
        c.speedup = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroSpeedup));

        let mut c = Config::quick();
        c.sat_latency = f64::INFINITY;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadSaturationLatency(_))
        ));
        c.sat_latency = -1.0;
        assert!(c.validate().is_err());

        let mut c = Config::quick();
        c.vlb_candidates = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoVlbCandidates));
    }

    #[test]
    fn config_roundtrips_through_json() {
        let mut c = Config::quick();
        c.watchdog = Some(WatchdogConfig::guard_for(&c));
        let json = serde_json::to_string(&c).unwrap();
        let back: Config = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn routing_names() {
        assert_eq!(RoutingAlgorithm::UgalL.name(), "UGAL-L");
        assert!(RoutingAlgorithm::Par.progressive());
        assert!(!RoutingAlgorithm::UgalG.progressive());
    }
}
