//! Runner trace spans: structured JSONL telemetry for experiment batches.
//!
//! A [`TraceSink`] is an append-only JSONL file of [`TraceSpan`] events —
//! one `batch_start`/`batch_end` pair per [`crate::runner::ExperimentRunner`]
//! batch, bracketing one `job_start`/`job_end` pair per job.  Harness
//! binaries open one via `TUGAL_TRACE=<path>` (see
//! `tugal_bench::trace_from_env`), so any sweep can stream progress and
//! outcome telemetry without touching its results: the sink reuses the
//! journal's append discipline (one `write_all` + flush per line behind a
//! mutex, floats as IEEE-754 bit patterns, torn trailing lines tolerated
//! by readers) and writes are entirely outside the engine, so trace-on
//! results are byte-identical to trace-off results (pinned by the CI
//! profile-smoke job).
//!
//! [`validate_line`] checks one JSONL line against the span schema — the
//! line-by-line validator the `tracecheck` bin and CI use.

use crate::engine::{Phase, ProfileReport};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Event type of a span line.
pub const EVENTS: [&str; 6] = [
    "batch_start",
    "job_start",
    "job_end",
    "batch_end",
    "ckpt_write",
    "ckpt_restore",
];

/// Nanoseconds attributed to one named phase (a flattened
/// [`crate::ProfileReport`] entry, summed over shards).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTotal {
    /// Phase name (one of [`crate::Phase::ALL`]'s names).
    pub phase: String,
    /// Nanoseconds attributed to it, summed over shards.
    pub ns: u64,
}

/// One trace event.  A flat record rather than a tagged union so every
/// line carries the same schema: fields irrelevant to an event type are
/// zero/empty (`label` is empty on batch events, `jobs` is zero on job
/// events, and so on).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Event type: one of [`EVENTS`].
    pub ev: String,
    /// Milliseconds since the sink was opened (monotonic).
    pub t_ms: u64,
    /// Series label (job events; empty on batch events).
    pub label: String,
    /// Offered load as IEEE-754 bits (job events).
    pub rate_bits: u64,
    /// Replication seed (job events).
    pub seed: u64,
    /// [`crate::journal::job_digest`] of the job (job events).
    pub digest: u64,
    /// Outcome name (`job_end`: `ok`/`panicked`/`timed-out`/
    /// `watchdog-tripped`; empty otherwise).
    pub outcome: String,
    /// True when the job was replayed from a journal instead of simulated.
    pub resumed: bool,
    /// Job wall-clock in milliseconds as IEEE-754 bits (`job_end`).
    pub elapsed_ms_bits: u64,
    /// Engine shard count of the job's config (job events), or the
    /// batch-wide maximum (batch events).
    pub shards: u64,
    /// Jobs in the batch (batch events).
    pub jobs: u64,
    /// Failed jobs (`batch_end`).
    pub failed: u64,
    /// Host parallelism (`std::thread::available_parallelism`), recorded
    /// on batch events so a trace is self-describing.
    pub host_threads: u64,
    /// Per-phase totals (`job_end` with profiling on, `batch_end` with
    /// the batch's aggregate); empty otherwise.
    pub phase_ns: Vec<PhaseTotal>,
    /// Simulated cycle the checkpoint resumes at (`ckpt_write`/
    /// `ckpt_restore`; zero otherwise).
    pub cycle: u64,
    /// Checkpoint file size in bytes (`ckpt_write`/`ckpt_restore`).
    pub ckpt_bytes: u64,
    /// FNV-1a checksum of the checkpoint payload (`ckpt_write`/
    /// `ckpt_restore`).
    pub checksum: u64,
}

impl TraceSpan {
    /// An all-zero span of event type `ev` — callers fill in the fields
    /// their event carries.
    pub fn new(ev: &str) -> Self {
        TraceSpan {
            ev: ev.to_string(),
            t_ms: 0,
            label: String::new(),
            rate_bits: 0,
            seed: 0,
            digest: 0,
            outcome: String::new(),
            resumed: false,
            elapsed_ms_bits: 0,
            shards: 0,
            jobs: 0,
            failed: 0,
            host_threads: 0,
            phase_ns: Vec::new(),
            cycle: 0,
            ckpt_bytes: 0,
            checksum: 0,
        }
    }
}

/// Flattens a profile into per-phase totals (shards summed), in phase
/// order, skipping phases that never accumulated time.
pub fn phase_totals(report: &ProfileReport) -> Vec<PhaseTotal> {
    Phase::ALL
        .iter()
        .map(|&p| PhaseTotal {
            phase: p.name().to_string(),
            ns: report.phase_total(p),
        })
        .filter(|t| t.ns > 0)
        .collect()
}

/// Checks one JSONL line against the span schema.  Returns a description
/// of the first problem, or `Ok(())` — the contract `tracecheck` enforces
/// line-by-line in CI.
pub fn validate_line(line: &str) -> Result<(), String> {
    let span: TraceSpan =
        serde_json::from_str(line).map_err(|e| format!("not a TraceSpan: {e}"))?;
    if !EVENTS.contains(&span.ev.as_str()) {
        return Err(format!("unknown event type {:?}", span.ev));
    }
    match span.ev.as_str() {
        "job_start" | "job_end" => {
            if span.label.is_empty() {
                return Err(format!("{} without a series label", span.ev));
            }
            if span.digest == 0 {
                return Err(format!("{} without a job digest", span.ev));
            }
            if span.shards == 0 {
                return Err(format!("{} without a shard count", span.ev));
            }
        }
        "batch_start" | "batch_end" => {
            if span.jobs == 0 {
                return Err(format!("{} without a job count", span.ev));
            }
            if span.host_threads == 0 {
                return Err(format!("{} without host_threads", span.ev));
            }
        }
        "ckpt_write" | "ckpt_restore" => {
            if span.label.is_empty() {
                return Err(format!("{} without a series label", span.ev));
            }
            if span.digest == 0 {
                return Err(format!("{} without a job digest", span.ev));
            }
            if span.shards == 0 {
                return Err(format!("{} without a shard count", span.ev));
            }
            if span.cycle == 0 {
                return Err(format!("{} without a resume cycle", span.ev));
            }
            if span.ckpt_bytes == 0 {
                return Err(format!("{} without a byte count", span.ev));
            }
            if span.checksum == 0 {
                return Err(format!("{} without a checksum", span.ev));
            }
        }
        _ => unreachable!(),
    }
    if span.ev == "job_end" && span.outcome.is_empty() {
        return Err("job_end without an outcome".to_string());
    }
    let known = Phase::ALL.map(|p| p.name());
    for t in &span.phase_ns {
        if !known.contains(&t.phase.as_str()) {
            return Err(format!("unknown phase {:?}", t.phase));
        }
    }
    Ok(())
}

/// An append-only JSONL span sink (see the module docs).  Thread-safe:
/// the runner emits job spans from rayon workers.
pub struct TraceSink {
    path: PathBuf,
    file: Mutex<File>,
    opened: std::time::Instant,
}

impl TraceSink {
    /// Opens (or creates) the sink at `path`, appending to an existing
    /// file — a resumed sweep continues the same trace.  Parent
    /// directories are created as needed.  Creating the file fsyncs its
    /// parent directory, so the (possibly still empty) trace survives a
    /// crash landing right after open — a resumed invocation then appends
    /// to it instead of finding nothing.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let created = !path.exists();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if created {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                crate::ckpt::fsync_dir(dir)?;
            }
        }
        Ok(TraceSink {
            path,
            file: Mutex::new(file),
            opened: std::time::Instant::now(),
        })
    }

    /// The sink's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Milliseconds since the sink was opened (the `t_ms` timebase).
    pub fn now_ms(&self) -> u64 {
        self.opened.elapsed().as_millis() as u64
    }

    /// Appends one span: a single `write_all` plus flush, so lines stay
    /// atomic under concurrent emission and a crash tears at most the
    /// last line (which readers skip, like the journal's).
    pub fn emit(&self, span: &TraceSpan) {
        let Ok(mut line) = serde_json::to_string(span) else {
            return;
        };
        line.push('\n');
        if let Ok(mut f) = self.file.lock() {
            let _ = f.write_all(line.as_bytes());
            let _ = f.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ShardProfile;

    fn tmp(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/test-tmp");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn spans_roundtrip_and_validate() {
        let mut span = TraceSpan::new("job_end");
        span.label = "ref/UR".into();
        span.digest = 42;
        span.shards = 4;
        span.outcome = "ok".into();
        span.rate_bits = 0.2f64.to_bits();
        span.phase_ns = vec![PhaseTotal {
            phase: "alloc".into(),
            ns: 123,
        }];
        let json = serde_json::to_string(&span).unwrap();
        assert_eq!(serde_json::from_str::<TraceSpan>(&json).unwrap(), span);
        validate_line(&json).unwrap();
    }

    #[test]
    fn validate_rejects_malformed_spans() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line("{\"ev\":\"nope\"}").is_err());

        // A job span without its identity fields.
        let span = TraceSpan::new("job_start");
        let json = serde_json::to_string(&span).unwrap();
        assert!(validate_line(&json).unwrap_err().contains("label"));

        // A batch span without a job count.
        let span = TraceSpan::new("batch_start");
        let json = serde_json::to_string(&span).unwrap();
        assert!(validate_line(&json).unwrap_err().contains("job count"));

        // job_end needs an outcome.
        let mut span = TraceSpan::new("job_end");
        span.label = "s".into();
        span.digest = 1;
        span.shards = 1;
        let json = serde_json::to_string(&span).unwrap();
        assert!(validate_line(&json).unwrap_err().contains("outcome"));

        // Unknown phase names are schema violations.
        span.outcome = "ok".into();
        span.phase_ns = vec![PhaseTotal {
            phase: "warp".into(),
            ns: 1,
        }];
        let json = serde_json::to_string(&span).unwrap();
        assert!(validate_line(&json).unwrap_err().contains("warp"));
    }

    #[test]
    fn ckpt_spans_validate_and_reject_missing_fields() {
        let mut span = TraceSpan::new("ckpt_write");
        span.label = "ref/UR".into();
        span.digest = 42;
        span.shards = 4;
        span.cycle = 1000;
        span.ckpt_bytes = 4096;
        span.checksum = 0xdead_beef;
        let json = serde_json::to_string(&span).unwrap();
        validate_line(&json).unwrap();

        span.ev = "ckpt_restore".into();
        let json = serde_json::to_string(&span).unwrap();
        validate_line(&json).unwrap();

        // Each ckpt-specific field is mandatory.
        for (field, zeroed) in [
            ("resume cycle", {
                let mut s = span.clone();
                s.cycle = 0;
                s
            }),
            ("byte count", {
                let mut s = span.clone();
                s.ckpt_bytes = 0;
                s
            }),
            ("checksum", {
                let mut s = span.clone();
                s.checksum = 0;
                s
            }),
            ("job digest", {
                let mut s = span.clone();
                s.digest = 0;
                s
            }),
        ] {
            let json = serde_json::to_string(&zeroed).unwrap();
            assert!(validate_line(&json).unwrap_err().contains(field));
        }
    }

    #[test]
    fn phase_totals_flatten_and_skip_empty() {
        let mut rep = ProfileReport::default();
        let mut s = ShardProfile::default();
        s.phase_ns[Phase::Alloc as usize] = 10;
        s.phase_ns[Phase::Barrier as usize] = 5;
        rep.shards.push(s.clone());
        rep.shards.push(s);
        let totals = phase_totals(&rep);
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].phase, "alloc");
        assert_eq!(totals[0].ns, 20);
        assert_eq!(totals[1].phase, "barrier");
        assert_eq!(totals[1].ns, 10);
    }

    #[test]
    fn sink_appends_valid_lines_and_tolerates_torn_tail() {
        let path = tmp("trace_unit_test.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let sink = TraceSink::open(&path).unwrap();
            let mut span = TraceSpan::new("batch_start");
            span.jobs = 3;
            span.host_threads = 2;
            span.t_ms = sink.now_ms();
            sink.emit(&span);
            let mut span = TraceSpan::new("batch_end");
            span.jobs = 3;
            span.host_threads = 2;
            sink.emit(&span);
        }
        // A crash mid-append leaves a torn tail; readers skip it.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"ev\":\"job_en").unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(validate_line(lines[0]).is_ok());
        assert!(validate_line(lines[1]).is_ok());
        assert!(validate_line(lines[2]).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
