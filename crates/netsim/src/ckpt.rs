//! Mid-simulation checkpoint/restore: kill-9-safe long runs.
//!
//! A checkpoint captures the **complete deterministic state** of a
//! simulation at the end of a cycle — live packets (staging FIFOs, input
//! buffers, flits on the wire), per-group RNG streams, credits, allocator
//! round-robin cursors, ready lists, watchdog counters (the engine's
//! `Stats`), the fault-schedule cursor, and observer state via the
//! `SimObserver::snapshot`/`restore` seam.  The on-disk format is
//! **canonical**: state is keyed by group/channel/switch ownership, never
//! by shard id, so a checkpoint written at one shard count restores at any
//! other valid shard count bit-for-bit.
//!
//! Durability mirrors the journal's discipline: tmp-file + rename
//! atomicity, an FNV-1a content checksum over the payload, floats stored
//! as exact bit patterns, and keep-last-2 retention so a corrupt newest
//! file falls back to its predecessor (or a cold start) instead of
//! diverging.

use std::fs;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::engine::{Packet, ShardState, Stats, EPH_BIT};
use crate::journal::Fnv1a;
use serde::{Deserialize, Serialize};
use tugal_routing::Path;
use tugal_topology::SwitchId;

/// File magic: "TUGALCK" + format version byte.
const MAGIC: &[u8; 8] = b"TUGALCK\x01";
/// Payload-level format version (bumped on any layout change).
const VERSION: u32 = 1;
/// Checkpoints retained per `(dir, stem)`: the newest plus one fallback.
const KEEP: usize = 2;
/// Default write cadence in cycles when `TUGAL_CKPT_EVERY` is unset.
const DEFAULT_EVERY: u64 = 1000;

/// Checkpoint cadence and location (`Config::checkpoint`).
///
/// `None` (the default) keeps checkpointing off with zero cost; `Some`
/// writes a checkpoint every [`CkptConfig::every`] cycles.  The env
/// helper `Config::with_env_ckpt` builds one from `TUGAL_CKPT=<dir>` /
/// `TUGAL_CKPT_EVERY=<cycles>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CkptConfig {
    /// Directory checkpoint files are written to (created if absent).
    pub dir: String,
    /// Write cadence in cycles; `0` disables writing (restore still runs).
    pub every: u64,
    /// File-name stem: files are named `{stem}.{cycle:020}.ckpt`.  The
    /// experiment runner overrides this with the job digest so concurrent
    /// jobs sharing one directory never collide.
    pub stem: String,
}

impl CkptConfig {
    /// Builds a config for `dir` with the default cadence and stem.
    pub fn new(dir: impl Into<String>) -> Self {
        CkptConfig {
            dir: dir.into(),
            every: DEFAULT_EVERY,
            stem: "run".to_string(),
        }
    }

    /// Reads `TUGAL_CKPT` (directory; empty/unset = off) and
    /// `TUGAL_CKPT_EVERY` (cycles, default 1000).
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var("TUGAL_CKPT").ok()?;
        let dir = dir.trim();
        if dir.is_empty() {
            return None;
        }
        let every = std::env::var("TUGAL_CKPT_EVERY")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&e| e > 0)
            .unwrap_or(DEFAULT_EVERY);
        Some(CkptConfig {
            dir: dir.to_string(),
            every,
            stem: "run".to_string(),
        })
    }
}

/// What a checkpoint event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptEventKind {
    /// A checkpoint file was written.
    Write,
    /// A run resumed from a checkpoint file.
    Restore,
}

impl CkptEventKind {
    /// Trace-span event name (`ckpt_write` / `ckpt_restore`).
    pub fn name(self) -> &'static str {
        match self {
            CkptEventKind::Write => "ckpt_write",
            CkptEventKind::Restore => "ckpt_restore",
        }
    }
}

/// One checkpoint write or restore, reported after the run for trace
/// spans and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptEvent {
    /// Write or restore.
    pub kind: CkptEventKind,
    /// Cycle the checkpoint resumes at (`next_cycle`; for writes, the
    /// write happened at the end of `cycle - 1`).
    pub cycle: u64,
    /// Shard count of the running engine at the time of the event.
    pub shards: u32,
    /// Whole-file size in bytes.
    pub bytes: u64,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
    /// Wall-clock milliseconds the write/restore took.
    pub elapsed_ms: u64,
}

/// Typed non-fatal checkpoint warnings, printed to stderr; mirroring the
/// fork/absorb fallback, none of them change simulation results — they
/// only disable or degrade checkpointing for the affected job.
#[derive(Debug)]
pub enum CkptWarning {
    /// The observer does not implement `snapshot`, so checkpointing is
    /// disabled for this job (results are unaffected).
    ObserverSnapshotUnsupported,
    /// A checkpoint carries per-shard observer blobs for a different
    /// shard count than the restoring run; the checkpoint is skipped.
    ObserverShardMismatch {
        /// Observer blobs stored in the checkpoint.
        blobs: usize,
        /// Shards in the restoring run.
        shards: usize,
    },
    /// A checkpoint file failed validation (bad magic, checksum,
    /// fingerprint, or shape) and was skipped.
    BadCheckpoint {
        /// The offending file.
        path: PathBuf,
        /// What failed.
        reason: String,
    },
    /// Writing a checkpoint failed; further writes are disabled for this
    /// run (the simulation itself continues).
    WriteFailed {
        /// The attempted file.
        path: PathBuf,
        /// The I/O error.
        reason: String,
    },
}

impl std::fmt::Display for CkptWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptWarning::ObserverSnapshotUnsupported => write!(
                f,
                "observer does not support snapshot/restore; checkpointing disabled for this job"
            ),
            CkptWarning::ObserverShardMismatch { blobs, shards } => write!(
                f,
                "checkpoint has {blobs} observer snapshot(s) but the run has {shards} shard(s); \
                 checkpoint skipped"
            ),
            CkptWarning::BadCheckpoint { path, reason } => {
                write!(f, "bad checkpoint {}: {reason}", path.display())
            }
            CkptWarning::WriteFailed { path, reason } => write!(
                f,
                "checkpoint write to {} failed ({reason}); checkpointing disabled for this run",
                path.display()
            ),
        }
    }
}

/// Fsyncs a directory so a just-created/renamed entry inside it survives
/// a crash (POSIX requires the directory fsync, not just the file's).
pub(crate) fn fsync_dir(dir: &std::path::Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// Identity of a run for restore compatibility: topology + routing +
/// canonical config (shards/watchdog/checkpoint stripped, seed kept) +
/// rate + fault schedule, hashed with FNV-1a.
pub(crate) fn fingerprint(
    topo_key: &str,
    routing: crate::config::RoutingAlgorithm,
    cfg: &crate::config::Config,
    faults: Option<&crate::fault::FaultSchedule>,
    rate: f64,
) -> u64 {
    let mut canon = cfg.clone();
    canon.shards = 1;
    canon.watchdog = None;
    canon.checkpoint = None;
    let key = format!(
        "{topo_key}|{routing:?}|{canon:?}|{:?}",
        faults.map(|f| f.events())
    );
    let mut h = Fnv1a::new();
    h.update(key.as_bytes());
    h.update(&rate.to_bits().to_le_bytes());
    h.finish()
}

/// Structural shape a checkpoint must match to be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CkptShape {
    pub(crate) groups: u32,
    pub(crate) n_chan: u64,
    pub(crate) n_buf: u64,
    pub(crate) n_switches: u64,
}

// ---------------------------------------------------------------------------
// Byte codec: little-endian, length-prefixed, floats as exact bits.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn flag(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.0.extend_from_slice(b);
    }
}

struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Self {
        Dec { b, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| format!("truncated payload at offset {}", self.pos))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn flag(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("bad bool byte {b:#x}")),
        }
    }
    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let n = self.len(1)?;
        Ok(self.take(n)?.to_vec())
    }
    /// Reads a vector length and bounds it by the bytes remaining, so a
    /// corrupt length can't trigger a huge allocation before the element
    /// reads fail.
    fn len(&mut self, min_elem: usize) -> Result<usize, String> {
        let n = self.u64()?;
        let cap = (self.b.len() - self.pos) / min_elem.max(1);
        if n as usize > cap {
            return Err(format!("length {n} exceeds remaining payload"));
        }
        Ok(n as usize)
    }
    fn done(&self) -> Result<(), String> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes", self.b.len() - self.pos))
        }
    }
}

// ---------------------------------------------------------------------------
// Serialized state records.
// ---------------------------------------------------------------------------

/// A live packet's route: interned `PathStore` id, or the switch sequence
/// of an ephemeral (fault-rerouted) path, rebuilt on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PathRec {
    Interned(u32),
    Eph(Vec<u32>),
}

/// One live packet, with its route made pool-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PkRec {
    pub(crate) dst_node: u32,
    pub(crate) src_node: u32,
    pub(crate) birth: u64,
    pub(crate) hop: u8,
    pub(crate) cur_vc: u8,
    pub(crate) cur_chan: u32,
    pub(crate) pre_local: u8,
    pub(crate) pre_global: u8,
    pub(crate) hops_taken: u8,
    pub(crate) flags: u8,
    pub(crate) out_chan: u32,
    pub(crate) out_vc: u8,
    pub(crate) path: PathRec,
}

impl PkRec {
    pub(crate) fn capture(p: &Packet, eph_paths: &[Path]) -> Self {
        let path = if p.path_id & EPH_BIT != 0 {
            PathRec::Eph(
                eph_paths[(p.path_id & !EPH_BIT) as usize]
                    .switches()
                    .map(|s| s.0)
                    .collect(),
            )
        } else {
            PathRec::Interned(p.path_id)
        };
        PkRec {
            dst_node: p.dst_node,
            src_node: p.src_node,
            birth: p.birth,
            hop: p.hop,
            cur_vc: p.cur_vc,
            cur_chan: p.cur_chan,
            pre_local: p.pre_local,
            pre_global: p.pre_global,
            hops_taken: p.hops_taken,
            flags: p.flags,
            out_chan: p.out_chan,
            out_vc: p.out_vc,
            path,
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.u32(self.dst_node);
        e.u32(self.src_node);
        e.u64(self.birth);
        e.u8(self.hop);
        e.u8(self.cur_vc);
        e.u32(self.cur_chan);
        e.u8(self.pre_local);
        e.u8(self.pre_global);
        e.u8(self.hops_taken);
        e.u8(self.flags);
        e.u32(self.out_chan);
        e.u8(self.out_vc);
        match &self.path {
            PathRec::Interned(id) => {
                e.u8(0);
                e.u32(*id);
            }
            PathRec::Eph(sw) => {
                e.u8(1);
                e.u8(sw.len() as u8);
                for &s in sw {
                    e.u32(s);
                }
            }
        }
    }

    fn decode(d: &mut Dec) -> Result<Self, String> {
        let dst_node = d.u32()?;
        let src_node = d.u32()?;
        let birth = d.u64()?;
        let hop = d.u8()?;
        let cur_vc = d.u8()?;
        let cur_chan = d.u32()?;
        let pre_local = d.u8()?;
        let pre_global = d.u8()?;
        let hops_taken = d.u8()?;
        let flags = d.u8()?;
        let out_chan = d.u32()?;
        let out_vc = d.u8()?;
        let path = match d.u8()? {
            0 => PathRec::Interned(d.u32()?),
            1 => {
                let n = d.u8()? as usize;
                if n == 0 {
                    return Err("empty ephemeral path".to_string());
                }
                let mut sw = Vec::with_capacity(n);
                for _ in 0..n {
                    sw.push(d.u32()?);
                }
                PathRec::Eph(sw)
            }
            t => return Err(format!("bad path tag {t}")),
        };
        Ok(PkRec {
            dst_node,
            src_node,
            birth,
            hop,
            cur_vc,
            cur_chan,
            pre_local,
            pre_global,
            hops_taken,
            flags,
            out_chan,
            out_vc,
            path,
        })
    }
}

/// Packed `Stats` with float sums as exact bit patterns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct StatsSnap {
    pub(crate) measuring: bool,
    injected: u64,
    delivered: u64,
    latency_sum_bits: u64,
    hops_sum: u64,
    total_injected: u64,
    total_delivered: u64,
    total_dropped: u64,
    total_latency_sum_bits: u64,
    total_hops_sum: u64,
    vlb_chosen: u64,
    routed: u64,
    saturated_early: bool,
    last_delivery: u64,
    deadlock_suspected: bool,
    lat_hist: [u64; 24],
}

impl StatsSnap {
    pub(crate) fn pack(s: &Stats) -> Self {
        StatsSnap {
            measuring: s.measuring,
            injected: s.injected,
            delivered: s.delivered,
            latency_sum_bits: s.latency_sum.to_bits(),
            hops_sum: s.hops_sum,
            total_injected: s.total_injected,
            total_delivered: s.total_delivered,
            total_dropped: s.total_dropped,
            total_latency_sum_bits: s.total_latency_sum.to_bits(),
            total_hops_sum: s.total_hops_sum,
            vlb_chosen: s.vlb_chosen,
            routed: s.routed,
            saturated_early: s.saturated_early,
            last_delivery: s.last_delivery,
            deadlock_suspected: s.deadlock_suspected,
            lat_hist: s.lat_hist,
        }
    }

    pub(crate) fn unpack(&self) -> Stats {
        let mut s = Stats::new();
        s.measuring = self.measuring;
        s.injected = self.injected;
        s.delivered = self.delivered;
        s.latency_sum = f64::from_bits(self.latency_sum_bits);
        s.hops_sum = self.hops_sum;
        s.total_injected = self.total_injected;
        s.total_delivered = self.total_delivered;
        s.total_dropped = self.total_dropped;
        s.total_latency_sum = f64::from_bits(self.total_latency_sum_bits);
        s.total_hops_sum = self.total_hops_sum;
        s.vlb_chosen = self.vlb_chosen;
        s.routed = self.routed;
        s.saturated_early = self.saturated_early;
        s.last_delivery = self.last_delivery;
        s.deadlock_suspected = self.deadlock_suspected;
        s.lat_hist = self.lat_hist;
        s
    }

    fn encode(&self, e: &mut Enc) {
        e.flag(self.measuring);
        e.u64(self.injected);
        e.u64(self.delivered);
        e.u64(self.latency_sum_bits);
        e.u64(self.hops_sum);
        e.u64(self.total_injected);
        e.u64(self.total_delivered);
        e.u64(self.total_dropped);
        e.u64(self.total_latency_sum_bits);
        e.u64(self.total_hops_sum);
        e.u64(self.vlb_chosen);
        e.u64(self.routed);
        e.flag(self.saturated_early);
        e.u64(self.last_delivery);
        e.flag(self.deadlock_suspected);
        for v in self.lat_hist {
            e.u64(v);
        }
    }

    fn decode(d: &mut Dec) -> Result<Self, String> {
        let mut s = StatsSnap {
            measuring: d.flag()?,
            injected: d.u64()?,
            delivered: d.u64()?,
            latency_sum_bits: d.u64()?,
            hops_sum: d.u64()?,
            total_injected: d.u64()?,
            total_delivered: d.u64()?,
            total_dropped: d.u64()?,
            total_latency_sum_bits: d.u64()?,
            total_hops_sum: d.u64()?,
            vlb_chosen: d.u64()?,
            routed: d.u64()?,
            saturated_early: d.flag()?,
            last_delivery: d.u64()?,
            deadlock_suspected: d.flag()?,
            lat_hist: [0; 24],
        };
        for v in &mut s.lat_hist {
            *v = d.u64()?;
        }
        Ok(s)
    }
}

/// Per-channel send-side scalars (owned by the sending shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChanSend {
    pub(crate) ch: u32,
    pub(crate) next_free: u64,
    pub(crate) cred_used: u32,
    pub(crate) chan_flits: u32,
}

/// One shard's contribution to a checkpoint: only state the shard owns
/// (by send/recv channel or switch ownership), with ring-slot calendars
/// converted to absolute due cycles.
#[derive(Debug, Default)]
pub(crate) struct ShardDelta {
    pub(crate) rngs: Vec<(u32, [u64; 4])>,
    pub(crate) staging: Vec<(u32, Vec<PkRec>)>,
    pub(crate) inbufs: Vec<(u32, Vec<PkRec>)>,
    pub(crate) arrivals: Vec<(u64, PkRec)>,
    pub(crate) credit_events: Vec<(u64, u32)>,
    pub(crate) chan_send: Vec<ChanSend>,
    pub(crate) credits: Vec<(u32, u16)>,
    pub(crate) wait: Vec<(u32, u32)>,
    pub(crate) rr: Vec<(u32, u64)>,
    pub(crate) ready: Vec<(u32, Vec<u32>)>,
    pub(crate) chan_dead: Vec<u32>,
    pub(crate) switch_dead: Vec<u32>,
    pub(crate) stats: StatsSnap,
    pub(crate) obs_blob: Vec<u8>,
    pub(crate) next_event: u64,
    pub(crate) elapsed_ms: u64,
}

/// The canonical, shard-count-independent simulation state at the end of
/// a cycle (`next_cycle - 1`), plus identity/shape metadata.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Checkpoint {
    pub(crate) fingerprint: u64,
    pub(crate) groups: u32,
    pub(crate) n_chan: u64,
    pub(crate) n_buf: u64,
    pub(crate) n_switches: u64,
    pub(crate) next_cycle: u64,
    pub(crate) elapsed_ms: u64,
    pub(crate) next_event: u64,
    pub(crate) stats: StatsSnap,
    pub(crate) rngs: Vec<(u32, [u64; 4])>,
    pub(crate) staging: Vec<(u32, Vec<PkRec>)>,
    pub(crate) inbufs: Vec<(u32, Vec<PkRec>)>,
    pub(crate) arrivals: Vec<(u64, PkRec)>,
    pub(crate) credit_events: Vec<(u64, u32)>,
    pub(crate) chan_send: Vec<ChanSend>,
    pub(crate) credits: Vec<(u32, u16)>,
    pub(crate) wait: Vec<(u32, u32)>,
    pub(crate) rr: Vec<(u32, u64)>,
    pub(crate) ready: Vec<(u32, Vec<u32>)>,
    pub(crate) chan_dead: Vec<u32>,
    pub(crate) switch_dead: Vec<u32>,
    pub(crate) obs_blobs: Vec<Vec<u8>>,
}

impl Checkpoint {
    /// Merges per-shard deltas (in shard order) into the canonical form:
    /// every section is sorted by its ownership key, so the result is
    /// identical no matter how many shards produced it.
    pub(crate) fn from_deltas(
        mut deltas: Vec<ShardDelta>,
        fingerprint: u64,
        shape: CkptShape,
        next_cycle: u64,
    ) -> Self {
        let mut stats = deltas[0].stats.unpack();
        for d in &deltas[1..] {
            stats.merge(&d.stats.unpack());
        }
        let next_event = deltas[0].next_event;
        let elapsed_ms = deltas[0].elapsed_ms;
        let mut chan_dead = std::mem::take(&mut deltas[0].chan_dead);
        let mut switch_dead = std::mem::take(&mut deltas[0].switch_dead);
        chan_dead.sort_unstable();
        switch_dead.sort_unstable();

        let mut rngs = Vec::new();
        let mut staging = Vec::new();
        let mut inbufs = Vec::new();
        let mut arrivals = Vec::new();
        let mut credit_events = Vec::new();
        let mut chan_send = Vec::new();
        let mut credits = Vec::new();
        let mut wait = Vec::new();
        let mut rr = Vec::new();
        let mut ready = Vec::new();
        let mut obs_blobs = Vec::with_capacity(deltas.len());
        for d in &mut deltas {
            rngs.append(&mut d.rngs);
            staging.append(&mut d.staging);
            inbufs.append(&mut d.inbufs);
            arrivals.append(&mut d.arrivals);
            credit_events.append(&mut d.credit_events);
            chan_send.append(&mut d.chan_send);
            credits.append(&mut d.credits);
            wait.append(&mut d.wait);
            rr.append(&mut d.rr);
            ready.append(&mut d.ready);
            obs_blobs.push(std::mem::take(&mut d.obs_blob));
        }
        rngs.sort_unstable_by_key(|e| e.0);
        staging.sort_unstable_by_key(|e| e.0);
        inbufs.sort_unstable_by_key(|e| e.0);
        // At most one flit arrives per (channel, cycle), so this key is
        // unique and the canonical order is total.
        arrivals.sort_unstable_by_key(|(due, p)| (*due, p.cur_chan));
        credit_events.sort_unstable();
        chan_send.sort_unstable_by_key(|c| c.ch);
        credits.sort_unstable_by_key(|e| e.0);
        wait.sort_unstable_by_key(|e| e.0);
        rr.sort_unstable_by_key(|e| e.0);
        ready.sort_unstable_by_key(|e| e.0);

        Checkpoint {
            fingerprint,
            groups: shape.groups,
            n_chan: shape.n_chan,
            n_buf: shape.n_buf,
            n_switches: shape.n_switches,
            next_cycle,
            elapsed_ms,
            next_event,
            stats: StatsSnap::pack(&stats),
            rngs,
            staging,
            inbufs,
            arrivals,
            credit_events,
            chan_send,
            credits,
            wait,
            rr,
            ready,
            chan_dead,
            switch_dead,
            obs_blobs,
        }
    }

    pub(crate) fn shape(&self) -> CkptShape {
        CkptShape {
            groups: self.groups,
            n_chan: self.n_chan,
            n_buf: self.n_buf,
            n_switches: self.n_switches,
        }
    }

    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.u32(VERSION);
        e.u64(self.fingerprint);
        e.u32(self.groups);
        e.u64(self.n_chan);
        e.u64(self.n_buf);
        e.u64(self.n_switches);
        e.u64(self.next_cycle);
        e.u64(self.elapsed_ms);
        e.u64(self.next_event);
        self.stats.encode(&mut e);
        e.u64(self.rngs.len() as u64);
        for (g, s) in &self.rngs {
            e.u32(*g);
            for w in s {
                e.u64(*w);
            }
        }
        for fifo in [&self.staging, &self.inbufs] {
            e.u64(fifo.len() as u64);
            for (key, recs) in fifo.iter() {
                e.u32(*key);
                e.u64(recs.len() as u64);
                for r in recs {
                    r.encode(&mut e);
                }
            }
        }
        e.u64(self.arrivals.len() as u64);
        for (due, r) in &self.arrivals {
            e.u64(*due);
            r.encode(&mut e);
        }
        e.u64(self.credit_events.len() as u64);
        for (due, idx) in &self.credit_events {
            e.u64(*due);
            e.u32(*idx);
        }
        e.u64(self.chan_send.len() as u64);
        for c in &self.chan_send {
            e.u32(c.ch);
            e.u64(c.next_free);
            e.u32(c.cred_used);
            e.u32(c.chan_flits);
        }
        e.u64(self.credits.len() as u64);
        for (idx, v) in &self.credits {
            e.u32(*idx);
            e.u16(*v);
        }
        e.u64(self.wait.len() as u64);
        for (idx, v) in &self.wait {
            e.u32(*idx);
            e.u32(*v);
        }
        e.u64(self.rr.len() as u64);
        for (sw, v) in &self.rr {
            e.u32(*sw);
            e.u64(*v);
        }
        e.u64(self.ready.len() as u64);
        for (sw, list) in &self.ready {
            e.u32(*sw);
            e.u64(list.len() as u64);
            for idx in list {
                e.u32(*idx);
            }
        }
        for dead in [&self.chan_dead, &self.switch_dead] {
            e.u64(dead.len() as u64);
            for idx in dead.iter() {
                e.u32(*idx);
            }
        }
        e.u64(self.obs_blobs.len() as u64);
        for b in &self.obs_blobs {
            e.bytes(b);
        }
        e.0
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<Self, String> {
        let mut d = Dec::new(payload);
        let version = d.u32()?;
        if version != VERSION {
            return Err(format!("unsupported version {version}"));
        }
        let fingerprint = d.u64()?;
        let groups = d.u32()?;
        let n_chan = d.u64()?;
        let n_buf = d.u64()?;
        let n_switches = d.u64()?;
        let next_cycle = d.u64()?;
        let elapsed_ms = d.u64()?;
        let next_event = d.u64()?;
        let stats = StatsSnap::decode(&mut d)?;
        let n = d.len(36)?;
        let mut rngs = Vec::with_capacity(n);
        for _ in 0..n {
            let g = d.u32()?;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = d.u64()?;
            }
            rngs.push((g, s));
        }
        let mut fifos: [Vec<(u32, Vec<PkRec>)>; 2] = [Vec::new(), Vec::new()];
        for fifo in &mut fifos {
            let n = d.len(12)?;
            fifo.reserve(n);
            for _ in 0..n {
                let key = d.u32()?;
                let m = d.len(32)?;
                let mut recs = Vec::with_capacity(m);
                for _ in 0..m {
                    recs.push(PkRec::decode(&mut d)?);
                }
                fifo.push((key, recs));
            }
        }
        let [staging, inbufs] = fifos;
        let n = d.len(40)?;
        let mut arrivals = Vec::with_capacity(n);
        for _ in 0..n {
            let due = d.u64()?;
            arrivals.push((due, PkRec::decode(&mut d)?));
        }
        let n = d.len(12)?;
        let mut credit_events = Vec::with_capacity(n);
        for _ in 0..n {
            let due = d.u64()?;
            credit_events.push((due, d.u32()?));
        }
        let n = d.len(20)?;
        let mut chan_send = Vec::with_capacity(n);
        for _ in 0..n {
            chan_send.push(ChanSend {
                ch: d.u32()?,
                next_free: d.u64()?,
                cred_used: d.u32()?,
                chan_flits: d.u32()?,
            });
        }
        let n = d.len(6)?;
        let mut credits = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = d.u32()?;
            credits.push((idx, d.u16()?));
        }
        let n = d.len(8)?;
        let mut wait = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = d.u32()?;
            wait.push((idx, d.u32()?));
        }
        let n = d.len(12)?;
        let mut rr = Vec::with_capacity(n);
        for _ in 0..n {
            let sw = d.u32()?;
            rr.push((sw, d.u64()?));
        }
        let n = d.len(12)?;
        let mut ready = Vec::with_capacity(n);
        for _ in 0..n {
            let sw = d.u32()?;
            let m = d.len(4)?;
            let mut list = Vec::with_capacity(m);
            for _ in 0..m {
                list.push(d.u32()?);
            }
            ready.push((sw, list));
        }
        let mut deads: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        for dead in &mut deads {
            let n = d.len(4)?;
            dead.reserve(n);
            for _ in 0..n {
                dead.push(d.u32()?);
            }
        }
        let [chan_dead, switch_dead] = deads;
        let n = d.len(8)?;
        let mut obs_blobs = Vec::with_capacity(n);
        for _ in 0..n {
            obs_blobs.push(d.bytes()?);
        }
        d.done()?;
        let ck = Checkpoint {
            fingerprint,
            groups,
            n_chan,
            n_buf,
            n_switches,
            next_cycle,
            elapsed_ms,
            next_event,
            stats,
            rngs,
            staging,
            inbufs,
            arrivals,
            credit_events,
            chan_send,
            credits,
            wait,
            rr,
            ready,
            chan_dead,
            switch_dead,
            obs_blobs,
        };
        ck.validate()?;
        Ok(ck)
    }

    /// Structural validation beyond the checksum: every index in range,
    /// the RNG section dense over all groups.
    fn validate(&self) -> Result<(), String> {
        if self.rngs.len() != self.groups as usize {
            return Err(format!(
                "rng section has {} entries for {} groups",
                self.rngs.len(),
                self.groups
            ));
        }
        for (i, (g, _)) in self.rngs.iter().enumerate() {
            if *g as usize != i {
                return Err(format!("rng section not dense at group {g}"));
            }
        }
        let chan_ok = |ch: u32| (ch as u64) < self.n_chan;
        let buf_ok = |idx: u32| (idx as u64) < self.n_buf;
        let sw_ok = |sw: u32| (sw as u64) < self.n_switches;
        if !self.staging.iter().all(|(ch, _)| chan_ok(*ch))
            || !self.chan_send.iter().all(|c| chan_ok(c.ch))
            || !self.chan_dead.iter().all(|ch| chan_ok(*ch))
        {
            return Err("channel index out of range".to_string());
        }
        if !self.inbufs.iter().all(|(idx, _)| buf_ok(*idx))
            || !self.credit_events.iter().all(|(_, idx)| buf_ok(*idx))
            || !self.credits.iter().all(|(idx, _)| buf_ok(*idx))
            || !self.wait.iter().all(|(idx, _)| buf_ok(*idx))
            || !self
                .ready
                .iter()
                .all(|(_, list)| list.iter().all(|idx| buf_ok(*idx)))
        {
            return Err("buffer index out of range".to_string());
        }
        if !self.rr.iter().all(|(sw, _)| sw_ok(*sw))
            || !self.ready.iter().all(|(sw, _)| sw_ok(*sw))
            || !self.switch_dead.iter().all(|sw| sw_ok(*sw))
        {
            return Err("switch index out of range".to_string());
        }
        Ok(())
    }
}

/// Builds the resume inputs the engine needs before shard workers start.
pub(crate) struct ResumeCtx {
    pub(crate) next_cycle: u64,
    pub(crate) stats: StatsSnap,
    pub(crate) next_event: u64,
    pub(crate) elapsed_ms: u64,
    /// Dense per-group RNG states.
    pub(crate) rngs: Vec<[u64; 4]>,
}

impl ResumeCtx {
    pub(crate) fn from_checkpoint(ck: &Checkpoint) -> Self {
        ResumeCtx {
            next_cycle: ck.next_cycle,
            stats: ck.stats.clone(),
            next_event: ck.next_event,
            elapsed_ms: ck.elapsed_ms,
            rngs: ck.rngs.iter().map(|(_, s)| *s).collect(),
        }
    }
}

/// Replays a checkpoint into one freshly reset shard, taking only the
/// state that shard owns.  Packets are re-allocated compactly in section
/// order — pool layout is unobservable (the shard-parity contract), so
/// this is bit-for-bit safe at any reader shard count.
pub(crate) fn apply_shard(ck: &Checkpoint, st: &mut ShardState, ring_mask: u64) {
    fn alloc_rec(st: &mut ShardState, rec: &PkRec) -> u32 {
        let pi = st.packets.len() as u32;
        let (path_id, path) = match &rec.path {
            PathRec::Interned(id) => (*id, Path::default()),
            PathRec::Eph(sw) => {
                let sw: Vec<SwitchId> = sw.iter().map(|&s| SwitchId(s)).collect();
                (EPH_BIT | pi, Path::from_switches(&sw))
            }
        };
        st.packets.push(Packet {
            dst_node: rec.dst_node,
            src_node: rec.src_node,
            birth: rec.birth,
            path_id,
            hop: rec.hop,
            cur_vc: rec.cur_vc,
            cur_chan: rec.cur_chan,
            pre_local: rec.pre_local,
            pre_global: rec.pre_global,
            hops_taken: rec.hops_taken,
            flags: rec.flags,
            out_chan: rec.out_chan,
            out_vc: rec.out_vc,
        });
        st.eph_paths.push(path);
        st.next_pkt.push(u32::MAX);
        pi
    }

    for (ch, recs) in &ck.staging {
        let ch = *ch as usize;
        if !st.owns_send[ch] {
            continue;
        }
        for rec in recs {
            let pi = alloc_rec(st, rec);
            st.stg_push(ch, pi);
        }
    }
    for ch in 0..st.stg_len.len() {
        if st.stg_len[ch] > 0 {
            st.in_busy[ch] = true;
            st.busy_list.push(ch as u32);
        }
    }
    for (idx, recs) in &ck.inbufs {
        let idx = *idx as usize;
        let ch = st.chan_of_buf[idx] as usize;
        if !st.owns_recv[ch] {
            continue;
        }
        for rec in recs {
            let pi = alloc_rec(st, rec);
            st.inb_push(idx, pi);
            st.buf_occ[ch] += 1;
        }
    }
    for (sw, list) in &ck.ready {
        if !(st.switch_lo..st.switch_hi).contains(sw) {
            continue;
        }
        for &idx in list {
            st.in_ready[idx as usize] = true;
        }
        st.ready[*sw as usize] = list.clone();
    }
    for (due, rec) in &ck.arrivals {
        if !st.owns_recv[rec.cur_chan as usize] {
            continue;
        }
        let pi = alloc_rec(st, rec);
        st.arrivals[(due & ring_mask) as usize].push(pi);
    }
    for (due, idx) in &ck.credit_events {
        if !st.owns_send[st.chan_of_buf[*idx as usize] as usize] {
            continue;
        }
        st.credit_ring[(due & ring_mask) as usize].push(*idx);
    }
    for c in &ck.chan_send {
        let ch = c.ch as usize;
        if !st.owns_send[ch] {
            continue;
        }
        st.next_free[ch] = c.next_free;
        st.cred_used[ch] = c.cred_used;
        st.chan_flits[ch] = c.chan_flits;
    }
    for (idx, v) in &ck.credits {
        if st.owns_send[st.chan_of_buf[*idx as usize] as usize] {
            st.credits[*idx as usize] = *v;
        }
    }
    for (idx, v) in &ck.wait {
        if st.owns_recv[st.chan_of_buf[*idx as usize] as usize] {
            st.wait[*idx as usize] = *v;
        }
    }
    for (sw, v) in &ck.rr {
        if (st.switch_lo..st.switch_hi).contains(sw) {
            st.rr[*sw as usize] = *v as usize;
        }
    }
    for &ch in &ck.chan_dead {
        st.chan_dead[ch as usize] = true;
    }
    for &sw in &ck.switch_dead {
        st.switch_dead[sw as usize] = true;
    }
}

// ---------------------------------------------------------------------------
// Per-run coordination and file I/O.
// ---------------------------------------------------------------------------

/// Checkpoint coordinator for one simulation run: write cadence, file
/// naming/retention, the per-shard delta staging area used at the write
/// barrier, and the event log reported back for trace spans.
pub(crate) struct CkptRun {
    dir: PathBuf,
    stem: String,
    every: u64,
    pub(crate) fingerprint: u64,
    pub(crate) shape: CkptShape,
    /// Per-shard delta slots, filled before the write barrier and drained
    /// by shard 0 after it.
    pub(crate) stage: Vec<Mutex<Option<ShardDelta>>>,
    events: Mutex<Vec<CkptEvent>>,
    /// Set when a write fails: later writes are skipped, but every shard
    /// still runs the (deterministic) checkpoint step so barrier counts
    /// never diverge.
    dead: AtomicBool,
}

impl CkptRun {
    pub(crate) fn new(
        cc: &CkptConfig,
        fingerprint: u64,
        shape: CkptShape,
        shards: usize,
    ) -> io::Result<Self> {
        let dir = PathBuf::from(&cc.dir);
        fs::create_dir_all(&dir)?;
        Ok(CkptRun {
            dir,
            stem: cc.stem.clone(),
            every: cc.every,
            fingerprint,
            shape,
            stage: (0..shards).map(|_| Mutex::new(None)).collect(),
            events: Mutex::new(Vec::new()),
            dead: AtomicBool::new(false),
        })
    }

    /// Whether the end of cycle `now` is a checkpoint point.  Purely a
    /// function of `(now, total)` so every shard agrees without
    /// communication; the last cycle is excluded (nothing left to resume).
    pub(crate) fn due(&self, now: u64, total: u64) -> bool {
        self.every > 0 && now > 0 && now.is_multiple_of(self.every) && now + 1 < total
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    pub(crate) fn push_event(&self, ev: CkptEvent) {
        self.events.lock().unwrap().push(ev);
    }

    pub(crate) fn take_events(&self) -> Vec<CkptEvent> {
        std::mem::take(&mut self.events.lock().unwrap())
    }

    fn file_name(&self, next_cycle: u64) -> String {
        format!("{}.{next_cycle:020}.ckpt", self.stem)
    }

    /// Existing checkpoint files for this stem, newest first.
    fn candidates(&self) -> Vec<(u64, PathBuf)> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return out;
        };
        let prefix = format!("{}.", self.stem);
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(mid) = name
                .strip_prefix(&prefix)
                .and_then(|s| s.strip_suffix(".ckpt"))
            else {
                continue;
            };
            if let Ok(cycle) = mid.parse::<u64>() {
                out.push((cycle, entry.path()));
            }
        }
        out.sort_unstable_by_key(|&(cycle, _)| std::cmp::Reverse(cycle));
        out
    }

    /// Atomically writes `ck`: tmp file, `sync_all`, rename, directory
    /// fsync, then prunes to the retention limit.  Returns `(file bytes,
    /// payload checksum)`.
    pub(crate) fn write_file(&self, ck: &Checkpoint) -> io::Result<(u64, u64)> {
        let payload = ck.encode();
        let mut h = Fnv1a::new();
        h.update(&payload);
        let checksum = h.finish();
        let mut buf = Vec::with_capacity(payload.len() + 24);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf.extend_from_slice(&payload);
        let tmp = self.dir.join(format!(".{}.tmp", self.stem));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(self.file_name(ck.next_cycle)))?;
        let _ = fsync_dir(&self.dir);
        for (_, path) in self.candidates().into_iter().skip(KEEP) {
            let _ = fs::remove_file(path);
        }
        Ok((buf.len() as u64, checksum))
    }

    /// Merges per-shard deltas into the canonical checkpoint and writes it
    /// atomically, logging a [`CkptEventKind::Write`] event on success and
    /// disabling further writes (simulation unaffected) on failure.
    pub(crate) fn commit(&self, deltas: Vec<ShardDelta>, next_cycle: u64) {
        let t0 = std::time::Instant::now();
        let shards = deltas.len() as u32;
        let ck = Checkpoint::from_deltas(deltas, self.fingerprint, self.shape, next_cycle);
        match self.write_file(&ck) {
            Ok((bytes, checksum)) => self.push_event(CkptEvent {
                kind: CkptEventKind::Write,
                cycle: next_cycle,
                shards,
                bytes,
                checksum,
                elapsed_ms: t0.elapsed().as_millis() as u64,
            }),
            Err(e) => self.disable_after_error(self.dir.join(self.file_name(next_cycle)), &e),
        }
    }

    /// Marks writing dead after a failure (warn once, simulate on).
    pub(crate) fn disable_after_error(&self, path: PathBuf, err: &io::Error) {
        eprintln!(
            "warning: {}",
            CkptWarning::WriteFailed {
                path,
                reason: err.to_string(),
            }
        );
        self.dead.store(true, Ordering::Relaxed);
    }

    /// Loads the newest valid checkpoint, skipping (with a warning) any
    /// candidate whose magic, checksum, fingerprint, or shape fails —
    /// falling back to the previous retained file or a cold start.
    pub(crate) fn load(&self) -> Option<(Checkpoint, u64, u64)> {
        for (_, path) in self.candidates() {
            match self.read_one(&path) {
                Ok(found) => return Some(found),
                Err(reason) => eprintln!(
                    "warning: {}",
                    CkptWarning::BadCheckpoint {
                        path: path.clone(),
                        reason,
                    }
                ),
            }
        }
        None
    }

    fn read_one(&self, path: &std::path::Path) -> Result<(Checkpoint, u64, u64), String> {
        let bytes = fs::read(path).map_err(|e| e.to_string())?;
        if bytes.len() < 24 {
            return Err(format!("file too short ({} bytes)", bytes.len()));
        }
        if &bytes[..8] != MAGIC {
            return Err("bad magic".to_string());
        }
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let payload = bytes
            .get(24..)
            .filter(|p| p.len() == payload_len)
            .ok_or_else(|| {
                format!(
                    "payload length mismatch (header {payload_len}, got {})",
                    bytes.len() - 24
                )
            })?;
        let mut h = Fnv1a::new();
        h.update(payload);
        if h.finish() != checksum {
            return Err("checksum mismatch".to_string());
        }
        let ck = Checkpoint::decode(payload)?;
        if ck.fingerprint != self.fingerprint {
            return Err(format!(
                "fingerprint mismatch (file {:#018x}, run {:#018x})",
                ck.fingerprint, self.fingerprint
            ));
        }
        if ck.shape() != self.shape {
            return Err("topology shape mismatch".to_string());
        }
        Ok((ck, bytes.len() as u64, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-tmp")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_checkpoint(next_cycle: u64) -> Checkpoint {
        let pk = |chan: u32, path: PathRec| PkRec {
            dst_node: 7,
            src_node: 3,
            birth: 41,
            hop: 1,
            cur_vc: 2,
            cur_chan: chan,
            pre_local: 1,
            pre_global: 0,
            hops_taken: 2,
            flags: 3,
            out_chan: u32::MAX,
            out_vc: 1,
            path,
        };
        let mut stats = Stats::new();
        stats.measuring = true;
        stats.total_injected = 100;
        stats.latency_sum = 1234.0;
        stats.lat_hist[3] = 9;
        Checkpoint {
            fingerprint: 0xFEED,
            groups: 2,
            n_chan: 16,
            n_buf: 64,
            n_switches: 8,
            next_cycle,
            elapsed_ms: 12,
            next_event: 1,
            stats: StatsSnap::pack(&stats),
            rngs: vec![(0, [1, 2, 3, 4]), (1, [5, 6, 7, 8])],
            staging: vec![(2, vec![pk(2, PathRec::Interned(11))])],
            inbufs: vec![(9, vec![pk(1, PathRec::Eph(vec![0, 4, 5]))])],
            arrivals: vec![(next_cycle + 3, pk(5, PathRec::Interned(0)))],
            credit_events: vec![(next_cycle + 1, 13), (next_cycle + 1, 13)],
            chan_send: vec![ChanSend {
                ch: 2,
                next_free: next_cycle,
                cred_used: 1,
                chan_flits: 40,
            }],
            credits: vec![(8, 31)],
            wait: vec![(9, 12)],
            rr: vec![(0, 5), (3, 1)],
            ready: vec![(3, vec![9, 12])],
            chan_dead: vec![6],
            switch_dead: vec![1],
            obs_blobs: vec![Vec::new(), vec![1, 2, 3]],
        }
    }

    fn run_for(dir: &std::path::Path) -> CkptRun {
        CkptRun::new(
            &CkptConfig {
                dir: dir.to_string_lossy().into_owned(),
                every: 100,
                stem: "t".to_string(),
            },
            0xFEED,
            CkptShape {
                groups: 2,
                n_chan: 16,
                n_buf: 64,
                n_switches: 8,
            },
            1,
        )
        .unwrap()
    }

    #[test]
    fn codec_roundtrips_bit_for_bit() {
        let ck = sample_checkpoint(200);
        let payload = ck.encode();
        let back = Checkpoint::decode(&payload).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.encode(), payload);
    }

    #[test]
    fn decode_rejects_structural_corruption() {
        let ck = sample_checkpoint(200);
        let payload = ck.encode();
        assert!(Checkpoint::decode(&payload[..payload.len() - 1]).is_err());
        let mut bad = ck.clone();
        bad.rngs.pop();
        assert!(Checkpoint::decode(&bad.encode())
            .unwrap_err()
            .contains("rng"));
        let mut bad = ck;
        bad.credits[0].0 = 64; // == n_buf, out of range
        assert!(Checkpoint::decode(&bad.encode())
            .unwrap_err()
            .contains("buffer index"));
    }

    #[test]
    fn write_then_load_verifies_checksum_and_retention() {
        let dir = tmp_dir("ckpt_unit_roundtrip");
        let run = run_for(&dir);
        for cycle in [100, 200, 300] {
            run.write_file(&sample_checkpoint(cycle)).unwrap();
        }
        // Retention keeps the newest two; the oldest is pruned.
        let cycles: Vec<u64> = run.candidates().iter().map(|(c, _)| *c).collect();
        assert_eq!(cycles, vec![300, 200]);
        let (ck, _, _) = run.load().unwrap();
        assert_eq!(ck, sample_checkpoint(300));
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = tmp_dir("ckpt_unit_corrupt");
        let run = run_for(&dir);
        run.write_file(&sample_checkpoint(100)).unwrap();
        run.write_file(&sample_checkpoint(200)).unwrap();
        let newest = dir.join("t.00000000000000000200.ckpt");
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();
        let (ck, _, _) = run.load().unwrap();
        assert_eq!(ck.next_cycle, 100);
        // Truncation of both leaves a cold start.
        for f in ["t.00000000000000000100.ckpt", "t.00000000000000000200.ckpt"] {
            let p = dir.join(f);
            let b = fs::read(&p).unwrap();
            fs::write(&p, &b[..20]).unwrap();
        }
        assert!(run.load().is_none());
    }

    #[test]
    fn fingerprint_and_shape_mismatches_are_rejected() {
        let dir = tmp_dir("ckpt_unit_fingerprint");
        let run = run_for(&dir);
        let mut other = sample_checkpoint(100);
        other.fingerprint = 0xBAD;
        run.write_file(&other).unwrap();
        assert!(run.load().is_none());
        let mut other = sample_checkpoint(100);
        other.n_switches = 9;
        run.write_file(&other).unwrap();
        assert!(run.load().is_none());
    }

    #[test]
    fn from_deltas_is_shard_order_independent() {
        let shape = CkptShape {
            groups: 2,
            n_chan: 16,
            n_buf: 64,
            n_switches: 8,
        };
        let mk = |g: u32, ch: u32| {
            let mut d = ShardDelta {
                rngs: vec![(g, [g as u64 + 1; 4])],
                chan_send: vec![ChanSend {
                    ch,
                    next_free: 9,
                    cred_used: 0,
                    chan_flits: 1,
                }],
                rr: vec![(ch, 2)],
                ..Default::default()
            };
            d.stats = StatsSnap::pack(&Stats::new());
            d
        };
        let a = Checkpoint::from_deltas(vec![mk(0, 1), mk(1, 5)], 1, shape, 50);
        let mut b = Checkpoint::from_deltas(vec![mk(1, 5), mk(0, 1)], 1, shape, 50);
        // Observer blobs stay in shard order by design; splice them out of
        // the canonical comparison.
        b.obs_blobs = a.obs_blobs.clone();
        assert_eq!(a, b);
    }
}
