//! Fault schedules: *when* the failures of a
//! [`FaultSet`](tugal_topology::FaultSet) strike during a run.
//!
//! A [`FaultSchedule`] is a list of [`FaultEvent`]s, each naming a cycle
//! and the components that die at that cycle.  Faults are cumulative —
//! later events add to the dead set, nothing ever heals.  An event at
//! cycle 0 models a degraded topology that was broken before traffic
//! started; later events model mid-run failures, which exercise the
//! engine's reroute-or-drop machinery on packets already in flight (see
//! the "Fault model" section of `DESIGN.md`).

use tugal_topology::FaultSet;

/// One batch of failures striking at a given cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the components die (applied before that cycle's
    /// phases run).
    pub cycle: u64,
    /// The components that die.
    pub faults: FaultSet,
}

/// An ordered list of fault events for one simulation run.
///
/// An empty schedule (or one whose every event carries an empty
/// [`FaultSet`]) leaves the engine on its pristine fast path: no per-cycle
/// checks run and results are bit-identical to an unscheduled run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// A schedule with no failures.
    pub fn empty() -> Self {
        Self::default()
    }

    /// All of `faults` dead from cycle 0 (a pre-degraded network).
    pub fn immediate(faults: FaultSet) -> Self {
        Self::at(0, faults)
    }

    /// All of `faults` dead from `cycle` onwards.
    pub fn at(cycle: u64, faults: FaultSet) -> Self {
        Self::default().and_at(cycle, faults)
    }

    /// Adds another event (builder style); events are kept sorted by
    /// cycle, ties in insertion order.
    pub fn and_at(mut self, cycle: u64, faults: FaultSet) -> Self {
        self.events.push(FaultEvent { cycle, faults });
        self.events.sort_by_key(|e| e.cycle);
        self
    }

    /// True when no event kills anything (the engine then skips all fault
    /// machinery).
    pub fn is_empty(&self) -> bool {
        self.events.iter().all(|e| e.faults.is_empty())
    }

    /// The events, sorted by cycle.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}
