//! Typed configuration errors.
//!
//! The engine historically reported bad parameters by panicking wherever a
//! value was first *used* — an invalid rate deep inside the injection loop
//! of one job of a thousand-job sweep.  [`crate::Config::validate`] and
//! [`validate_sweep`] move those checks up front and return a
//! [`ConfigError`], so harnesses can refuse a malformed experiment before
//! scheduling anything (and exit with a diagnostic instead of a backtrace).

use std::fmt;

/// A rejected simulator or sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `num_vcs` was zero — the engine needs at least one virtual channel.
    NoVirtualChannels,
    /// `buf_size` was zero — credit-based flow control needs buffer space.
    NoBufferSpace,
    /// `window` was zero — warmup and measurement windows would be empty.
    ZeroWindow,
    /// `speedup` was zero — no switch-allocation rounds would ever run.
    ZeroSpeedup,
    /// `sat_latency` was not a positive finite number.
    BadSaturationLatency(f64),
    /// `vlb_candidates` was zero — UGAL needs at least one VLB draw.
    NoVlbCandidates,
    /// An offered load was outside `(0, 1]` (Bernoulli injection per node
    /// per cycle cannot exceed one packet).
    BadRate(f64),
    /// A sweep was scheduled with no offered loads.
    EmptyRates,
    /// A sweep was scheduled with no replication seeds.
    EmptySeeds,
    /// The same seed appeared twice in a seed list: the duplicated
    /// replications would be bit-identical and silently over-weight that
    /// seed in the aggregate.
    DuplicateSeed(u64),
    /// `shards` was zero — at least one shard worker must own the network.
    ZeroShards,
    /// More shards than dragonfly groups: shards own whole groups, so a
    /// shard would be left with nothing to simulate.
    ShardsExceedGroups {
        /// The configured shard count.
        shards: u32,
        /// Groups in the topology.
        groups: u32,
    },
    /// The shard count does not divide the group count: shard ownership is
    /// a fixed-size contiguous group range, so uneven splits are rejected
    /// rather than silently load-imbalanced.
    ShardsDontDivideGroups {
        /// The configured shard count.
        shards: u32,
        /// Groups in the topology.
        groups: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoVirtualChannels => {
                write!(f, "num_vcs is 0: the engine needs at least one VC")
            }
            ConfigError::NoBufferSpace => {
                write!(
                    f,
                    "buf_size is 0: per-VC buffers need at least one flit of space"
                )
            }
            ConfigError::ZeroWindow => {
                write!(
                    f,
                    "window is 0: warmup and measurement windows would be empty"
                )
            }
            ConfigError::ZeroSpeedup => {
                write!(f, "speedup is 0: no switch-allocation rounds would run")
            }
            ConfigError::BadSaturationLatency(v) => {
                write!(f, "sat_latency {v} is not a positive finite latency")
            }
            ConfigError::NoVlbCandidates => {
                write!(f, "vlb_candidates is 0: UGAL needs at least one VLB draw")
            }
            ConfigError::BadRate(r) => {
                write!(f, "offered load {r} is outside (0, 1]")
            }
            ConfigError::EmptyRates => write!(f, "no offered loads to sweep"),
            ConfigError::EmptySeeds => write!(f, "no replication seeds to sweep"),
            ConfigError::DuplicateSeed(s) => {
                write!(f, "seed {s} appears more than once in the seed list")
            }
            ConfigError::ZeroShards => {
                write!(f, "shards is 0: at least one shard worker is required")
            }
            ConfigError::ShardsExceedGroups { shards, groups } => {
                write!(
                    f,
                    "shards {shards} exceeds the {groups} dragonfly groups: \
                     each shard must own at least one whole group"
                )
            }
            ConfigError::ShardsDontDivideGroups { shards, groups } => {
                write!(
                    f,
                    "shards {shards} does not divide the {groups} dragonfly \
                     groups evenly: shard ownership is a fixed-size group range"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validates the (rates × seeds) grid of a sweep: every rate in `(0, 1]`,
/// at least one rate, at least one seed, no duplicate seeds.
pub fn validate_sweep(rates: &[f64], seeds: &[u64]) -> Result<(), ConfigError> {
    if rates.is_empty() {
        return Err(ConfigError::EmptyRates);
    }
    for &r in rates {
        if !(r > 0.0 && r <= 1.0) {
            return Err(ConfigError::BadRate(r));
        }
    }
    if seeds.is_empty() {
        return Err(ConfigError::EmptySeeds);
    }
    let mut sorted = seeds.to_vec();
    sorted.sort_unstable();
    if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
        return Err(ConfigError::DuplicateSeed(w[0]));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_grid_is_validated() {
        assert!(validate_sweep(&[0.1, 1.0], &[1, 2]).is_ok());
        assert_eq!(validate_sweep(&[], &[1]), Err(ConfigError::EmptyRates));
        assert_eq!(validate_sweep(&[0.0], &[1]), Err(ConfigError::BadRate(0.0)));
        assert_eq!(
            validate_sweep(&[-0.5], &[1]),
            Err(ConfigError::BadRate(-0.5))
        );
        assert_eq!(validate_sweep(&[1.5], &[1]), Err(ConfigError::BadRate(1.5)));
        assert_eq!(validate_sweep(&[0.1], &[]), Err(ConfigError::EmptySeeds));
        assert_eq!(
            validate_sweep(&[0.1], &[3, 1, 3]),
            Err(ConfigError::DuplicateSeed(3))
        );
    }

    #[test]
    fn errors_render_a_diagnostic() {
        let msg = ConfigError::DuplicateSeed(7).to_string();
        assert!(msg.contains("seed 7"), "{msg}");
        let msg = ConfigError::ShardsDontDivideGroups {
            shards: 4,
            groups: 9,
        }
        .to_string();
        assert!(msg.contains('4') && msg.contains('9'), "{msg}");
    }
}
