//! Simulator behaviour tests: conservation, latency physics, adaptivity.

use crate::*;
use std::sync::Arc;
use tugal_routing::{PathProvider, RuleProvider, TableProvider, VlbRule};
use tugal_topology::{Dragonfly, DragonflyParams};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

fn topo(p: u32, a: u32, h: u32, g: u32) -> Arc<Dragonfly> {
    Arc::new(Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap())
}

fn quick(routing: RoutingAlgorithm) -> Config {
    Config::quick().for_routing(routing)
}

fn sim(
    t: &Arc<Dragonfly>,
    provider: Arc<dyn PathProvider>,
    pattern: Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    rate: f64,
) -> SimResult {
    Simulator::new(t.clone(), provider, pattern, routing, quick(routing)).run(rate)
}

fn all_paths(t: &Arc<Dragonfly>) -> Arc<dyn PathProvider> {
    Arc::new(TableProvider::all_paths(t.clone()))
}

#[test]
fn uniform_low_load_delivers_everything() {
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let r = sim(&t, all_paths(&t), pattern, RoutingAlgorithm::Min, 0.05);
    assert!(!r.saturated, "{r:?}");
    assert!(r.delivered > 0);
    // Accepted ~ offered at low load.
    assert!(
        (r.throughput - 0.05).abs() < 0.01,
        "throughput {} vs offered 0.05",
        r.throughput
    );
}

#[test]
fn zero_load_latency_matches_link_latencies() {
    // At near-zero load a MIN-routed packet crosses: injection (1) +
    // up to l(10) + g(15) + l(10) + ejection (1) = 37 cycles plus queueing
    // and allocation slack; the average over path shapes must sit between
    // the terminal-only (2) and the max (~40).
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let r = sim(&t, all_paths(&t), pattern, RoutingAlgorithm::Min, 0.01);
    assert!(
        r.avg_latency > 15.0 && r.avg_latency < 60.0,
        "avg latency {}",
        r.avg_latency
    );
}

#[test]
fn min_routing_hop_counts_are_minimal() {
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let r = sim(&t, all_paths(&t), pattern, RoutingAlgorithm::Min, 0.05);
    // MIN paths are at most 3 hops.
    assert!(r.avg_hops <= 3.0 + 1e-9, "{}", r.avg_hops);
    assert_eq!(r.vlb_fraction, 0.0);
}

#[test]
fn vlb_routing_uses_longer_paths() {
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let min = sim(
        &t,
        all_paths(&t),
        pattern.clone(),
        RoutingAlgorithm::Min,
        0.05,
    );
    let vlb = sim(&t, all_paths(&t), pattern, RoutingAlgorithm::Vlb, 0.05);
    assert!(
        vlb.avg_hops > min.avg_hops + 0.5,
        "{} vs {}",
        vlb.avg_hops,
        min.avg_hops
    );
}

#[test]
fn min_saturates_on_adversarial_while_vlb_does_not() {
    // shift(1,0) on the maximal dfly(2,4,2,9): MIN squeezes 8 nodes through
    // 1 global link (cap 0.125/node); VLB spreads over 7 groups.
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let min = sim(
        &t,
        all_paths(&t),
        pattern.clone(),
        RoutingAlgorithm::Min,
        0.3,
    );
    assert!(
        min.saturated,
        "MIN should saturate at 0.3 on adversarial: {min:?}"
    );
    let vlb = sim(&t, all_paths(&t), pattern, RoutingAlgorithm::Vlb, 0.3);
    assert!(!vlb.saturated, "VLB should survive 0.3: {vlb:?}");
}

#[test]
fn ugal_adapts_uniform_to_min_and_adversarial_to_vlb() {
    let t = topo(2, 4, 2, 9);
    let ur: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let on_ur = sim(&t, all_paths(&t), ur, RoutingAlgorithm::UgalL, 0.2);
    let on_adv = sim(&t, all_paths(&t), adv, RoutingAlgorithm::UgalL, 0.2);
    assert!(
        on_ur.vlb_fraction < 0.35,
        "uniform traffic should mostly ride MIN: {}",
        on_ur.vlb_fraction
    );
    // On adversarial traffic at 0.2 (above MIN's 0.125 capacity) a large
    // share must divert to VLB, well above the uniform-traffic share.
    assert!(
        on_adv.vlb_fraction > 0.35,
        "adversarial traffic should ride VLB substantially: {}",
        on_adv.vlb_fraction
    );
    assert!(
        on_adv.vlb_fraction > on_ur.vlb_fraction + 0.1,
        "adaptivity: {} vs {}",
        on_adv.vlb_fraction,
        on_ur.vlb_fraction
    );
    assert!(!on_adv.saturated, "{on_adv:?}");
}

#[test]
fn ugal_g_also_adapts() {
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let r = sim(&t, all_paths(&t), adv, RoutingAlgorithm::UgalG, 0.2);
    assert!(r.vlb_fraction > 0.5, "{}", r.vlb_fraction);
    assert!(!r.saturated);
}

#[test]
fn par_functions_and_reroutes() {
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let r = sim(&t, all_paths(&t), adv, RoutingAlgorithm::Par, 0.2);
    assert!(!r.saturated, "{r:?}");
    assert!(r.vlb_fraction > 0.3, "{}", r.vlb_fraction);
}

#[test]
fn rule_provider_works_in_simulation() {
    let t = topo(2, 4, 2, 3);
    let provider: Arc<dyn PathProvider> = Arc::new(RuleProvider::new(
        t.clone(),
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.5,
        },
    ));
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let r = sim(&t, provider, adv, RoutingAlgorithm::UgalL, 0.2);
    assert!(r.delivered > 0);
    assert!(!r.saturated, "{r:?}");
}

#[test]
fn conservation_no_packet_lost_below_saturation() {
    // At a stable load, deliveries during the window track injections
    // (within the in-flight population, which is bounded).
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let r = sim(&t, all_paths(&t), pattern, RoutingAlgorithm::UgalL, 0.1);
    let inflight_bound = 4 * t.num_nodes() as u64;
    assert!(
        r.delivered + inflight_bound >= r.injected && r.delivered <= r.injected + inflight_bound,
        "delivered {} vs injected {}",
        r.delivered,
        r.injected
    );
}

#[test]
fn deterministic_given_seed() {
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let provider = all_paths(&t);
    let cfg = quick(RoutingAlgorithm::UgalL);
    let a = Simulator::new(
        t.clone(),
        provider.clone(),
        pattern.clone(),
        RoutingAlgorithm::UgalL,
        cfg.clone(),
    )
    .run(0.1);
    let b = Simulator::new(t.clone(), provider, pattern, RoutingAlgorithm::UgalL, cfg).run(0.1);
    assert_eq!(a, b);
}

#[test]
fn higher_load_means_higher_latency_under_min() {
    // MIN routing has no adaptive path choice, so queueing delay makes
    // latency monotone in load.  (UGAL-L is deliberately *not* monotone at
    // low load — see `ugal_l_misroutes_at_low_load`.)
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let lo = sim(
        &t,
        all_paths(&t),
        pattern.clone(),
        RoutingAlgorithm::Min,
        0.05,
    );
    let hi = sim(&t, all_paths(&t), pattern, RoutingAlgorithm::Min, 0.6);
    assert!(
        hi.avg_latency > lo.avg_latency,
        "{} vs {}",
        hi.avg_latency,
        lo.avg_latency
    );
}

#[test]
fn ugal_l_misroutes_at_low_load() {
    // The documented UGAL-L artifact the paper's T-UGAL exploits: with
    // near-empty queues, a single buffered flit flips the
    // `q_min·len_min <= q_vlb·len_vlb` comparison, sending a noticeable
    // share of packets over (long) VLB paths, which raises low-load
    // latency.  T-UGAL shortens exactly those paths (Figure 6).
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let lo = sim(
        &t,
        all_paths(&t),
        pattern.clone(),
        RoutingAlgorithm::UgalL,
        0.05,
    );
    let mid = sim(&t, all_paths(&t), pattern, RoutingAlgorithm::UgalL, 0.4);
    assert!(
        lo.vlb_fraction > mid.vlb_fraction,
        "low-load noise should cause more VLB misroutes: {} vs {}",
        lo.vlb_fraction,
        mid.vlb_fraction
    );
    assert!(lo.vlb_fraction > 0.1, "{}", lo.vlb_fraction);
}

#[test]
fn no_deadlock_under_heavy_adversarial_load() {
    // Push far past saturation; the network must keep delivering (deadlock
    // would freeze deliveries entirely).
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    for routing in [
        RoutingAlgorithm::UgalL,
        RoutingAlgorithm::UgalG,
        RoutingAlgorithm::Par,
        RoutingAlgorithm::Vlb,
    ] {
        let r = sim(&t, all_paths(&t), adv.clone(), routing, 0.9);
        assert!(
            r.delivered > 0,
            "{}: no packets delivered under overload (deadlock?)",
            routing.name()
        );
        assert!(
            !r.deadlock_suspected,
            "{}: watchdog tripped under overload",
            routing.name()
        );
    }
}

#[test]
fn perhop_vc_scheme_runs() {
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let mut cfg = Config::quick();
    cfg.vc_scheme = tugal_routing::VcScheme::PerHop;
    cfg.num_vcs = 6;
    let r = Simulator::new(t.clone(), all_paths(&t), adv, RoutingAlgorithm::UgalG, cfg).run(0.2);
    assert!(r.delivered > 0);
    assert!(!r.saturated, "{r:?}");
}

#[test]
#[should_panic(expected = "needs 5 VCs")]
fn par_rejects_insufficient_vcs() {
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let cfg = Config::quick(); // 4 VCs
    let _ = Simulator::new(t.clone(), all_paths(&t), adv, RoutingAlgorithm::Par, cfg);
}

#[test]
fn latency_curve_is_monotonic_until_saturation() {
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let provider = all_paths(&t);
    let cfg = quick(RoutingAlgorithm::UgalL);
    let opts = SweepOptions {
        seeds: vec![7],
        resolution: 0.02,
    };
    let curve = latency_curve(
        &t,
        &provider,
        &pattern,
        RoutingAlgorithm::Min,
        &cfg,
        &[0.05, 0.2, 0.4],
        &opts,
    );
    assert_eq!(curve.len(), 3);
    assert!(curve[0].result.avg_latency <= curve[1].result.avg_latency);
    assert!(curve[1].result.avg_latency <= curve[2].result.avg_latency);
}

#[test]
fn saturation_throughput_orders_min_below_vlb_on_adversarial() {
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let provider = all_paths(&t);
    let opts = SweepOptions {
        seeds: vec![5],
        resolution: 0.02,
    };
    let cfg_min = quick(RoutingAlgorithm::Min);
    let min_sat =
        saturation_throughput(&t, &provider, &adv, RoutingAlgorithm::Min, &cfg_min, &opts);
    let cfg_u = quick(RoutingAlgorithm::UgalL);
    let ugal_sat =
        saturation_throughput(&t, &provider, &adv, RoutingAlgorithm::UgalL, &cfg_u, &opts);
    assert!(
        min_sat < ugal_sat,
        "MIN {min_sat} should saturate below UGAL-L {ugal_sat} on adversarial traffic"
    );
    // MIN's analytic cap on this pattern is 1/8 per node.
    assert!(min_sat <= 0.2, "{min_sat}");
}

/// A pattern sending every node's traffic to a single hot node — exercises
/// the ejection bottleneck (one ejection channel drains 1 flit/cycle).
struct HotSpot {
    target: tugal_topology::NodeId,
}

impl TrafficPattern for HotSpot {
    fn dest(
        &self,
        src: tugal_topology::NodeId,
        _rng: &mut rand::rngs::SmallRng,
    ) -> Option<tugal_topology::NodeId> {
        (src != self.target).then_some(self.target)
    }
    fn name(&self) -> String {
        "hotspot".into()
    }
}

#[test]
fn ejection_bottleneck_saturates_hotspot_traffic() {
    let t = topo(2, 4, 2, 9); // 72 nodes
    let pattern: Arc<dyn TrafficPattern> = Arc::new(HotSpot {
        target: tugal_topology::NodeId(0),
    });
    // 71 senders share one ejection channel: per-node capacity ~ 1/71.
    let r = sim(
        &t,
        all_paths(&t),
        pattern.clone(),
        RoutingAlgorithm::Min,
        0.1,
    );
    assert!(r.saturated, "hotspot at 0.1/node must saturate: {r:?}");
    let r = sim(&t, all_paths(&t), pattern, RoutingAlgorithm::Min, 0.01);
    assert!(!r.saturated, "hotspot at 0.01/node fits: {r:?}");
}

#[test]
fn smaller_buffers_saturate_earlier() {
    // The mechanism behind Figure 16.
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let provider = all_paths(&t);
    let run = |buf: u16, rate: f64| {
        let mut cfg = quick(RoutingAlgorithm::UgalL);
        cfg.buf_size = buf;
        Simulator::new(
            t.clone(),
            provider.clone(),
            adv.clone(),
            RoutingAlgorithm::UgalL,
            cfg,
        )
        .run(rate)
    };
    // At a moderate load, tiny buffers must show strictly higher latency.
    let small = run(2, 0.2);
    let big = run(32, 0.2);
    assert!(
        small.saturated || small.avg_latency > big.avg_latency,
        "buf=2 {small:?} vs buf=32 {big:?}"
    );
}

#[test]
fn higher_link_latency_raises_zero_load_latency() {
    // The mechanism behind Figure 15.
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let provider = all_paths(&t);
    let run = |ll: u32, gl: u32| {
        let mut cfg = quick(RoutingAlgorithm::UgalG);
        cfg.local_latency = ll;
        cfg.global_latency = gl;
        Simulator::new(
            t.clone(),
            provider.clone(),
            pattern.clone(),
            RoutingAlgorithm::UgalG,
            cfg,
        )
        .run(0.05)
    };
    let fast = run(10, 15);
    let slow = run(40, 60);
    assert!(
        slow.avg_latency > fast.avg_latency + 20.0,
        "{} vs {}",
        slow.avg_latency,
        fast.avg_latency
    );
}

#[test]
fn speedup_two_dominates_speedup_one() {
    // The mechanism behind Figure 17: less head-of-line blocking.
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let provider = all_paths(&t);
    let run = |speedup: u32| {
        let mut cfg = quick(RoutingAlgorithm::Par);
        cfg.speedup = speedup;
        Simulator::new(
            t.clone(),
            provider.clone(),
            adv.clone(),
            RoutingAlgorithm::Par,
            cfg,
        )
        .run(0.25)
    };
    let s1 = run(1);
    let s2 = run(2);
    let score = |r: &SimResult| {
        if r.saturated {
            f64::INFINITY
        } else {
            r.avg_latency
        }
    };
    assert!(
        score(&s2) <= score(&s1) + 10.0,
        "speedup 2 {s2:?} should not lose to speedup 1 {s1:?}"
    );
}

#[test]
fn more_vcs_do_not_hurt_throughput() {
    // The mechanism behind Figure 18: routing(6) has more buffering.
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let provider = all_paths(&t);
    let run = |scheme: tugal_routing::VcScheme, vcs: u8, rate: f64| {
        let mut cfg = quick(RoutingAlgorithm::UgalG);
        cfg.vc_scheme = scheme;
        cfg.num_vcs = vcs;
        Simulator::new(
            t.clone(),
            provider.clone(),
            adv.clone(),
            RoutingAlgorithm::UgalG,
            cfg,
        )
        .run(rate)
    };
    let compact = run(tugal_routing::VcScheme::Compact, 4, 0.3);
    let perhop = run(tugal_routing::VcScheme::PerHop, 6, 0.3);
    assert!(perhop.delivered > 0 && compact.delivered > 0);
    // routing(6) must not saturate where routing(4) survives.
    if !compact.saturated {
        assert!(
            !perhop.saturated || perhop.avg_latency < 2.0 * compact.avg_latency,
            "routing(6) {perhop:?} vs routing(4) {compact:?}"
        );
    }
}

#[test]
fn pure_vlb_marks_all_cross_group_packets() {
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let r = sim(&t, all_paths(&t), adv, RoutingAlgorithm::Vlb, 0.1);
    assert!(r.vlb_fraction > 0.99, "{}", r.vlb_fraction);
}

#[test]
fn throughput_never_exceeds_offered_load() {
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    for rate in [0.05, 0.3, 0.6] {
        let r = sim(
            &t,
            all_paths(&t),
            pattern.clone(),
            RoutingAlgorithm::UgalL,
            rate,
        );
        assert!(
            r.throughput <= rate * 1.05 + 0.01,
            "accepted {} offered {rate}",
            r.throughput
        );
    }
}

#[test]
fn more_vlb_candidates_help_adversarial_traffic() {
    // Extension knob: UGAL choosing the better of k VLB draws should not
    // be worse than the paper's single draw.
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let provider = all_paths(&t);
    let run = |k: u8| {
        let mut cfg = quick(RoutingAlgorithm::UgalG);
        cfg.vlb_candidates = k;
        Simulator::new(
            t.clone(),
            provider.clone(),
            adv.clone(),
            RoutingAlgorithm::UgalG,
            cfg,
        )
        .run(0.25)
    };
    let one = run(1);
    let four = run(4);
    let score = |r: &SimResult| {
        if r.saturated {
            f64::INFINITY
        } else {
            r.avg_latency
        }
    };
    assert!(
        score(&four) <= score(&one) * 1.1 + 5.0,
        "4 candidates {four:?} should not lose to 1 {one:?}"
    );
}

#[test]
fn ugal_threshold_biases_toward_min() {
    // Large positive T forces MIN even when queues disagree.
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let provider = all_paths(&t);
    let run = |threshold: i64| {
        let mut cfg = quick(RoutingAlgorithm::UgalL);
        cfg.ugal_threshold = threshold;
        Simulator::new(
            t.clone(),
            provider.clone(),
            adv.clone(),
            RoutingAlgorithm::UgalL,
            cfg,
        )
        .run(0.1)
    };
    let unbiased = run(0);
    let biased = run(1_000_000);
    assert!(
        biased.vlb_fraction < 0.01,
        "huge T must pin routing to MIN: {}",
        biased.vlb_fraction
    );
    assert!(unbiased.vlb_fraction > biased.vlb_fraction);
}

#[test]
fn percentiles_bracket_the_mean() {
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let r = sim(&t, all_paths(&t), pattern, RoutingAlgorithm::Min, 0.2);
    assert!(r.latency_p50 > 0.0);
    assert!(r.latency_p99 >= r.latency_p50);
    // Histogram buckets are powers of two, so allow wide but sane bounds.
    assert!(r.latency_p50 < r.avg_latency * 4.0, "{r:?}");
    assert!(r.latency_p99 < 1_000.0, "{r:?}");
}

#[test]
fn channel_utilization_tracks_offered_load() {
    let t = topo(2, 4, 2, 9);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let lo = sim(
        &t,
        all_paths(&t),
        pattern.clone(),
        RoutingAlgorithm::Min,
        0.05,
    );
    let hi = sim(&t, all_paths(&t), pattern, RoutingAlgorithm::Min, 0.4);
    assert!(
        hi.mean_global_util > lo.mean_global_util * 3.0,
        "{} vs {}",
        hi.mean_global_util,
        lo.mean_global_util
    );
    assert!(hi.max_channel_util <= 1.0 + 1e-9, "{}", hi.max_channel_util);
    assert!(lo.mean_local_util > 0.0);
}

#[test]
fn adversarial_min_saturates_the_direct_link() {
    // Under shift(1,0) with MIN routing, the bottleneck global channel
    // must be pinned at ~full utilization once offered load exceeds its
    // capacity share.
    let t = topo(2, 4, 2, 9);
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let r = sim(&t, all_paths(&t), adv, RoutingAlgorithm::Min, 0.3);
    assert!(r.max_channel_util > 0.9, "{}", r.max_channel_util);
}
