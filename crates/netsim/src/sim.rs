//! The cycle-driven simulation engine.
//!
//! ## Structure
//!
//! All per-channel state lives in flat vectors indexed by
//! [`tugal_topology::ChannelId`]:
//!
//! * `staging` — flits that won switch allocation and wait for their 1
//!   flit/cycle slot on the wire (they already hold a downstream credit,
//!   so backpressure is preserved),
//! * `in_buf` — the downstream router's input buffer, one FIFO per VC,
//! * `credits` — sender-side credit counters per VC; credit return takes
//!   the channel latency, modelled with a calendar ring.
//!
//! In-flight flits sit in an arrival calendar ring rather than per-channel
//! pipelines, so per-cycle cost is proportional to the number of flits in
//! flight, not to topology size.  Each router keeps a *ready list* of
//! non-empty input-buffer FIFOs; switch allocation visits only those, with
//! a rotating round-robin origin and `speedup` allocation rounds per cycle
//! (one winner per output channel per round).
//!
//! ## Routing
//!
//! Packets are source-routed: the UGAL decision (one MIN candidate versus
//! one VLB candidate, drawn from the configured
//! [`tugal_routing::PathProvider`]) runs when the packet reaches the head
//! of its injection queue at the source switch.  PAR may revise a MIN
//! decision once, at the second router inside the source group, switching
//! to a fresh VLB path from that router (with the extra VC class the
//! +1-VC configuration provides).

use crate::config::{Config, RoutingAlgorithm};
use crate::stats::SimResult;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;
use tugal_routing::{vc_class, Path, PathProvider};
use tugal_topology::{ChannelKind, Dragonfly, Endpoint, NodeId};
use tugal_traffic::TrafficPattern;

/// Per-node cap on the source queue.  BookSim models infinite source
/// queues; bounding them only matters beyond saturation (where the latency
/// threshold has long fired) and keeps memory finite during deep-saturation
/// sweep points.  Overflowing packets are dropped and counted as injected.
const SOURCE_QUEUE_CAP: usize = 256;

/// Early-exit guard: if more packets than this per node are in flight the
/// run is declared saturated without finishing the window.
const INFLIGHT_CAP_PER_NODE: usize = 64;

const F_ROUTED: u8 = 1;
const F_REVISABLE: u8 = 2;
const F_VLB: u8 = 4;

#[derive(Clone)]
struct Packet {
    dst_node: u32,
    birth: u64,
    path: Path,
    /// Index of the next hop to take on `path`.
    hop: u8,
    /// VC the packet occupies on its current channel.
    cur_vc: u8,
    /// Channel currently carrying/buffering the packet.
    cur_chan: u32,
    /// Local/global hops taken before `path` started (PAR reroute).
    pre_local: u8,
    /// Network hops taken so far (for statistics).
    hops_taken: u8,
    flags: u8,
}

/// A configured simulation; [`Simulator::run`] executes it at one offered
/// load.
pub struct Simulator {
    topo: Arc<Dragonfly>,
    provider: Arc<dyn PathProvider>,
    pattern: Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: Config,
}

impl Simulator {
    /// Builds a simulator.  `cfg.num_vcs` must cover the VC classes the
    /// routing needs (use [`Config::for_routing`]).
    pub fn new(
        topo: Arc<Dragonfly>,
        provider: Arc<dyn PathProvider>,
        pattern: Arc<dyn TrafficPattern>,
        routing: RoutingAlgorithm,
        cfg: Config,
    ) -> Self {
        let required =
            tugal_routing::required_vcs(cfg.vc_scheme, routing.progressive());
        assert!(
            cfg.num_vcs >= required,
            "{} under the {:?} scheme needs {} VCs, got {}",
            routing.name(),
            cfg.vc_scheme,
            required,
            cfg.num_vcs
        );
        Self {
            topo,
            provider,
            pattern,
            routing,
            cfg,
        }
    }

    /// Runs the configured warmup + measurement windows at `rate`
    /// packets/cycle/node (`0 < rate ≤ 1`).
    pub fn run(&self, rate: f64) -> SimResult {
        assert!(rate > 0.0 && rate <= 1.0, "injection rate {rate} out of (0,1]");
        Engine::new(self, rate).run()
    }
}

struct Engine<'a> {
    sim: &'a Simulator,
    rate: f64,
    now: u64,
    rng: SmallRng,
    v: usize, // num VCs

    packets: Vec<Packet>,
    free: Vec<u32>,
    in_flight: usize,

    // Per channel.
    latency: Vec<u32>,
    staging: Vec<VecDeque<u32>>,
    next_free: Vec<u64>,
    in_busy: Vec<bool>,
    busy_list: Vec<u32>,
    /// Credits available, per (channel * V + vc).
    credits: Vec<u16>,
    /// Downstream input buffers, per (channel * V + vc).
    in_buf: Vec<VecDeque<u32>>,
    /// Sum of in_buf occupancy over VCs, per channel (UGAL-G metric).
    buf_occ: Vec<u32>,
    /// Credits consumed, per channel (UGAL-L metric).
    cred_used: Vec<u32>,
    /// Destination switch of each network/injection channel (u32::MAX for
    /// ejection).
    dst_switch: Vec<u32>,
    /// Channels below this index are switch-to-switch (credit-managed on
    /// both sides); injection channels return no upstream credit (their
    /// upstream is the source queue).
    n_network: usize,

    // Per switch.
    ready: Vec<Vec<u32>>, // buffer indices (chan * V + vc)
    in_ready: Vec<bool>,  // per buffer index
    rr: Vec<usize>,
    out_stamp: Vec<u64>, // per channel: SA round stamp

    // Calendars.
    arrivals: Vec<Vec<u32>>,      // ring by cycle: packet indices
    credit_ring: Vec<Vec<u32>>,   // ring by cycle: buffer indices
    ring_size: usize,

    // Stats (window = measurement window; total = whole run, used when a
    // run saturates before the measurement window starts).
    measuring: bool,
    injected: u64,
    delivered: u64,
    latency_sum: f64,
    hops_sum: u64,
    total_injected: u64,
    total_delivered: u64,
    total_latency_sum: f64,
    total_hops_sum: u64,
    vlb_chosen: u64,
    routed: u64,
    saturated_early: bool,
    last_delivery: u64,
    deadlock_suspected: bool,
    /// Power-of-two latency histogram (measurement window).
    lat_hist: [u64; 24],
    /// Flits sent per channel during the measurement window.
    chan_flits: Vec<u32>,
    /// True for global channels (for utilization aggregation).
    is_global: Vec<bool>,
}

impl<'a> Engine<'a> {
    fn new(sim: &'a Simulator, rate: f64) -> Self {
        let topo = &sim.topo;
        let cfg = &sim.cfg;
        let v = cfg.num_vcs as usize;
        let n_chan = topo.num_channels();
        let max_lat = cfg
            .local_latency
            .max(cfg.global_latency)
            .max(cfg.terminal_latency) as usize;
        let ring_size = max_lat + 2;

        let mut latency = Vec::with_capacity(n_chan);
        let mut dst_switch = Vec::with_capacity(n_chan);
        let mut is_global = Vec::with_capacity(n_chan);
        for ch in topo.channels() {
            latency.push(match ch.kind {
                ChannelKind::Local => cfg.local_latency,
                ChannelKind::Global => cfg.global_latency,
                _ => cfg.terminal_latency,
            });
            dst_switch.push(match ch.dst {
                Endpoint::Switch(s) => s.0,
                Endpoint::Node(_) => u32::MAX,
            });
            is_global.push(ch.kind == ChannelKind::Global);
        }

        Engine {
            sim,
            rate,
            now: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            v,
            packets: Vec::new(),
            free: Vec::new(),
            in_flight: 0,
            latency,
            staging: vec![VecDeque::new(); n_chan],
            next_free: vec![0; n_chan],
            in_busy: vec![false; n_chan],
            busy_list: Vec::new(),
            credits: vec![cfg.buf_size; n_chan * v],
            in_buf: (0..n_chan * v).map(|_| VecDeque::new()).collect(),
            buf_occ: vec![0; n_chan],
            cred_used: vec![0; n_chan],
            dst_switch,
            n_network: topo.num_network_channels(),
            ready: vec![Vec::new(); topo.num_switches()],
            in_ready: vec![false; n_chan * v],
            rr: vec![0; topo.num_switches()],
            out_stamp: vec![0; n_chan],
            arrivals: vec![Vec::new(); ring_size],
            credit_ring: vec![Vec::new(); ring_size],
            ring_size,
            measuring: false,
            injected: 0,
            delivered: 0,
            latency_sum: 0.0,
            hops_sum: 0,
            total_injected: 0,
            total_delivered: 0,
            total_latency_sum: 0.0,
            total_hops_sum: 0,
            vlb_chosen: 0,
            routed: 0,
            saturated_early: false,
            last_delivery: 0,
            deadlock_suspected: false,
            lat_hist: [0; 24],
            chan_flits: vec![0; n_chan],
            is_global,
        }
    }

    fn alloc_packet(&mut self, p: Packet) -> u32 {
        self.in_flight += 1;
        if let Some(i) = self.free.pop() {
            self.packets[i as usize] = p;
            i
        } else {
            self.packets.push(p);
            (self.packets.len() - 1) as u32
        }
    }

    fn free_packet(&mut self, i: u32) {
        self.in_flight -= 1;
        self.free.push(i);
    }

    /// UGAL-L queue metric of an output channel at its source router:
    /// consumed downstream credits plus flits staged on the wire slot.
    #[inline]
    fn q_local(&self, chan: u32) -> u64 {
        self.cred_used[chan as usize] as u64 + self.staging[chan as usize].len() as u64
    }

    /// UGAL-G metric of a channel: downstream buffer occupancy plus staged
    /// flits (a global snapshot an implementation could not cheaply have).
    #[inline]
    fn q_global(&self, chan: u32) -> u64 {
        self.buf_occ[chan as usize] as u64 + self.staging[chan as usize].len() as u64
    }

    fn q_local_path(&self, path: &Path) -> u64 {
        if path.hops() == 0 {
            return 0;
        }
        let c = path.channel_at(&self.sim.topo, 0).0;
        self.q_local(c) * path.hops() as u64
    }

    fn q_global_path(&self, path: &Path) -> u64 {
        let topo = &self.sim.topo;
        (0..path.hops())
            .map(|i| self.q_global(path.channel_at(topo, i).0))
            .sum()
    }

    /// Draws `cfg.vlb_candidates` VLB candidates and keeps the one with
    /// the smallest queue metric (`global` selects the UGAL-G metric).
    /// With the default of one candidate this is a single provider draw —
    /// exactly the paper's UGAL.
    fn best_vlb_candidate(
        &mut self,
        provider: &dyn PathProvider,
        s: tugal_topology::SwitchId,
        d: tugal_topology::SwitchId,
        global: bool,
    ) -> Path {
        let k = self.sim.cfg.vlb_candidates.max(1);
        let mut best = provider.sample_vlb(s, d, &mut self.rng);
        if k == 1 {
            return best;
        }
        let metric = |e: &Self, p: &Path| {
            if global {
                e.q_global_path(p)
            } else {
                e.q_local_path(p)
            }
        };
        let mut best_q = metric(self, &best);
        for _ in 1..k {
            let cand = provider.sample_vlb(s, d, &mut self.rng);
            let q = metric(self, &cand);
            if q < best_q {
                best = cand;
                best_q = q;
            }
        }
        best
    }

    /// The initial routing decision at the source switch.
    fn route(&mut self, pi: u32) {
        let topo = self.sim.topo.clone();
        // Before routing, the placeholder path holds the source switch.
        let (s, d) = {
            let p = &self.packets[pi as usize];
            (p.path.src(), topo.switch_of_node(NodeId(p.dst_node)))
        };
        let provider = self.sim.provider.clone();
        let (path, used_vlb, revisable) = match self.sim.routing {
            RoutingAlgorithm::Min => (provider.sample_min(s, d, &mut self.rng), false, false),
            RoutingAlgorithm::Vlb => {
                let p = provider.sample_vlb(s, d, &mut self.rng);
                let vlb = p.hops() > 0;
                (p, vlb, false)
            }
            RoutingAlgorithm::UgalL | RoutingAlgorithm::Par => {
                let min = provider.sample_min(s, d, &mut self.rng);
                let vlb = self.best_vlb_candidate(&*provider, s, d, false);
                if min == vlb || min.hops() == 0 {
                    (min, false, false)
                } else {
                    let qm = self.q_local_path(&min) as i64;
                    let qv = self.q_local_path(&vlb) as i64;
                    if qm <= qv + self.sim.cfg.ugal_threshold {
                        (min, false, self.sim.routing == RoutingAlgorithm::Par)
                    } else {
                        (vlb, true, false)
                    }
                }
            }
            RoutingAlgorithm::UgalG => {
                let min = provider.sample_min(s, d, &mut self.rng);
                let vlb = self.best_vlb_candidate(&*provider, s, d, true);
                if min == vlb || min.hops() == 0 {
                    (min, false, false)
                } else {
                    let qm = self.q_global_path(&min) as i64;
                    let qv = self.q_global_path(&vlb) as i64;
                    if qm <= qv + self.sim.cfg.ugal_threshold {
                        (min, false, false)
                    } else {
                        (vlb, true, false)
                    }
                }
            }
        };
        self.routed += 1;
        if used_vlb {
            self.vlb_chosen += 1;
        }
        let p = &mut self.packets[pi as usize];
        p.path = path;
        p.hop = 0;
        p.flags |= F_ROUTED;
        if used_vlb {
            p.flags |= F_VLB;
        }
        if revisable {
            p.flags |= F_REVISABLE;
        }
    }

    /// PAR: possibly revise a MIN decision at the second router of the
    /// source group.
    fn par_revise(&mut self, pi: u32) {
        let topo = self.sim.topo.clone();
        let (cur, src_sw, dst_node, remaining) = {
            let p = &self.packets[pi as usize];
            if p.flags & F_REVISABLE == 0 || p.hop != 1 {
                return;
            }
            (p.path.switch(1), p.path.src(), p.dst_node, p.path.suffix(1))
        };
        // Only when the first hop stayed inside the source group.
        if topo.group_of(cur) != topo.group_of(src_sw) {
            self.packets[pi as usize].flags &= !F_REVISABLE;
            return;
        }
        let d = topo.switch_of_node(NodeId(dst_node));
        let provider = self.sim.provider.clone();
        let vlb = provider.sample_vlb(cur, d, &mut self.rng);
        let q_min = self.q_local_path(&remaining) as i64;
        let q_vlb = self.q_local_path(&vlb) as i64;
        let p = &mut self.packets[pi as usize];
        p.flags &= !F_REVISABLE;
        if q_min > q_vlb + self.sim.cfg.ugal_threshold && vlb.hops() > 0 {
            // Reroute: the packet has taken one local hop already.
            p.path = vlb;
            p.hop = 0;
            p.pre_local = 1;
            p.flags |= F_VLB;
            self.vlb_chosen += 1;
        }
    }

    /// Output channel and VC for the packet's next hop; `None` VC means no
    /// credit tracking (ejection).
    fn next_hop(&self, pi: u32) -> (u32, Option<u8>) {
        let topo = &self.sim.topo;
        let p = &self.packets[pi as usize];
        if p.hop as usize == p.path.hops() {
            (topo.ejection_channel(NodeId(p.dst_node)).0, None)
        } else {
            let c = p.path.channel_at(topo, p.hop as usize);
            let vc = vc_class(
                self.sim.cfg.vc_scheme,
                topo,
                &p.path,
                p.hop as usize,
                p.pre_local,
                0,
            );
            (c.0, Some(vc))
        }
    }

    fn run(mut self) -> SimResult {
        let cfg = self.sim.cfg.clone();
        let warmup = cfg.warmup_windows as u64 * cfg.window as u64;
        let total = cfg.total_cycles();
        let nodes = self.sim.topo.num_nodes();
        let inflight_cap = nodes * INFLIGHT_CAP_PER_NODE;
        let watchdog = (cfg.window as u64)
            .max(64 * (cfg.global_latency as u64 + cfg.local_latency as u64));

        while self.now < total {
            if self.now == warmup {
                self.measuring = true;
                self.injected = 0;
                self.delivered = 0;
                self.latency_sum = 0.0;
                self.hops_sum = 0;
                self.lat_hist = [0; 24];
            }
            self.step();
            if self.in_flight > inflight_cap {
                self.saturated_early = true;
                break;
            }
            // Deadlock watchdog: with packets in flight, *something* must
            // eject within a generous horizon; a correctly configured VC
            // scheme guarantees it.  A trip marks the run instead of
            // spinning to the end of the window.
            if self.in_flight > 0 && self.now.saturating_sub(self.last_delivery) > watchdog {
                self.deadlock_suspected = true;
                self.saturated_early = true;
                break;
            }
            self.now += 1;
        }

        // If the run saturated before the measurement window opened, fall
        // back to whole-run statistics so callers still see meaningful
        // (deeply saturated) numbers instead of zeros.
        let (delivered, injected, latency_sum, hops_sum, measured_cycles) =
            if self.measuring && !(self.saturated_early && self.delivered == 0) {
                let cycles = if self.saturated_early {
                    (self.now + 1).saturating_sub(warmup).max(1)
                } else {
                    cfg.window as u64
                };
                (self.delivered, self.injected, self.latency_sum, self.hops_sum, cycles)
            } else {
                (
                    self.total_delivered,
                    self.total_injected,
                    self.total_latency_sum,
                    self.total_hops_sum,
                    (self.now + 1).max(1),
                )
            };
        let avg_latency = if delivered > 0 {
            latency_sum / delivered as f64
        } else {
            f64::INFINITY
        };
        let throughput = delivered as f64 / (nodes as f64 * measured_cycles as f64);
        let saturated = self.saturated_early
            || avg_latency > cfg.sat_latency
            || (injected > 0 && delivered == 0);
        // Percentiles from the power-of-two histogram (geometric bucket
        // midpoints).
        let percentile = |p: f64| -> f64 {
            let total: u64 = self.lat_hist.iter().sum();
            if total == 0 {
                return f64::NAN;
            }
            let target = (p * total as f64).ceil() as u64;
            let mut seen = 0u64;
            for (i, &count) in self.lat_hist.iter().enumerate() {
                seen += count;
                if seen >= target {
                    let lo = (1u64 << i) as f64;
                    return lo * std::f64::consts::SQRT_2;
                }
            }
            f64::NAN
        };
        // Channel utilization over switch-to-switch channels, counted over
        // the whole run (warmup included): at steady state the ratio
        // matches the window view, and it stays meaningful for runs that
        // saturate before the window opens.
        let elapsed = (self.now + 1) as f64;
        let mut max_util = 0.0f64;
        let (mut gsum, mut gcount, mut lsum, mut lcount) = (0.0f64, 0u64, 0.0f64, 0u64);
        for ch in 0..self.n_network {
            let util = self.chan_flits[ch] as f64 / elapsed;
            max_util = max_util.max(util);
            if self.is_global[ch] {
                gsum += util;
                gcount += 1;
            } else {
                lsum += util;
                lcount += 1;
            }
        }
        SimResult {
            injection_rate: self.rate,
            avg_latency,
            throughput,
            avg_hops: if delivered > 0 {
                hops_sum as f64 / delivered as f64
            } else {
                0.0
            },
            delivered,
            injected,
            saturated,
            deadlock_suspected: self.deadlock_suspected,
            vlb_fraction: if self.routed > 0 {
                self.vlb_chosen as f64 / self.routed as f64
            } else {
                0.0
            },
            latency_p50: percentile(0.50),
            latency_p99: percentile(0.99),
            max_channel_util: max_util,
            mean_global_util: if gcount > 0 { gsum / gcount as f64 } else { 0.0 },
            mean_local_util: if lcount > 0 { lsum / lcount as f64 } else { 0.0 },
        }
    }

    fn step(&mut self) {
        let slot = (self.now % self.ring_size as u64) as usize;

        // 1. Credit returns.
        let credits_due = std::mem::take(&mut self.credit_ring[slot]);
        for idx in credits_due {
            self.credits[idx as usize] += 1;
            self.cred_used[idx as usize / self.v] -= 1;
        }

        // 2. Arrivals.
        let arrived = std::mem::take(&mut self.arrivals[slot]);
        for pi in arrived {
            let p = &self.packets[pi as usize];
            let ch = p.cur_chan as usize;
            let dst = self.dst_switch[ch];
            if dst == u32::MAX {
                // Ejection: delivered.
                let latency = (self.now - p.birth) as f64;
                let hops = p.hops_taken as u64;
                self.total_delivered += 1;
                self.total_latency_sum += latency;
                self.total_hops_sum += hops;
                self.last_delivery = self.now;
                // The histogram records the whole run and is reset when
                // the measurement window opens, so it stays aligned with
                // whichever stats (window or whole-run fallback) the final
                // report uses.
                let bucket =
                    (64 - ((latency as u64) | 1).leading_zeros() - 1).min(23) as usize;
                self.lat_hist[bucket] += 1;
                if self.measuring {
                    self.delivered += 1;
                    self.latency_sum += latency;
                    self.hops_sum += hops;
                }
                self.free_packet(pi);
            } else {
                let idx = ch * self.v + p.cur_vc as usize;
                self.in_buf[idx].push_back(pi);
                self.buf_occ[ch] += 1;
                if !self.in_ready[idx] {
                    self.in_ready[idx] = true;
                    self.ready[dst as usize].push(idx as u32);
                }
            }
        }

        // 3. Injection.
        self.inject();

        // 4. Switch allocation.
        self.allocate();

        // 5. Wire transmission (1 flit/cycle/channel).
        let mut i = 0;
        while i < self.busy_list.len() {
            let ch = self.busy_list[i] as usize;
            if self.now >= self.next_free[ch] {
                if let Some(pi) = self.staging[ch].pop_front() {
                    let arrive =
                        ((self.now + self.latency[ch] as u64) % self.ring_size as u64) as usize;
                    self.arrivals[arrive].push(pi);
                    self.next_free[ch] = self.now + 1;
                    self.chan_flits[ch] += 1;
                }
            }
            if self.staging[ch].is_empty() {
                self.in_busy[ch] = false;
                self.busy_list.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn inject(&mut self) {
        let topo = self.sim.topo.clone();
        let nodes = topo.num_nodes() as u32;
        for n in 0..nodes {
            if !self.rng.gen_bool(self.rate) {
                continue;
            }
            let Some(dst) = self.sim.pattern.dest(NodeId(n), &mut self.rng) else {
                continue;
            };
            self.total_injected += 1;
            if self.measuring {
                self.injected += 1;
            }
            let inj = topo.injection_channel(NodeId(n)).0 as usize;
            // The injection channel's downstream buffer plays the role of
            // BookSim's infinite source queue; cap it so deep-saturation
            // points keep finite memory (the latency threshold fires long
            // before the cap matters).
            if self.staging[inj].len() + self.buf_occ[inj] as usize >= SOURCE_QUEUE_CAP {
                continue; // dropped at an overflowing source queue
            }
            let pi = self.alloc_packet(Packet {
                dst_node: dst.0,
                birth: self.now,
                path: Path::single(topo.switch_of_node(NodeId(n))),
                hop: 0,
                cur_vc: 0,
                cur_chan: inj as u32,
                pre_local: 0,
                hops_taken: 0,
                flags: 0,
            });
            self.staging[inj].push_back(pi);
            if !self.in_busy[inj] {
                self.in_busy[inj] = true;
                self.busy_list.push(inj as u32);
            }
        }
    }

    fn allocate(&mut self) {
        let speedup = self.sim.cfg.speedup;
        let n_switches = self.sim.topo.num_switches();
        for sw in 0..n_switches {
            if self.ready[sw].is_empty() {
                continue;
            }
            for round in 0..speedup {
                let stamp = self.now * speedup as u64 + round as u64 + 1;
                let len = self.ready[sw].len();
                if len == 0 {
                    break;
                }
                let start = self.rr[sw] % len;
                for k in 0..len {
                    let pos = (start + k) % len;
                    let idx = self.ready[sw][pos] as usize;
                    let Some(&pi) = self.in_buf[idx].front() else {
                        continue;
                    };
                    // Route / revise at the head of the buffer.
                    if self.packets[pi as usize].flags & F_ROUTED == 0 {
                        self.route(pi);
                    } else if self.packets[pi as usize].flags & F_REVISABLE != 0 {
                        self.par_revise(pi);
                    }
                    let (out, vc) = self.next_hop(pi);
                    if self.out_stamp[out as usize] == stamp {
                        continue; // output taken this round
                    }
                    if let Some(vc) = vc {
                        let cidx = out as usize * self.v + vc as usize;
                        if self.credits[cidx] == 0 {
                            continue; // no downstream buffer space
                        }
                        self.credits[cidx] -= 1;
                        self.cred_used[out as usize] += 1;
                        let p = &mut self.packets[pi as usize];
                        p.cur_vc = vc;
                        p.hop += 1;
                        p.hops_taken += 1;
                    }
                    self.out_stamp[out as usize] = stamp;
                    // Dequeue from the input buffer and return its credit
                    // upstream (network channels only — the injection
                    // channel's upstream is the uncredit-managed source
                    // queue).
                    self.in_buf[idx].pop_front();
                    let in_ch = idx / self.v;
                    self.buf_occ[in_ch] -= 1;
                    if in_ch < self.n_network {
                        let due = ((self.now + self.latency[in_ch] as u64)
                            % self.ring_size as u64) as usize;
                        self.credit_ring[due].push(idx as u32);
                    }
                    // Forward.
                    let p = &mut self.packets[pi as usize];
                    p.cur_chan = out;
                    self.staging[out as usize].push_back(pi);
                    if !self.in_busy[out as usize] {
                        self.in_busy[out as usize] = true;
                        self.busy_list.push(out);
                    }
                }
            }
            self.rr[sw] = self.rr[sw].wrapping_add(1);
            // Compact the ready list.
            let mut list = std::mem::take(&mut self.ready[sw]);
            list.retain(|&idx| {
                if self.in_buf[idx as usize].is_empty() {
                    self.in_ready[idx as usize] = false;
                    false
                } else {
                    true
                }
            });
            self.ready[sw] = list;
        }
    }
}
