//! Unified experiment runner: one flat (series × rate × seed) job list.
//!
//! Figure-style experiments sweep several labelled series (provider ×
//! routing × config) over a shared offered-load grid, replicated over
//! seeds.  Running each series (or each rate) through its own nested
//! parallel call leaves workers idle at every join point and reallocates
//! engine state per run; the [`ExperimentRunner`] instead expands the full
//! cartesian job list up front, schedules it through a *single* parallel
//! batch over one [`WorkspacePool`], and aggregates per (series, rate)
//! with [`aggregate_runs`] — recording per-job wall-clock so harnesses can
//! report where the time went.

use crate::config::{Config, RoutingAlgorithm};
use crate::engine::WorkspacePool;
use crate::stats::SimResult;
use crate::sweep::{aggregate_runs, run_job, CurvePoint};
use rayon::prelude::*;
use std::sync::Arc;
use tugal_routing::PathProvider;
use tugal_topology::Dragonfly;
use tugal_traffic::TrafficPattern;

/// One labelled series of an experiment: which candidate provider, routing
/// algorithm, traffic pattern and simulator configuration to sweep.
pub struct SeriesSpec {
    /// Legend label (matching the paper's figures).
    pub label: String,
    /// Candidate-path source.
    pub provider: Arc<dyn PathProvider>,
    /// Traffic pattern.
    pub pattern: Arc<dyn TrafficPattern>,
    /// Routing algorithm.
    pub routing: RoutingAlgorithm,
    /// Fully-specified simulator configuration (the per-job seed is
    /// overridden from the runner's seed list).
    pub cfg: Config,
}

/// One series' aggregated sweep, with timing.
pub struct SeriesCurve {
    /// Legend label, copied from the [`SeriesSpec`].
    pub label: String,
    /// One aggregated point per offered load, each carrying the wall-clock
    /// its replications cost.
    pub points: Vec<CurvePoint>,
}

impl SeriesCurve {
    /// Total wall-clock of this series' jobs, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.points.iter().map(|p| p.elapsed_ms).sum()
    }
}

/// Owns the (series × rate × seed) job list of one experiment and runs it
/// as a single flat parallel batch.
pub struct ExperimentRunner {
    topo: Arc<Dragonfly>,
    series: Vec<SeriesSpec>,
}

impl ExperimentRunner {
    /// A runner over `topo` with no series yet.
    pub fn new(topo: Arc<Dragonfly>) -> Self {
        ExperimentRunner {
            topo,
            series: Vec::new(),
        }
    }

    /// Adds one labelled series.
    pub fn series(mut self, spec: SeriesSpec) -> Self {
        self.series.push(spec);
        self
    }

    /// Number of jobs `run` would schedule.
    pub fn job_count(&self, rates: &[f64], seeds: &[u64]) -> usize {
        self.series.len() * rates.len() * seeds.len()
    }

    /// Expands the full job list, runs it through one parallel batch over
    /// a shared workspace pool, and folds the per-seed results into one
    /// [`CurvePoint`] per (series, rate) via [`aggregate_runs`].
    pub fn run(&self, rates: &[f64], seeds: &[u64]) -> Vec<SeriesCurve> {
        assert!(
            !seeds.is_empty(),
            "ExperimentRunner needs at least one seed"
        );
        let pool = WorkspacePool::new();
        // Job order is series-major, then rate, then seed, so the flat
        // result vector chunks back into (series, rate) groups directly
        // (the parallel map preserves input order).
        let jobs: Vec<(usize, f64, u64)> = self
            .series
            .iter()
            .enumerate()
            .flat_map(|(si, _)| {
                rates
                    .iter()
                    .flat_map(move |&rate| seeds.iter().map(move |&seed| (si, rate, seed)))
            })
            .collect();
        let outcomes: Vec<(SimResult, f64)> = jobs
            .par_iter()
            .map(|&(si, rate, seed)| {
                let s = &self.series[si];
                run_job(
                    &pool,
                    &self.topo,
                    &s.provider,
                    &s.pattern,
                    s.routing,
                    &s.cfg,
                    rate,
                    seed,
                )
            })
            .collect();
        let per_series = rates.len() * seeds.len();
        self.series
            .iter()
            .zip(outcomes.chunks(per_series.max(1)))
            .map(|(spec, chunk)| SeriesCurve {
                label: spec.label.clone(),
                points: chunk
                    .chunks(seeds.len())
                    .zip(rates)
                    .map(|(group, &rate)| {
                        let runs: Vec<SimResult> = group.iter().map(|(r, _)| r.clone()).collect();
                        CurvePoint {
                            rate,
                            result: aggregate_runs(rate, &runs),
                            elapsed_ms: group.iter().map(|(_, ms)| ms).sum(),
                        }
                    })
                    .collect(),
            })
            .collect()
    }
}
