//! Unified experiment runner: one flat (series × rate × seed) job list.
//!
//! Figure-style experiments sweep several labelled series (provider ×
//! routing × config) over a shared offered-load grid, replicated over
//! seeds.  Running each series (or each rate) through its own nested
//! parallel call leaves workers idle at every join point and reallocates
//! engine state per run; the [`ExperimentRunner`] instead expands the full
//! cartesian job list up front, schedules it through a *single* parallel
//! batch over one [`WorkspacePool`], and aggregates per (series, rate)
//! with [`aggregate_runs`] — recording per-job wall-clock so harnesses can
//! report where the time went.
//!
//! Instrumented experiments go through
//! [`ExperimentRunner::run_observed`], which attaches one
//! [`SimObserver`] per job (built by a caller-supplied factory) and
//! returns the observers alongside the aggregated curves, so a metrics
//! consumer can merge per-seed collections into per-point telemetry.

use crate::config::{Config, RoutingAlgorithm};
use crate::engine::{NoopObserver, SimObserver, WorkspacePool};
use crate::stats::SimResult;
use crate::sweep::{aggregate_runs, run_job_observed, CurvePoint};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;
use tugal_routing::PathProvider;
use tugal_topology::Dragonfly;
use tugal_traffic::TrafficPattern;

/// One labelled series of an experiment: which candidate provider, routing
/// algorithm, traffic pattern and simulator configuration to sweep.
pub struct SeriesSpec {
    /// Legend label (matching the paper's figures).
    pub label: String,
    /// Candidate-path source.
    pub provider: Arc<dyn PathProvider>,
    /// Traffic pattern.
    pub pattern: Arc<dyn TrafficPattern>,
    /// Routing algorithm.
    pub routing: RoutingAlgorithm,
    /// Fully-specified simulator configuration (the per-job seed is
    /// overridden from the runner's seed list).
    pub cfg: Config,
    /// Optional fault schedule applied to every job of the series
    /// (`None` — the common case — leaves the engine on its pristine fast
    /// path).
    pub faults: Option<Arc<crate::fault::FaultSchedule>>,
}

/// One series' aggregated sweep, with timing.
pub struct SeriesCurve {
    /// Legend label, copied from the [`SeriesSpec`].
    pub label: String,
    /// One aggregated point per offered load, each carrying the wall-clock
    /// its replications cost.
    pub points: Vec<CurvePoint>,
}

impl SeriesCurve {
    /// Total wall-clock of this series' jobs, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.points.iter().map(|p| p.elapsed_ms).sum()
    }
}

/// An aggregated (series, rate) point together with the observers its seed
/// replications ran under, in seed order.
pub struct ObservedPoint<O> {
    /// The aggregated measurement and its wall-clock.
    pub point: CurvePoint,
    /// One observer per seed (whatever state each accumulated).
    pub observers: Vec<O>,
}

/// One series of an instrumented experiment.
pub struct ObservedCurve<O> {
    /// Legend label, copied from the [`SeriesSpec`].
    pub label: String,
    /// One observed point per offered load.
    pub points: Vec<ObservedPoint<O>>,
}

/// Identity of one scheduled job, handed to the observer factory of
/// [`ExperimentRunner::run_observed`].
pub struct JobInfo<'a> {
    /// Label of the job's series.
    pub label: &'a str,
    /// Index of the series within the runner.
    pub series: usize,
    /// Offered load of this job.
    pub rate: f64,
    /// RNG seed of this replication.
    pub seed: u64,
}

/// Whole-batch timing summary of one [`ExperimentRunner`] run: where the
/// wall-clock went, aggregated from the per-job timings.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Jobs scheduled (series × rates × seeds).
    pub jobs: usize,
    /// Wall-clock of the whole parallel batch, in milliseconds.
    pub wall_ms: f64,
    /// Sum of per-job simulation times, in milliseconds (exceeds
    /// `wall_ms` under parallel execution).
    pub sim_ms: f64,
    /// Jobs completed per wall-clock second.
    pub jobs_per_sec: f64,
    /// `(series label, rate, seed, ms)` of the slowest job.
    pub slowest: Option<(String, f64, u64, f64)>,
}

impl RunSummary {
    /// One-line human-readable form (the run summary harnesses print).
    pub fn oneline(&self) -> String {
        let slowest = match &self.slowest {
            Some((label, rate, seed, ms)) => {
                format!(", slowest {label} @ rate {rate} seed {seed}: {ms:.0} ms")
            }
            None => String::new(),
        };
        format!(
            "{} jobs in {:.0} ms wall ({:.1} jobs/s, {:.0} ms simulated){}",
            self.jobs, self.wall_ms, self.jobs_per_sec, self.sim_ms, slowest
        )
    }

    /// Folds another batch into this summary (totals summed, rates
    /// recomputed, slowest kept) — harnesses that schedule several batches
    /// report one combined line.
    pub fn absorb(&mut self, other: &RunSummary) {
        self.jobs += other.jobs;
        self.wall_ms += other.wall_ms;
        self.sim_ms += other.sim_ms;
        self.jobs_per_sec = if self.wall_ms > 0.0 {
            self.jobs as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        };
        // A present entry always beats an absent one, regardless of its
        // time: mapping `None` to 0.0 ms would let an empty batch keep its
        // `None` against a real (even 0 ms-rounded) slowest job.
        self.slowest = match (self.slowest.take(), &other.slowest) {
            (None, b) => b.clone(),
            (a @ Some(_), None) => a,
            (Some(a), Some(b)) => {
                if a.3 >= b.3 {
                    Some(a)
                } else {
                    Some(b.clone())
                }
            }
        };
    }
}

/// Owns the (series × rate × seed) job list of one experiment and runs it
/// as a single flat parallel batch.
pub struct ExperimentRunner {
    topo: Arc<Dragonfly>,
    series: Vec<SeriesSpec>,
}

impl ExperimentRunner {
    /// A runner over `topo` with no series yet.
    pub fn new(topo: Arc<Dragonfly>) -> Self {
        ExperimentRunner {
            topo,
            series: Vec::new(),
        }
    }

    /// Adds one labelled series.
    pub fn series(mut self, spec: SeriesSpec) -> Self {
        self.series.push(spec);
        self
    }

    /// Number of jobs `run` would schedule.
    pub fn job_count(&self, rates: &[f64], seeds: &[u64]) -> usize {
        self.series.len() * rates.len() * seeds.len()
    }

    /// Expands the full job list, runs it through one parallel batch over
    /// a shared workspace pool, and folds the per-seed results into one
    /// [`CurvePoint`] per (series, rate) via [`aggregate_runs`].
    pub fn run(&self, rates: &[f64], seeds: &[u64]) -> Vec<SeriesCurve> {
        self.run_with_summary(rates, seeds).0
    }

    /// Like [`ExperimentRunner::run`], also returning the batch's
    /// [`RunSummary`] (total wall-clock, jobs/sec, slowest job).
    pub fn run_with_summary(&self, rates: &[f64], seeds: &[u64]) -> (Vec<SeriesCurve>, RunSummary) {
        let (curves, summary) = self.run_observed(rates, seeds, |_| NoopObserver);
        let curves = curves
            .into_iter()
            .map(|c| SeriesCurve {
                label: c.label,
                points: c.points.into_iter().map(|p| p.point).collect(),
            })
            .collect();
        (curves, summary)
    }

    /// The instrumented schedule: every job gets its own observer from
    /// `make` (receiving the job's [`JobInfo`]), the engine feeds it
    /// cycle-level events, and the per-seed observers come back attached
    /// to their aggregated [`ObservedPoint`].
    ///
    /// [`ExperimentRunner::run`] is this with a [`NoopObserver`] factory —
    /// the monomorphized no-op engine — so observer-free runs cost
    /// nothing.
    pub fn run_observed<O, F>(
        &self,
        rates: &[f64],
        seeds: &[u64],
        make: F,
    ) -> (Vec<ObservedCurve<O>>, RunSummary)
    where
        O: SimObserver + Send,
        F: Fn(&JobInfo) -> O + Sync,
    {
        assert!(
            !seeds.is_empty(),
            "ExperimentRunner needs at least one seed"
        );
        let pool = WorkspacePool::new();
        // Job order is series-major, then rate, then seed, so the flat
        // result vector chunks back into (series, rate) groups directly
        // (the parallel map preserves input order).
        let jobs: Vec<(usize, f64, u64)> = self
            .series
            .iter()
            .enumerate()
            .flat_map(|(si, _)| {
                rates
                    .iter()
                    .flat_map(move |&rate| seeds.iter().map(move |&seed| (si, rate, seed)))
            })
            .collect();
        let batch_start = Instant::now();
        let outcomes: Vec<(SimResult, f64, O)> = jobs
            .par_iter()
            .map(|&(si, rate, seed)| {
                let s = &self.series[si];
                let mut obs = make(&JobInfo {
                    label: &s.label,
                    series: si,
                    rate,
                    seed,
                });
                let (result, ms) = run_job_observed(
                    &pool,
                    &self.topo,
                    &s.provider,
                    &s.pattern,
                    s.routing,
                    &s.cfg,
                    rate,
                    seed,
                    s.faults.as_ref(),
                    &mut obs,
                );
                (result, ms, obs)
            })
            .collect();
        let wall_ms = batch_start.elapsed().as_secs_f64() * 1e3;
        let sim_ms: f64 = outcomes.iter().map(|(_, ms, _)| ms).sum();
        let slowest = jobs
            .iter()
            .zip(&outcomes)
            .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .map(|(&(si, rate, seed), (_, ms, _))| {
                (self.series[si].label.clone(), rate, seed, *ms)
            });
        let summary = RunSummary {
            jobs: jobs.len(),
            wall_ms,
            sim_ms,
            jobs_per_sec: if wall_ms > 0.0 {
                jobs.len() as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            slowest,
        };

        let mut outcomes = outcomes.into_iter();
        let curves = self
            .series
            .iter()
            .map(|spec| ObservedCurve {
                label: spec.label.clone(),
                points: rates
                    .iter()
                    .map(|&rate| {
                        let group: Vec<(SimResult, f64, O)> =
                            outcomes.by_ref().take(seeds.len()).collect();
                        let runs: Vec<SimResult> =
                            group.iter().map(|(r, _, _)| r.clone()).collect();
                        let elapsed_ms = group.iter().map(|(_, ms, _)| ms).sum();
                        ObservedPoint {
                            point: CurvePoint {
                                rate,
                                result: aggregate_runs(rate, &runs),
                                elapsed_ms,
                            },
                            observers: group.into_iter().map(|(_, _, o)| o).collect(),
                        }
                    })
                    .collect(),
            })
            .collect();
        (curves, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::RunSummary;

    fn summary(jobs: usize, wall_ms: f64, slowest: Option<(&str, f64, u64, f64)>) -> RunSummary {
        RunSummary {
            jobs,
            wall_ms,
            sim_ms: wall_ms,
            jobs_per_sec: if wall_ms > 0.0 {
                jobs as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            slowest: slowest.map(|(l, r, s, ms)| (l.to_string(), r, s, ms)),
        }
    }

    #[test]
    fn absorb_sums_totals_and_recomputes_rate() {
        let mut a = summary(4, 1000.0, Some(("a", 0.1, 1, 400.0)));
        a.absorb(&summary(2, 1000.0, Some(("b", 0.2, 2, 900.0))));
        assert_eq!(a.jobs, 6);
        assert_eq!(a.wall_ms, 2000.0);
        assert!((a.jobs_per_sec - 3.0).abs() < 1e-9);
        assert_eq!(a.slowest.as_ref().unwrap().0, "b");
    }

    #[test]
    fn absorb_keeps_larger_slowest() {
        let mut a = summary(1, 10.0, Some(("slow", 0.1, 1, 9.0)));
        a.absorb(&summary(1, 10.0, Some(("fast", 0.1, 2, 3.0))));
        assert_eq!(a.slowest.as_ref().unwrap().0, "slow");
    }

    #[test]
    fn absorb_present_slowest_beats_none() {
        // Regression: `None` mapped to 0.0 ms used to survive against a
        // real slowest entry of 0.0 ms (and an empty self kept `None`
        // against any other batch on ties).
        let mut a = summary(0, 0.0, None);
        a.absorb(&summary(1, 5.0, Some(("only", 0.1, 7, 0.0))));
        assert_eq!(a.slowest.as_ref().unwrap().0, "only");

        let mut b = summary(1, 5.0, Some(("kept", 0.1, 7, 0.0)));
        b.absorb(&summary(0, 0.0, None));
        assert_eq!(b.slowest.as_ref().unwrap().0, "kept");
    }
}
