//! Unified experiment runner: one flat (series × rate × seed) job list.
//!
//! Figure-style experiments sweep several labelled series (provider ×
//! routing × config) over a shared offered-load grid, replicated over
//! seeds.  Running each series (or each rate) through its own nested
//! parallel call leaves workers idle at every join point and reallocates
//! engine state per run; the [`ExperimentRunner`] instead expands the full
//! cartesian job list up front, schedules it through a *single* parallel
//! batch over one [`WorkspacePool`], and aggregates per (series, rate)
//! with [`aggregate_runs`] — recording per-job wall-clock so harnesses can
//! report where the time went.
//!
//! Instrumented experiments go through
//! [`ExperimentRunner::run_observed`], which attaches one
//! [`SimObserver`] per job (built by a caller-supplied factory) and
//! returns the observers alongside the aggregated curves, so a metrics
//! consumer can merge per-seed collections into per-point telemetry.

use crate::config::{Config, RoutingAlgorithm};
use crate::engine::{
    EngineProf, NoopObserver, NoopProfiler, ProfileReport, SimObserver, StallKind, StallReport,
    WorkspacePool,
};
use crate::error::ConfigError;
use crate::journal::{job_digest, Journal};
use crate::stats::SimResult;
use crate::sweep::{aggregate_runs, run_job_ckpt, CurvePoint};
use crate::trace::{phase_totals, TraceSink, TraceSpan};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use tugal_routing::PathProvider;
use tugal_topology::Dragonfly;
use tugal_traffic::TrafficPattern;

/// One labelled series of an experiment: which candidate provider, routing
/// algorithm, traffic pattern and simulator configuration to sweep.
pub struct SeriesSpec {
    /// Legend label (matching the paper's figures).
    pub label: String,
    /// Candidate-path source.
    pub provider: Arc<dyn PathProvider>,
    /// Traffic pattern.
    pub pattern: Arc<dyn TrafficPattern>,
    /// Routing algorithm.
    pub routing: RoutingAlgorithm,
    /// Fully-specified simulator configuration (the per-job seed is
    /// overridden from the runner's seed list).
    pub cfg: Config,
    /// Optional fault schedule applied to every job of the series
    /// (`None` — the common case — leaves the engine on its pristine fast
    /// path).
    pub faults: Option<Arc<crate::fault::FaultSchedule>>,
}

/// One series' aggregated sweep, with timing.
pub struct SeriesCurve {
    /// Legend label, copied from the [`SeriesSpec`].
    pub label: String,
    /// One aggregated point per offered load, each carrying the wall-clock
    /// its replications cost.
    pub points: Vec<CurvePoint>,
}

impl SeriesCurve {
    /// Total wall-clock of this series' jobs, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.points.iter().map(|p| p.elapsed_ms).sum()
    }
}

/// An aggregated (series, rate) point together with the observers its seed
/// replications ran under, in seed order.
pub struct ObservedPoint<O> {
    /// The aggregated measurement and its wall-clock.
    pub point: CurvePoint,
    /// One observer per seed (whatever state each accumulated).
    pub observers: Vec<O>,
}

/// One series of an instrumented experiment.
pub struct ObservedCurve<O> {
    /// Legend label, copied from the [`SeriesSpec`].
    pub label: String,
    /// One observed point per offered load.
    pub points: Vec<ObservedPoint<O>>,
}

/// Identity of one scheduled job, handed to the observer factory of
/// [`ExperimentRunner::run_observed`].
pub struct JobInfo<'a> {
    /// Label of the job's series.
    pub label: &'a str,
    /// Index of the series within the runner.
    pub series: usize,
    /// Offered load of this job.
    pub rate: f64,
    /// RNG seed of this replication.
    pub seed: u64,
}

/// Per-job budget the runner applies uniformly over every scheduled job,
/// merged into each job's watchdog (the tighter of the two limits wins
/// when a series also arms its own [`crate::WatchdogConfig`]).  Zero
/// fields impose no limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobBudget {
    /// Simulated-cycle ceiling per job (`0` = none).
    pub max_cycles: u64,
    /// Wall-clock ceiling per job in milliseconds (`0` = none).
    pub wall_limit_ms: u64,
}

impl JobBudget {
    /// True when at least one limit is set.
    pub fn limits_anything(&self) -> bool {
        self.max_cycles > 0 || self.wall_limit_ms > 0
    }
}

/// How one isolated job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The job completed; its result entered the aggregate.
    Ok(SimResult),
    /// The job panicked under `catch_unwind`; the payload message is
    /// preserved.  The job is excluded from the aggregate.
    Panicked(String),
    /// The job exhausted its wall-clock budget
    /// ([`StallKind::WallClockExceeded`]).  Excluded from the aggregate.
    TimedOut(StallReport),
    /// Another watchdog check tripped (livelock, conservation violation or
    /// cycle ceiling).  Excluded from the aggregate.
    WatchdogTripped(StallReport),
}

impl JobOutcome {
    /// True for any non-[`JobOutcome::Ok`] variant.
    pub fn is_failure(&self) -> bool {
        !matches!(self, JobOutcome::Ok(_))
    }

    /// Short stable outcome name for logs and capsules.
    pub fn name(&self) -> &'static str {
        match self {
            JobOutcome::Ok(_) => "ok",
            JobOutcome::Panicked(_) => "panicked",
            JobOutcome::TimedOut(_) => "timed-out",
            JobOutcome::WatchdogTripped(_) => "watchdog-tripped",
        }
    }

    /// The stall report of a watchdog/budget failure, if any.
    pub fn stall(&self) -> Option<&StallReport> {
        match self {
            JobOutcome::TimedOut(r) | JobOutcome::WatchdogTripped(r) => Some(r),
            _ => None,
        }
    }
}

/// What [`ExperimentRunner::run_recorded`] returns: the aggregated curves
/// (with observers), the batch summary, and one [`JobRecord`] per job in
/// schedule order.
pub type RecordedRun<O> = (Vec<ObservedCurve<O>>, RunSummary, Vec<JobRecord>);

/// The full record of one scheduled job: identity, journal digest, outcome
/// and timing.  [`ExperimentRunner::run_recorded`] returns one per job in
/// schedule order (series-major, then rate, then seed).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Label of the job's series.
    pub label: String,
    /// Index of the series within the runner.
    pub series: usize,
    /// Offered load.
    pub rate: f64,
    /// Replication seed.
    pub seed: u64,
    /// The job's [`job_digest`] (journal key).
    pub digest: u64,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Wall-clock the job cost, in milliseconds (0 for journal replays).
    pub elapsed_ms: f64,
    /// True when the result was replayed from the journal instead of
    /// simulated.
    pub resumed: bool,
    /// The job's engine profile, when the runner ran with
    /// [`ExperimentRunner::with_profiling`] and the job was simulated
    /// (`None` for replays and unprofiled runs).
    pub profile: Option<ProfileReport>,
}

/// Whole-batch timing summary of one [`ExperimentRunner`] run: where the
/// wall-clock went, aggregated from the per-job timings.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Jobs scheduled (series × rates × seeds).
    pub jobs: usize,
    /// Wall-clock of the whole parallel batch, in milliseconds.
    pub wall_ms: f64,
    /// Sum of per-job simulation times, in milliseconds (exceeds
    /// `wall_ms` under parallel execution).
    pub sim_ms: f64,
    /// Jobs completed per wall-clock second.
    pub jobs_per_sec: f64,
    /// `(series label, rate, seed, ms)` of the slowest job.
    pub slowest: Option<(String, f64, u64, f64)>,
    /// Jobs that failed (panicked, timed out or tripped a watchdog) and
    /// were skipped by the aggregation.
    pub failed: usize,
    /// Jobs whose results were replayed from an attached journal instead
    /// of simulated.
    pub resumed: usize,
    /// Host parallelism at run time
    /// (`std::thread::available_parallelism`), so a summary from a
    /// single-core container is self-describing.
    pub host_threads: usize,
    /// Largest engine shard count across the batch's series.
    pub shards: u32,
    /// The slowest job's engine profile (profiled runs only) — the
    /// phase breakdown [`RunSummary::oneline`] prints.
    pub slowest_profile: Option<ProfileReport>,
}

impl RunSummary {
    /// One-line human-readable form (the run summary harnesses print).
    pub fn oneline(&self) -> String {
        let slowest = match &self.slowest {
            Some((label, rate, seed, ms)) => {
                format!(", slowest {label} @ rate {rate} seed {seed}: {ms:.0} ms")
            }
            None => String::new(),
        };
        let failed = if self.failed > 0 {
            format!(", {} FAILED", self.failed)
        } else {
            String::new()
        };
        let resumed = if self.resumed > 0 {
            format!(", {} resumed from journal", self.resumed)
        } else {
            String::new()
        };
        let phases = match &self.slowest_profile {
            Some(p) => format!(" [slowest phases: {}]", p.top_phases(3)),
            None => String::new(),
        };
        format!(
            "{} jobs in {:.0} ms wall ({:.1} jobs/s, {:.0} ms simulated, \
             {} shard(s) on {} host threads){}{}{}{}",
            self.jobs,
            self.wall_ms,
            self.jobs_per_sec,
            self.sim_ms,
            self.shards,
            self.host_threads,
            slowest,
            phases,
            failed,
            resumed
        )
    }

    /// Folds another batch into this summary (totals summed, rates
    /// recomputed, slowest kept) — harnesses that schedule several batches
    /// report one combined line.
    pub fn absorb(&mut self, other: &RunSummary) {
        self.jobs += other.jobs;
        self.wall_ms += other.wall_ms;
        self.sim_ms += other.sim_ms;
        self.failed += other.failed;
        self.resumed += other.resumed;
        self.jobs_per_sec = if self.wall_ms > 0.0 {
            self.jobs as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        };
        self.host_threads = self.host_threads.max(other.host_threads);
        self.shards = self.shards.max(other.shards);
        // A present entry always beats an absent one, regardless of its
        // time: mapping `None` to 0.0 ms would let an empty batch keep its
        // `None` against a real (even 0 ms-rounded) slowest job.  The
        // slowest job's profile travels with it.
        let other_wins = match (&self.slowest, &other.slowest) {
            (None, Some(_)) => true,
            (Some(a), Some(b)) => b.3 > a.3,
            _ => false,
        };
        if other_wins {
            self.slowest = other.slowest.clone();
            self.slowest_profile = other.slowest_profile.clone();
        }
    }
}

/// Owns the (series × rate × seed) job list of one experiment and runs it
/// as a single flat parallel batch.
///
/// Every job runs *isolated*: under `catch_unwind`, with the runner's
/// [`JobBudget`] merged into its watchdog, so one panicking or livelocked
/// job becomes a reported [`JobRecord`] instead of aborting the sweep.
/// With a [`Journal`] attached ([`ExperimentRunner::with_journal`]),
/// completed jobs are recorded as they finish and replayed bit-for-bit on
/// a re-invocation, so a killed sweep resumes instead of restarting.
pub struct ExperimentRunner {
    topo: Arc<Dragonfly>,
    series: Vec<SeriesSpec>,
    budget: JobBudget,
    journal: Option<Arc<Journal>>,
    trace: Option<Arc<TraceSink>>,
    profiling: bool,
}

impl ExperimentRunner {
    /// A runner over `topo` with no series yet.
    pub fn new(topo: Arc<Dragonfly>) -> Self {
        ExperimentRunner {
            topo,
            series: Vec::new(),
            budget: JobBudget::default(),
            journal: None,
            trace: None,
            profiling: false,
        }
    }

    /// Adds one labelled series.
    pub fn series(mut self, spec: SeriesSpec) -> Self {
        self.series.push(spec);
        self
    }

    /// Applies `budget` to every scheduled job (merged into each job's
    /// watchdog; the tighter limit wins when a series arms its own).
    pub fn with_budget(mut self, budget: JobBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a resume journal: completed jobs are recorded as they
    /// finish, and jobs already on record are replayed instead of re-run.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Attaches a [`TraceSink`]: the runner emits `batch_start`/`job_start`/
    /// `job_end`/`batch_end` span events as the batch executes (see
    /// [`crate::trace`]).  Tracing is outside the engine, so results are
    /// byte-identical with or without a sink.
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Turns on engine self-profiling: every simulated job runs with an
    /// [`EngineProf`] attached, its [`ProfileReport`] lands in the job's
    /// [`JobRecord::profile`], and the summary carries the slowest job's
    /// phase breakdown.  Profiling never changes results (pinned by
    /// `tests/profile.rs`); it costs a few timestamp reads per simulated
    /// cycle.
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Number of jobs `run` would schedule.
    pub fn job_count(&self, rates: &[f64], seeds: &[u64]) -> usize {
        self.series.len() * rates.len() * seeds.len()
    }

    /// Validates the whole experiment up front: the (rates × seeds) grid
    /// via [`crate::validate_sweep`] and every series' [`Config`] via
    /// [`Config::validate`] plus [`Config::validate_shards`] against this
    /// runner's topology — so a malformed sweep is rejected before any
    /// job is scheduled.
    pub fn validate(&self, rates: &[f64], seeds: &[u64]) -> Result<(), ConfigError> {
        crate::error::validate_sweep(rates, seeds)?;
        let groups = self.topo.num_groups() as u32;
        for s in &self.series {
            s.cfg.validate()?;
            s.cfg.validate_shards(groups)?;
        }
        Ok(())
    }

    /// The stable identity string of series `si`, from which each job's
    /// journal digest is derived: label, topology parameters (plus the
    /// shape suffix naming non-default arrangement / global lag), routing,
    /// config (seed zeroed — the per-job seed is hashed separately), the
    /// runner's budget and the fault schedule.  Any change to any of them
    /// changes every digest of the series, so stale journal entries are
    /// never replayed.  (The path provider has no stable identity of its
    /// own; the series label carries it, as every harness labels series by
    /// provider × routing.)  The checkpoint config is stripped like the
    /// seed: checkpointing never changes results (pinned by
    /// `tests/ckpt.rs`), so a journal written with checkpointing off
    /// replays under a checkpointing run and vice versa.
    fn series_key(&self, si: usize) -> String {
        let s = &self.series[si];
        let mut cfg = s.cfg.clone();
        cfg.seed = 0;
        cfg.checkpoint = None;
        format!(
            "{}|{:?}{}|{:?}|{:?}|{:?}|{:?}",
            s.label,
            self.topo.params(),
            self.topo.shape_suffix(),
            s.routing,
            cfg,
            self.budget,
            s.faults.as_ref().map(|f| f.events()),
        )
    }

    /// The effective per-job config of series `si`: the series config with
    /// the runner's [`JobBudget`] merged into its watchdog (tighter limit
    /// wins).  A zero budget returns the config untouched, keeping
    /// budget-free runs on the exact configuration the caller supplied.
    fn job_config(&self, si: usize) -> Config {
        let mut cfg = self.series[si].cfg.clone();
        if self.budget.limits_anything() {
            let mut wd = cfg
                .watchdog
                .unwrap_or_else(crate::engine::WatchdogConfig::disabled);
            let tighter = |cur: u64, budget: u64| -> u64 {
                match (cur, budget) {
                    (0, b) => b,
                    (c, 0) => c,
                    (c, b) => c.min(b),
                }
            };
            wd.max_cycles = tighter(wd.max_cycles, self.budget.max_cycles);
            wd.wall_limit_ms = tighter(wd.wall_limit_ms, self.budget.wall_limit_ms);
            cfg.watchdog = Some(wd);
        }
        cfg
    }

    /// Expands the full job list, runs it through one parallel batch over
    /// a shared workspace pool, and folds the per-seed results into one
    /// [`CurvePoint`] per (series, rate) via [`aggregate_runs`].
    pub fn run(&self, rates: &[f64], seeds: &[u64]) -> Vec<SeriesCurve> {
        self.run_with_summary(rates, seeds).0
    }

    /// Like [`ExperimentRunner::run`], also returning the batch's
    /// [`RunSummary`] (total wall-clock, jobs/sec, slowest job).
    pub fn run_with_summary(&self, rates: &[f64], seeds: &[u64]) -> (Vec<SeriesCurve>, RunSummary) {
        let (curves, summary) = self.run_observed(rates, seeds, |_| NoopObserver);
        let curves = curves
            .into_iter()
            .map(|c| SeriesCurve {
                label: c.label,
                points: c.points.into_iter().map(|p| p.point).collect(),
            })
            .collect();
        (curves, summary)
    }

    /// The instrumented schedule: every job gets its own observer from
    /// `make` (receiving the job's [`JobInfo`]), the engine feeds it
    /// cycle-level events, and the per-seed observers come back attached
    /// to their aggregated [`ObservedPoint`].
    ///
    /// [`ExperimentRunner::run`] is this with a [`NoopObserver`] factory —
    /// the monomorphized no-op engine — so observer-free runs cost
    /// nothing.
    pub fn run_observed<O, F>(
        &self,
        rates: &[f64],
        seeds: &[u64],
        make: F,
    ) -> (Vec<ObservedCurve<O>>, RunSummary)
    where
        O: SimObserver + Send,
        F: Fn(&JobInfo) -> O + Sync,
    {
        let (curves, summary, _) = self
            .run_recorded(rates, seeds, make)
            .unwrap_or_else(|e| panic!("invalid experiment: {e}"));
        (curves, summary)
    }

    /// The fully-typed schedule: validates the experiment up front, runs
    /// every job isolated (see the type docs), and returns — besides the
    /// aggregated curves and summary — one [`JobRecord`] per job in
    /// schedule order, so harnesses can write replay capsules for the
    /// failures and choose their exit code.
    pub fn run_recorded<O, F>(
        &self,
        rates: &[f64],
        seeds: &[u64],
        make: F,
    ) -> Result<RecordedRun<O>, ConfigError>
    where
        O: SimObserver + Send,
        F: Fn(&JobInfo) -> O + Sync,
    {
        self.validate(rates, seeds)?;
        let pool = WorkspacePool::new();
        let keys: Vec<String> = (0..self.series.len())
            .map(|si| self.series_key(si))
            .collect();
        let cfgs: Vec<Config> = (0..self.series.len())
            .map(|si| self.job_config(si))
            .collect();
        // Job order is series-major, then rate, then seed, so the flat
        // result vector chunks back into (series, rate) groups directly
        // (the parallel map preserves input order).
        let jobs: Vec<(usize, f64, u64)> = self
            .series
            .iter()
            .enumerate()
            .flat_map(|(si, _)| {
                rates
                    .iter()
                    .flat_map(move |&rate| seeds.iter().map(move |&seed| (si, rate, seed)))
            })
            .collect();
        let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let batch_shards = self.series.iter().map(|s| s.cfg.shards).max().unwrap_or(1);
        if let Some(trace) = &self.trace {
            let mut span = TraceSpan::new("batch_start");
            span.t_ms = trace.now_ms();
            span.jobs = jobs.len() as u64;
            span.shards = batch_shards as u64;
            span.host_threads = host_threads as u64;
            trace.emit(&span);
        }
        let batch_start = Instant::now();
        let outcomes: Vec<(JobRecord, O)> = jobs
            .par_iter()
            .map(|&(si, rate, seed)| {
                let s = &self.series[si];
                let mut obs = make(&JobInfo {
                    label: &s.label,
                    series: si,
                    rate,
                    seed,
                });
                let digest = job_digest(&keys[si], rate, seed);
                let job_span = |ev: &str| {
                    let mut span = TraceSpan::new(ev);
                    span.label = s.label.clone();
                    span.rate_bits = rate.to_bits();
                    span.seed = seed;
                    span.digest = digest;
                    span.shards = cfgs[si].shards as u64;
                    span
                };
                let record = |outcome, elapsed_ms, resumed, profile| JobRecord {
                    label: s.label.clone(),
                    series: si,
                    rate,
                    seed,
                    digest,
                    outcome,
                    elapsed_ms,
                    resumed,
                    profile,
                };
                if let Some(journal) = &self.journal {
                    if let Some(result) = journal.lookup(digest) {
                        // Replayed: the observer never sees the run (it was
                        // simulated by the killed invocation), but the
                        // result is the recorded one, bit-for-bit.
                        if let Some(trace) = &self.trace {
                            let mut span = job_span("job_end");
                            span.t_ms = trace.now_ms();
                            span.outcome = "ok".to_string();
                            span.resumed = true;
                            trace.emit(&span);
                        }
                        return (record(JobOutcome::Ok(result), 0.0, true, None), obs);
                    }
                }
                if let Some(trace) = &self.trace {
                    let mut span = job_span("job_start");
                    span.t_ms = trace.now_ms();
                    trace.emit(&span);
                }
                // Jobs of one batch share the checkpoint directory; keying
                // each job's files by its digest (the journal key) keeps
                // concurrent jobs from clobbering each other's checkpoints
                // and lets a resumed invocation find exactly its own.
                let cfg_job = cfgs[si].checkpoint.is_some().then(|| {
                    let mut c = cfgs[si].clone();
                    if let Some(ck) = c.checkpoint.as_mut() {
                        ck.stem = format!("{digest:016x}");
                    }
                    c
                });
                let cfg = cfg_job.as_ref().unwrap_or(&cfgs[si]);
                let start = Instant::now();
                let mut prof = self.profiling.then(EngineProf::new);
                let run = catch_unwind(AssertUnwindSafe(|| match prof.as_mut() {
                    Some(p) => run_job_ckpt(
                        &pool,
                        &self.topo,
                        &s.provider,
                        &s.pattern,
                        s.routing,
                        cfg,
                        rate,
                        seed,
                        s.faults.as_ref(),
                        &mut obs,
                        p,
                    ),
                    None => run_job_ckpt(
                        &pool,
                        &self.topo,
                        &s.provider,
                        &s.pattern,
                        s.routing,
                        cfg,
                        rate,
                        seed,
                        s.faults.as_ref(),
                        &mut obs,
                        &mut NoopProfiler,
                    ),
                }));
                let profile = prof.map(|p| p.report());
                let (outcome, ck_events) = match run {
                    Ok((result, None, events, _)) => {
                        if let Some(journal) = &self.journal {
                            journal.record(digest, &s.label, rate, seed, &result);
                        }
                        (JobOutcome::Ok(result), events)
                    }
                    Ok((_, Some(stall), events, _)) => (
                        if stall.kind == StallKind::WallClockExceeded {
                            JobOutcome::TimedOut(stall)
                        } else {
                            JobOutcome::WatchdogTripped(stall)
                        },
                        events,
                    ),
                    Err(payload) => (
                        JobOutcome::Panicked(panic_message(payload.as_ref())),
                        Vec::new(),
                    ),
                };
                let ms = start.elapsed().as_secs_f64() * 1e3;
                if let Some(trace) = &self.trace {
                    for e in &ck_events {
                        let mut span = job_span(e.kind.name());
                        span.t_ms = trace.now_ms();
                        span.cycle = e.cycle;
                        // The event's own shard count: a restore may have
                        // read a checkpoint written at a different one.
                        span.shards = e.shards as u64;
                        span.ckpt_bytes = e.bytes;
                        span.checksum = e.checksum;
                        span.elapsed_ms_bits = (e.elapsed_ms as f64).to_bits();
                        trace.emit(&span);
                    }
                    let mut span = job_span("job_end");
                    span.t_ms = trace.now_ms();
                    span.outcome = outcome.name().to_string();
                    span.elapsed_ms_bits = ms.to_bits();
                    if let Some(p) = &profile {
                        span.phase_ns = phase_totals(p);
                    }
                    trace.emit(&span);
                }
                (record(outcome, ms, false, profile), obs)
            })
            .collect();
        let wall_ms = batch_start.elapsed().as_secs_f64() * 1e3;
        let sim_ms: f64 = outcomes.iter().map(|(rec, _)| rec.elapsed_ms).sum();
        let slowest = outcomes
            .iter()
            .map(|(rec, _)| rec)
            .max_by(|a, b| a.elapsed_ms.total_cmp(&b.elapsed_ms))
            .map(|rec| (rec.label.clone(), rec.rate, rec.seed, rec.elapsed_ms));
        let failed = outcomes
            .iter()
            .filter(|(rec, _)| rec.outcome.is_failure())
            .count();
        let resumed = outcomes.iter().filter(|(rec, _)| rec.resumed).count();
        let slowest_profile = outcomes
            .iter()
            .map(|(rec, _)| rec)
            .max_by(|a, b| a.elapsed_ms.total_cmp(&b.elapsed_ms))
            .and_then(|rec| rec.profile.clone());
        if let Some(trace) = &self.trace {
            let mut span = TraceSpan::new("batch_end");
            span.t_ms = trace.now_ms();
            span.jobs = jobs.len() as u64;
            span.failed = failed as u64;
            span.shards = batch_shards as u64;
            span.host_threads = host_threads as u64;
            if self.profiling {
                let mut agg = ProfileReport::default();
                for (rec, _) in &outcomes {
                    if let Some(p) = &rec.profile {
                        agg.absorb(p);
                    }
                }
                span.phase_ns = phase_totals(&agg);
            }
            trace.emit(&span);
        }
        let summary = RunSummary {
            jobs: jobs.len(),
            wall_ms,
            sim_ms,
            jobs_per_sec: if wall_ms > 0.0 {
                jobs.len() as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            slowest,
            failed,
            resumed,
            host_threads,
            shards: batch_shards,
            slowest_profile,
        };

        let (records, observers): (Vec<JobRecord>, Vec<O>) = outcomes.into_iter().unzip();
        let mut rec_it = records.iter();
        let mut obs_it = observers.into_iter();
        let curves = self
            .series
            .iter()
            .map(|spec| ObservedCurve {
                label: spec.label.clone(),
                points: rates
                    .iter()
                    .map(|&rate| {
                        let group: Vec<&JobRecord> = rec_it.by_ref().take(seeds.len()).collect();
                        // Failed jobs are skipped, not poison: the point
                        // aggregates its surviving replications (or the
                        // no-data sentinel when none survived).
                        let runs: Vec<SimResult> = group
                            .iter()
                            .filter_map(|rec| match &rec.outcome {
                                JobOutcome::Ok(r) => Some(r.clone()),
                                _ => None,
                            })
                            .collect();
                        let elapsed_ms = group.iter().map(|rec| rec.elapsed_ms).sum();
                        ObservedPoint {
                            point: CurvePoint {
                                rate,
                                result: aggregate_runs(rate, &runs),
                                elapsed_ms,
                            },
                            observers: obs_it.by_ref().take(seeds.len()).collect(),
                        }
                    })
                    .collect(),
            })
            .collect();
        Ok((curves, summary, records))
    }
}

/// Renders a `catch_unwind` payload: `&str` and `String` payloads (what
/// `panic!`/`assert!` produce) verbatim, anything else a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::{ExperimentRunner, RunSummary, SeriesSpec};
    use crate::config::{Config, RoutingAlgorithm};
    use crate::error::ConfigError;
    use std::sync::Arc;
    use tugal_routing::TableProvider;
    use tugal_topology::{Dragonfly, DragonflyParams};
    use tugal_traffic::Uniform;

    #[test]
    fn validate_rejects_shards_that_do_not_fit_the_topology() {
        // dfly(2,4,2,5) has 5 groups: 3 shards cannot divide them.
        let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap());
        let mut cfg = Config::quick().for_routing(RoutingAlgorithm::Min);
        cfg.shards = 3;
        let runner = ExperimentRunner::new(topo.clone()).series(SeriesSpec {
            label: "min".into(),
            provider: Arc::new(TableProvider::all_paths(topo.clone())),
            pattern: Arc::new(Uniform::new(&topo)),
            routing: RoutingAlgorithm::Min,
            cfg,
            faults: None,
        });
        assert_eq!(
            runner.validate(&[0.1], &[1]),
            Err(ConfigError::ShardsDontDivideGroups {
                shards: 3,
                groups: 5
            })
        );
    }

    fn summary(jobs: usize, wall_ms: f64, slowest: Option<(&str, f64, u64, f64)>) -> RunSummary {
        RunSummary {
            jobs,
            wall_ms,
            sim_ms: wall_ms,
            jobs_per_sec: if wall_ms > 0.0 {
                jobs as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            slowest: slowest.map(|(l, r, s, ms)| (l.to_string(), r, s, ms)),
            failed: 0,
            resumed: 0,
            host_threads: 1,
            shards: 1,
            slowest_profile: None,
        }
    }

    #[test]
    fn absorb_sums_totals_and_recomputes_rate() {
        let mut a = summary(4, 1000.0, Some(("a", 0.1, 1, 400.0)));
        a.absorb(&summary(2, 1000.0, Some(("b", 0.2, 2, 900.0))));
        assert_eq!(a.jobs, 6);
        assert_eq!(a.wall_ms, 2000.0);
        assert!((a.jobs_per_sec - 3.0).abs() < 1e-9);
        assert_eq!(a.slowest.as_ref().unwrap().0, "b");
    }

    #[test]
    fn absorb_keeps_larger_slowest() {
        let mut a = summary(1, 10.0, Some(("slow", 0.1, 1, 9.0)));
        a.absorb(&summary(1, 10.0, Some(("fast", 0.1, 2, 3.0))));
        assert_eq!(a.slowest.as_ref().unwrap().0, "slow");
    }

    #[test]
    fn absorb_present_slowest_beats_none() {
        // Regression: `None` mapped to 0.0 ms used to survive against a
        // real slowest entry of 0.0 ms (and an empty self kept `None`
        // against any other batch on ties).
        let mut a = summary(0, 0.0, None);
        a.absorb(&summary(1, 5.0, Some(("only", 0.1, 7, 0.0))));
        assert_eq!(a.slowest.as_ref().unwrap().0, "only");

        let mut b = summary(1, 5.0, Some(("kept", 0.1, 7, 0.0)));
        b.absorb(&summary(0, 0.0, None));
        assert_eq!(b.slowest.as_ref().unwrap().0, "kept");
    }
}
