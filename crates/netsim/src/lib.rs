//! # Cycle-accurate flit-level interconnection network simulator
//!
//! The BookSim-2.0-equivalent substrate of this reproduction (§4.1.2 of the
//! paper): a cycle-driven, flit-level simulator of input-queued
//! virtual-channel routers with
//!
//! * credit-based flow control (per-VC credits, credit return latency equal
//!   to the channel latency),
//! * configurable VC count, buffer depth, local/global link latencies and
//!   router-internal speedup (Table 3 defaults: 4 VCs for UGAL-L/G, 5 for
//!   PAR, 32-flit buffers, 10/15-cycle local/global latency, speedup 2),
//! * single-flit packets (as the paper uses, to keep flow control out of
//!   the picture),
//! * the UGAL routing family: MIN, VLB, UGAL-L, UGAL-G and PAR, each
//!   parameterized by a [`tugal_routing::PathProvider`] so conventional
//!   UGAL and T-UGAL are the *same* code with different candidate sets,
//! * warmup + measurement windows with the paper's 500-cycle saturation
//!   rule, and load sweeps that report latency curves and saturation
//!   throughput.
//!
//! The router pipeline is abstracted to route-computation → switch
//! allocation (×speedup) → link traversal; absolute latencies therefore
//! differ from BookSim's four-stage pipeline by small constants, while the
//! comparative behaviour (which routing saturates first, how T-UGAL shifts
//! the curves) is preserved — that comparative behaviour is what the
//! paper's evaluation reads off the simulator.
//!
//! ```no_run
//! use std::sync::Arc;
//! use tugal_topology::{Dragonfly, DragonflyParams};
//! use tugal_routing::{TableProvider, VcScheme};
//! use tugal_traffic::Shift;
//! use tugal_netsim::{Config, RoutingAlgorithm, Simulator};
//!
//! let topo = Arc::new(Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap());
//! let provider = Arc::new(TableProvider::all_paths(topo.clone()));
//! let pattern = Arc::new(Shift::new(&topo, 2, 0));
//! let cfg = Config::paper_default();
//! let result = Simulator::new(topo, provider, pattern, RoutingAlgorithm::UgalL, cfg)
//!     .run(0.1);
//! println!("latency {:.1} cycles", result.avg_latency);
//! ```

#![warn(missing_docs)]

pub mod ckpt;
mod config;
mod engine;
mod error;
mod fault;
pub mod journal;
pub mod runner;
mod stats;
mod sweep;
pub mod trace;

pub use ckpt::{CkptConfig, CkptEvent, CkptEventKind, CkptWarning};
pub use config::{Config, RoutingAlgorithm};
pub use engine::{
    ConservationLedger, EngineProf, EngineProfiler, FlightFrame, NoopObserver, NoopProfiler,
    OldestPacket, Phase, ProfileReport, RoutingCounters, ShardProfile, SimObserver, SimWorkspace,
    Simulator, StallKind, StallReport, VcSnapshot, WatchdogConfig, WorkspacePool, PHASE_COUNT,
};
pub use error::{validate_sweep, ConfigError};
pub use fault::{FaultEvent, FaultSchedule};
pub use stats::SimResult;
pub use sweep::{
    aggregate_runs, latency_curve, run_job_observed, run_job_profiled, run_job_reported,
    saturation_throughput, CurvePoint, SweepOptions,
};

#[cfg(test)]
mod tests;
