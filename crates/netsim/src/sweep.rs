//! Load sweeps: latency curves and saturation throughput.

use crate::config::{Config, RoutingAlgorithm};
use crate::sim::Simulator;
use crate::stats::SimResult;
use rayon::prelude::*;
use std::sync::Arc;
use tugal_routing::PathProvider;
use tugal_topology::Dragonfly;
use tugal_traffic::TrafficPattern;

/// One point of a latency-vs-load curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Offered load (packets/cycle/node).
    pub rate: f64,
    /// Full measurement at this load.
    pub result: SimResult,
}

/// Sweep controls.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Seeds to average over (the paper averages 8–20 replications).
    pub seeds: Vec<u64>,
    /// Bisection resolution for [`saturation_throughput`].
    pub resolution: f64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            seeds: vec![1, 2, 3],
            resolution: 0.01,
        }
    }
}

fn run_averaged(
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    rate: f64,
    seeds: &[u64],
) -> SimResult {
    let runs: Vec<SimResult> = seeds
        .par_iter()
        .map(|&seed| {
            let mut c = cfg.clone();
            c.seed = seed;
            Simulator::new(
                topo.clone(),
                provider.clone(),
                pattern.clone(),
                routing,
                c,
            )
            .run(rate)
        })
        .collect();
    let n = runs.len() as f64;
    let delivered: u64 = runs.iter().map(|r| r.delivered).sum();
    let finite: Vec<&SimResult> = runs.iter().filter(|r| r.avg_latency.is_finite()).collect();
    let avg_latency = if finite.is_empty() {
        f64::INFINITY
    } else {
        finite.iter().map(|r| r.avg_latency).sum::<f64>() / finite.len() as f64
    };
    SimResult {
        injection_rate: rate,
        avg_latency,
        throughput: runs.iter().map(|r| r.throughput).sum::<f64>() / n,
        avg_hops: runs.iter().map(|r| r.avg_hops).sum::<f64>() / n,
        delivered,
        injected: runs.iter().map(|r| r.injected).sum(),
        saturated: runs.iter().filter(|r| r.saturated).count() * 2 > runs.len(),
        deadlock_suspected: runs.iter().any(|r| r.deadlock_suspected),
        vlb_fraction: runs.iter().map(|r| r.vlb_fraction).sum::<f64>() / n,
        latency_p50: runs.iter().map(|r| r.latency_p50).sum::<f64>() / n,
        latency_p99: runs.iter().map(|r| r.latency_p99).sum::<f64>() / n,
        max_channel_util: runs
            .iter()
            .map(|r| r.max_channel_util)
            .fold(0.0, f64::max),
        mean_global_util: runs.iter().map(|r| r.mean_global_util).sum::<f64>() / n,
        mean_local_util: runs.iter().map(|r| r.mean_local_util).sum::<f64>() / n,
    }
}

/// Latency as the offered load increases — the x/y data of the paper's
/// Figures 6–18.  Rates are simulated in parallel (and each rate over
/// `opts.seeds` replications); saturated points report their (already
/// meaningless) latencies so callers can draw the characteristic vertical
/// asymptote.
pub fn latency_curve(
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    rates: &[f64],
    opts: &SweepOptions,
) -> Vec<CurvePoint> {
    rates
        .par_iter()
        .map(|&rate| CurvePoint {
            rate,
            result: run_averaged(topo, provider, pattern, routing, cfg, rate, &opts.seeds),
        })
        .collect()
}

/// Saturation throughput: "the last injection rate before saturation
/// happens" (§4.1.2), located by bisection to `opts.resolution`.
pub fn saturation_throughput(
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    opts: &SweepOptions,
) -> f64 {
    let sat = |rate: f64| {
        run_averaged(topo, provider, pattern, routing, cfg, rate, &opts.seeds).saturated
    };
    let mut lo = opts.resolution;
    let mut hi = 1.0;
    if sat(lo) {
        return 0.0;
    }
    if !sat(hi) {
        return 1.0;
    }
    while hi - lo > opts.resolution {
        let mid = 0.5 * (lo + hi);
        if sat(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}
