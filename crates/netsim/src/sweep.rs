//! Load sweeps: latency curves and saturation throughput.
//!
//! Both sweeps schedule their (rate × seed) replications as one flat job
//! list over a shared [`WorkspacePool`], so engine state is allocated once
//! per worker and reused across every point — the bisection in
//! [`saturation_throughput`] keeps its pool across iterations for the same
//! reason.

use crate::config::{Config, RoutingAlgorithm};
use crate::engine::{SimWorkspace, Simulator, WorkspacePool};
use crate::stats::SimResult;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;
use tugal_routing::PathProvider;
use tugal_topology::Dragonfly;
use tugal_traffic::TrafficPattern;

/// One point of a latency-vs-load curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Offered load (packets/cycle/node).
    pub rate: f64,
    /// Full measurement at this load (averaged over the sweep's seeds).
    pub result: SimResult,
    /// Total wall-clock spent simulating this point, in milliseconds,
    /// summed over its seed replications (they may run in parallel).
    pub elapsed_ms: f64,
}

/// Sweep controls.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Seeds to average over (the paper averages 8–20 replications).
    pub seeds: Vec<u64>,
    /// Bisection resolution for [`saturation_throughput`].
    pub resolution: f64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            seeds: vec![1, 2, 3],
            resolution: 0.01,
        }
    }
}

/// Finite-aware aggregation of replicated runs at one offered load: counts
/// are summed, ratios averaged, and latency statistics (mean, p50, p99)
/// averaged over *finite* values only, so a single zero-delivery run
/// (infinite mean, NaN percentiles) cannot poison the aggregate.  A
/// majority of saturated runs marks the point saturated.
///
/// An empty `runs` slice — every replication of the point failed under the
/// runner's job isolation — aggregates to the explicit *no-data* sentinel:
/// zero deliveries, infinite latency, `saturated` set (historically this
/// was a panic, which let one bad point poison a whole sweep).
pub fn aggregate_runs(rate: f64, runs: &[SimResult]) -> SimResult {
    if runs.is_empty() {
        return SimResult {
            injection_rate: rate,
            avg_latency: f64::INFINITY,
            throughput: 0.0,
            avg_hops: 0.0,
            delivered: 0,
            injected: 0,
            saturated: true,
            deadlock_suspected: false,
            vlb_fraction: 0.0,
            latency_p50: f64::NAN,
            latency_p99: f64::NAN,
            max_channel_util: 0.0,
            mean_global_util: 0.0,
            mean_local_util: 0.0,
        };
    }
    let n = runs.len() as f64;
    let finite_mean = |value: fn(&SimResult) -> f64| -> f64 {
        let vals: Vec<f64> = runs.iter().map(value).filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            f64::INFINITY
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    SimResult {
        injection_rate: rate,
        avg_latency: finite_mean(|r| r.avg_latency),
        throughput: runs.iter().map(|r| r.throughput).sum::<f64>() / n,
        avg_hops: runs.iter().map(|r| r.avg_hops).sum::<f64>() / n,
        delivered: runs.iter().map(|r| r.delivered).sum(),
        injected: runs.iter().map(|r| r.injected).sum(),
        saturated: runs.iter().filter(|r| r.saturated).count() * 2 > runs.len(),
        deadlock_suspected: runs.iter().any(|r| r.deadlock_suspected),
        vlb_fraction: runs.iter().map(|r| r.vlb_fraction).sum::<f64>() / n,
        latency_p50: finite_mean(|r| r.latency_p50),
        latency_p99: finite_mean(|r| r.latency_p99),
        max_channel_util: runs.iter().map(|r| r.max_channel_util).fold(0.0, f64::max),
        mean_global_util: runs.iter().map(|r| r.mean_global_util).sum::<f64>() / n,
        mean_local_util: runs.iter().map(|r| r.mean_local_util).sum::<f64>() / n,
    }
}

/// One simulation job: a (rate, seed) replication run inside a pooled
/// workspace, returning the result and its wall-clock in milliseconds.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_job(
    pool: &WorkspacePool,
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    rate: f64,
    seed: u64,
) -> (SimResult, f64) {
    run_job_observed(
        pool,
        topo,
        provider,
        pattern,
        routing,
        cfg,
        rate,
        seed,
        None,
        &mut crate::engine::NoopObserver,
    )
}

/// Like the internal job runner, but feeding cycle-level events to `obs` —
/// the entry point the metrics layer (`tugal-obs`) uses to instrument a
/// single (rate, seed) replication.  The per-job seed overrides
/// `cfg.seed`; a fault schedule (shared across the sweep's jobs) may be
/// attached; timing is wall-clock milliseconds of the simulation alone.
#[allow(clippy::too_many_arguments)]
pub fn run_job_observed<O: crate::engine::SimObserver>(
    pool: &WorkspacePool,
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    rate: f64,
    seed: u64,
    faults: Option<&Arc<crate::fault::FaultSchedule>>,
    obs: &mut O,
) -> (SimResult, f64) {
    let (result, _, ms) = run_job_reported(
        pool, topo, provider, pattern, routing, cfg, rate, seed, faults, obs,
    );
    (result, ms)
}

/// Like [`run_job_observed`], additionally returning the engine's
/// [`crate::StallReport`] when the configured watchdog tripped — the job
/// primitive of the crash-safe [`crate::runner::ExperimentRunner`] path.
#[allow(clippy::too_many_arguments)]
pub fn run_job_reported<O: crate::engine::SimObserver>(
    pool: &WorkspacePool,
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    rate: f64,
    seed: u64,
    faults: Option<&Arc<crate::fault::FaultSchedule>>,
    obs: &mut O,
) -> (SimResult, Option<crate::engine::StallReport>, f64) {
    run_job_profiled(
        pool,
        topo,
        provider,
        pattern,
        routing,
        cfg,
        rate,
        seed,
        faults,
        obs,
        &mut crate::engine::NoopProfiler,
    )
}

/// Like [`run_job_reported`], with an [`crate::EngineProfiler`] attached
/// to the engine — the job primitive of the runner's profiled path and of
/// the `prof` bench harness.  Passing [`crate::NoopProfiler`] is exactly
/// [`run_job_reported`]; a real profiler never changes the results.
#[allow(clippy::too_many_arguments)]
pub fn run_job_profiled<O: crate::engine::SimObserver, P: crate::engine::EngineProfiler>(
    pool: &WorkspacePool,
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    rate: f64,
    seed: u64,
    faults: Option<&Arc<crate::fault::FaultSchedule>>,
    obs: &mut O,
    prof: &mut P,
) -> (SimResult, Option<crate::engine::StallReport>, f64) {
    let (result, stall, _, ms) = run_job_ckpt(
        pool, topo, provider, pattern, routing, cfg, rate, seed, faults, obs, prof,
    );
    (result, stall, ms)
}

/// [`run_job_profiled`] plus the checkpoint write/restore events the run
/// performed (empty with `cfg.checkpoint = None`) — the job primitive of
/// the runner's recorded path, which turns the events into trace spans.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_job_ckpt<O: crate::engine::SimObserver, P: crate::engine::EngineProfiler>(
    pool: &WorkspacePool,
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    rate: f64,
    seed: u64,
    faults: Option<&Arc<crate::fault::FaultSchedule>>,
    obs: &mut O,
    prof: &mut P,
) -> (
    SimResult,
    Option<crate::engine::StallReport>,
    Vec<crate::ckpt::CkptEvent>,
    f64,
) {
    let mut c = cfg.clone();
    c.seed = seed;
    let mut sim = Simulator::new(topo.clone(), provider.clone(), pattern.clone(), routing, c);
    if let Some(f) = faults {
        sim = sim.with_fault_schedule(f.clone());
    }
    let start = Instant::now();
    let (result, stall, events) =
        pool.with(|ws: &mut SimWorkspace| sim.run_instrumented(rate, ws, obs, prof));
    (result, stall, events, start.elapsed().as_secs_f64() * 1e3)
}

#[allow(clippy::too_many_arguments)]
fn run_averaged(
    pool: &WorkspacePool,
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    rate: f64,
    seeds: &[u64],
) -> SimResult {
    let runs: Vec<SimResult> = seeds
        .par_iter()
        .map(|&seed| run_job(pool, topo, provider, pattern, routing, cfg, rate, seed).0)
        .collect();
    aggregate_runs(rate, &runs)
}

/// Latency as the offered load increases — the x/y data of the paper's
/// Figures 6–18.  All (rate × seed) jobs are scheduled as one flat
/// parallel batch over a shared workspace pool; saturated points report
/// their (already meaningless) latencies so callers can draw the
/// characteristic vertical asymptote.
pub fn latency_curve(
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    rates: &[f64],
    opts: &SweepOptions,
) -> Vec<CurvePoint> {
    assert!(
        !opts.seeds.is_empty(),
        "latency_curve needs at least one seed"
    );
    let pool = WorkspacePool::new();
    let jobs: Vec<(f64, u64)> = rates
        .iter()
        .flat_map(|&rate| opts.seeds.iter().map(move |&seed| (rate, seed)))
        .collect();
    let outcomes: Vec<(SimResult, f64)> = jobs
        .par_iter()
        .map(|&(rate, seed)| run_job(&pool, topo, provider, pattern, routing, cfg, rate, seed))
        .collect();
    outcomes
        .chunks(opts.seeds.len())
        .zip(rates)
        .map(|(chunk, &rate)| {
            let runs: Vec<SimResult> = chunk.iter().map(|(r, _)| r.clone()).collect();
            CurvePoint {
                rate,
                result: aggregate_runs(rate, &runs),
                elapsed_ms: chunk.iter().map(|(_, ms)| ms).sum(),
            }
        })
        .collect()
}

/// Saturation throughput: "the last injection rate before saturation
/// happens" (§4.1.2), located by bisection to `opts.resolution`.  The
/// workspace pool persists across bisection iterations, so only the first
/// probe pays engine allocation.
pub fn saturation_throughput(
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    opts: &SweepOptions,
) -> f64 {
    let pool = WorkspacePool::new();
    let sat = |rate: f64| {
        run_averaged(
            &pool,
            topo,
            provider,
            pattern,
            routing,
            cfg,
            rate,
            &opts.seeds,
        )
        .saturated
    };
    let mut lo = opts.resolution;
    let mut hi = 1.0;
    if sat(lo) {
        return 0.0;
    }
    if !sat(hi) {
        return 1.0;
    }
    while hi - lo > opts.resolution {
        let mid = 0.5 * (lo + hi);
        if sat(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}
