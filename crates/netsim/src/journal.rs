//! Append-only run journal: crash-safe resume for sweeps.
//!
//! A [`Journal`] is a JSONL file with one [`JournalEntry`] per completed
//! job, keyed by the job's FNV-1a digest (see [`job_digest`]).  A harness
//! that opens the journal of a previous (killed) invocation looks each job
//! up before running it and replays the recorded [`crate::SimResult`]
//! instead — so a SIGKILLed sweep resumes where it died rather than
//! restarting, and the resumed results are **bit-identical** to an
//! uninterrupted run (pinned by `crates/bench/tests/resilience.rs`).
//!
//! Bit-exactness is why entries store every float of the result as its
//! IEEE-754 bit pattern ([`PackedResult`], via [`f64::to_bits`]): the
//! engine legitimately produces `inf` latencies (starved runs) and `NaN`
//! percentiles (empty histograms), which JSON cannot represent, and even
//! finite floats would risk a decimal round-trip wobble.  `u64` bit
//! patterns survive JSON exactly.
//!
//! Each entry is one line, written with a single `write_all` and flushed
//! immediately; a crash mid-write loses at most the last line, and
//! [`Journal::open`] skips any torn trailing line when reloading.

use crate::stats::SimResult;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// FNV-1a over a byte stream — the digest primitive the whole suite uses
/// (path-table caches, perf scenario digests, journal keys).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest identifying one (series, rate, seed) job for journal lookup.
///
/// `series_key` must capture everything that shapes the job's result
/// besides rate and seed — the runner uses the `Debug` rendering of the
/// series label, topology parameters, routing, config and fault schedule,
/// so any change to any of them changes the digest and invalidates stale
/// journal entries rather than silently replaying them.
pub fn job_digest(series_key: &str, rate: f64, seed: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.update(series_key.as_bytes());
    h.update(&rate.to_bits().to_le_bytes());
    h.update(&seed.to_le_bytes());
    h.finish()
}

/// A [`crate::SimResult`] with floats as IEEE-754 bit patterns, so the
/// JSON round trip is exact (including `inf`/`NaN`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedResult {
    /// `injection_rate` bits.
    pub injection_rate: u64,
    /// `avg_latency` bits.
    pub avg_latency: u64,
    /// `throughput` bits.
    pub throughput: u64,
    /// `avg_hops` bits.
    pub avg_hops: u64,
    /// Delivered packets.
    pub delivered: u64,
    /// Injected packets.
    pub injected: u64,
    /// Saturation flag.
    pub saturated: bool,
    /// Deadlock-suspected flag.
    pub deadlock_suspected: bool,
    /// `vlb_fraction` bits.
    pub vlb_fraction: u64,
    /// `latency_p50` bits.
    pub latency_p50: u64,
    /// `latency_p99` bits.
    pub latency_p99: u64,
    /// `max_channel_util` bits.
    pub max_channel_util: u64,
    /// `mean_global_util` bits.
    pub mean_global_util: u64,
    /// `mean_local_util` bits.
    pub mean_local_util: u64,
}

impl PackedResult {
    /// Packs a result for journalling.
    pub fn pack(r: &SimResult) -> Self {
        PackedResult {
            injection_rate: r.injection_rate.to_bits(),
            avg_latency: r.avg_latency.to_bits(),
            throughput: r.throughput.to_bits(),
            avg_hops: r.avg_hops.to_bits(),
            delivered: r.delivered,
            injected: r.injected,
            saturated: r.saturated,
            deadlock_suspected: r.deadlock_suspected,
            vlb_fraction: r.vlb_fraction.to_bits(),
            latency_p50: r.latency_p50.to_bits(),
            latency_p99: r.latency_p99.to_bits(),
            max_channel_util: r.max_channel_util.to_bits(),
            mean_global_util: r.mean_global_util.to_bits(),
            mean_local_util: r.mean_local_util.to_bits(),
        }
    }

    /// Unpacks a journalled result, bit-for-bit.
    pub fn unpack(&self) -> SimResult {
        SimResult {
            injection_rate: f64::from_bits(self.injection_rate),
            avg_latency: f64::from_bits(self.avg_latency),
            throughput: f64::from_bits(self.throughput),
            avg_hops: f64::from_bits(self.avg_hops),
            delivered: self.delivered,
            injected: self.injected,
            saturated: self.saturated,
            deadlock_suspected: self.deadlock_suspected,
            vlb_fraction: f64::from_bits(self.vlb_fraction),
            latency_p50: f64::from_bits(self.latency_p50),
            latency_p99: f64::from_bits(self.latency_p99),
            max_channel_util: f64::from_bits(self.max_channel_util),
            mean_global_util: f64::from_bits(self.mean_global_util),
            mean_local_util: f64::from_bits(self.mean_local_util),
        }
    }
}

/// One journal line: a completed job and its packed result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// [`job_digest`] of the job.
    pub digest: u64,
    /// Human-readable series label (diagnostic only — lookup is by
    /// digest).
    pub label: String,
    /// Offered load bits (diagnostic only).
    pub rate: u64,
    /// Replication seed (diagnostic only).
    pub seed: u64,
    /// The job's result, exactly.
    pub result: PackedResult,
}

/// An append-only JSONL journal of completed jobs (see the module docs).
///
/// Thread-safe: the runner records entries from rayon workers.
pub struct Journal {
    path: PathBuf,
    seen: Mutex<HashMap<u64, PackedResult>>,
    file: Mutex<File>,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, loading every intact
    /// entry.  Torn or malformed lines — the tail a crash can leave — are
    /// skipped, not errors.  Parent directories are created as needed.
    /// Creating the file fsyncs its parent directory, so the (possibly
    /// still empty) journal survives a crash landing right after open —
    /// a resumed invocation then appends to it instead of finding nothing.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let existed = path.exists();
        let mut seen = HashMap::new();
        if existed {
            let reader = BufReader::new(File::open(&path)?);
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                if let Ok(entry) = serde_json::from_str::<JournalEntry>(&line) {
                    seen.insert(entry.digest, entry.result);
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if !existed {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                crate::ckpt::fsync_dir(dir)?;
            }
        }
        Ok(Journal {
            path,
            seen: Mutex::new(seen),
            file: Mutex::new(file),
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of completed jobs on record.
    pub fn len(&self) -> usize {
        self.seen.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// True when no jobs are on record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The recorded result for `digest`, if that job already completed.
    pub fn lookup(&self, digest: u64) -> Option<SimResult> {
        self.seen
            .lock()
            .ok()
            .and_then(|m| m.get(&digest).map(|p| p.unpack()))
    }

    /// Records a completed job: appends one line and flushes it, so the
    /// entry survives a SIGKILL delivered right after.  Duplicate digests
    /// overwrite in memory (last write wins on reload too).
    pub fn record(&self, digest: u64, label: &str, rate: f64, seed: u64, result: &SimResult) {
        let entry = JournalEntry {
            digest,
            label: label.to_string(),
            rate: rate.to_bits(),
            seed,
            result: PackedResult::pack(result),
        };
        let Ok(mut line) = serde_json::to_string(&entry) else {
            return;
        };
        line.push('\n');
        if let Ok(mut f) = self.file.lock() {
            // One write_all per entry keeps lines atomic under concurrent
            // recording; flush makes the line durable before the job is
            // considered done.
            let _ = f.write_all(line.as_bytes());
            let _ = f.flush();
        }
        if let Ok(mut m) = self.seen.lock() {
            m.insert(digest, entry.result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> SimResult {
        SimResult {
            injection_rate: 0.1,
            avg_latency: f64::INFINITY,
            throughput: 0.09,
            avg_hops: 3.5,
            delivered: 123,
            injected: 130,
            saturated: true,
            deadlock_suspected: false,
            vlb_fraction: 0.25,
            latency_p50: f64::NAN,
            latency_p99: 812.0,
            max_channel_util: 0.99,
            mean_global_util: 0.4,
            mean_local_util: 0.3,
        }
    }

    fn bitwise_eq(a: &SimResult, b: &SimResult) -> bool {
        PackedResult::pack(a) == PackedResult::pack(b)
    }

    #[test]
    fn packed_roundtrip_is_bit_exact_including_nonfinite() {
        let r = sample_result();
        let packed = PackedResult::pack(&r);
        let json = serde_json::to_string(&packed).unwrap();
        let back: PackedResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, packed);
        assert!(bitwise_eq(&back.unpack(), &r));
        assert!(back.unpack().avg_latency.is_infinite());
        assert!(back.unpack().latency_p50.is_nan());
    }

    #[test]
    fn digest_separates_jobs_and_is_stable() {
        let d = job_digest("series-A", 0.1, 7);
        assert_eq!(d, job_digest("series-A", 0.1, 7));
        assert_ne!(d, job_digest("series-B", 0.1, 7));
        assert_ne!(d, job_digest("series-A", 0.2, 7));
        assert_ne!(d, job_digest("series-A", 0.1, 8));
    }

    #[test]
    fn journal_replays_recorded_entries_and_survives_torn_tail() {
        // Unit tests have no CARGO_TARGET_TMPDIR; use the workspace target
        // dir (gitignored) so nothing is written outside the repo.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/test-tmp");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal_unit_test.jsonl");
        let _ = std::fs::remove_file(&path);

        let r = sample_result();
        let d = job_digest("s", 0.1, 7);
        {
            let j = Journal::open(&path).unwrap();
            assert!(j.is_empty());
            assert!(j.lookup(d).is_none());
            j.record(d, "s", 0.1, 7, &r);
            assert_eq!(j.len(), 1);
        }
        // Simulate a crash mid-append: a torn trailing line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"digest\":42,\"label\":\"torn").unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 1);
        let replayed = j.lookup(d).expect("entry survives reopen");
        assert!(bitwise_eq(&replayed, &r));
        assert!(j.lookup(job_digest("s", 0.1, 8)).is_none());
        let _ = std::fs::remove_file(&path);
    }
}
