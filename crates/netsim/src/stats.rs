//! Measurement results.

/// Result of one simulation run at a fixed injection rate.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Offered load (packets/cycle/node).
    pub injection_rate: f64,
    /// Average packet latency over the measurement window, in cycles,
    /// from packet creation to delivery at the destination node.
    pub avg_latency: f64,
    /// Accepted throughput over the measurement window
    /// (packets/cycle/node).
    pub throughput: f64,
    /// Average switch-to-switch hops of packets delivered in the window.
    pub avg_hops: f64,
    /// Packets delivered during the measurement window.
    pub delivered: u64,
    /// Packets injected (created) during the measurement window.
    pub injected: u64,
    /// True when `avg_latency` exceeded the configured saturation
    /// threshold (or nothing was delivered while traffic was offered).
    pub saturated: bool,
    /// True when packets were in flight but nothing ejected for a full
    /// watchdog horizon — the signature of a routing-deadlock (e.g. a VC
    /// scheme with too few classes).  Always false for the deadlock-free
    /// configurations this crate provides.
    pub deadlock_suspected: bool,
    /// Fraction of routed packets that took the VLB candidate (measured
    /// over the whole run; MIN/VLB-only routings report 0 or 1).
    pub vlb_fraction: f64,
    /// Median packet latency (cycles).  Metrics-off runs estimate this
    /// from the engine's power-of-two histogram (geometric bucket
    /// midpoints); metrics-enabled harnesses overwrite it with the exact
    /// value from the `tugal-obs` latency histogram via
    /// [`SimResult::with_exact_percentiles`].
    pub latency_p50: f64,
    /// 99th-percentile packet latency (cycles), same estimator/override
    /// behaviour as [`SimResult::latency_p50`].
    pub latency_p99: f64,
    /// Highest per-channel utilization among switch-to-switch channels
    /// (flits per cycle over the measurement window).
    pub max_channel_util: f64,
    /// Mean utilization of global (inter-group) channels.
    pub mean_global_util: f64,
    /// Mean utilization of local (intra-group) channels.
    pub mean_local_util: f64,
}

impl SimResult {
    /// Replaces the estimated latency percentiles with exact values (from
    /// the metrics layer's log-bucketed histogram).  Non-finite overrides
    /// are ignored so a starved replication cannot erase a valid estimate.
    pub fn with_exact_percentiles(mut self, p50: f64, p99: f64) -> Self {
        if p50.is_finite() {
            self.latency_p50 = p50;
        }
        if p99.is_finite() {
            self.latency_p99 = p99;
        }
        self
    }
}
