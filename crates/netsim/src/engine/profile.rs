//! Engine self-profiling: per-shard phase timers and boundary counters.
//!
//! The [`EngineProfiler`] seam mirrors the [`super::observer::SimObserver`]
//! pattern: the engine is monomorphized per profiler type, every hook on
//! [`NoopProfiler`] is an inline empty body, and the `ENABLED` associated
//! const compiles the remaining instrumentation (the mailbox `try_lock`
//! probe) out of the unprofiled loop — so a run without profiling executes
//! the exact same instructions as before the seam existed, and stays
//! bit-for-bit identical on every golden fixture.
//!
//! With [`EngineProf`] attached, each shard worker attributes its
//! wall-clock to the named [`Phase`]s of the cycle loop and counts its
//! boundary traffic (flits/credits sent and received through mailboxes,
//! lock-acquire stalls, flushed batch sizes).  The phases tile the loop —
//! every `mark` charges the time since the previous mark — so the summed
//! phase times account for essentially all of a shard's wall-clock, and
//! the per-shard [`ShardProfile`]s merge shard-ordered into a
//! [`ProfileReport`].
//!
//! Profiling is *observational only*: the hooks never touch simulation
//! state, so a profiled run returns bit-identical results (pinned by
//! `tests/profile.rs`).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Number of named phases ([`Phase::ALL`] has this length).
pub const PHASE_COUNT: usize = 10;

/// One phase of the shard worker's cycle loop.  The phases tile the loop
/// body in this order; sequential (1-shard) runs never enter the
/// mailbox/publication phases (`Drain`, `Flush`, `Publish`, `Barrier`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Draining boundary mailboxes from the other shards.
    Drain,
    /// Cycle bookkeeping: credit returns, arrival sorting, deliveries and
    /// buffer pushes (plus observer occupancy sampling when armed).
    Advance,
    /// Source-queue injection draws.
    Inject,
    /// Publishing the UGAL-G queue snapshot (including its barrier);
    /// absent for every other routing algorithm.
    Snapshot,
    /// Switch allocation (routing decisions run here, at queue heads).
    Alloc,
    /// Wire transmission.
    Transmit,
    /// Flushing this cycle's outgoing boundary batches.
    Flush,
    /// Publishing cycle-end counters into the shard's publication cell.
    Publish,
    /// Waiting on the end-of-cycle barrier for the other shards.
    Barrier,
    /// Evaluating the global stop conditions (saturation cap, deadlock
    /// heuristic, armed watchdog checks, flight-recorder capture).
    Stop,
}

impl Phase {
    /// Every phase, in loop order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Drain,
        Phase::Advance,
        Phase::Inject,
        Phase::Snapshot,
        Phase::Alloc,
        Phase::Transmit,
        Phase::Flush,
        Phase::Publish,
        Phase::Barrier,
        Phase::Stop,
    ];

    /// Short stable name (JSON/trace friendly).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Drain => "drain",
            Phase::Advance => "advance",
            Phase::Inject => "inject",
            Phase::Snapshot => "snapshot",
            Phase::Alloc => "alloc",
            Phase::Transmit => "transmit",
            Phase::Flush => "flush",
            Phase::Publish => "publish",
            Phase::Barrier => "barrier",
            Phase::Stop => "stop",
        }
    }
}

/// The profiling seam of the cycle engine.  All hooks default to inline
/// no-ops; [`NoopProfiler`] (the default everywhere) therefore compiles to
/// the unprofiled engine.  Implementations must be cheap — `mark` runs up
/// to ten times per simulated cycle.
///
/// Like the observer seam, a profiler *forks* one child per shard worker
/// and *absorbs* the children after the workers join, in shard order.
/// Unlike observers, forking is infallible (profilers carry no
/// user-defined state that could refuse to split).
pub trait EngineProfiler: Send + Sized {
    /// `true` only for real profilers: gates the few instrumentation
    /// points that are not pure hook calls (the mailbox `try_lock`
    /// stall probe), so the disabled engine contains no trace of them.
    const ENABLED: bool = false;

    /// A shard worker is starting; `shard` is its index.
    #[inline]
    fn shard_start(&mut self, _shard: u32) {}

    /// The phase that just ended; charges the time since the previous
    /// mark (or since `shard_start`) to it.
    #[inline]
    fn mark(&mut self, _phase: Phase) {}

    /// One full cycle of the loop completed (not counted on early breaks).
    #[inline]
    fn cycle_done(&mut self) {}

    /// The shard worker is done; closes its wall-clock.
    #[inline]
    fn shard_end(&mut self) {}

    /// A mailbox lock was contended (`try_lock` would have blocked).
    #[inline]
    fn mailbox_stall(&mut self) {}

    /// A flit was handed to another shard's mailbox.
    #[inline]
    fn flit_sent(&mut self) {}

    /// A flit was drained from another shard's mailbox.
    #[inline]
    fn flit_recv(&mut self) {}

    /// A credit was handed to another shard's mailbox.
    #[inline]
    fn credit_sent(&mut self) {}

    /// A credit was drained from another shard's mailbox.
    #[inline]
    fn credit_recv(&mut self) {}

    /// An outgoing boundary batch of `msgs` messages was flushed.
    #[inline]
    fn batch_flushed(&mut self, _msgs: usize) {}

    /// Boundary messages left undrained in mailboxes when the run
    /// stopped (counted once, after the workers join).
    #[inline]
    fn note_undrained(&mut self, _flits: u64, _credits: u64) {}

    /// A child profiler for one shard worker.
    fn fork(&self) -> Self;

    /// Merges a child back, called in shard order after the workers join.
    fn absorb(&mut self, child: Self);
}

/// The do-nothing profiler: every run that does not opt into profiling is
/// monomorphized against this, compiling the seam away entirely.
pub struct NoopProfiler;

impl EngineProfiler for NoopProfiler {
    #[inline]
    fn fork(&self) -> Self {
        NoopProfiler
    }

    #[inline]
    fn absorb(&mut self, _child: Self) {}
}

/// One shard's profile: wall-clock attributed to phases, plus boundary
/// counters.  All times are nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardProfile {
    /// Shard index.
    pub shard: u32,
    /// Wall-clock of the shard worker, `shard_start` to `shard_end`.
    pub wall_ns: u64,
    /// Full cycles completed (early-break cycles are not counted).
    pub cycles: u64,
    /// Nanoseconds attributed to each phase, indexed like [`Phase::ALL`].
    pub phase_ns: [u64; PHASE_COUNT],
    /// Flits handed to other shards' mailboxes.
    pub flits_sent: u64,
    /// Flits drained from other shards' mailboxes.
    pub flits_recv: u64,
    /// Credits handed to other shards' mailboxes.
    pub credits_sent: u64,
    /// Credits drained from other shards' mailboxes.
    pub credits_recv: u64,
    /// Contended mailbox lock acquisitions (`try_lock` would have blocked).
    pub mailbox_stalls: u64,
    /// Outgoing boundary batches flushed.
    pub batches_flushed: u64,
    /// Messages across all flushed batches (mean batch size =
    /// `batch_msgs / batches_flushed`).
    pub batch_msgs: u64,
}

impl ShardProfile {
    /// Nanoseconds attributed to named phases (≤ `wall_ns` by
    /// construction — marks only ever charge elapsed wall time).
    pub fn attributed_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    fn add(&mut self, other: &ShardProfile) {
        self.wall_ns += other.wall_ns;
        self.cycles += other.cycles;
        for (a, b) in self.phase_ns.iter_mut().zip(&other.phase_ns) {
            *a += b;
        }
        self.flits_sent += other.flits_sent;
        self.flits_recv += other.flits_recv;
        self.credits_sent += other.credits_sent;
        self.credits_recv += other.credits_recv;
        self.mailbox_stalls += other.mailbox_stalls;
        self.batches_flushed += other.batches_flushed;
        self.batch_msgs += other.batch_msgs;
    }
}

/// The merged, shard-ordered profile of one run (or the element-wise sum
/// of several runs at the same shard count — see [`ProfileReport::absorb`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Per-shard profiles, in shard order.
    pub shards: Vec<ShardProfile>,
    /// Flits still sitting in mailboxes when the run stopped (sent but
    /// never drained): `Σ flits_sent == Σ flits_recv + undrained_flits`.
    pub undrained_flits: u64,
    /// Same for credits.
    pub undrained_credits: u64,
}

impl ProfileReport {
    /// Total shard wall-clock (sum over shards — the denominator of the
    /// attribution table).
    pub fn wall_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.wall_ns).sum()
    }

    /// Nanoseconds attributed to `phase`, summed over shards.
    pub fn phase_total(&self, phase: Phase) -> u64 {
        self.shards.iter().map(|s| s.phase_ns[phase as usize]).sum()
    }

    /// Fraction of shard wall-clock attributed to named phases
    /// (the acceptance bar is ≥ 0.95; misses mean a gap in the marks).
    pub fn attributed_fraction(&self) -> f64 {
        let wall = self.wall_ns();
        if wall == 0 {
            return 1.0;
        }
        self.shards.iter().map(|s| s.attributed_ns()).sum::<u64>() as f64 / wall as f64
    }

    /// Element-wise accumulation of another report (shards matched by
    /// index; a shape mismatch extends with the extra shards), for
    /// aggregating the jobs of one scenario into one attribution table.
    pub fn absorb(&mut self, other: &ProfileReport) {
        for (i, s) in other.shards.iter().enumerate() {
            if i < self.shards.len() {
                self.shards[i].add(s);
            } else {
                self.shards.push(s.clone());
            }
        }
        self.undrained_flits += other.undrained_flits;
        self.undrained_credits += other.undrained_credits;
    }

    /// The `k` costliest phases as `"barrier 62% / alloc 21% / advance 9%"`
    /// (phases with zero share are skipped).
    pub fn top_phases(&self, k: usize) -> String {
        let wall = self.wall_ns().max(1);
        let mut totals: Vec<(Phase, u64)> = Phase::ALL
            .iter()
            .map(|&p| (p, self.phase_total(p)))
            .collect();
        totals.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        totals
            .iter()
            .take(k)
            .filter(|(_, ns)| *ns > 0)
            .map(|(p, ns)| format!("{} {:.0}%", p.name(), 100.0 * *ns as f64 / wall as f64))
            .collect::<Vec<_>>()
            .join(" / ")
    }
}

/// The real profiler: wall-clock phase attribution via monotonic
/// timestamps, one [`ShardProfile`] per shard worker.
#[derive(Debug)]
pub struct EngineProf {
    cur: ShardProfile,
    start: Instant,
    last: Instant,
    children: Vec<ShardProfile>,
    undrained_flits: u64,
    undrained_credits: u64,
}

impl Default for EngineProf {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineProf {
    /// A fresh profiler, ready to attach to one run.
    pub fn new() -> Self {
        let now = Instant::now();
        EngineProf {
            cur: ShardProfile::default(),
            start: now,
            last: now,
            children: Vec::new(),
            undrained_flits: 0,
            undrained_credits: 0,
        }
    }

    /// The merged report: the absorbed children on multi-shard runs (in
    /// shard order), this profiler's own shard on sequential ones.
    pub fn report(&self) -> ProfileReport {
        let shards = if self.children.is_empty() {
            vec![self.cur.clone()]
        } else {
            self.children.clone()
        };
        ProfileReport {
            shards,
            undrained_flits: self.undrained_flits,
            undrained_credits: self.undrained_credits,
        }
    }
}

impl EngineProfiler for EngineProf {
    const ENABLED: bool = true;

    #[inline]
    fn shard_start(&mut self, shard: u32) {
        self.cur.shard = shard;
        self.start = Instant::now();
        self.last = self.start;
    }

    #[inline]
    fn mark(&mut self, phase: Phase) {
        let now = Instant::now();
        self.cur.phase_ns[phase as usize] += now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
    }

    #[inline]
    fn cycle_done(&mut self) {
        self.cur.cycles += 1;
    }

    #[inline]
    fn shard_end(&mut self) {
        self.cur.wall_ns = self.start.elapsed().as_nanos() as u64;
    }

    #[inline]
    fn mailbox_stall(&mut self) {
        self.cur.mailbox_stalls += 1;
    }

    #[inline]
    fn flit_sent(&mut self) {
        self.cur.flits_sent += 1;
    }

    #[inline]
    fn flit_recv(&mut self) {
        self.cur.flits_recv += 1;
    }

    #[inline]
    fn credit_sent(&mut self) {
        self.cur.credits_sent += 1;
    }

    #[inline]
    fn credit_recv(&mut self) {
        self.cur.credits_recv += 1;
    }

    #[inline]
    fn batch_flushed(&mut self, msgs: usize) {
        self.cur.batches_flushed += 1;
        self.cur.batch_msgs += msgs as u64;
    }

    fn note_undrained(&mut self, flits: u64, credits: u64) {
        self.undrained_flits += flits;
        self.undrained_credits += credits;
    }

    fn fork(&self) -> Self {
        EngineProf::new()
    }

    fn absorb(&mut self, child: Self) {
        self.children.push(child.cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_all_is_dense_and_named() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn marks_tile_wallclock() {
        let mut prof = EngineProf::new();
        prof.shard_start(0);
        prof.mark(Phase::Advance);
        std::thread::sleep(std::time::Duration::from_millis(2));
        prof.mark(Phase::Alloc);
        prof.cycle_done();
        prof.shard_end();
        let rep = prof.report();
        assert_eq!(rep.shards.len(), 1);
        let s = &rep.shards[0];
        assert_eq!(s.cycles, 1);
        assert!(s.phase_ns[Phase::Alloc as usize] >= 2_000_000);
        assert!(s.attributed_ns() <= s.wall_ns);
        assert!(
            rep.attributed_fraction() > 0.5,
            "{}",
            rep.attributed_fraction()
        );
    }

    #[test]
    fn absorb_merges_in_shard_order_and_reports_sum() {
        let mut root = EngineProf::new();
        for shard in 0..3u32 {
            let mut child = root.fork();
            child.shard_start(shard);
            child.flit_sent();
            child.credit_sent();
            child.shard_end();
            root.absorb(child);
        }
        root.note_undrained(3, 0);
        let rep = root.report();
        assert_eq!(rep.shards.len(), 3);
        assert_eq!(
            rep.shards.iter().map(|s| s.shard).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(rep.shards.iter().map(|s| s.flits_sent).sum::<u64>(), 3);
        assert_eq!(rep.undrained_flits, 3);

        let mut acc = ProfileReport::default();
        acc.absorb(&rep);
        acc.absorb(&rep);
        assert_eq!(acc.shards.len(), 3);
        assert_eq!(acc.shards[0].flits_sent, 2);
        assert_eq!(acc.undrained_flits, 6);
    }

    #[test]
    fn top_phases_ranks_by_share() {
        let mut rep = ProfileReport::default();
        let mut s = ShardProfile {
            wall_ns: 100,
            ..ShardProfile::default()
        };
        s.phase_ns[Phase::Barrier as usize] = 60;
        s.phase_ns[Phase::Alloc as usize] = 30;
        rep.shards.push(s);
        let line = rep.top_phases(2);
        assert!(line.starts_with("barrier 60%"), "{line}");
        assert!(line.contains("alloc 30%"), "{line}");
        assert_eq!(rep.phase_total(Phase::Barrier), 60);
        assert!((rep.attributed_fraction() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut prof = EngineProf::new();
        prof.shard_start(1);
        prof.mark(Phase::Advance);
        prof.batch_flushed(4);
        prof.shard_end();
        let rep = prof.report();
        let json = serde_json::to_string(&rep).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
    }
}
