//! Fault handling inside the cycle loop: applying a [`FaultSet`] to live
//! engine state and the per-packet reroute-or-drop decision.
//!
//! Everything here runs only when `Engine::fault_on` is set (a non-empty
//! schedule is attached); fault-free runs never reach this module, which
//! is what keeps the golden fixtures bit-for-bit.
//!
//! ## Semantics (see also DESIGN.md, "Fault model")
//!
//! * Applying a fault set kills channels and switches *from the current
//!   cycle on*: flits already on the wire complete their traversal (a
//!   flit mid-fibre is not recalled), but arrive into a dead router only
//!   to be lost there.
//! * A dead switch loses its buffered packets immediately (drained and
//!   counted through `on_drop`), including the source queues of its
//!   attached nodes.
//! * A dead channel loses its staged flits (they had won allocation but
//!   not the wire).
//! * Surviving packets are checked at their next allocation: if the next
//!   hop of their source route died, a fresh path from the current switch
//!   is sampled from the provider (one MIN draw, then up to eight VLB
//!   draws, each validated against the dead masks).  Success re-routes
//!   the packet and fires `on_fault_reroute`; failure drops it via
//!   `on_drop`.  Packets whose destination switch died are always
//!   dropped.

use super::observer::SimObserver;
use super::profile::EngineProfiler;
use super::{Engine, F_REVISABLE};
use tugal_routing::{Path, PathRef};
use tugal_topology::{ChannelKind, FaultSet, NodeId, SwitchId};

/// Reroute attempts per blocked packet: one MIN draw plus this many VLB
/// draws before the packet is declared stuck and dropped.
const REROUTE_VLB_TRIES: usize = 8;

impl<'a, O: SimObserver, P: EngineProfiler> Engine<'a, O, P> {
    /// Kills the components of `faults` in the live workspace: ORs the
    /// dead masks and drains buffers that can no longer move traffic.
    /// Faults accumulate — nothing is ever revived within a run.
    pub(crate) fn apply_faults(&mut self, faults: &FaultSet) {
        if faults.is_empty() {
            return;
        }
        let deg = self.sim.topo.degrade(faults);

        // Newly dead switches: drain every non-empty input buffer at the
        // switch (its ready list enumerates exactly those) — packets
        // parked in a dead router are lost.
        for sw in 0..self.sim.topo.num_switches() {
            if !deg.switch_dead(SwitchId(sw as u32)) || self.ws.switch_dead[sw] {
                continue;
            }
            self.ws.switch_dead[sw] = true;
            let buffers = std::mem::take(&mut self.ws.ready[sw]);
            for idx in buffers {
                let idx = idx as usize;
                self.ws.in_ready[idx] = false;
                while let Some(pi) = self.ws.inb_pop(idx) {
                    self.ws.buf_occ[idx / self.v] -= 1;
                    self.drop_in_network(pi);
                }
            }
        }

        // Newly dead channels (this includes every channel incident to a
        // newly dead switch): drop staged flits — they had won switch
        // allocation but not the wire, so they die with the channel.  The
        // downstream credits they hold are never returned; the channel is
        // dead, so its buffer space no longer matters.
        for ch in 0..self.sim.topo.num_channels() {
            if !deg.channel_dead(tugal_topology::ChannelId(ch as u32)) || self.ws.chan_dead[ch] {
                continue;
            }
            self.ws.chan_dead[ch] = true;
            while let Some(pi) = self.ws.stg_pop(ch) {
                self.drop_in_network(pi);
            }
        }
    }

    /// Drops a packet that faults removed from the network, reporting it
    /// through the observer's drop hook (so the injected = delivered +
    /// dropped + in-flight ledger still balances).
    pub(crate) fn drop_in_network(&mut self, pi: u32) {
        let (src, dst) = {
            let p = &self.ws.packets[pi as usize];
            (NodeId(p.src_node), NodeId(p.dst_node))
        };
        self.stats.record_drop();
        self.obs.on_drop(self.now, src, dst);
        self.free_packet(pi);
    }

    /// Checks a head-of-buffer packet against the dead masks just before
    /// its next hop is computed.  Returns `true` when the packet may
    /// proceed (possibly on a freshly sampled path), `false` when the
    /// caller must drop it.
    pub(crate) fn fault_check(&mut self, pi: u32) -> bool {
        let sim = self.sim;
        let topo = &*sim.topo;
        // This path runs only under an attached fault schedule, so copying
        // the (inline, 18-byte) path out simplifies the borrows at no
        // steady-state cost.
        let old_path: Path = *self.packet_path(pi);
        let (cur, dsw, hop) = {
            let p = &self.ws.packets[pi as usize];
            let dsw = topo.switch_of_node(NodeId(p.dst_node));
            let hop = p.hop as usize;
            let intact = old_path.dst() == dsw
                && (hop == old_path.hops()
                    || !self.ws.chan_dead[old_path.channel_at(topo, hop).index()]);
            if intact {
                // Only the next hop is checked; a death further along the
                // path is handled at a later decision point.  (A path not
                // ending at the destination switch is the provider's
                // unreachable-pair sentinel and is never intact.)
                return true;
            }
            (old_path.switch(hop), dsw, hop)
        };
        if self.ws.switch_dead[dsw.index()] {
            return false; // destination died; undeliverable
        }
        // The packet sits in a buffer of `cur`, so this shard owns it and
        // its group's RNG stream feeds the reroute draws.
        let gi = self.gi_of_switch(cur);
        let Some(path) = self.sample_alive_path(cur, dsw, gi) else {
            return false; // no surviving candidate from here
        };
        let (mut dl, mut dg) = (0u8, 0u8);
        for i in 0..hop {
            if old_path.hop_kind(topo, i) == ChannelKind::Global {
                dg += 1;
            } else {
                dl += 1;
            }
        }
        self.set_packet_path(pi, path);
        let p = &mut self.ws.packets[pi as usize];
        // The abandoned prefix still counts toward the packet's VC class,
        // keeping VC indices monotone along the composite route.
        p.pre_local = p.pre_local.saturating_add(dl);
        p.pre_global = p.pre_global.saturating_add(dg);
        p.hop = 0;
        p.out_chan = u32::MAX;
        p.flags &= !F_REVISABLE;
        self.obs.on_fault_reroute(self.now, cur);
        true
    }

    /// Samples a surviving path `cur → dst` from the provider: the MIN
    /// draw first, then up to [`REROUTE_VLB_TRIES`] VLB draws.
    fn sample_alive_path(
        &mut self,
        cur: SwitchId,
        dst: SwitchId,
        gi: usize,
    ) -> Option<PathRef<'a>> {
        let sim = self.sim;
        let provider = &*sim.provider;
        let p = provider.sample_min_ref(cur, dst, &mut self.rngs[gi]);
        if self.path_usable(p.path(), cur, dst) {
            return Some(p);
        }
        for _ in 0..REROUTE_VLB_TRIES {
            let p = provider.sample_vlb_ref(cur, dst, &mut self.rngs[gi]);
            if self.path_usable(p.path(), cur, dst) {
                return Some(p);
            }
        }
        None
    }

    /// True when `p` runs `cur → dst` entirely over surviving hardware.
    fn path_usable(&self, p: &Path, cur: SwitchId, dst: SwitchId) -> bool {
        if p.src() != cur || p.dst() != dst {
            return false; // sentinel or stale candidate
        }
        let topo = &self.sim.topo;
        for i in 0..p.hops() {
            if self.ws.chan_dead[p.channel_at(topo, i).index()]
                || self.ws.switch_dead[p.hop(i).1.index()]
            {
                return false;
            }
        }
        true
    }
}
