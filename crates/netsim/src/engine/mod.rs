//! The cycle-driven simulation engine, layered into focused submodules:
//!
//! * [`state`] — flow-control state (packet pool, buffers, credits,
//!   calendar rings) behind the reusable [`SimWorkspace`],
//! * [`routing`] — the UGAL-L/G + PAR decision logic,
//! * [`alloc`] — injection, switch allocation and wire transmission,
//! * [`collect`] — statistics counters and [`SimResult`] finalization,
//! * [`observer`] — the monomorphized [`SimObserver`] probe seam.
//!
//! The split is purely structural: the cycle loop below executes the exact
//! phase order of the original monolithic engine (credit returns →
//! arrivals → injection → switch allocation → wire transmission), and the
//! golden fixtures in `tests/golden.rs` pin its results bit-for-bit.
//!
//! ## Routing
//!
//! Packets are source-routed: the UGAL decision (one MIN candidate versus
//! one VLB candidate, drawn from the configured
//! [`tugal_routing::PathProvider`]) runs when the packet reaches the head
//! of its injection queue at the source switch.  PAR may revise a MIN
//! decision once, at the second router inside the source group, switching
//! to a fresh VLB path from that router (with the extra VC class the
//! +1-VC configuration provides).

mod alloc;
mod collect;
mod fault;
mod observer;
mod routing;
mod state;
mod watchdog;

pub use observer::{NoopObserver, SimObserver};
pub use state::{SimWorkspace, WorkspacePool};
pub use watchdog::{
    ConservationLedger, OldestPacket, RoutingCounters, StallKind, StallReport, VcSnapshot,
    WatchdogConfig,
};

use crate::config::{Config, RoutingAlgorithm};
use crate::fault::FaultSchedule;
use crate::stats::SimResult;
use collect::Stats;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use state::Packet;
use std::sync::Arc;
use tugal_routing::{Path, PathId, PathProvider, PathRef, PathStore};
use tugal_topology::Dragonfly;
use tugal_traffic::TrafficPattern;

/// Per-node cap on the source queue.  BookSim models infinite source
/// queues; bounding them only matters beyond saturation (where the latency
/// threshold has long fired) and keeps memory finite during deep-saturation
/// sweep points.  Overflowing packets are dropped and counted as injected.
const SOURCE_QUEUE_CAP: usize = 256;

/// Early-exit guard: if more packets than this per node are in flight the
/// run is declared saturated without finishing the window.
const INFLIGHT_CAP_PER_NODE: usize = 64;

pub(crate) const F_ROUTED: u8 = 1;
pub(crate) const F_REVISABLE: u8 = 2;
pub(crate) const F_VLB: u8 = 4;

/// Tag bit of `Packet::path_id`: set when the path lives in the packet's
/// `SimWorkspace::eph_paths` slot instead of the provider's interned
/// arena (see `Engine::set_packet_path`).
pub(crate) const EPH_BIT: u32 = 1 << 31;

/// A configured simulation; [`Simulator::run`] executes it at one offered
/// load.
pub struct Simulator {
    pub(crate) topo: Arc<Dragonfly>,
    pub(crate) provider: Arc<dyn PathProvider>,
    pub(crate) pattern: Arc<dyn TrafficPattern>,
    pub(crate) routing: RoutingAlgorithm,
    pub(crate) cfg: Config,
    pub(crate) faults: Option<Arc<FaultSchedule>>,
}

impl Simulator {
    /// Builds a simulator.  `cfg.num_vcs` must cover the VC classes the
    /// routing needs (use [`Config::for_routing`]).
    pub fn new(
        topo: Arc<Dragonfly>,
        provider: Arc<dyn PathProvider>,
        pattern: Arc<dyn TrafficPattern>,
        routing: RoutingAlgorithm,
        cfg: Config,
    ) -> Self {
        let required = tugal_routing::required_vcs(cfg.vc_scheme, routing.progressive());
        assert!(
            cfg.num_vcs >= required,
            "{} under the {:?} scheme needs {} VCs, got {}",
            routing.name(),
            cfg.vc_scheme,
            required,
            cfg.num_vcs
        );
        Self {
            topo,
            provider,
            pattern,
            routing,
            cfg,
            faults: None,
        }
    }

    /// Attaches a fault schedule: the components it names die at their
    /// configured cycles (see the `fault` module).  An empty schedule
    /// leaves the engine on the pristine fast path — results are
    /// bit-identical to a simulator without one.
    pub fn with_faults(self, schedule: FaultSchedule) -> Self {
        self.with_fault_schedule(Arc::new(schedule))
    }

    /// [`Simulator::with_faults`] for an already-shared schedule (sweeps
    /// reuse one schedule across many jobs).
    pub fn with_fault_schedule(mut self, schedule: Arc<FaultSchedule>) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Runs the configured warmup + measurement windows at `rate`
    /// packets/cycle/node (`0 < rate ≤ 1`) in a freshly allocated
    /// workspace.  Sweeps should prefer [`Simulator::run_with`] with a
    /// reused [`SimWorkspace`].
    pub fn run(&self, rate: f64) -> SimResult {
        self.run_with(rate, &mut SimWorkspace::new())
    }

    /// Like [`Simulator::run`], but executes inside `ws`, reusing its
    /// allocations.  The workspace is reset first, so results are
    /// identical whether `ws` is fresh or previously used (for any
    /// topology/config — shape changes reallocate transparently).
    pub fn run_with(&self, rate: f64, ws: &mut SimWorkspace) -> SimResult {
        self.run_observed(rate, ws, &mut NoopObserver)
    }

    /// Like [`Simulator::run_with`], with a [`SimObserver`] receiving
    /// cycle-level events.  The engine is monomorphized per observer type;
    /// the default [`NoopObserver`] compiles to the unobserved loop.
    pub fn run_observed<O: SimObserver>(
        &self,
        rate: f64,
        ws: &mut SimWorkspace,
        obs: &mut O,
    ) -> SimResult {
        self.run_reported(rate, ws, obs).0
    }

    /// Like [`Simulator::run_observed`], additionally returning the
    /// [`StallReport`] if the configured watchdog tripped (`None` when the
    /// watchdog is off or never fired).  The `SimResult` is identical to
    /// the one [`Simulator::run_observed`] returns for the same inputs.
    pub fn run_reported<O: SimObserver>(
        &self,
        rate: f64,
        ws: &mut SimWorkspace,
        obs: &mut O,
    ) -> (SimResult, Option<StallReport>) {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "injection rate {rate} out of (0,1]"
        );
        Engine::new(self, rate, ws, obs).run()
    }
}

pub(crate) struct Engine<'a, O: SimObserver> {
    pub(crate) sim: &'a Simulator,
    pub(crate) ws: &'a mut SimWorkspace,
    pub(crate) obs: &'a mut O,
    pub(crate) rate: f64,
    pub(crate) now: u64,
    pub(crate) rng: SmallRng,
    pub(crate) v: usize, // num VCs
    pub(crate) in_flight: usize,
    /// `ring_size - 1`; ring sizes are powers of two, so calendar slots
    /// are computed with a mask instead of a per-event division.
    pub(crate) ring_mask: u64,
    /// Channels below this index are switch-to-switch (credit-managed on
    /// both sides); injection channels return no upstream credit (their
    /// upstream is the source queue).
    pub(crate) n_network: usize,
    pub(crate) stats: Stats,
    /// The provider's interned arena, resolved once at construction so
    /// `packet_path` — called on every routing decision and next-hop miss —
    /// skips the virtual `resolve` dispatch.
    store: Option<&'a PathStore>,
    /// True when a non-empty fault schedule is attached; every fault code
    /// path is behind this flag, so fault-free runs stay bit-identical.
    pub(crate) fault_on: bool,
    /// Next unapplied event of the fault schedule.
    next_event: usize,
}

impl<'a, O: SimObserver> Engine<'a, O> {
    fn new(sim: &'a Simulator, rate: f64, ws: &'a mut SimWorkspace, obs: &'a mut O) -> Self {
        let cfg = &sim.cfg;
        ws.reset(&sim.topo, cfg);
        Engine {
            sim,
            ws,
            obs,
            rate,
            now: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            v: cfg.num_vcs as usize,
            in_flight: 0,
            ring_mask: SimWorkspace::ring_size_for(cfg) as u64 - 1,
            n_network: sim.topo.num_network_channels(),
            stats: Stats::new(),
            store: sim.provider.path_store(),
            fault_on: sim.faults.as_ref().is_some_and(|f| !f.is_empty()),
            next_event: 0,
        }
    }

    pub(crate) fn alloc_packet(&mut self, p: Packet) -> u32 {
        self.in_flight += 1;
        if let Some(i) = self.ws.free.pop() {
            self.ws.packets[i as usize] = p;
            i
        } else {
            self.ws.packets.push(p);
            // The ephemeral-path slab and FIFO-link array stay parallel to
            // the pool; the new slots' contents are filled before use.
            self.ws.eph_paths.push(Path::default());
            self.ws.next_pkt.push(u32::MAX);
            (self.ws.packets.len() - 1) as u32
        }
    }

    /// The packet's current source route, resolved from the provider's
    /// interned arena or the packet's ephemeral slot.
    #[inline]
    pub(crate) fn packet_path(&self, pi: u32) -> &Path {
        let id = self.ws.packets[pi as usize].path_id;
        if id & EPH_BIT != 0 {
            &self.ws.eph_paths[(id & !EPH_BIT) as usize]
        } else if let Some(store) = self.store {
            store.get(PathId(id))
        } else {
            self.sim.provider.resolve(PathId(id))
        }
    }

    /// Points the packet at a freshly sampled candidate: interned draws
    /// store only the arena id; owned draws are copied into the packet's
    /// ephemeral slot.
    #[inline]
    pub(crate) fn set_packet_path(&mut self, pi: u32, path: PathRef<'_>) {
        self.ws.packets[pi as usize].path_id = match path {
            PathRef::Interned(id, _) => id.0,
            PathRef::Owned(p) => {
                self.ws.eph_paths[pi as usize] = p;
                EPH_BIT | pi
            }
        };
    }

    pub(crate) fn free_packet(&mut self, i: u32) {
        self.in_flight -= 1;
        self.ws.free.push(i);
    }

    fn run(mut self) -> (SimResult, Option<StallReport>) {
        let cfg = self.sim.cfg.clone();
        let warmup = cfg.warmup_windows as u64 * cfg.window as u64;
        let total = cfg.total_cycles();
        let nodes = self.sim.topo.num_nodes();
        let inflight_cap = nodes * INFLIGHT_CAP_PER_NODE;
        let watchdog =
            (cfg.window as u64).max(64 * (cfg.global_latency as u64 + cfg.local_latency as u64));

        // Opt-in configurable watchdog: a single `Option` test per cycle
        // when disarmed (the default).  Every armed check is read-only, so
        // a non-tripping armed run is bit-identical to a disarmed one
        // (pinned by the watchdog-armed golden variants).
        let wd = self.sim.cfg.watchdog.filter(|w| w.armed());
        let wd_start = std::time::Instant::now();
        let mut stall: Option<StallReport> = None;

        // The schedule is applied lazily as the clock reaches each event
        // (an event at cycle 0 degrades the network before any traffic).
        let sched = if self.fault_on {
            self.sim.faults.clone()
        } else {
            None
        };

        while self.now < total {
            if let Some(sched) = &sched {
                let events = sched.events();
                while self.next_event < events.len() && events[self.next_event].cycle <= self.now {
                    self.apply_faults(&events[self.next_event].faults);
                    self.next_event += 1;
                }
            }
            if self.now == warmup {
                self.stats.open_window();
                self.obs.on_measurement_start(self.now);
            }
            self.step();
            if self.in_flight > inflight_cap {
                self.stats.saturated_early = true;
                break;
            }
            // Deadlock watchdog: with packets in flight, *something* must
            // eject within a generous horizon; a correctly configured VC
            // scheme guarantees it.  A trip marks the run instead of
            // spinning to the end of the window.
            if self.in_flight > 0 && self.now.saturating_sub(self.stats.last_delivery) > watchdog {
                self.stats.deadlock_suspected = true;
                self.stats.saturated_early = true;
                break;
            }
            if let Some(w) = &wd {
                if let Some(kind) = self.watchdog_check(w, &wd_start) {
                    stall = Some(self.stall_report(kind));
                    self.stats.saturated_early = true;
                    break;
                }
            }
            self.now += 1;
        }

        self.obs.on_run_end(self.now, self.in_flight as u64);
        let result = self.stats.finalize(
            &cfg,
            self.rate,
            self.now,
            nodes,
            &self.ws.chan_flits,
            &self.ws.is_global,
            self.n_network,
        );
        (result, stall)
    }

    /// Runs the armed watchdog checks for the cycle that just completed.
    /// Called off the hot path only when a [`WatchdogConfig`] is armed.
    fn watchdog_check(&self, w: &WatchdogConfig, start: &std::time::Instant) -> Option<StallKind> {
        if w.stall_cycles > 0
            && self.in_flight > 0
            && self.now.saturating_sub(self.stats.last_delivery) > w.stall_cycles
        {
            return Some(StallKind::Livelock);
        }
        if w.conservation_every > 0
            && self.now.is_multiple_of(w.conservation_every)
            && !self.ledger().balanced()
        {
            return Some(StallKind::ConservationViolation);
        }
        if w.max_cycles > 0 && self.now + 1 >= w.max_cycles {
            return Some(StallKind::CycleCeiling);
        }
        if w.wall_limit_ms > 0
            && self.now & 1023 == 0
            && start.elapsed().as_millis() as u64 >= w.wall_limit_ms
        {
            return Some(StallKind::WallClockExceeded);
        }
        None
    }

    /// The whole-run packet-accounting ledger at the current cycle.
    fn ledger(&self) -> ConservationLedger {
        ConservationLedger {
            injected: self.stats.total_injected,
            delivered: self.stats.total_delivered,
            dropped: self.stats.total_dropped,
            in_flight: self.in_flight as u64,
        }
    }

    /// Builds the trip report: ledger, occupancy snapshot, oldest live
    /// packet and decision counters.  Cold path — runs once per trip.
    fn stall_report(&self, kind: StallKind) -> StallReport {
        // Non-empty (channel, VC) input buffers, largest first.
        let mut occupancy = Vec::new();
        for ch in 0..self.n_network {
            for vc in 0..self.v {
                let occ = self.ws.vc_occupancy(ch, self.v, vc);
                if occ > 0 {
                    occupancy.push(VcSnapshot {
                        chan: ch as u32,
                        vc: vc as u8,
                        occupancy: occ,
                    });
                }
            }
        }
        occupancy.sort_by(|a, b| {
            b.occupancy
                .cmp(&a.occupancy)
                .then(a.chan.cmp(&b.chan))
                .then(a.vc.cmp(&b.vc))
        });
        occupancy.truncate(StallReport::MAX_OCCUPANCY_ENTRIES);

        // Oldest live packet: the pool minus its free list.
        let mut live = vec![true; self.ws.packets.len()];
        for &f in &self.ws.free {
            live[f as usize] = false;
        }
        let oldest = self
            .ws
            .packets
            .iter()
            .zip(live)
            .filter(|(_, alive)| *alive)
            .map(|(p, _)| p)
            .min_by_key(|p| p.birth)
            .map(|p| OldestPacket {
                birth: p.birth,
                age: self.now.saturating_sub(p.birth),
                src: p.src_node,
                dst: p.dst_node,
                hops_taken: p.hops_taken,
                cur_chan: p.cur_chan,
            });

        StallReport {
            kind,
            cycle: self.now,
            last_delivery: self.stats.last_delivery,
            ledger: self.ledger(),
            occupancy,
            oldest,
            decisions: RoutingCounters {
                routed: self.stats.routed,
                vlb_chosen: self.stats.vlb_chosen,
            },
        }
    }

    fn step(&mut self) {
        self.obs.on_cycle(self.now);

        // Observer-driven occupancy sampling: a zero cadence (the
        // `NoopObserver` default) lets monomorphization compile the whole
        // block out of the hot loop.
        let cadence = self.obs.occupancy_cadence();
        if cadence != 0 && self.now.is_multiple_of(cadence) {
            for ch in 0..self.n_network {
                for vc in 0..self.v {
                    let occ = self.ws.vc_occupancy(ch, self.v, vc);
                    self.obs
                        .on_vc_occupancy_sample(self.now, ch as u32, vc as u8, occ);
                }
            }
        }

        let slot = (self.now & self.ring_mask) as usize;

        // Calendar slots are drained by *swapping* with a scratch buffer
        // instead of `mem::take`-ing the Vec: taking would drop the slot's
        // capacity every cycle (an alloc/dealloc pair per non-empty slot);
        // swapping circulates the capacity forever.  Entries pushed while
        // draining land in the slot's (empty, capacity-bearing) new Vec —
        // never in the scratch — because every push targets a future slot
        // (all latencies are ≥ 1).

        // 1. Credit returns.
        let mut credits_due = std::mem::take(&mut self.ws.credit_scratch);
        std::mem::swap(&mut credits_due, &mut self.ws.credit_ring[slot]);
        for &idx in &credits_due {
            self.ws.credits[idx as usize] += 1;
            self.ws.cred_used[self.ws.chan_of_buf[idx as usize] as usize] -= 1;
        }
        credits_due.clear();
        self.ws.credit_scratch = credits_due;

        // 2. Arrivals.
        let mut arrived = std::mem::take(&mut self.ws.arrival_scratch);
        std::mem::swap(&mut arrived, &mut self.ws.arrivals[slot]);
        for &pi in &arrived {
            let p = &self.ws.packets[pi as usize];
            let ch = p.cur_chan as usize;
            let cur_vc = p.cur_vc;
            let dst = self.ws.dst_switch[ch];
            if dst == u32::MAX {
                // Ejection: delivered.
                let (birth, hops) = (p.birth, p.hops_taken);
                self.stats.record_delivery(self.now, birth, hops);
                self.obs.on_deliver(self.now, self.now - birth, hops);
                self.free_packet(pi);
            } else if self.fault_on && self.ws.switch_dead[dst as usize] {
                // The flit was already on the wire when its downstream
                // switch died; it arrives at a dead router and is lost.
                self.drop_in_network(pi);
            } else {
                let idx = ch * self.v + cur_vc as usize;
                self.ws.inb_push(idx, pi);
                self.ws.buf_occ[ch] += 1;
                if !self.ws.in_ready[idx] {
                    self.ws.in_ready[idx] = true;
                    self.ws.ready[dst as usize].push(idx as u32);
                }
            }
        }
        arrived.clear();
        self.ws.arrival_scratch = arrived;

        // 3. Injection.
        self.inject();

        // 4. Switch allocation.
        self.allocate();

        // 5. Wire transmission (1 flit/cycle/channel).
        self.transmit();
    }
}
