//! The cycle-driven simulation engine, layered into focused submodules:
//!
//! * [`state`] — flow-control state (packet pool, buffers, credits,
//!   calendar rings) behind the reusable [`SimWorkspace`], split into
//!   per-shard slabs,
//! * [`routing`] — the UGAL-L/G + PAR decision logic,
//! * [`alloc`] — injection, switch allocation and wire transmission,
//! * [`collect`] — statistics counters and [`SimResult`] finalization,
//! * [`observer`] — the monomorphized [`SimObserver`] probe seam,
//! * [`watchdog`] — opt-in invariant monitoring and stall reports.
//!
//! The cycle loop executes the phase order of the original monolithic
//! engine (credit returns → arrivals → injection → switch allocation →
//! wire transmission), and the golden fixtures in `tests/golden.rs` pin
//! its results bit-for-bit.
//!
//! ## Partitioned execution
//!
//! A run executes as `Config::shards` workers, each owning a contiguous
//! range of dragonfly groups (see [`state::ShardState`]).  Within a cycle
//! each worker simulates only its own switches and channels; flits and
//! credits that cross a shard boundary travel through per-pair mailboxes
//! (cycle-stamped message batches behind mutexes), and a barrier at the
//! end of every cycle publishes each shard's counters so all workers take
//! **identical** stop decisions (saturation caps, deadlock heuristic,
//! armed watchdog checks).  Determinism is the hard contract: mailboxes
//! are drained in ascending source-shard order, arrival slots are sorted
//! by channel, RNG streams are keyed per *group* rather than per run, and
//! per-shard statistics merge in shard order — so a run with any valid
//! shard count is bit-for-bit identical to the sequential one (pinned by
//! `tests/shard_parity.rs`).  `shards == 1` (the default) runs today's
//! sequential path on the caller's thread: no mailboxes, no barriers, no
//! atomics traffic.
//!
//! ## Routing
//!
//! Packets are source-routed: the UGAL decision (one MIN candidate versus
//! one VLB candidate, drawn from the configured
//! [`tugal_routing::PathProvider`]) runs when the packet reaches the head
//! of its injection queue at the source switch.  PAR may revise a MIN
//! decision once, at the second router inside the source group, switching
//! to a fresh VLB path from that router (with the extra VC class the
//! +1-VC configuration provides).

mod alloc;
mod collect;
mod fault;
mod observer;
mod profile;
mod routing;
mod state;
mod watchdog;

pub use observer::{NoopObserver, SimObserver};
pub use profile::{
    EngineProf, EngineProfiler, NoopProfiler, Phase, ProfileReport, ShardProfile, PHASE_COUNT,
};
pub use state::{SimWorkspace, WorkspacePool};
pub use watchdog::{
    ConservationLedger, FlightFrame, OldestPacket, RoutingCounters, StallKind, StallReport,
    VcSnapshot, WatchdogConfig,
};

use crate::ckpt::{self, CkptEvent, CkptEventKind, CkptRun, CkptShape, CkptWarning, ResumeCtx};
use crate::config::{Config, RoutingAlgorithm};
use crate::fault::FaultSchedule;
use crate::stats::SimResult;
pub(crate) use collect::Stats;
use rand::rngs::SmallRng;
use rand::SeedableRng;
pub(crate) use state::{Packet, ShardState};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Barrier, Mutex};
use tugal_routing::{Path, PathId, PathProvider, PathRef, PathStore};
use tugal_topology::Dragonfly;
use tugal_traffic::TrafficPattern;
use watchdog::StallPartial;

/// Per-node cap on the source queue.  BookSim models infinite source
/// queues; bounding them only matters beyond saturation (where the latency
/// threshold has long fired) and keeps memory finite during deep-saturation
/// sweep points.  Overflowing packets are dropped and counted as injected.
const SOURCE_QUEUE_CAP: usize = 256;

/// Early-exit guard: if more packets than this per node are in flight the
/// run is declared saturated without finishing the window.
const INFLIGHT_CAP_PER_NODE: usize = 64;

pub(crate) const F_ROUTED: u8 = 1;
pub(crate) const F_REVISABLE: u8 = 2;
pub(crate) const F_VLB: u8 = 4;

/// Tag bit of `Packet::path_id`: set when the path lives in the packet's
/// `ShardState::eph_paths` slot instead of the provider's interned
/// arena (see `Engine::set_packet_path`).
pub(crate) const EPH_BIT: u32 = 1 << 31;

/// Weyl-sequence multiplier mixing the group index into the run seed:
/// every dragonfly group draws from its own `SmallRng` stream, so the RNG
/// consumption of one group is independent of how many shards execute the
/// run — the keystone of the shard-count-invariance contract.
const GROUP_SEED_MIX: u64 = 0x9E3779B97F4A7C15;

fn group_rng(seed: u64, group: u32) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ GROUP_SEED_MIX.wrapping_mul(group as u64 + 1))
}

/// A boundary message between shards: a flit handed to the shard owning
/// the receiving switch, or a credit returned to the shard owning the
/// sending switch.
pub(crate) enum Msg {
    /// A flit that finished its wire traversal into another shard's
    /// switch: arrives at absolute cycle `due`.  The path rides along so
    /// ephemeral (non-interned) routes survive the pool handoff.
    Flit { due: u64, pkt: Packet, path: Path },
    /// A credit for buffer index `idx` (channel * V + vc), due at absolute
    /// cycle `due` on the sender shard's credit calendar.
    Credit { idx: u32, due: u64 },
}

/// Begin-of-allocation snapshot of the UGAL-G queue inputs: staged-flit
/// counts (sender side) and input-buffer occupancy (receiver side) per
/// network channel.  Written by each owner after injection, read by every
/// shard's routing decisions during allocation — separated by a barrier,
/// so relaxed atomics suffice.  Allocated (for every shard count,
/// including 1) only when the routing algorithm is UGAL-G, which keeps
/// the metric identical across shard counts: the "global genie" reads a
/// consistent cycle-start snapshot instead of mid-allocation live state.
pub(crate) struct Snap {
    stg: Vec<AtomicU32>,
    occ: Vec<AtomicU32>,
}

impl Snap {
    fn new(n_network: usize) -> Self {
        Snap {
            stg: (0..n_network).map(|_| AtomicU32::new(0)).collect(),
            occ: (0..n_network).map(|_| AtomicU32::new(0)).collect(),
        }
    }
}

/// One shard's end-of-cycle publication: the counters every worker needs
/// to take the global stop decisions.  Double-buffered by cycle parity so
/// a worker one cycle ahead cannot clobber values a slower worker is
/// still reading (a worker can lead by at most one cycle — the barrier
/// bounds the skew).
#[derive(Default)]
struct PubSlot {
    in_flight: AtomicU64,
    sent: AtomicU64,
    recv: AtomicU64,
    last_delivery: AtomicU64,
    injected: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    /// Wall-clock elapsed, published by shard 0 only (at the watchdog's
    /// 1024-cycle cadence) so the wall-limit check trips identically on
    /// every shard.
    elapsed_ms: AtomicU64,
}

/// One boundary mailbox: cycle-stamped batches of [`Msg`], appended by
/// the source shard at the end of its cycle, drained by the destination.
type Mailbox = Mutex<VecDeque<(u64, Vec<Msg>)>>;

/// Shared state of a multi-shard run: the cycle barrier, the N×N mailbox
/// matrix and the per-shard publication cells.
pub(crate) struct SharedRun {
    n: usize,
    barrier: Barrier,
    /// Mailbox `src * n + dst`: cycle-stamped message batches.  The
    /// receiver drains only batches stamped *before* its current cycle,
    /// in ascending source-shard order — fixed drain order is part of the
    /// determinism contract.
    boxes: Vec<Mailbox>,
    /// Publication cells, double-buffered by cycle parity.
    cells: Vec<[PubSlot; 2]>,
}

impl SharedRun {
    fn new(n: usize) -> Self {
        SharedRun {
            n,
            barrier: Barrier::new(n),
            boxes: (0..n * n).map(|_| Mutex::new(VecDeque::new())).collect(),
            cells: (0..n)
                .map(|_| [PubSlot::default(), PubSlot::default()])
                .collect(),
        }
    }
}

/// The globally agreed counters of the cycle that just completed; every
/// shard computes the identical value from the published cells (or from
/// its own counters on the sequential path).
#[derive(Default)]
struct CycleGlobals {
    in_flight: u64,
    last_delivery: u64,
    injected: u64,
    delivered: u64,
    dropped: u64,
    elapsed_ms: u64,
}

/// What one shard worker hands back to the orchestrator.
pub(crate) struct ShardOutcome {
    stats: Stats,
    kind: Option<StallKind>,
    stall: Option<StallPartial>,
    in_flight: u64,
    sent: u64,
    recv: u64,
    now: u64,
}

/// A configured simulation; [`Simulator::run`] executes it at one offered
/// load.
pub struct Simulator {
    pub(crate) topo: Arc<Dragonfly>,
    pub(crate) provider: Arc<dyn PathProvider>,
    pub(crate) pattern: Arc<dyn TrafficPattern>,
    pub(crate) routing: RoutingAlgorithm,
    pub(crate) cfg: Config,
    pub(crate) faults: Option<Arc<FaultSchedule>>,
}

impl Simulator {
    /// Builds a simulator.  `cfg.num_vcs` must cover the VC classes the
    /// routing needs (use [`Config::for_routing`]).
    pub fn new(
        topo: Arc<Dragonfly>,
        provider: Arc<dyn PathProvider>,
        pattern: Arc<dyn TrafficPattern>,
        routing: RoutingAlgorithm,
        cfg: Config,
    ) -> Self {
        let required = tugal_routing::required_vcs(cfg.vc_scheme, routing.progressive());
        assert!(
            cfg.num_vcs >= required,
            "{} under the {:?} scheme needs {} VCs, got {}",
            routing.name(),
            cfg.vc_scheme,
            required,
            cfg.num_vcs
        );
        Self {
            topo,
            provider,
            pattern,
            routing,
            cfg,
            faults: None,
        }
    }

    /// Attaches a fault schedule: the components it names die at their
    /// configured cycles (see the `fault` module).  An empty schedule
    /// leaves the engine on the pristine fast path — results are
    /// bit-identical to a simulator without one.
    pub fn with_faults(self, schedule: FaultSchedule) -> Self {
        self.with_fault_schedule(Arc::new(schedule))
    }

    /// [`Simulator::with_faults`] for an already-shared schedule (sweeps
    /// reuse one schedule across many jobs).
    pub fn with_fault_schedule(mut self, schedule: Arc<FaultSchedule>) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Runs the configured warmup + measurement windows at `rate`
    /// packets/cycle/node (`0 < rate ≤ 1`) in a freshly allocated
    /// workspace.  Sweeps should prefer [`Simulator::run_with`] with a
    /// reused [`SimWorkspace`].
    pub fn run(&self, rate: f64) -> SimResult {
        self.run_with(rate, &mut SimWorkspace::new())
    }

    /// Like [`Simulator::run`], but executes inside `ws`, reusing its
    /// allocations.  The workspace is reset first, so results are
    /// identical whether `ws` is fresh or previously used (for any
    /// topology/config/shard count — shape changes reallocate
    /// transparently).
    pub fn run_with(&self, rate: f64, ws: &mut SimWorkspace) -> SimResult {
        self.run_observed(rate, ws, &mut NoopObserver)
    }

    /// Like [`Simulator::run_with`], with a [`SimObserver`] receiving
    /// cycle-level events.  The engine is monomorphized per observer type;
    /// the default [`NoopObserver`] compiles to the unobserved loop.
    pub fn run_observed<O: SimObserver>(
        &self,
        rate: f64,
        ws: &mut SimWorkspace,
        obs: &mut O,
    ) -> SimResult {
        self.run_reported(rate, ws, obs).0
    }

    /// Like [`Simulator::run_observed`], additionally returning the
    /// [`StallReport`] if the configured watchdog tripped (`None` when the
    /// watchdog is off or never fired).  The `SimResult` is identical to
    /// the one [`Simulator::run_observed`] returns for the same inputs.
    ///
    /// With `cfg.shards > 1` the run executes as that many shard workers
    /// (panicking if the count does not divide the topology's groups —
    /// use [`Config::validate_shards`] up front for a typed error).  If
    /// the observer cannot fork ([`SimObserver::fork`] returns `None`)
    /// the run silently falls back to the sequential path, which is
    /// result-identical by the determinism contract.
    pub fn run_reported<O: SimObserver>(
        &self,
        rate: f64,
        ws: &mut SimWorkspace,
        obs: &mut O,
    ) -> (SimResult, Option<StallReport>) {
        self.run_profiled(rate, ws, obs, &mut NoopProfiler)
    }

    /// Like [`Simulator::run_reported`], with an [`EngineProfiler`]
    /// attributing each shard worker's wall-clock to the cycle loop's
    /// phases and counting its boundary traffic.  The engine is
    /// monomorphized per profiler type; [`NoopProfiler`] (what every other
    /// entry point passes) compiles to the unprofiled loop, and a real
    /// profiler ([`EngineProf`]) is observational only — the `SimResult`
    /// and `StallReport` are bit-identical either way (pinned by
    /// `tests/profile.rs`).
    pub fn run_profiled<O: SimObserver, P: EngineProfiler>(
        &self,
        rate: f64,
        ws: &mut SimWorkspace,
        obs: &mut O,
        prof: &mut P,
    ) -> (SimResult, Option<StallReport>) {
        let (result, stall, _) = self.run_instrumented(rate, ws, obs, prof);
        (result, stall)
    }

    /// [`Simulator::run_profiled`] plus the checkpoint events
    /// (writes/restores) the run performed, for trace-span emission.  With
    /// `cfg.checkpoint = None` (the default) the event list is empty and
    /// the run is bit-identical to one on a build without checkpointing.
    ///
    /// With `Some`, the run first restores from the newest valid
    /// checkpoint in the configured directory (cold-starting when there is
    /// none), then writes a checkpoint every `every` cycles.  Restore is
    /// bit-for-bit: the resumed run's result equals the uninterrupted
    /// run's, at any valid shard count — the checkpoint is canonical
    /// (keyed by group/channel ownership), so the writer's and reader's
    /// shard counts are independent.  If the observer does not implement
    /// [`SimObserver::snapshot`], checkpointing is disabled for the job
    /// with a warning (results unaffected), mirroring the fork fallback.
    pub(crate) fn run_instrumented<O: SimObserver, P: EngineProfiler>(
        &self,
        rate: f64,
        ws: &mut SimWorkspace,
        obs: &mut O,
        prof: &mut P,
    ) -> (SimResult, Option<StallReport>, Vec<CkptEvent>) {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "injection rate {rate} out of (0,1]"
        );
        let groups = self.topo.num_groups() as u32;
        if let Err(e) = self.cfg.validate_shards(groups) {
            panic!("invalid shard configuration: {e}");
        }

        // Fork one observer per shard; an observer that cannot fork runs
        // the whole simulation sequentially instead (bit-identical, just
        // not parallel).
        let want = self.cfg.shards as usize;
        let mut forks: Vec<O> = Vec::new();
        if want > 1 {
            for _ in 0..want {
                match obs.fork() {
                    Some(f) => forks.push(f),
                    None => {
                        forks.clear();
                        break;
                    }
                }
            }
        }
        let exec = if want > 1 && forks.len() == want {
            want
        } else {
            1
        };

        ws.reset(&self.topo, &self.cfg, exec);
        let n_network = self.topo.num_network_channels();
        let nodes = self.topo.num_nodes();
        let snap = (self.routing == RoutingAlgorithm::UgalG).then(|| Snap::new(n_network));

        // Checkpoint coordinator: built only when configured, the observer
        // can snapshot, and the directory is usable — otherwise a typed
        // warning and the run proceeds unchanged (checkpointing is purely
        // additive, never load-bearing for results).
        let mut ck_events: Vec<CkptEvent> = Vec::new();
        let ckrun = match &self.cfg.checkpoint {
            None => None,
            Some(_) if obs.snapshot().is_none() => {
                eprintln!("warning: {}", CkptWarning::ObserverSnapshotUnsupported);
                None
            }
            Some(cc) => {
                let shape = CkptShape {
                    groups,
                    n_chan: self.topo.num_channels() as u64,
                    n_buf: (self.topo.num_channels() * self.cfg.num_vcs as usize) as u64,
                    n_switches: self.topo.num_switches() as u64,
                };
                let topo_key = format!("{:?}{}", self.topo.params(), self.topo.shape_suffix());
                let fp = ckpt::fingerprint(
                    &topo_key,
                    self.routing,
                    &self.cfg,
                    self.faults.as_deref(),
                    rate,
                );
                match CkptRun::new(cc, fp, shape, exec) {
                    Ok(run) => Some(run),
                    Err(e) => {
                        eprintln!("warning: checkpoint directory {} unusable: {e}", cc.dir);
                        None
                    }
                }
            }
        };
        // Restore: newest valid checkpoint (corrupt candidates fall back
        // to the previous retained file, then to a cold start).  State is
        // applied per shard by ownership, so the writer's shard count is
        // irrelevant — except for observer blobs, which are per-fork; a
        // non-empty blob set must match the shard count to apply.
        let mut resume: Option<ResumeCtx> = None;
        if let Some(ck) = &ckrun {
            let t0 = std::time::Instant::now();
            if let Some((chk, bytes, checksum)) = ck.load() {
                let blobs_empty = chk.obs_blobs.iter().all(|b| b.is_empty());
                if !blobs_empty && chk.obs_blobs.len() != exec {
                    eprintln!(
                        "warning: {}",
                        CkptWarning::ObserverShardMismatch {
                            blobs: chk.obs_blobs.len(),
                            shards: exec,
                        }
                    );
                } else {
                    let ring_mask = SimWorkspace::ring_size_for(&self.cfg) as u64 - 1;
                    for st in ws.shards.iter_mut() {
                        ckpt::apply_shard(&chk, st, ring_mask);
                    }
                    if !blobs_empty {
                        if exec == 1 {
                            obs.restore(&chk.obs_blobs[0]);
                        } else {
                            for (f, b) in forks.iter_mut().zip(&chk.obs_blobs) {
                                f.restore(b);
                            }
                        }
                    }
                    ck_events.push(CkptEvent {
                        kind: CkptEventKind::Restore,
                        cycle: chk.next_cycle,
                        shards: exec as u32,
                        bytes,
                        checksum,
                        elapsed_ms: t0.elapsed().as_millis() as u64,
                    });
                    resume = Some(ResumeCtx::from_checkpoint(&chk));
                }
            }
        }
        let ckr = ckrun.as_ref();
        let res = resume.as_ref();

        let (mut outs, global_in_flight) = if exec == 1 {
            let eng = Engine::new(
                self,
                rate,
                &mut ws.shards[0],
                obs,
                prof,
                None,
                snap.as_ref(),
                ckr,
                res,
            );
            let out = eng.run();
            let gif = out.in_flight;
            (vec![out], gif)
        } else {
            let mut pforks: Vec<P> = (0..exec).map(|_| prof.fork()).collect();
            let shared = SharedRun::new(exec);
            let joined: Vec<(ShardOutcome, O, P)> = std::thread::scope(|scope| {
                let shared = &shared;
                let snap = snap.as_ref();
                let mut handles = Vec::with_capacity(exec);
                for ((st, fork), pfork) in ws
                    .shards
                    .iter_mut()
                    .zip(forks.drain(..))
                    .zip(pforks.drain(..))
                {
                    handles.push(scope.spawn(move || {
                        let mut fork = fork;
                        let mut pfork = pfork;
                        let eng = Engine::new(
                            self,
                            rate,
                            st,
                            &mut fork,
                            &mut pfork,
                            Some(shared),
                            snap,
                            ckr,
                            res,
                        );
                        (eng.run(), fork, pfork)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            let mut outs = Vec::with_capacity(exec);
            for (out, fork, pfork) in joined {
                obs.absorb(fork);
                prof.absorb(pfork);
                outs.push(out);
            }
            // Boundary messages nobody drained before the run stopped: the
            // exact gap between the shards' sent and received counters
            // (cold path, and only when a real profiler is attached).
            if P::ENABLED {
                let (mut uf, mut uc) = (0u64, 0u64);
                for mb in &shared.boxes {
                    for (_, msgs) in mb.lock().unwrap().iter() {
                        for m in msgs {
                            match m {
                                Msg::Flit { .. } => uf += 1,
                                Msg::Credit { .. } => uc += 1,
                            }
                        }
                    }
                }
                prof.note_undrained(uf, uc);
            }
            // Global in-flight population: per-shard pools plus flits
            // still sitting in mailboxes (sent but never drained).
            let gif = outs.iter().map(|o| o.in_flight + o.sent).sum::<u64>()
                - outs.iter().map(|o| o.recv).sum::<u64>();
            (outs, gif)
        };

        // Deterministic reduction in shard order.
        let mut partials = Vec::new();
        if let Some(p) = outs[0].stall.take() {
            partials.push(p);
        }
        let (first, rest) = outs.split_at_mut(1);
        let first = &mut first[0];
        for o in rest {
            debug_assert_eq!(o.kind, first.kind, "shards disagree on the stop decision");
            debug_assert_eq!(o.now, first.now, "shards disagree on the stop cycle");
            first.stats.merge(&o.stats);
            if let Some(p) = o.stall.take() {
                partials.push(p);
            }
        }
        let now = first.now;
        obs.on_run_end(now, global_in_flight);

        // Per-channel flit counts: each shard increments only channels
        // whose send side it owns, so the per-shard vectors sum disjointly.
        let merged_flits;
        let chan_flits: &[u32] = if ws.shards.len() == 1 {
            &ws.shards[0].chan_flits
        } else {
            let mut acc = vec![0u32; self.topo.num_channels()];
            for st in &ws.shards {
                for (a, &f) in acc.iter_mut().zip(&st.chan_flits) {
                    *a += f;
                }
            }
            merged_flits = acc;
            &merged_flits
        };

        let result = first.stats.finalize(
            &self.cfg,
            rate,
            now,
            nodes,
            chan_flits,
            &ws.shards[0].is_global,
            n_network,
        );
        let stall = first.kind.map(|kind| {
            StallReport::assemble(
                kind,
                now,
                first.stats.last_delivery,
                ConservationLedger {
                    injected: first.stats.total_injected,
                    delivered: first.stats.total_delivered,
                    dropped: first.stats.total_dropped,
                    in_flight: global_in_flight,
                },
                RoutingCounters {
                    routed: first.stats.routed,
                    vlb_chosen: first.stats.vlb_chosen,
                },
                partials,
            )
        });
        if let Some(ck) = &ckrun {
            ck_events.extend(ck.take_events());
        }
        (result, stall, ck_events)
    }
}

pub(crate) struct Engine<'a, O: SimObserver, P: EngineProfiler> {
    pub(crate) sim: &'a Simulator,
    pub(crate) ws: &'a mut ShardState,
    pub(crate) obs: &'a mut O,
    /// The profiling seam: every hook is an inline no-op for
    /// [`NoopProfiler`], so the unprofiled engine is unchanged.
    pub(crate) prof: &'a mut P,
    pub(crate) rate: f64,
    pub(crate) now: u64,
    /// One RNG stream per *owned group* (index = group − `ws.group_lo`).
    /// Keying randomness by group — injection by the node's group, routing
    /// draws by the deciding switch's group — makes every stream's
    /// consumption independent of the shard count.
    pub(crate) rngs: Vec<SmallRng>,
    pub(crate) v: usize, // num VCs
    pub(crate) in_flight: usize,
    /// Flits handed to other shards' mailboxes / received from them
    /// (global in-flight accounting: Σ in_flight + Σ sent − Σ recv).
    pub(crate) sent: u64,
    pub(crate) recv: u64,
    /// `ring_size - 1`; ring sizes are powers of two, so calendar slots
    /// are computed with a mask instead of a per-event division.
    pub(crate) ring_mask: u64,
    /// Channels below this index are switch-to-switch (credit-managed on
    /// both sides); injection channels return no upstream credit (their
    /// upstream is the source queue).
    pub(crate) n_network: usize,
    pub(crate) stats: Stats,
    /// The provider's interned arena, resolved once at construction so
    /// `packet_path` — called on every routing decision and next-hop miss —
    /// skips the virtual `resolve` dispatch.
    store: Option<&'a PathStore>,
    /// True when a non-empty fault schedule is attached; every fault code
    /// path is behind this flag, so fault-free runs stay bit-identical.
    pub(crate) fault_on: bool,
    /// Next unapplied event of the fault schedule.
    next_event: usize,
    /// `Some` for multi-shard runs; `None` compiles the sequential path
    /// with no barriers or mailbox traffic.
    shared: Option<&'a SharedRun>,
    /// Per-destination-shard outgoing message batches, flushed at the end
    /// of every cycle (empty and untouched on the sequential path).
    pub(crate) outbox: Vec<Vec<Msg>>,
    /// UGAL-G queue snapshot (`None` for every other routing algorithm).
    snap: Option<&'a Snap>,
    /// Checkpoint coordinator (`None` keeps the loop's checkpoint test to
    /// a single `Option` check per cycle).
    ckpt: Option<&'a CkptRun>,
    /// Wall-clock milliseconds accumulated before a restored run started;
    /// added to every published elapsed sample so watchdog wall ceilings
    /// span restarts instead of resetting at each resume.
    wall_offset_ms: u64,
    /// Flight-recorder ring (empty unless an armed watchdog sets
    /// `flight_recorder > 0`): the last `fr_cap` cycles' frames, oldest at
    /// `fr_pos` once the ring wraps.
    fr_ring: Vec<FlightFrame>,
    fr_pos: usize,
    fr_cap: usize,
}

impl<'a, O: SimObserver, P: EngineProfiler> Engine<'a, O, P> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        sim: &'a Simulator,
        rate: f64,
        st: &'a mut ShardState,
        obs: &'a mut O,
        prof: &'a mut P,
        shared: Option<&'a SharedRun>,
        snap: Option<&'a Snap>,
        ckpt: Option<&'a CkptRun>,
        resume: Option<&'a ResumeCtx>,
    ) -> Self {
        let cfg = &sim.cfg;
        let groups_owned = ((st.node_hi - st.node_lo) / st.nodes_per_group) as usize;
        // On resume every group's RNG stream continues exactly where the
        // checkpoint froze it; states are stored per *group*, so any
        // reader shard count picks up its owned slice.
        let rngs = match resume {
            None => (0..groups_owned)
                .map(|k| group_rng(cfg.seed, st.group_lo + k as u32))
                .collect(),
            Some(r) => (0..groups_owned)
                .map(|k| SmallRng::from_state(r.rngs[st.group_lo as usize + k]))
                .collect(),
        };
        // Restored stats live whole on shard 0 (the merge in shard order
        // then reproduces the writer's global counters exactly); the
        // other shards start fresh, keeping only the `measuring` flag the
        // merge asserts on.
        let stats = match resume {
            None => Stats::new(),
            Some(r) if st.id == 0 => r.stats.unpack(),
            Some(r) => {
                let mut s = Stats::new();
                s.measuring = r.stats.measuring;
                s
            }
        };
        let outbox = (0..st.n_shards).map(|_| Vec::new()).collect();
        Engine {
            sim,
            // `apply_shard` pre-populated the pool on resume; every pooled
            // packet is live (the restore never fills the free list).
            in_flight: st.packets.len(),
            ws: st,
            obs,
            prof,
            rate,
            now: resume.map_or(0, |r| r.next_cycle),
            rngs,
            v: cfg.num_vcs as usize,
            sent: 0,
            recv: 0,
            ring_mask: SimWorkspace::ring_size_for(cfg) as u64 - 1,
            n_network: sim.topo.num_network_channels(),
            stats,
            store: sim.provider.path_store(),
            fault_on: sim.faults.as_ref().is_some_and(|f| !f.is_empty()),
            next_event: resume.map_or(0, |r| r.next_event as usize),
            shared,
            outbox,
            snap,
            ckpt,
            wall_offset_ms: resume.map_or(0, |r| r.elapsed_ms),
            fr_ring: Vec::new(),
            fr_pos: 0,
            fr_cap: 0,
        }
    }

    /// RNG-stream index of the group owning switch `s` (the switch must be
    /// owned by this shard — routing decisions always run at the packet's
    /// current switch).
    #[inline]
    pub(crate) fn gi_of_switch(&self, s: tugal_topology::SwitchId) -> usize {
        (self.sim.topo.group_of(s).0 - self.ws.group_lo) as usize
    }

    pub(crate) fn alloc_packet(&mut self, p: Packet) -> u32 {
        self.in_flight += 1;
        if let Some(i) = self.ws.free.pop() {
            self.ws.packets[i as usize] = p;
            i
        } else {
            self.ws.packets.push(p);
            // The ephemeral-path slab and FIFO-link array stay parallel to
            // the pool; the new slots' contents are filled before use.
            self.ws.eph_paths.push(Path::default());
            self.ws.next_pkt.push(u32::MAX);
            (self.ws.packets.len() - 1) as u32
        }
    }

    /// The packet's current source route, resolved from the provider's
    /// interned arena or the packet's ephemeral slot.
    #[inline]
    pub(crate) fn packet_path(&self, pi: u32) -> &Path {
        let id = self.ws.packets[pi as usize].path_id;
        if id & EPH_BIT != 0 {
            &self.ws.eph_paths[(id & !EPH_BIT) as usize]
        } else if let Some(store) = self.store {
            store.get(PathId(id))
        } else {
            self.sim.provider.resolve(PathId(id))
        }
    }

    /// Points the packet at a freshly sampled candidate: interned draws
    /// store only the arena id; owned draws are copied into the packet's
    /// ephemeral slot.
    #[inline]
    pub(crate) fn set_packet_path(&mut self, pi: u32, path: PathRef<'_>) {
        self.ws.packets[pi as usize].path_id = match path {
            PathRef::Interned(id, _) => id.0,
            PathRef::Owned(p) => {
                self.ws.eph_paths[pi as usize] = p;
                EPH_BIT | pi
            }
        };
    }

    pub(crate) fn free_packet(&mut self, i: u32) {
        self.in_flight -= 1;
        self.ws.free.push(i);
    }

    /// Returns the input-buffer credit of `idx` (buffer of channel
    /// `in_ch`) upstream: locally through the credit calendar when this
    /// shard owns the channel's send side, otherwise as a mailbox message
    /// to the owning shard.  Injection-channel credits never return (their
    /// upstream is the uncredit-managed source queue).
    #[inline]
    pub(crate) fn return_credit(&mut self, idx: usize, in_ch: usize) {
        if in_ch >= self.n_network {
            return;
        }
        let due = self.now + self.ws.latency[in_ch] as u64;
        if self.ws.owns_send[in_ch] {
            self.ws.credit_ring[(due & self.ring_mask) as usize].push(idx as u32);
        } else {
            self.prof.credit_sent();
            self.outbox[self.ws.src_shard[in_ch] as usize].push(Msg::Credit {
                idx: idx as u32,
                due,
            });
        }
    }

    fn run(mut self) -> ShardOutcome {
        self.prof.shard_start(self.ws.id);
        let cfg = self.sim.cfg.clone();
        let warmup = cfg.warmup_windows as u64 * cfg.window as u64;
        let total = cfg.total_cycles();
        let nodes = self.sim.topo.num_nodes();
        let inflight_cap = (nodes * INFLIGHT_CAP_PER_NODE) as u64;
        let watchdog =
            (cfg.window as u64).max(64 * (cfg.global_latency as u64 + cfg.local_latency as u64));

        // Opt-in configurable watchdog: a single `Option` test per cycle
        // when disarmed (the default).  Every armed check is read-only, so
        // a non-tripping armed run is bit-identical to a disarmed one
        // (pinned by the watchdog-armed golden variants).
        let wd = self.sim.cfg.watchdog.filter(|w| w.armed());
        let wall_armed = wd.as_ref().is_some_and(|w| w.wall_limit_ms > 0);
        // Flight recorder: active only under an armed watchdog, so the
        // default configuration allocates nothing and records nothing.
        self.fr_cap = wd.as_ref().map_or(0, |w| w.flight_recorder as usize);
        self.fr_ring = Vec::with_capacity(self.fr_cap);
        let wd_start = std::time::Instant::now();
        let mut kind: Option<StallKind> = None;
        let mut stall: Option<StallPartial> = None;

        // The schedule is applied lazily as the clock reaches each event
        // (an event at cycle 0 degrades the network before any traffic).
        let sched = if self.fault_on {
            self.sim.faults.clone()
        } else {
            None
        };

        while self.now < total {
            if self.shared.is_some() {
                self.drain_mailboxes(self.now);
                self.prof.mark(profile::Phase::Drain);
            }
            if let Some(sched) = &sched {
                let events = sched.events();
                while self.next_event < events.len() && events[self.next_event].cycle <= self.now {
                    self.apply_faults(&events[self.next_event].faults);
                    self.next_event += 1;
                }
            }
            if self.now == warmup {
                self.stats.open_window();
                self.obs.on_measurement_start(self.now);
            }
            self.step();
            if let Some(sh) = self.shared {
                self.flush_outbox(sh);
                self.prof.mark(profile::Phase::Flush);
                self.publish(sh, wall_armed, &wd_start);
                self.prof.mark(profile::Phase::Publish);
                sh.barrier.wait();
                self.prof.mark(profile::Phase::Barrier);
            }
            // Every shard evaluates the stop conditions on the *same*
            // published global counters, so all workers break together.
            let g = self.globals(wall_armed, &wd_start);
            if self.fr_cap > 0 {
                self.record_frame(&g);
            }
            if g.in_flight > inflight_cap {
                self.stats.saturated_early = true;
                break;
            }
            // Deadlock watchdog: with packets in flight, *something* must
            // eject within a generous horizon; a correctly configured VC
            // scheme guarantees it.  A trip marks the run instead of
            // spinning to the end of the window.
            if g.in_flight > 0 && self.now.saturating_sub(g.last_delivery) > watchdog {
                self.stats.deadlock_suspected = true;
                self.stats.saturated_early = true;
                break;
            }
            if let Some(w) = &wd {
                if let Some(k) = self.watchdog_check(w, &g) {
                    stall = Some(self.stall_partial());
                    kind = Some(k);
                    self.stats.saturated_early = true;
                    break;
                }
            }
            self.prof.mark(profile::Phase::Stop);
            self.prof.cycle_done();
            // Checkpoint cadence: `due` is a pure function of the cycle,
            // so every shard takes this step (and its barrier) together.
            if let Some(ck) = self.ckpt {
                if ck.due(self.now, total) {
                    self.checkpoint_write(ck, &wd_start);
                }
            }
            self.now += 1;
        }
        self.prof.shard_end();

        ShardOutcome {
            stats: self.stats,
            kind,
            stall,
            in_flight: self.in_flight as u64,
            sent: self.sent,
            recv: self.recv,
            now: self.now,
        }
    }

    /// Ingests boundary messages from every other shard: batches stamped
    /// before `bound`, in ascending source-shard order (the fixed drain
    /// order of the determinism contract).  A neighbour running one cycle
    /// ahead may already have flushed its next batch; the stamp filter
    /// leaves it queued for the next cycle.  The loop top drains with
    /// `bound = now`; the checkpoint step drains with `bound = now + 1` to
    /// fold this cycle's flushed batches — exactly what the next cycle's
    /// drain would take — so the canonical checkpoint sees empty
    /// mailboxes.
    fn drain_mailboxes(&mut self, bound: u64) {
        let sh = self.shared.expect("mailboxes exist only on sharded runs");
        let me = self.ws.id as usize;
        for src in 0..sh.n {
            if src == me {
                continue;
            }
            loop {
                let batch = {
                    // With a real profiler attached, probe the lock first
                    // to count contended acquisitions; the same lock is
                    // taken either way, so results are unchanged.  The
                    // disabled profiler compiles this branch away.
                    let mbox = &sh.boxes[src * sh.n + me];
                    let mut q = if P::ENABLED {
                        match mbox.try_lock() {
                            Ok(q) => q,
                            Err(std::sync::TryLockError::WouldBlock) => {
                                self.prof.mailbox_stall();
                                mbox.lock().unwrap()
                            }
                            Err(std::sync::TryLockError::Poisoned(e)) => {
                                panic!("mailbox poisoned: {e}")
                            }
                        }
                    } else {
                        mbox.lock().unwrap()
                    };
                    match q.front() {
                        Some((stamp, _)) if *stamp < bound => q.pop_front(),
                        _ => None,
                    }
                };
                let Some((_, msgs)) = batch else { break };
                for msg in msgs {
                    match msg {
                        Msg::Flit { due, pkt, path } => {
                            self.prof.flit_recv();
                            let eph = pkt.path_id & EPH_BIT != 0;
                            let pi = self.alloc_packet(pkt);
                            if eph {
                                // Re-home the ephemeral path into this
                                // shard's slab and retag the packet.
                                self.ws.eph_paths[pi as usize] = path;
                                self.ws.packets[pi as usize].path_id = EPH_BIT | pi;
                            }
                            self.recv += 1;
                            self.ws.arrivals[(due & self.ring_mask) as usize].push(pi);
                        }
                        Msg::Credit { idx, due } => {
                            self.prof.credit_recv();
                            self.ws.credit_ring[(due & self.ring_mask) as usize].push(idx);
                        }
                    }
                }
            }
        }
    }

    /// End-of-cycle checkpoint step: folds pending boundary messages (so
    /// the canonical state has empty mailboxes), builds this shard's
    /// delta, and commits the merged checkpoint — from shard 0 on sharded
    /// runs, after a barrier guaranteeing every delta is staged.  Every
    /// shard always executes this step when `CkptRun::due` holds (a pure
    /// function of the cycle), so barrier generations never diverge, even
    /// after a write error kills further file output.
    fn checkpoint_write(&mut self, ck: &CkptRun, wd_start: &std::time::Instant) {
        let elapsed_ms = wd_start.elapsed().as_millis() as u64 + self.wall_offset_ms;
        match self.shared {
            None => {
                let delta = self.build_delta(elapsed_ms);
                if !ck.is_dead() {
                    ck.commit(vec![delta], self.now + 1);
                }
            }
            Some(sh) => {
                // Fold boundary messages exactly as the next cycle's drain
                // would: every shard flushed its cycle-`now` batches before
                // the publish barrier, and none can flush newer ones until
                // after the staging barrier below.
                self.drain_mailboxes(self.now + 1);
                let delta = self.build_delta(elapsed_ms);
                *ck.stage[self.ws.id as usize].lock().unwrap() = Some(delta);
                sh.barrier.wait();
                // Shard 0 writes while the others run ahead; they park at
                // the next cycle's publish barrier until the write (and
                // shard 0's next cycle) completes, so staging slots cannot
                // be overwritten mid-drain.
                if self.ws.id == 0 {
                    let deltas: Vec<ckpt::ShardDelta> = ck
                        .stage
                        .iter()
                        .map(|s| s.lock().unwrap().take().expect("all shards staged a delta"))
                        .collect();
                    if !ck.is_dead() {
                        ck.commit(deltas, self.now + 1);
                    }
                }
            }
        }
    }

    /// Captures everything this shard owns into a [`ckpt::ShardDelta`]:
    /// sparse against the reset defaults (`credits == buf_size`,
    /// `wait == u32::MAX`, `rr == 0`, zero send-side scalars), FIFOs
    /// walked head-to-tail, calendar rings converted to absolute due
    /// cycles (every pending due lies in `[now + 1, now + ring_size]`, so
    /// the slot index recovers the cycle exactly).
    fn build_delta(&self, elapsed_ms: u64) -> ckpt::ShardDelta {
        let mut d = ckpt::ShardDelta {
            stats: ckpt::StatsSnap::pack(&self.stats),
            obs_blob: self.obs.snapshot().unwrap_or_default(),
            next_event: self.next_event as u64,
            elapsed_ms,
            ..Default::default()
        };
        for (k, rng) in self.rngs.iter().enumerate() {
            d.rngs.push((self.ws.group_lo + k as u32, rng.state()));
        }
        let buf_size = self.sim.cfg.buf_size;
        let n_chan = self.ws.stg_head.len();
        for ch in 0..n_chan {
            if self.ws.owns_send[ch] {
                if self.ws.stg_len[ch] > 0 {
                    let mut recs = Vec::with_capacity(self.ws.stg_len[ch] as usize);
                    let mut pi = self.ws.stg_head[ch];
                    while pi != u32::MAX {
                        recs.push(ckpt::PkRec::capture(
                            &self.ws.packets[pi as usize],
                            &self.ws.eph_paths,
                        ));
                        pi = self.ws.next_pkt[pi as usize];
                    }
                    d.staging.push((ch as u32, recs));
                }
                if self.ws.next_free[ch] != 0
                    || self.ws.cred_used[ch] != 0
                    || self.ws.chan_flits[ch] != 0
                {
                    d.chan_send.push(ckpt::ChanSend {
                        ch: ch as u32,
                        next_free: self.ws.next_free[ch],
                        cred_used: self.ws.cred_used[ch],
                        chan_flits: self.ws.chan_flits[ch],
                    });
                }
                for vc in 0..self.v {
                    let idx = ch * self.v + vc;
                    if self.ws.credits[idx] != buf_size {
                        d.credits.push((idx as u32, self.ws.credits[idx]));
                    }
                }
            }
            if self.ws.owns_recv[ch] {
                for vc in 0..self.v {
                    let idx = ch * self.v + vc;
                    let mut pi = self.ws.inb_head[idx];
                    if pi != u32::MAX {
                        let mut recs = Vec::new();
                        while pi != u32::MAX {
                            recs.push(ckpt::PkRec::capture(
                                &self.ws.packets[pi as usize],
                                &self.ws.eph_paths,
                            ));
                            pi = self.ws.next_pkt[pi as usize];
                        }
                        d.inbufs.push((idx as u32, recs));
                    }
                    if self.ws.wait[idx] != u32::MAX {
                        d.wait.push((idx as u32, self.ws.wait[idx]));
                    }
                }
            }
        }
        let base = self.now + 1;
        for (slot, pis) in self.ws.arrivals.iter().enumerate() {
            if pis.is_empty() {
                continue;
            }
            let due = base + ((slot as u64).wrapping_sub(base) & self.ring_mask);
            for &pi in pis {
                let p = &self.ws.packets[pi as usize];
                debug_assert!(self.ws.owns_recv[p.cur_chan as usize]);
                d.arrivals
                    .push((due, ckpt::PkRec::capture(p, &self.ws.eph_paths)));
            }
        }
        for (slot, idxs) in self.ws.credit_ring.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let due = base + ((slot as u64).wrapping_sub(base) & self.ring_mask);
            for &idx in idxs {
                d.credit_events.push((due, idx));
            }
        }
        for sw in self.ws.switch_lo..self.ws.switch_hi {
            if self.ws.rr[sw as usize] != 0 {
                d.rr.push((sw, self.ws.rr[sw as usize] as u64));
            }
            if !self.ws.ready[sw as usize].is_empty() {
                d.ready.push((sw, self.ws.ready[sw as usize].clone()));
            }
        }
        // The dead masks are replicated on every shard; the merge takes
        // them from shard 0's delta, so only it captures them.
        if self.fault_on && self.ws.id == 0 {
            d.chan_dead = (0..n_chan as u32)
                .filter(|&ch| self.ws.chan_dead[ch as usize])
                .collect();
            d.switch_dead = (0..self.ws.switch_dead.len() as u32)
                .filter(|&sw| self.ws.switch_dead[sw as usize])
                .collect();
        }
        d
    }

    /// Flushes this cycle's outgoing batches, stamped with the current
    /// cycle, into the destination shards' mailboxes.
    fn flush_outbox(&mut self, sh: &SharedRun) {
        let me = self.ws.id as usize;
        for d in 0..self.outbox.len() {
            if self.outbox[d].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.outbox[d]);
            self.prof.batch_flushed(batch.len());
            let mbox = &sh.boxes[me * sh.n + d];
            let mut q = if P::ENABLED {
                match mbox.try_lock() {
                    Ok(q) => q,
                    Err(std::sync::TryLockError::WouldBlock) => {
                        self.prof.mailbox_stall();
                        mbox.lock().unwrap()
                    }
                    Err(std::sync::TryLockError::Poisoned(e)) => panic!("mailbox poisoned: {e}"),
                }
            } else {
                mbox.lock().unwrap()
            };
            q.push_back((self.now, batch));
        }
    }

    /// Publishes this shard's cycle-end counters into its (cycle-parity)
    /// publication cell.
    fn publish(&self, sh: &SharedRun, wall_armed: bool, start: &std::time::Instant) {
        let slot = &sh.cells[self.ws.id as usize][(self.now & 1) as usize];
        slot.in_flight.store(self.in_flight as u64, Relaxed);
        slot.sent.store(self.sent, Relaxed);
        slot.recv.store(self.recv, Relaxed);
        slot.last_delivery.store(self.stats.last_delivery, Relaxed);
        slot.injected.store(self.stats.total_injected, Relaxed);
        slot.delivered.store(self.stats.total_delivered, Relaxed);
        slot.dropped.store(self.stats.total_dropped, Relaxed);
        // Only shard 0 samples the wall clock (and only at the watchdog's
        // coarse cadence): every shard then reads the *same* elapsed time,
        // so the wall-limit trip decision is global and deterministic
        // within the run.
        let elapsed = if self.ws.id == 0 && wall_armed && self.now & 1023 == 0 {
            start.elapsed().as_millis() as u64 + self.wall_offset_ms
        } else {
            0
        };
        slot.elapsed_ms.store(elapsed, Relaxed);
    }

    /// The global end-of-cycle counters: summed from the published cells
    /// on sharded runs, this shard's own counters otherwise.
    fn globals(&self, wall_armed: bool, start: &std::time::Instant) -> CycleGlobals {
        match self.shared {
            None => CycleGlobals {
                in_flight: self.in_flight as u64,
                last_delivery: self.stats.last_delivery,
                injected: self.stats.total_injected,
                delivered: self.stats.total_delivered,
                dropped: self.stats.total_dropped,
                elapsed_ms: if wall_armed && self.now & 1023 == 0 {
                    start.elapsed().as_millis() as u64 + self.wall_offset_ms
                } else {
                    0
                },
            },
            Some(sh) => {
                let par = (self.now & 1) as usize;
                let mut g = CycleGlobals::default();
                let (mut sent, mut recv) = (0u64, 0u64);
                for cell in &sh.cells {
                    let s = &cell[par];
                    g.in_flight += s.in_flight.load(Relaxed);
                    sent += s.sent.load(Relaxed);
                    recv += s.recv.load(Relaxed);
                    g.last_delivery = g.last_delivery.max(s.last_delivery.load(Relaxed));
                    g.injected += s.injected.load(Relaxed);
                    g.delivered += s.delivered.load(Relaxed);
                    g.dropped += s.dropped.load(Relaxed);
                    g.elapsed_ms += s.elapsed_ms.load(Relaxed);
                }
                // Flits inside mailboxes are in flight but in no shard's
                // pool.
                g.in_flight += sent - recv;
                g
            }
        }
    }

    /// Runs the armed watchdog checks for the cycle that just completed,
    /// against the globally agreed counters.  Called off the hot path only
    /// when a [`WatchdogConfig`] is armed.
    fn watchdog_check(&self, w: &WatchdogConfig, g: &CycleGlobals) -> Option<StallKind> {
        if w.stall_cycles > 0
            && g.in_flight > 0
            && self.now.saturating_sub(g.last_delivery) > w.stall_cycles
        {
            return Some(StallKind::Livelock);
        }
        if w.conservation_every > 0
            && self.now.is_multiple_of(w.conservation_every)
            && g.injected != g.delivered + g.dropped + g.in_flight
        {
            return Some(StallKind::ConservationViolation);
        }
        if w.max_cycles > 0 && self.now + 1 >= w.max_cycles {
            return Some(StallKind::CycleCeiling);
        }
        if w.wall_limit_ms > 0 && self.now & 1023 == 0 && g.elapsed_ms >= w.wall_limit_ms {
            return Some(StallKind::WallClockExceeded);
        }
        None
    }

    /// Captures one flight-recorder frame for the cycle that just
    /// completed: the globally agreed counters plus this shard's
    /// cumulative boundary traffic.  Read-only with respect to simulation
    /// state, so an armed recorder cannot perturb results.
    fn record_frame(&mut self, g: &CycleGlobals) {
        let frame = FlightFrame {
            cycle: self.now,
            shard: self.ws.id,
            in_flight: g.in_flight,
            injected: g.injected,
            delivered: g.delivered,
            dropped: g.dropped,
            boundary_sent: self.sent,
            boundary_recv: self.recv,
        };
        if self.fr_ring.len() < self.fr_cap {
            self.fr_ring.push(frame);
        } else {
            self.fr_ring[self.fr_pos] = frame;
            self.fr_pos = (self.fr_pos + 1) % self.fr_cap;
        }
    }

    /// The flight-recorder ring in chronological order (oldest first).
    fn drain_frames(&self) -> Vec<FlightFrame> {
        let mut recent = Vec::with_capacity(self.fr_ring.len());
        recent.extend_from_slice(&self.fr_ring[self.fr_pos..]);
        recent.extend_from_slice(&self.fr_ring[..self.fr_pos]);
        recent
    }

    /// This shard's contribution to the trip report: occupancy of the
    /// input buffers it owns and its oldest live packet.  Cold path —
    /// runs once per trip; merged deterministically by
    /// [`StallReport::assemble`].
    fn stall_partial(&self) -> StallPartial {
        let mut occupancy = Vec::new();
        for ch in 0..self.n_network {
            if !self.ws.owns_recv[ch] {
                continue;
            }
            for vc in 0..self.v {
                let occ = self.ws.vc_occupancy(ch, self.v, vc);
                if occ > 0 {
                    occupancy.push(VcSnapshot {
                        chan: ch as u32,
                        vc: vc as u8,
                        occupancy: occ,
                    });
                }
            }
        }

        // Oldest live packet: the pool minus its free list.  The (birth,
        // src, dst) key is unique (one injection draw per node per cycle)
        // and shard-count-invariant, unlike pool order.
        let mut live = vec![true; self.ws.packets.len()];
        for &f in &self.ws.free {
            live[f as usize] = false;
        }
        let oldest = self
            .ws
            .packets
            .iter()
            .zip(live)
            .filter(|(_, alive)| *alive)
            .map(|(p, _)| p)
            .min_by_key(|p| (p.birth, p.src_node, p.dst_node))
            .map(|p| OldestPacket {
                birth: p.birth,
                age: self.now.saturating_sub(p.birth),
                src: p.src_node,
                dst: p.dst_node,
                hops_taken: p.hops_taken,
                cur_chan: p.cur_chan,
            });

        StallPartial {
            occupancy,
            oldest,
            recent: self.drain_frames(),
        }
    }

    fn step(&mut self) {
        self.obs.on_cycle(self.now);

        // Observer-driven occupancy sampling: a zero cadence (the
        // `NoopObserver` default) lets monomorphization compile the whole
        // block out of the hot loop.  Shards sample the input buffers they
        // own — disjoint, jointly exhaustive across shards.
        let cadence = self.obs.occupancy_cadence();
        if cadence != 0 && self.now.is_multiple_of(cadence) {
            for ch in 0..self.n_network {
                if !self.ws.owns_recv[ch] {
                    continue;
                }
                for vc in 0..self.v {
                    let occ = self.ws.vc_occupancy(ch, self.v, vc);
                    self.obs
                        .on_vc_occupancy_sample(self.now, ch as u32, vc as u8, occ);
                }
            }
        }

        let slot = (self.now & self.ring_mask) as usize;

        // Calendar slots are drained by *swapping* with a scratch buffer
        // instead of `mem::take`-ing the Vec: taking would drop the slot's
        // capacity every cycle (an alloc/dealloc pair per non-empty slot);
        // swapping circulates the capacity forever.  Entries pushed while
        // draining land in the slot's (empty, capacity-bearing) new Vec —
        // never in the scratch — because every push targets a future slot
        // (all latencies are ≥ 1).

        // 1. Credit returns.
        let mut credits_due = std::mem::take(&mut self.ws.credit_scratch);
        std::mem::swap(&mut credits_due, &mut self.ws.credit_ring[slot]);
        for &idx in &credits_due {
            self.ws.credits[idx as usize] += 1;
            self.ws.cred_used[self.ws.chan_of_buf[idx as usize] as usize] -= 1;
        }
        credits_due.clear();
        self.ws.credit_scratch = credits_due;

        // 2. Arrivals, in canonical (channel) order: a channel delivers at
        // most one flit per cycle, so `cur_chan` totally orders the slot.
        // Slot insertion order differs between shard counts (mailbox
        // drains vs. local transmit order); the sort erases that.
        let mut arrived = std::mem::take(&mut self.ws.arrival_scratch);
        std::mem::swap(&mut arrived, &mut self.ws.arrivals[slot]);
        arrived.sort_unstable_by_key(|&pi| self.ws.packets[pi as usize].cur_chan);
        for &pi in &arrived {
            let p = &self.ws.packets[pi as usize];
            let ch = p.cur_chan as usize;
            let cur_vc = p.cur_vc;
            let dst = self.ws.dst_switch[ch];
            if dst == u32::MAX {
                // Ejection: delivered.
                let (birth, hops) = (p.birth, p.hops_taken);
                self.stats.record_delivery(self.now, birth, hops);
                self.obs.on_deliver(self.now, self.now - birth, hops);
                self.free_packet(pi);
            } else if self.fault_on && self.ws.switch_dead[dst as usize] {
                // The flit was already on the wire when its downstream
                // switch died; it arrives at a dead router and is lost.
                self.drop_in_network(pi);
            } else {
                let idx = ch * self.v + cur_vc as usize;
                self.ws.inb_push(idx, pi);
                self.ws.buf_occ[ch] += 1;
                if !self.ws.in_ready[idx] {
                    self.ws.in_ready[idx] = true;
                    self.ws.ready[dst as usize].push(idx as u32);
                }
            }
        }
        arrived.clear();
        self.ws.arrival_scratch = arrived;
        self.prof.mark(profile::Phase::Advance);

        // 3. Injection.
        self.inject();
        self.prof.mark(profile::Phase::Inject);

        // 3b. UGAL-G snapshot: each owner publishes its staged-flit and
        // buffer-occupancy counters; a barrier separates the writes from
        // the reads routing makes during allocation.
        if let Some(snap) = self.snap {
            for ch in 0..self.n_network {
                if self.ws.owns_send[ch] {
                    snap.stg[ch].store(self.ws.stg_len[ch], Relaxed);
                }
                if self.ws.owns_recv[ch] {
                    snap.occ[ch].store(self.ws.buf_occ[ch], Relaxed);
                }
            }
            if let Some(sh) = self.shared {
                sh.barrier.wait();
            }
            self.prof.mark(profile::Phase::Snapshot);
        }

        // 4. Switch allocation.
        self.allocate();
        self.prof.mark(profile::Phase::Alloc);

        // 5. Wire transmission (1 flit/cycle/channel).
        self.transmit();
        self.prof.mark(profile::Phase::Transmit);
    }

    /// The UGAL-G snapshot value for `chan` (staged flits + downstream
    /// buffer occupancy at the start of this cycle's allocation phase).
    #[inline]
    pub(crate) fn snap_q(&self, chan: u32) -> u64 {
        let snap = self.snap.expect("UGAL-G runs allocate a snapshot");
        snap.stg[chan as usize].load(Relaxed) as u64 + snap.occ[chan as usize].load(Relaxed) as u64
    }
}
