//! Engine watchdog: opt-in invariant and forward-progress monitoring.
//!
//! A [`WatchdogConfig`] attached to [`crate::Config`] arms periodic checks
//! inside the cycle loop:
//!
//! * **flit conservation** — every injected packet must be exactly one of
//!   delivered, dropped, or in flight ([`ConservationLedger`]),
//! * **forward progress** — with packets in the network, *something* must
//!   eject within the configured horizon; a network that keeps busy
//!   without delivering is livelocked,
//! * **cycle ceiling** — an absolute bound on simulated cycles,
//! * **wall-clock budget** — an absolute bound on real time, checked at a
//!   coarse cadence so the hot loop never syscalls per cycle.
//!
//! On a trip the engine stops and returns a [`StallReport`] — the trip
//! cycle, the conservation ledger, a per-VC occupancy snapshot, the oldest
//! packet still in flight and the routing-decision counters — instead of
//! spinning to the end of the window.  All checks are *read-only*: an
//! armed watchdog that never trips cannot perturb the simulation (pinned
//! by `tests/watchdog.rs` against the golden fixtures), and a disarmed one
//! (`Config::watchdog == None`, the default) costs a single predicted
//! branch per cycle.

use serde::{Deserialize, Serialize};

/// Watchdog thresholds.  A field of `0` disables that check; a config with
/// every field `0` is treated as no watchdog at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WatchdogConfig {
    /// Cycle cadence of the flit-conservation check (`0` = off).
    pub conservation_every: u64,
    /// Forward-progress horizon: trip when packets are in flight but
    /// nothing has been delivered for this many cycles (`0` = off).
    pub stall_cycles: u64,
    /// Absolute ceiling on simulated cycles (`0` = off).  Useful as a
    /// per-job budget for runs whose configured windows are far larger
    /// than a sweep wants to pay for near saturation.
    pub max_cycles: u64,
    /// Wall-clock budget in milliseconds (`0` = off), checked every 1024
    /// cycles.  A trip reports [`StallKind::WallClockExceeded`] — the
    /// runner maps it to a timed-out job.
    pub wall_limit_ms: u64,
    /// Flight-recorder depth: each shard keeps a ring of its last N
    /// cycles' [`FlightFrame`]s (globals snapshot + boundary traffic) and
    /// a trip drains them into [`StallReport::recent`] (`0` = off, the
    /// default).  Recording only happens while some *check* is armed —
    /// a config whose only non-zero field is this one is still treated
    /// as no watchdog at all.  Frame capture reads the same globally
    /// agreed counters every shard already computes, so arming the
    /// recorder cannot change simulation results.
    pub flight_recorder: u64,
}

// Hand-written so `flight_recorder` can default when the field is missing:
// the vendored minimal serde derive has no `#[serde(default)]`, and
// watchdog configs serialized before the flight recorder existed (journals,
// replay capsules) must keep deserializing to the same run they described.
impl Deserialize for WatchdogConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(WatchdogConfig {
            conservation_every: Deserialize::from_value(serde::obj_field(
                v,
                "conservation_every",
            )?)?,
            stall_cycles: Deserialize::from_value(serde::obj_field(v, "stall_cycles")?)?,
            max_cycles: Deserialize::from_value(serde::obj_field(v, "max_cycles")?)?,
            wall_limit_ms: Deserialize::from_value(serde::obj_field(v, "wall_limit_ms")?)?,
            flight_recorder: match serde::obj_field(v, "flight_recorder") {
                Ok(f) => Deserialize::from_value(f)?,
                Err(_) => 0,
            },
        })
    }
}

impl WatchdogConfig {
    /// A watchdog with every check disabled (equivalent to `None`).
    pub fn disabled() -> Self {
        WatchdogConfig {
            conservation_every: 0,
            stall_cycles: 0,
            max_cycles: 0,
            wall_limit_ms: 0,
            flight_recorder: 0,
        }
    }

    /// Generous defaults derived from a simulator configuration: the
    /// conservation check every 4096 cycles, a forward-progress horizon of
    /// one sample window plus 64 worst-case round trips (the same shape as
    /// the engine's built-in deadlock heuristic), a cycle ceiling of four
    /// configured runs, and no wall-clock bound.  Non-pathological runs
    /// never trip these.
    pub fn guard_for(cfg: &crate::Config) -> Self {
        let rtt = 64 * (cfg.global_latency as u64 + cfg.local_latency as u64);
        WatchdogConfig {
            conservation_every: 4096,
            stall_cycles: cfg.window as u64 + rtt,
            max_cycles: 4 * cfg.total_cycles(),
            wall_limit_ms: 0,
            flight_recorder: 0,
        }
    }

    /// True when at least one check is armed.  The flight recorder is not
    /// a check: it only captures context for a trip some check produces,
    /// so it does not arm the watchdog by itself.
    pub fn armed(&self) -> bool {
        self.conservation_every > 0
            || self.stall_cycles > 0
            || self.max_cycles > 0
            || self.wall_limit_ms > 0
    }
}

/// Which watchdog check tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallKind {
    /// Packets in flight but no delivery for the configured horizon.
    Livelock,
    /// The flit-conservation ledger stopped balancing — engine state is
    /// corrupt (this cannot happen through the public API; the check
    /// exists to catch engine bugs and bit flips, not user error).
    ConservationViolation,
    /// The simulated-cycle ceiling was reached.
    CycleCeiling,
    /// The wall-clock budget was exhausted.
    WallClockExceeded,
}

impl StallKind {
    /// Short stable name (capsule/JSON friendly).
    pub fn name(self) -> &'static str {
        match self {
            StallKind::Livelock => "livelock",
            StallKind::ConservationViolation => "conservation-violation",
            StallKind::CycleCeiling => "cycle-ceiling",
            StallKind::WallClockExceeded => "wall-clock",
        }
    }
}

/// The packet-accounting invariant the conservation check enforces:
/// `injected == delivered + dropped + in_flight`, over whole-run counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConservationLedger {
    /// Packets created since the run started (including ones dropped at an
    /// overflowing or dead source).
    pub injected: u64,
    /// Packets delivered to their destination node.
    pub delivered: u64,
    /// Packets dropped (source-queue overflow, dead components, failed
    /// fault reroutes).
    pub dropped: u64,
    /// Packets currently allocated in the network.
    pub in_flight: u64,
}

impl ConservationLedger {
    /// True when every injected packet is accounted for.
    pub fn balanced(&self) -> bool {
        self.injected == self.delivered + self.dropped + self.in_flight
    }

    /// Signed imbalance (`injected - accounted`); zero when balanced.
    pub fn imbalance(&self) -> i64 {
        self.injected as i64 - (self.delivered + self.dropped + self.in_flight) as i64
    }
}

/// One non-empty input-buffer VC at trip time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcSnapshot {
    /// Dense channel index ([`tugal_topology::ChannelId`]).
    pub chan: u32,
    /// Virtual channel within the channel.
    pub vc: u8,
    /// Buffered flits.
    pub occupancy: u32,
}

/// The oldest packet still in flight at trip time — where a livelocked
/// investigation starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OldestPacket {
    /// Cycle the packet was created.
    pub birth: u64,
    /// Cycles in flight at the trip.
    pub age: u64,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Network hops taken so far.
    pub hops_taken: u8,
    /// Channel currently carrying or buffering the packet.
    pub cur_chan: u32,
}

/// One cycle of one shard's flight-recorder ring: the globally agreed
/// end-of-cycle counters (identical on every shard by the determinism
/// contract) plus this shard's cumulative boundary traffic.  A trip drains
/// the last `WatchdogConfig::flight_recorder` of these per shard into
/// [`StallReport::recent`], so forensics show the cross-shard behavior
/// leading up to the stall, not just its final state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightFrame {
    /// The cycle the frame describes.
    pub cycle: u64,
    /// The shard that recorded it.
    pub shard: u32,
    /// Global in-flight population at cycle end.
    pub in_flight: u64,
    /// Global packets injected so far.
    pub injected: u64,
    /// Global packets delivered so far.
    pub delivered: u64,
    /// Global packets dropped so far.
    pub dropped: u64,
    /// Flits this shard has handed to other shards' mailboxes so far.
    pub boundary_sent: u64,
    /// Flits this shard has drained from other shards' mailboxes so far.
    pub boundary_recv: u64,
}

/// Routing-decision counters at trip time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingCounters {
    /// Routing decisions taken.
    pub routed: u64,
    /// Decisions that chose the VLB candidate.
    pub vlb_chosen: u64,
}

/// Everything the watchdog knows at the moment it stopped the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StallReport {
    /// The check that tripped.
    pub kind: StallKind,
    /// Cycle at which the run stopped.
    pub cycle: u64,
    /// Cycle of the last delivery (0 when nothing was ever delivered).
    pub last_delivery: u64,
    /// Whole-run packet accounting at the trip.
    pub ledger: ConservationLedger,
    /// Non-empty (channel, VC) input buffers, largest first, capped at
    /// [`StallReport::MAX_OCCUPANCY_ENTRIES`] entries.
    pub occupancy: Vec<VcSnapshot>,
    /// The oldest packet still in flight, if any.
    pub oldest: Option<OldestPacket>,
    /// Routing-decision counters up to the trip.
    pub decisions: RoutingCounters,
    /// Flight-recorder frames: the last `WatchdogConfig::flight_recorder`
    /// cycles per shard, merged chronologically (then by shard within a
    /// cycle).  Empty when the recorder is off (the default).
    pub recent: Vec<FlightFrame>,
}

/// One shard's contribution to a [`StallReport`]: the occupancy of the
/// input buffers it owns and its oldest live packet.  Shards own disjoint
/// receive-side buffers and disjoint packet pools, so concatenating the
/// partials reconstructs the global view.
#[derive(Debug)]
pub(crate) struct StallPartial {
    pub(crate) occupancy: Vec<VcSnapshot>,
    pub(crate) oldest: Option<OldestPacket>,
    /// This shard's flight-recorder ring, drained oldest-first.
    pub(crate) recent: Vec<FlightFrame>,
}

impl StallReport {
    /// Cap on the occupancy snapshot so a report from a saturated large
    /// topology stays a report, not a core dump.
    pub const MAX_OCCUPANCY_ENTRIES: usize = 128;

    /// Builds the report from per-shard partials, deterministically:
    /// occupancy entries are canonically ordered (largest first, then by
    /// channel and VC) before the cap applies, and the oldest packet is
    /// the minimum under the shard-count-invariant `(birth, src, dst)`
    /// key — unique, because a node injects at most one packet per cycle.
    pub(crate) fn assemble(
        kind: StallKind,
        cycle: u64,
        last_delivery: u64,
        ledger: ConservationLedger,
        decisions: RoutingCounters,
        parts: Vec<StallPartial>,
    ) -> Self {
        let mut occupancy = Vec::new();
        let mut recent = Vec::new();
        let mut oldest: Option<OldestPacket> = None;
        for p in parts {
            occupancy.extend(p.occupancy);
            recent.extend(p.recent);
            oldest = match (oldest, p.oldest) {
                (None, o) | (o, None) => o,
                (Some(a), Some(b)) => Some(if (b.birth, b.src, b.dst) < (a.birth, a.src, a.dst) {
                    b
                } else {
                    a
                }),
            };
        }
        occupancy.sort_unstable_by(|a, b| {
            b.occupancy
                .cmp(&a.occupancy)
                .then(a.chan.cmp(&b.chan))
                .then(a.vc.cmp(&b.vc))
        });
        occupancy.truncate(Self::MAX_OCCUPANCY_ENTRIES);
        recent.sort_unstable_by_key(|f: &FlightFrame| (f.cycle, f.shard));
        StallReport {
            kind,
            cycle,
            last_delivery,
            ledger,
            occupancy,
            oldest,
            decisions,
            recent,
        }
    }

    /// One-line summary for logs.
    pub fn oneline(&self) -> String {
        let oldest = match &self.oldest {
            Some(o) => format!(
                ", oldest packet {} -> {} in flight {} cycles",
                o.src, o.dst, o.age
            ),
            None => String::new(),
        };
        format!(
            "watchdog {} at cycle {}: {} in flight, last delivery at {}, \
             ledger {}/{}/{} (inj/del/drop){}",
            self.kind.name(),
            self.cycle,
            self.ledger.in_flight,
            self.last_delivery,
            self.ledger.injected,
            self.ledger.delivered,
            self.ledger.dropped,
            oldest
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_balances_iff_all_packets_accounted() {
        let ok = ConservationLedger {
            injected: 10,
            delivered: 6,
            dropped: 1,
            in_flight: 3,
        };
        assert!(ok.balanced());
        assert_eq!(ok.imbalance(), 0);

        // A deliberately corrupted snapshot: one packet vanished.
        let corrupt = ConservationLedger { in_flight: 2, ..ok };
        assert!(!corrupt.balanced());
        assert_eq!(corrupt.imbalance(), 1);

        // ...and one materialized from nowhere.
        let surplus = ConservationLedger { delivered: 8, ..ok };
        assert!(!surplus.balanced());
        assert_eq!(surplus.imbalance(), -2);
    }

    #[test]
    fn guard_defaults_are_armed_and_generous() {
        let cfg = crate::Config::quick();
        let wd = WatchdogConfig::guard_for(&cfg);
        assert!(wd.armed());
        assert!(wd.stall_cycles > cfg.window as u64);
        assert!(wd.max_cycles >= cfg.total_cycles());
        assert!(!WatchdogConfig::disabled().armed());
    }

    #[test]
    fn report_oneline_mentions_kind_and_cycle() {
        let rep = StallReport {
            kind: StallKind::Livelock,
            cycle: 1234,
            last_delivery: 1000,
            ledger: ConservationLedger {
                injected: 5,
                delivered: 2,
                dropped: 1,
                in_flight: 2,
            },
            occupancy: vec![],
            oldest: Some(OldestPacket {
                birth: 900,
                age: 334,
                src: 3,
                dst: 17,
                hops_taken: 2,
                cur_chan: 40,
            }),
            decisions: RoutingCounters {
                routed: 5,
                vlb_chosen: 2,
            },
            recent: vec![],
        };
        let line = rep.oneline();
        assert!(line.contains("livelock"), "{line}");
        assert!(line.contains("1234"), "{line}");
        assert!(line.contains("334"), "{line}");
    }

    #[test]
    fn flight_recorder_defaults_to_off_in_old_json() {
        // Watchdog configs serialized before the flight recorder carry no
        // `flight_recorder` key; they must deserialize to recorder-off.
        let wd = WatchdogConfig {
            conservation_every: 16,
            stall_cycles: 100,
            max_cycles: 0,
            wall_limit_ms: 0,
            flight_recorder: 8,
        };
        let serde::Value::Object(mut fields) = serde::Serialize::to_value(&wd) else {
            panic!("WatchdogConfig serializes to an object");
        };
        fields.retain(|(k, _)| k != "flight_recorder");
        let back: WatchdogConfig =
            serde::Deserialize::from_value(&serde::Value::Object(fields)).unwrap();
        assert_eq!(back.flight_recorder, 0);
        assert_eq!(
            back,
            WatchdogConfig {
                flight_recorder: 0,
                ..wd
            }
        );

        // A full roundtrip preserves the depth.
        let json = serde_json::to_string(&wd).unwrap();
        assert_eq!(serde_json::from_str::<WatchdogConfig>(&json).unwrap(), wd);

        // The recorder alone does not arm the watchdog.
        let only_recorder = WatchdogConfig {
            flight_recorder: 8,
            ..WatchdogConfig::disabled()
        };
        assert!(!only_recorder.armed());
    }

    #[test]
    fn assemble_merges_flight_frames_chronologically() {
        let frame = |cycle, shard| FlightFrame {
            cycle,
            shard,
            in_flight: 1,
            injected: 1,
            delivered: 0,
            dropped: 0,
            boundary_sent: 0,
            boundary_recv: 0,
        };
        let part = |frames: Vec<FlightFrame>| StallPartial {
            occupancy: vec![],
            oldest: None,
            recent: frames,
        };
        let rep = StallReport::assemble(
            StallKind::Livelock,
            10,
            2,
            ConservationLedger {
                injected: 1,
                delivered: 0,
                dropped: 0,
                in_flight: 1,
            },
            RoutingCounters {
                routed: 0,
                vlb_chosen: 0,
            },
            vec![
                part(vec![frame(9, 0), frame(10, 0)]),
                part(vec![frame(8, 1), frame(9, 1), frame(10, 1)]),
            ],
        );
        let order: Vec<(u64, u32)> = rep.recent.iter().map(|f| (f.cycle, f.shard)).collect();
        assert_eq!(order, vec![(8, 1), (9, 0), (9, 1), (10, 0), (10, 1)]);
    }
}
