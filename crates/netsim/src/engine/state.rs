//! Flow-control state: the per-run allocations of the engine, owned by a
//! reusable [`SimWorkspace`].
//!
//! Since the engine was partitioned into group-sharded workers, the
//! workspace is a container of per-shard slabs ([`ShardState`]): shard `k`
//! of `N` owns `groups / N` consecutive dragonfly groups — their switches,
//! input buffers, credits, calendar rings and the send side of every
//! channel leaving an owned switch.  All arrays stay **globally indexed**
//! (channel/switch/node ids are the dense topology ids); a shard simply
//! never touches indices it does not own, so the sequential `N = 1` layout
//! is the same code with one shard owning everything.  The per-channel
//! ownership tables (`owns_send`/`owns_recv`, `src_shard`/`dst_shard`)
//! form the boundary index the workers consult when a flit or credit must
//! cross into another shard's slab via a mailbox.
//!
//! All per-channel state lives in flat vectors indexed by
//! [`tugal_topology::ChannelId`]:
//!
//! * *staging* — flits that won switch allocation and wait for their 1
//!   flit/cycle slot on the wire (they already hold a downstream credit,
//!   so backpressure is preserved),
//! * *input buffers* — the downstream router's input buffer, one FIFO per
//!   VC,
//! * `credits` — sender-side credit counters per VC; credit return takes
//!   the channel latency, modelled with a calendar ring.
//!
//! The two FIFO families are *intrusive* linked lists threaded through one
//! shared [`ShardState::next_pkt`] array: a packet sits in at most one
//! queue at a time (staging of its current channel, or one input-buffer
//! FIFO downstream), so a single next-pointer per packet replaces a
//! `VecDeque` per queue — no per-queue capacity management, no wraparound
//! arithmetic, and pushes/pops are two or three word-sized stores on the
//! switch-allocation hot path.
//!
//! In-flight flits sit in an arrival calendar ring rather than per-channel
//! pipelines, so per-cycle cost is proportional to the number of flits in
//! flight, not to topology size.  Each router keeps a *ready list* of
//! non-empty input-buffer FIFOs; switch allocation visits only those.
//!
//! A workspace survives across runs: [`SimWorkspace`]'s crate-internal
//! `reset` clears every structure *in place* (keeping the backing
//! capacity) when the engine shape — channel count × VC count × switch
//! count × calendar ring size × shard count — matches the previous run,
//! and rebuilds from scratch only when it changes.  A reset workspace is
//! indistinguishable from a fresh one, so reuse cannot perturb determinism
//! (asserted by the golden fixtures and the workspace-reuse tests).

use crate::config::Config;
use std::sync::Mutex;
use tugal_routing::Path;
use tugal_topology::{ChannelKind, Dragonfly, Endpoint};

/// A packet in flight (single-flit, as the paper uses).  `Copy`, so a
/// boundary handoff to another shard's mailbox is a plain 40-byte move.
#[derive(Clone, Copy)]
pub(crate) struct Packet {
    pub(crate) dst_node: u32,
    /// Source node (reported to the observer when a fault drops the
    /// packet mid-network).
    pub(crate) src_node: u32,
    pub(crate) birth: u64,
    /// The packet's source route, by reference: either a
    /// [`tugal_routing::PathId`] into the provider's interned arena, or —
    /// when the `EPH_BIT` tag is set —
    /// the packet's slot in [`ShardState::eph_paths`], holding a path
    /// that was composed per draw (rule-based providers, fault-reroute
    /// sentinels, the pre-routing placeholder).  Resolved through
    /// `Engine::packet_path`.
    pub(crate) path_id: u32,
    /// Index of the next hop to take on the packet's path.
    pub(crate) hop: u8,
    /// VC the packet occupies on its current channel.
    pub(crate) cur_vc: u8,
    /// Channel currently carrying/buffering the packet.
    pub(crate) cur_chan: u32,
    /// Local hops taken before `path` started (PAR or fault reroute).
    pub(crate) pre_local: u8,
    /// Global hops taken before `path` started (fault reroute only; PAR
    /// revises before the first global hop).
    pub(crate) pre_global: u8,
    /// Network hops taken so far (for statistics).
    pub(crate) hops_taken: u8,
    pub(crate) flags: u8,
    /// Memoized `next_hop` output channel (`u32::MAX` = not computed).
    /// A blocked head-of-buffer packet is re-examined by switch allocation
    /// every round of every cycle; its next hop is a pure function of the
    /// route state, so it is computed once and invalidated only when
    /// `hop` or the path changes.
    pub(crate) out_chan: u32,
    /// Memoized `next_hop` VC, paired with `out_chan` (`u8::MAX` encodes
    /// the credit-untracked ejection hop).
    pub(crate) out_vc: u8,
}

/// The engine shape a workspace is currently sized for.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Shape {
    n_chan: usize,
    v: usize,
    n_switches: usize,
    ring_size: usize,
    buf_size: u16,
    shards: usize,
}

/// One shard worker's slab: the complete flow-control state for the
/// contiguous group range the shard owns, plus the boundary index that
/// tells it which channels cross into other shards.
///
/// Every array is globally indexed (dense topology ids); entries outside
/// the owned range stay in their reset state and are never read or
/// written, except for the replicated read-only geometry (`latency`,
/// `dst_switch`, `is_global`, the dead masks) which every shard keeps in
/// full so the hot paths need no index translation.
#[derive(Default)]
pub(crate) struct ShardState {
    // ---- Shard identity / ownership (rebuilt on every reset) ----
    /// This shard's index in `0..n_shards`.
    pub(crate) id: u32,
    /// Total shard count of the run.
    pub(crate) n_shards: u32,
    /// First dragonfly group this shard owns (owns `groups / n_shards`
    /// consecutive groups from here).
    pub(crate) group_lo: u32,
    /// Owned switch range `[switch_lo, switch_hi)`.
    pub(crate) switch_lo: u32,
    pub(crate) switch_hi: u32,
    /// Owned node range `[node_lo, node_hi)`.
    pub(crate) node_lo: u32,
    pub(crate) node_hi: u32,
    /// Nodes per group (`p * a`), for node → group arithmetic.
    pub(crate) nodes_per_group: u32,
    /// Per channel: this shard owns the *send* side (staging, credits,
    /// `cred_used`, `next_free`, `chan_flits`) — true iff the source
    /// endpoint lives in the owned range.
    pub(crate) owns_send: Vec<bool>,
    /// Per channel: this shard owns the *receive* side (input-buffer
    /// FIFOs, `buf_occ`, ready lists) — true iff the destination endpoint
    /// lives in the owned range.
    pub(crate) owns_recv: Vec<bool>,
    /// Per channel: shard owning the send side (for boundary credit
    /// returns).
    pub(crate) src_shard: Vec<u32>,
    /// Per channel: shard owning the receive side (for boundary flit
    /// handoff).
    pub(crate) dst_shard: Vec<u32>,

    // ---- Packet pool ----
    pub(crate) packets: Vec<Packet>,
    pub(crate) free: Vec<u32>,
    /// Ephemeral path storage, parallel to `packets`: slot `i` holds the
    /// path of packet `i` whenever its `path_id` carries the ephemeral
    /// tag (paths not interned in the provider's arena).  Slots of
    /// interned-path packets are stale and never read.
    pub(crate) eph_paths: Vec<Path>,
    /// Intrusive FIFO links, parallel to `packets`: the next packet in
    /// whichever queue (staging or input buffer) packet `i` currently
    /// waits in; `u32::MAX` terminates a list.  Stale for packets not in
    /// any queue.
    pub(crate) next_pkt: Vec<u32>,

    // ---- Per channel ----
    pub(crate) latency: Vec<u32>,
    /// Staging FIFO head per channel (`u32::MAX` = empty).
    pub(crate) stg_head: Vec<u32>,
    /// Staging FIFO tail per channel (`u32::MAX` = empty).
    pub(crate) stg_tail: Vec<u32>,
    /// Staging FIFO length per channel, maintained explicitly: the UGAL
    /// queue metrics and the source-queue cap read it per routing
    /// decision.
    pub(crate) stg_len: Vec<u32>,
    pub(crate) next_free: Vec<u64>,
    pub(crate) in_busy: Vec<bool>,
    pub(crate) busy_list: Vec<u32>,
    /// Credits available, per (channel * V + vc).
    pub(crate) credits: Vec<u16>,
    /// Input-buffer FIFO head per (channel * V + vc) (`u32::MAX` = empty).
    pub(crate) inb_head: Vec<u32>,
    /// Input-buffer FIFO tail per (channel * V + vc) (`u32::MAX` = empty).
    pub(crate) inb_tail: Vec<u32>,
    /// Sum of in_buf occupancy over VCs, per channel (UGAL-G metric).
    pub(crate) buf_occ: Vec<u32>,
    /// Credits consumed, per channel (UGAL-L metric).
    pub(crate) cred_used: Vec<u32>,
    /// Destination switch of each network/injection channel (u32::MAX for
    /// ejection).
    pub(crate) dst_switch: Vec<u32>,
    /// Channel of each buffer index (`idx / V`, precomputed: the engine
    /// needs it once per credit return and once per dequeue, and `V` is
    /// not a power of two for every scheme).
    pub(crate) chan_of_buf: Vec<u32>,
    /// True for global channels (for utilization aggregation).
    pub(crate) is_global: Vec<bool>,

    // ---- Per switch ----
    pub(crate) ready: Vec<Vec<u32>>, // buffer indices (chan * V + vc)
    pub(crate) in_ready: Vec<bool>,  // per buffer index
    /// Per buffer index: the `(channel * V + vc)` credit counter the head
    /// packet found empty, or `u32::MAX` when not blocked.  Switch
    /// allocation skips a waiting buffer with two loads instead of the
    /// full head inspection until that counter is replenished — a pure
    /// fast path, since a credit-starved head cannot win and credits
    /// never increase within a cycle.  Maintained only on the pristine
    /// (fault-free) path, where heads have no other per-round side
    /// effects; fault runs take the full scan so `fault_check` still
    /// sees every head.
    pub(crate) wait: Vec<u32>,
    pub(crate) rr: Vec<usize>,
    pub(crate) out_stamp: Vec<u64>, // per channel: SA round stamp

    // ---- Calendars ----
    pub(crate) arrivals: Vec<Vec<u32>>, // ring by cycle: packet indices
    pub(crate) credit_ring: Vec<Vec<u32>>, // ring by cycle: buffer indices
    /// Drained-slot scratch buffers: each cycle swaps the due calendar
    /// slot with one of these, iterates it and swaps back cleared, so ring
    /// capacity circulates instead of being dropped and reallocated.
    pub(crate) arrival_scratch: Vec<u32>,
    pub(crate) credit_scratch: Vec<u32>,

    /// Flits sent per channel during the run (utilization statistic; only
    /// send-owned channels count, so the per-shard vectors sum disjointly
    /// into the global view).
    pub(crate) chan_flits: Vec<u32>,

    // ---- Fault state (all false unless a fault schedule is configured).
    // Replicated in full on every shard: fault events are broadcast, each
    // shard computes the same degraded view and drains only the buffers it
    // owns (the others are empty in its slab). ----
    /// Channels killed by applied fault events, per channel.
    pub(crate) chan_dead: Vec<bool>,
    /// Switches killed by applied fault events, per switch.
    pub(crate) switch_dead: Vec<bool>,
}

impl ShardState {
    /// Occupancy (in flits) of the downstream input buffer of channel
    /// `chan`, VC `vc`, for an engine with `v` VCs per channel — the
    /// quantity the observer seam samples through
    /// [`super::SimObserver::on_vc_occupancy_sample`].
    /// (Observer-only: walks the FIFO, so cost is its length — the hot
    /// engine paths never need an input-buffer length.)
    #[inline]
    pub(crate) fn vc_occupancy(&self, chan: usize, v: usize, vc: usize) -> u32 {
        let mut n = 0;
        let mut p = self.inb_head[chan * v + vc];
        while p != u32::MAX {
            n += 1;
            p = self.next_pkt[p as usize];
        }
        n
    }

    /// Appends `pi` to the staging FIFO of channel `ch`.
    #[inline]
    pub(crate) fn stg_push(&mut self, ch: usize, pi: u32) {
        self.next_pkt[pi as usize] = u32::MAX;
        let t = self.stg_tail[ch];
        if t == u32::MAX {
            self.stg_head[ch] = pi;
        } else {
            self.next_pkt[t as usize] = pi;
        }
        self.stg_tail[ch] = pi;
        self.stg_len[ch] += 1;
    }

    /// Pops the head of the staging FIFO of channel `ch`.
    #[inline]
    pub(crate) fn stg_pop(&mut self, ch: usize) -> Option<u32> {
        let h = self.stg_head[ch];
        if h == u32::MAX {
            return None;
        }
        let n = self.next_pkt[h as usize];
        self.stg_head[ch] = n;
        if n == u32::MAX {
            self.stg_tail[ch] = u32::MAX;
        }
        self.stg_len[ch] -= 1;
        Some(h)
    }

    /// Appends `pi` to the input-buffer FIFO `idx` (= channel * V + vc).
    #[inline]
    pub(crate) fn inb_push(&mut self, idx: usize, pi: u32) {
        self.next_pkt[pi as usize] = u32::MAX;
        let t = self.inb_tail[idx];
        if t == u32::MAX {
            self.inb_head[idx] = pi;
        } else {
            self.next_pkt[t as usize] = pi;
        }
        self.inb_tail[idx] = pi;
    }

    /// Pops the head of input-buffer FIFO `idx`.
    #[inline]
    pub(crate) fn inb_pop(&mut self, idx: usize) -> Option<u32> {
        let h = self.inb_head[idx];
        if h == u32::MAX {
            return None;
        }
        let n = self.next_pkt[h as usize];
        self.inb_head[idx] = n;
        if n == u32::MAX {
            self.inb_tail[idx] = u32::MAX;
        }
        Some(h)
    }

    /// Clears the slab in place and rebuilds the shard's ownership index
    /// and channel geometry for shard `id` of `n_shards` over `topo`.
    fn reset(&mut self, topo: &Dragonfly, cfg: &Config, id: usize, n_shards: usize) {
        self.packets.clear();
        self.free.clear();
        self.eph_paths.clear();
        self.next_pkt.clear();
        self.busy_list.clear();
        self.stg_head.fill(u32::MAX);
        self.stg_tail.fill(u32::MAX);
        self.stg_len.fill(0);
        self.next_free.fill(0);
        self.in_busy.fill(false);
        self.credits.fill(cfg.buf_size);
        self.inb_head.fill(u32::MAX);
        self.inb_tail.fill(u32::MAX);
        self.buf_occ.fill(0);
        self.cred_used.fill(0);
        for r in &mut self.ready {
            r.clear();
        }
        self.in_ready.fill(false);
        self.wait.fill(u32::MAX);
        self.rr.fill(0);
        self.out_stamp.fill(0);
        for a in &mut self.arrivals {
            a.clear();
        }
        for c in &mut self.credit_ring {
            c.clear();
        }
        self.arrival_scratch.clear();
        self.credit_scratch.clear();
        self.chan_flits.fill(0);
        self.chan_dead.fill(false);
        self.switch_dead.fill(false);

        // Ownership: shard `id` owns `groups / n_shards` consecutive
        // groups and everything inside them.
        let groups = topo.num_groups() as u32;
        let gps = groups / n_shards as u32; // validated divisible upstream
        let a = (topo.num_switches() / topo.num_groups()) as u32;
        let npg = (topo.num_nodes() / topo.num_groups()) as u32;
        self.id = id as u32;
        self.n_shards = n_shards as u32;
        self.group_lo = id as u32 * gps;
        self.switch_lo = self.group_lo * a;
        self.switch_hi = (self.group_lo + gps) * a;
        self.node_lo = self.group_lo * npg;
        self.node_hi = (self.group_lo + gps) * npg;
        self.nodes_per_group = npg;

        // Channel geometry is cheap to rederive and may differ between
        // configs of the same shape (e.g. latencies), so refill it on every
        // reset; the buffers above keep their capacity either way.
        self.latency.clear();
        self.dst_switch.clear();
        self.is_global.clear();
        self.owns_send.clear();
        self.owns_recv.clear();
        self.src_shard.clear();
        self.dst_shard.clear();
        let shard_of = |e: Endpoint| -> u32 {
            match e {
                Endpoint::Switch(s) => topo.group_of(s).0 / gps,
                Endpoint::Node(n) => topo.group_of_node(n).0 / gps,
            }
        };
        for ch in topo.channels() {
            self.latency.push(match ch.kind {
                ChannelKind::Local => cfg.local_latency,
                ChannelKind::Global => cfg.global_latency,
                _ => cfg.terminal_latency,
            });
            self.dst_switch.push(match ch.dst {
                Endpoint::Switch(s) => s.0,
                Endpoint::Node(_) => u32::MAX,
            });
            self.is_global.push(ch.kind == ChannelKind::Global);
            let (ss, ds) = (shard_of(ch.src), shard_of(ch.dst));
            self.owns_send.push(ss == self.id);
            self.owns_recv.push(ds == self.id);
            self.src_shard.push(ss);
            self.dst_shard.push(ds);
        }
    }

    fn resize(&mut self, s: &Shape) {
        self.packets = Vec::new();
        self.free = Vec::new();
        self.eph_paths = Vec::new();
        self.next_pkt = Vec::new();
        self.latency = Vec::with_capacity(s.n_chan);
        self.stg_head = vec![u32::MAX; s.n_chan];
        self.stg_tail = vec![u32::MAX; s.n_chan];
        self.stg_len = vec![0; s.n_chan];
        self.next_free = vec![0; s.n_chan];
        self.in_busy = vec![false; s.n_chan];
        self.busy_list = Vec::new();
        self.credits = vec![s.buf_size; s.n_chan * s.v];
        self.inb_head = vec![u32::MAX; s.n_chan * s.v];
        self.inb_tail = vec![u32::MAX; s.n_chan * s.v];
        self.chan_of_buf = (0..s.n_chan * s.v).map(|i| (i / s.v) as u32).collect();
        self.buf_occ = vec![0; s.n_chan];
        self.cred_used = vec![0; s.n_chan];
        self.dst_switch = Vec::with_capacity(s.n_chan);
        self.is_global = Vec::with_capacity(s.n_chan);
        self.owns_send = Vec::with_capacity(s.n_chan);
        self.owns_recv = Vec::with_capacity(s.n_chan);
        self.src_shard = Vec::with_capacity(s.n_chan);
        self.dst_shard = Vec::with_capacity(s.n_chan);
        self.ready = vec![Vec::new(); s.n_switches];
        self.in_ready = vec![false; s.n_chan * s.v];
        self.wait = vec![u32::MAX; s.n_chan * s.v];
        self.rr = vec![0; s.n_switches];
        self.out_stamp = vec![0; s.n_chan];
        self.arrivals = vec![Vec::new(); s.ring_size];
        self.credit_ring = vec![Vec::new(); s.ring_size];
        self.arrival_scratch = Vec::new();
        self.credit_scratch = Vec::new();
        self.chan_flits = vec![0; s.n_chan];
        self.chan_dead = vec![false; s.n_chan];
        self.switch_dead = vec![false; s.n_switches];
    }
}

/// Owns every per-run allocation of the engine — one `ShardState` slab
/// per shard worker — so consecutive runs can reuse the backing memory
/// instead of reallocating it.
///
/// Create one with [`SimWorkspace::new`] and pass it to
/// [`crate::Simulator::run_with`]; the sweep layer keeps one workspace per
/// worker through a [`WorkspacePool`].
#[derive(Default)]
pub struct SimWorkspace {
    shape: Option<Shape>,
    /// One slab per shard worker; `shards.len() == 1` on the sequential
    /// path.
    pub(crate) shards: Vec<ShardState>,
}

impl SimWorkspace {
    /// An empty workspace; the first (crate-internal) `reset` sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Calendar ring size for a configuration: enough slots to cover the
    /// largest latency, rounded up to a power of two so the per-event
    /// slot computation is a mask instead of a division (the engine
    /// pushes to a calendar ring for every grant and every wire
    /// transmission).
    pub(crate) fn ring_size_for(cfg: &Config) -> usize {
        let max_lat = cfg
            .local_latency
            .max(cfg.global_latency)
            .max(cfg.terminal_latency) as usize;
        (max_lat + 2).next_power_of_two()
    }

    /// Prepares the workspace for a run of `topo` under `cfg` with
    /// `n_shards` workers: same-shape resets clear in place (keeping
    /// capacity), shape changes rebuild.  `n_shards` is the *executed*
    /// shard count (the orchestrator may fall back to 1 when an observer
    /// cannot fork), already validated against the topology.
    pub(crate) fn reset(&mut self, topo: &Dragonfly, cfg: &Config, n_shards: usize) {
        let shape = Shape {
            n_chan: topo.num_channels(),
            v: cfg.num_vcs as usize,
            n_switches: topo.num_switches(),
            ring_size: Self::ring_size_for(cfg),
            buf_size: cfg.buf_size,
            shards: n_shards,
        };
        if self.shape != Some(shape) {
            self.shards.clear();
            self.shards.resize_with(n_shards, ShardState::default);
            for st in &mut self.shards {
                st.resize(&shape);
            }
        }
        self.shape = Some(shape);
        for (id, st) in self.shards.iter_mut().enumerate() {
            st.reset(topo, cfg, id, n_shards);
        }
    }
}

/// A shared bag of [`SimWorkspace`]s for parallel sweeps: each job checks
/// one out (creating it on first use), runs, and returns it, so a sweep
/// allocates at most one workspace per concurrently running worker no
/// matter how many (rate, seed) jobs it schedules.
#[derive(Default)]
pub struct WorkspacePool {
    inner: Mutex<Vec<SimWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a pooled workspace (a fresh one when the pool is
    /// empty), returning the workspace to the pool afterwards.
    pub fn with<R>(&self, f: impl FnOnce(&mut SimWorkspace) -> R) -> R {
        let mut ws = self
            .inner
            .lock()
            .map(|mut v| v.pop())
            .unwrap_or_default()
            .unwrap_or_default();
        let r = f(&mut ws);
        if let Ok(mut v) = self.inner.lock() {
            v.push(ws);
        }
        r
    }

    /// Number of workspaces currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.inner.lock().map(|v| v.len()).unwrap_or(0)
    }
}
