//! Flow-control state: the per-run allocations of the engine, owned by a
//! reusable [`SimWorkspace`].
//!
//! All per-channel state lives in flat vectors indexed by
//! [`tugal_topology::ChannelId`]:
//!
//! * `staging` — flits that won switch allocation and wait for their 1
//!   flit/cycle slot on the wire (they already hold a downstream credit,
//!   so backpressure is preserved),
//! * `in_buf` — the downstream router's input buffer, one FIFO per VC,
//! * `credits` — sender-side credit counters per VC; credit return takes
//!   the channel latency, modelled with a calendar ring.
//!
//! In-flight flits sit in an arrival calendar ring rather than per-channel
//! pipelines, so per-cycle cost is proportional to the number of flits in
//! flight, not to topology size.  Each router keeps a *ready list* of
//! non-empty input-buffer FIFOs; switch allocation visits only those.
//!
//! A workspace survives across runs: [`SimWorkspace::reset`] clears every
//! structure *in place* (keeping the backing capacity) when the engine
//! shape — channel count × VC count × switch count × calendar ring size —
//! matches the previous run, and rebuilds from scratch only when it
//! changes.  A reset workspace is indistinguishable from a fresh one, so
//! reuse cannot perturb determinism (asserted by the golden fixtures and
//! the workspace-reuse tests).

use crate::config::Config;
use std::collections::VecDeque;
use std::sync::Mutex;
use tugal_routing::Path;
use tugal_topology::{ChannelKind, Dragonfly, Endpoint};

/// A packet in flight (single-flit, as the paper uses).
#[derive(Clone)]
pub(crate) struct Packet {
    pub(crate) dst_node: u32,
    /// Source node (reported to the observer when a fault drops the
    /// packet mid-network).
    pub(crate) src_node: u32,
    pub(crate) birth: u64,
    pub(crate) path: Path,
    /// Index of the next hop to take on `path`.
    pub(crate) hop: u8,
    /// VC the packet occupies on its current channel.
    pub(crate) cur_vc: u8,
    /// Channel currently carrying/buffering the packet.
    pub(crate) cur_chan: u32,
    /// Local hops taken before `path` started (PAR or fault reroute).
    pub(crate) pre_local: u8,
    /// Global hops taken before `path` started (fault reroute only; PAR
    /// revises before the first global hop).
    pub(crate) pre_global: u8,
    /// Network hops taken so far (for statistics).
    pub(crate) hops_taken: u8,
    pub(crate) flags: u8,
}

/// The engine shape a workspace is currently sized for.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Shape {
    n_chan: usize,
    v: usize,
    n_switches: usize,
    ring_size: usize,
    buf_size: u16,
}

/// Owns every per-run allocation of the engine — packet pool, input-buffer
/// FIFOs, credit counters, calendar rings, ready lists — so consecutive
/// runs can reuse the backing memory instead of reallocating it.
///
/// Create one with [`SimWorkspace::new`] and pass it to
/// [`crate::Simulator::run_with`]; the sweep layer keeps one workspace per
/// worker through a [`WorkspacePool`].
#[derive(Default)]
pub struct SimWorkspace {
    shape: Option<Shape>,

    // Packet pool.
    pub(crate) packets: Vec<Packet>,
    pub(crate) free: Vec<u32>,

    // Per channel.
    pub(crate) latency: Vec<u32>,
    pub(crate) staging: Vec<VecDeque<u32>>,
    pub(crate) next_free: Vec<u64>,
    pub(crate) in_busy: Vec<bool>,
    pub(crate) busy_list: Vec<u32>,
    /// Credits available, per (channel * V + vc).
    pub(crate) credits: Vec<u16>,
    /// Downstream input buffers, per (channel * V + vc).
    pub(crate) in_buf: Vec<VecDeque<u32>>,
    /// Sum of in_buf occupancy over VCs, per channel (UGAL-G metric).
    pub(crate) buf_occ: Vec<u32>,
    /// Credits consumed, per channel (UGAL-L metric).
    pub(crate) cred_used: Vec<u32>,
    /// Destination switch of each network/injection channel (u32::MAX for
    /// ejection).
    pub(crate) dst_switch: Vec<u32>,
    /// True for global channels (for utilization aggregation).
    pub(crate) is_global: Vec<bool>,

    // Per switch.
    pub(crate) ready: Vec<Vec<u32>>, // buffer indices (chan * V + vc)
    pub(crate) in_ready: Vec<bool>,  // per buffer index
    pub(crate) rr: Vec<usize>,
    pub(crate) out_stamp: Vec<u64>, // per channel: SA round stamp

    // Calendars.
    pub(crate) arrivals: Vec<Vec<u32>>, // ring by cycle: packet indices
    pub(crate) credit_ring: Vec<Vec<u32>>, // ring by cycle: buffer indices

    /// Flits sent per channel during the run (utilization statistic).
    pub(crate) chan_flits: Vec<u32>,

    // Fault state (all false unless a fault schedule is configured).
    /// Channels killed by applied fault events, per channel.
    pub(crate) chan_dead: Vec<bool>,
    /// Switches killed by applied fault events, per switch.
    pub(crate) switch_dead: Vec<bool>,
}

impl SimWorkspace {
    /// An empty workspace; the first (crate-internal) `reset` sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Occupancy (in flits) of the downstream input buffer of channel
    /// `chan`, VC `vc`, for an engine with `v` VCs per channel — the
    /// quantity the observer seam samples through
    /// [`super::SimObserver::on_vc_occupancy_sample`].
    #[inline]
    pub(crate) fn vc_occupancy(&self, chan: usize, v: usize, vc: usize) -> u32 {
        self.in_buf[chan * v + vc].len() as u32
    }

    /// Calendar ring size for a configuration.
    pub(crate) fn ring_size_for(cfg: &Config) -> usize {
        let max_lat = cfg
            .local_latency
            .max(cfg.global_latency)
            .max(cfg.terminal_latency) as usize;
        max_lat + 2
    }

    /// Prepares the workspace for a run of `topo` under `cfg`: same-shape
    /// resets clear in place (keeping capacity), shape changes rebuild.
    pub(crate) fn reset(&mut self, topo: &Dragonfly, cfg: &Config) {
        let shape = Shape {
            n_chan: topo.num_channels(),
            v: cfg.num_vcs as usize,
            n_switches: topo.num_switches(),
            ring_size: Self::ring_size_for(cfg),
            buf_size: cfg.buf_size,
        };
        if self.shape != Some(shape) {
            self.resize(shape);
        }
        self.shape = Some(shape);

        self.packets.clear();
        self.free.clear();
        self.busy_list.clear();
        for q in &mut self.staging {
            q.clear();
        }
        self.next_free.fill(0);
        self.in_busy.fill(false);
        self.credits.fill(shape.buf_size);
        for q in &mut self.in_buf {
            q.clear();
        }
        self.buf_occ.fill(0);
        self.cred_used.fill(0);
        for r in &mut self.ready {
            r.clear();
        }
        self.in_ready.fill(false);
        self.rr.fill(0);
        self.out_stamp.fill(0);
        for a in &mut self.arrivals {
            a.clear();
        }
        for c in &mut self.credit_ring {
            c.clear();
        }
        self.chan_flits.fill(0);
        self.chan_dead.fill(false);
        self.switch_dead.fill(false);

        // Channel geometry is cheap to rederive and may differ between
        // configs of the same shape (e.g. latencies), so refill it on every
        // reset; the buffers above keep their capacity either way.
        self.latency.clear();
        self.dst_switch.clear();
        self.is_global.clear();
        for ch in topo.channels() {
            self.latency.push(match ch.kind {
                ChannelKind::Local => cfg.local_latency,
                ChannelKind::Global => cfg.global_latency,
                _ => cfg.terminal_latency,
            });
            self.dst_switch.push(match ch.dst {
                Endpoint::Switch(s) => s.0,
                Endpoint::Node(_) => u32::MAX,
            });
            self.is_global.push(ch.kind == ChannelKind::Global);
        }
    }

    fn resize(&mut self, s: Shape) {
        self.packets = Vec::new();
        self.free = Vec::new();
        self.latency = Vec::with_capacity(s.n_chan);
        self.staging = vec![VecDeque::new(); s.n_chan];
        self.next_free = vec![0; s.n_chan];
        self.in_busy = vec![false; s.n_chan];
        self.busy_list = Vec::new();
        self.credits = vec![s.buf_size; s.n_chan * s.v];
        self.in_buf = (0..s.n_chan * s.v).map(|_| VecDeque::new()).collect();
        self.buf_occ = vec![0; s.n_chan];
        self.cred_used = vec![0; s.n_chan];
        self.dst_switch = Vec::with_capacity(s.n_chan);
        self.is_global = Vec::with_capacity(s.n_chan);
        self.ready = vec![Vec::new(); s.n_switches];
        self.in_ready = vec![false; s.n_chan * s.v];
        self.rr = vec![0; s.n_switches];
        self.out_stamp = vec![0; s.n_chan];
        self.arrivals = vec![Vec::new(); s.ring_size];
        self.credit_ring = vec![Vec::new(); s.ring_size];
        self.chan_flits = vec![0; s.n_chan];
        self.chan_dead = vec![false; s.n_chan];
        self.switch_dead = vec![false; s.n_switches];
    }
}

/// A shared bag of [`SimWorkspace`]s for parallel sweeps: each job checks
/// one out (creating it on first use), runs, and returns it, so a sweep
/// allocates at most one workspace per concurrently running worker no
/// matter how many (rate, seed) jobs it schedules.
#[derive(Default)]
pub struct WorkspacePool {
    inner: Mutex<Vec<SimWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a pooled workspace (a fresh one when the pool is
    /// empty), returning the workspace to the pool afterwards.
    pub fn with<R>(&self, f: impl FnOnce(&mut SimWorkspace) -> R) -> R {
        let mut ws = self
            .inner
            .lock()
            .map(|mut v| v.pop())
            .unwrap_or_default()
            .unwrap_or_default();
        let r = f(&mut ws);
        if let Ok(mut v) = self.inner.lock() {
            v.push(ws);
        }
        r
    }

    /// Number of workspaces currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.inner.lock().map(|v| v.len()).unwrap_or(0)
    }
}
