//! Switch allocation and wire transmission, plus source-queue injection:
//! the per-cycle movement phases of the engine.

use super::observer::SimObserver;
use super::state::Packet;
use super::{Engine, F_REVISABLE, F_ROUTED, SOURCE_QUEUE_CAP};
use rand::Rng;
use tugal_routing::Path;
use tugal_topology::NodeId;

impl<O: SimObserver> Engine<'_, O> {
    /// Bernoulli injection at the configured rate: each node draws once
    /// per cycle; new packets enter the (capped) source queue modelled by
    /// the injection channel's staging + downstream buffer.
    pub(crate) fn inject(&mut self) {
        let topo = self.sim.topo.clone();
        let nodes = topo.num_nodes() as u32;
        for n in 0..nodes {
            if !self.rng.gen_bool(self.rate) {
                continue;
            }
            let Some(dst) = self.sim.pattern.dest(NodeId(n), &mut self.rng) else {
                continue;
            };
            self.stats.record_injection();
            self.obs.on_inject(self.now, NodeId(n), dst);
            let inj = topo.injection_channel(NodeId(n)).0 as usize;
            // A dead source switch cannot accept traffic and a dead
            // destination switch can never eject it; either way the packet
            // counts as injected and is dropped on the floor.
            if self.fault_on
                && (self.ws.switch_dead[topo.switch_of_node(NodeId(n)).index()]
                    || self.ws.switch_dead[topo.switch_of_node(dst).index()])
            {
                self.obs.on_drop(self.now, NodeId(n), dst);
                continue;
            }
            // The injection channel's downstream buffer plays the role of
            // BookSim's infinite source queue; cap it so deep-saturation
            // points keep finite memory (the latency threshold fires long
            // before the cap matters).
            if self.ws.staging[inj].len() + self.ws.buf_occ[inj] as usize >= SOURCE_QUEUE_CAP {
                self.obs.on_drop(self.now, NodeId(n), dst);
                continue; // dropped at an overflowing source queue
            }
            let pi = self.alloc_packet(Packet {
                dst_node: dst.0,
                src_node: n,
                birth: self.now,
                path: Path::single(topo.switch_of_node(NodeId(n))),
                hop: 0,
                cur_vc: 0,
                cur_chan: inj as u32,
                pre_local: 0,
                pre_global: 0,
                hops_taken: 0,
                flags: 0,
            });
            self.ws.staging[inj].push_back(pi);
            if !self.ws.in_busy[inj] {
                self.ws.in_busy[inj] = true;
                self.ws.busy_list.push(inj as u32);
            }
        }
    }

    /// Switch allocation: `speedup` round-robin rounds per cycle, one
    /// winner per output channel per round, visiting only the non-empty
    /// input-buffer FIFOs on each router's ready list.
    pub(crate) fn allocate(&mut self) {
        let speedup = self.sim.cfg.speedup;
        let n_switches = self.sim.topo.num_switches();
        for sw in 0..n_switches {
            if self.ws.ready[sw].is_empty() {
                continue;
            }
            for round in 0..speedup {
                let stamp = self.now * speedup as u64 + round as u64 + 1;
                let len = self.ws.ready[sw].len();
                if len == 0 {
                    break;
                }
                let start = self.ws.rr[sw] % len;
                for k in 0..len {
                    let pos = (start + k) % len;
                    let idx = self.ws.ready[sw][pos] as usize;
                    let Some(&pi) = self.ws.in_buf[idx].front() else {
                        continue;
                    };
                    // Route / revise at the head of the buffer.
                    if self.ws.packets[pi as usize].flags & F_ROUTED == 0 {
                        self.route(pi);
                    } else if self.ws.packets[pi as usize].flags & F_REVISABLE != 0 {
                        self.par_revise(pi);
                    }
                    // Under faults the decided path may lead into dead
                    // hardware: reroute from here or drop (dequeuing
                    // exactly as a forwarded packet would, so the input
                    // buffer's credit still returns upstream).
                    if self.fault_on && !self.fault_check(pi) {
                        self.ws.in_buf[idx].pop_front();
                        let in_ch = idx / self.v;
                        self.ws.buf_occ[in_ch] -= 1;
                        if in_ch < self.n_network {
                            let due = ((self.now + self.ws.latency[in_ch] as u64)
                                % self.ring_size as u64)
                                as usize;
                            self.ws.credit_ring[due].push(idx as u32);
                        }
                        self.drop_in_network(pi);
                        continue;
                    }
                    let (out, vc) = self.next_hop(pi);
                    if self.ws.out_stamp[out as usize] == stamp {
                        continue; // output taken this round
                    }
                    if let Some(vc) = vc {
                        let cidx = out as usize * self.v + vc as usize;
                        if self.ws.credits[cidx] == 0 {
                            continue; // no downstream buffer space
                        }
                        self.ws.credits[cidx] -= 1;
                        self.ws.cred_used[out as usize] += 1;
                        let p = &mut self.ws.packets[pi as usize];
                        p.cur_vc = vc;
                        p.hop += 1;
                        p.hops_taken += 1;
                    }
                    self.ws.out_stamp[out as usize] = stamp;
                    // Dequeue from the input buffer and return its credit
                    // upstream (network channels only — the injection
                    // channel's upstream is the uncredit-managed source
                    // queue).
                    self.ws.in_buf[idx].pop_front();
                    let in_ch = idx / self.v;
                    self.ws.buf_occ[in_ch] -= 1;
                    if in_ch < self.n_network {
                        let due = ((self.now + self.ws.latency[in_ch] as u64)
                            % self.ring_size as u64) as usize;
                        self.ws.credit_ring[due].push(idx as u32);
                    }
                    // Forward.
                    let p = &mut self.ws.packets[pi as usize];
                    p.cur_chan = out;
                    self.ws.staging[out as usize].push_back(pi);
                    if !self.ws.in_busy[out as usize] {
                        self.ws.in_busy[out as usize] = true;
                        self.ws.busy_list.push(out);
                    }
                }
            }
            self.ws.rr[sw] = self.ws.rr[sw].wrapping_add(1);
            // Compact the ready list.
            let mut list = std::mem::take(&mut self.ws.ready[sw]);
            list.retain(|&idx| {
                if self.ws.in_buf[idx as usize].is_empty() {
                    self.ws.in_ready[idx as usize] = false;
                    false
                } else {
                    true
                }
            });
            self.ws.ready[sw] = list;
        }
    }

    /// Wire transmission: each busy channel moves at most one staged flit
    /// per cycle onto the arrival calendar.
    pub(crate) fn transmit(&mut self) {
        let mut i = 0;
        while i < self.ws.busy_list.len() {
            let ch = self.ws.busy_list[i] as usize;
            if self.now >= self.ws.next_free[ch] {
                if let Some(pi) = self.ws.staging[ch].pop_front() {
                    let arrive =
                        ((self.now + self.ws.latency[ch] as u64) % self.ring_size as u64) as usize;
                    self.ws.arrivals[arrive].push(pi);
                    self.ws.next_free[ch] = self.now + 1;
                    self.ws.chan_flits[ch] += 1;
                    if ch < self.n_network {
                        self.obs
                            .on_link_traverse(self.now, ch as u32, self.ws.is_global[ch]);
                    }
                }
            }
            if self.ws.staging[ch].is_empty() {
                self.ws.in_busy[ch] = false;
                self.ws.busy_list.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
}
