//! Switch allocation and wire transmission, plus source-queue injection:
//! the per-cycle movement phases of the engine.

use super::observer::SimObserver;
use super::profile::EngineProfiler;
use super::state::Packet;
use super::{Engine, Msg, EPH_BIT, F_REVISABLE, F_ROUTED, SOURCE_QUEUE_CAP};
use rand::Rng;
use tugal_routing::{Path, PathRef};
use tugal_topology::NodeId;

impl<O: SimObserver, P: EngineProfiler> Engine<'_, O, P> {
    /// Bernoulli injection at the configured rate: each node this shard
    /// owns draws once per cycle; new packets enter the (capped) source
    /// queue modelled by the injection channel's staging + downstream
    /// buffer.  Both draws (the coin and the destination) come from the
    /// node's *group* RNG stream, so the sequence each group consumes is
    /// the same at every shard count.
    pub(crate) fn inject(&mut self) {
        let sim = self.sim;
        let topo = &*sim.topo;
        let (lo, hi) = (self.ws.node_lo, self.ws.node_hi);
        let (npg, glo) = (self.ws.nodes_per_group, self.ws.group_lo);
        for n in lo..hi {
            let gi = (n / npg - glo) as usize;
            if !self.rngs[gi].gen_bool(self.rate) {
                continue;
            }
            let Some(dst) = sim.pattern.dest(NodeId(n), &mut self.rngs[gi]) else {
                continue;
            };
            self.stats.record_injection();
            self.obs.on_inject(self.now, NodeId(n), dst);
            let inj = topo.injection_channel(NodeId(n)).0 as usize;
            // A dead source switch cannot accept traffic and a dead
            // destination switch can never eject it; either way the packet
            // counts as injected and is dropped on the floor.
            if self.fault_on
                && (self.ws.switch_dead[topo.switch_of_node(NodeId(n)).index()]
                    || self.ws.switch_dead[topo.switch_of_node(dst).index()])
            {
                self.stats.record_drop();
                self.obs.on_drop(self.now, NodeId(n), dst);
                continue;
            }
            // The injection channel's downstream buffer plays the role of
            // BookSim's infinite source queue; cap it so deep-saturation
            // points keep finite memory (the latency threshold fires long
            // before the cap matters).
            if (self.ws.stg_len[inj] + self.ws.buf_occ[inj]) as usize >= SOURCE_QUEUE_CAP {
                self.stats.record_drop();
                self.obs.on_drop(self.now, NodeId(n), dst);
                continue; // dropped at an overflowing source queue
            }
            let pi = self.alloc_packet(Packet {
                dst_node: dst.0,
                src_node: n,
                birth: self.now,
                path_id: 0, // placeholder; set right below
                hop: 0,
                cur_vc: 0,
                cur_chan: inj as u32,
                pre_local: 0,
                pre_global: 0,
                hops_taken: 0,
                flags: 0,
                out_chan: u32::MAX,
                out_vc: u8::MAX,
            });
            // Pre-routing placeholder: the zero-hop path at the source
            // switch (never read by the engine — `route` runs before any
            // hop — but keeps `packet_path` total).
            self.set_packet_path(
                pi,
                PathRef::Owned(Path::single(topo.switch_of_node(NodeId(n)))),
            );
            self.ws.stg_push(inj, pi);
            if !self.ws.in_busy[inj] {
                self.ws.in_busy[inj] = true;
                self.ws.busy_list.push(inj as u32);
            }
        }
    }

    /// Switch allocation: `speedup` round-robin rounds per cycle, one
    /// winner per output channel per round, visiting only the non-empty
    /// input-buffer FIFOs on each router's ready list.  Iterates only the
    /// switches this shard owns; credits for dequeued boundary flits
    /// travel back through [`Engine::return_credit`].
    pub(crate) fn allocate(&mut self) {
        let speedup = self.sim.cfg.speedup;
        let (sw_lo, sw_hi) = (self.ws.switch_lo as usize, self.ws.switch_hi as usize);
        for sw in sw_lo..sw_hi {
            if self.ws.ready[sw].is_empty() {
                continue;
            }
            for round in 0..speedup {
                let stamp = self.now * speedup as u64 + round as u64 + 1;
                let len = self.ws.ready[sw].len();
                if len == 0 {
                    break;
                }
                // A round that grants nothing is a fixed point: every head
                // failed on credits (an ejection- or credit-eligible head
                // always beats a fresh `out_stamp`), and credits never
                // increase within a cycle — so later rounds would replay
                // the same no-op scan.
                let mut granted = false;
                let start = self.ws.rr[sw] % len;
                // Wrap by increment, not `(start + k) % len`: the modulo is
                // an integer division per scanned candidate, and this scan
                // is the hottest loop in the engine.
                let mut pos = start;
                for _ in 0..len {
                    let idx = self.ws.ready[sw][pos] as usize;
                    pos += 1;
                    if pos == len {
                        pos = 0;
                    }
                    // Credit-wait fast path (pristine runs only): a head
                    // that found its credit counter empty cannot win until
                    // a future cycle replenishes it, so skip the full
                    // inspection with two loads.  Fault runs never set
                    // `wait`, keeping `fault_check` on every head.
                    let w = self.ws.wait[idx];
                    if w != u32::MAX {
                        if self.ws.credits[w as usize] == 0 {
                            continue;
                        }
                        self.ws.wait[idx] = u32::MAX;
                    }
                    let pi = self.ws.inb_head[idx];
                    if pi == u32::MAX {
                        continue;
                    }
                    // Route / revise at the head of the buffer.
                    if self.ws.packets[pi as usize].flags & F_ROUTED == 0 {
                        self.route(pi);
                    } else if self.ws.packets[pi as usize].flags & F_REVISABLE != 0 {
                        self.par_revise(pi);
                    }
                    // Under faults the decided path may lead into dead
                    // hardware: reroute from here or drop (dequeuing
                    // exactly as a forwarded packet would, so the input
                    // buffer's credit still returns upstream).
                    if self.fault_on && !self.fault_check(pi) {
                        self.ws.inb_pop(idx);
                        let in_ch = self.ws.chan_of_buf[idx] as usize;
                        self.ws.buf_occ[in_ch] -= 1;
                        self.return_credit(idx, in_ch);
                        self.drop_in_network(pi);
                        continue;
                    }
                    // Memoized next hop: a blocked head packet is retried
                    // every round, but its next hop only changes when its
                    // hop index or path does (every such site resets
                    // `out_chan` to the not-computed sentinel).
                    let (out, vc) = {
                        let p = &self.ws.packets[pi as usize];
                        if p.out_chan != u32::MAX {
                            (p.out_chan, p.out_vc)
                        } else {
                            let (out, vc) = self.next_hop(pi);
                            let vc = vc.unwrap_or(u8::MAX);
                            let p = &mut self.ws.packets[pi as usize];
                            p.out_chan = out;
                            p.out_vc = vc;
                            (out, vc)
                        }
                    };
                    if self.ws.out_stamp[out as usize] == stamp {
                        continue; // output taken this round
                    }
                    if vc != u8::MAX {
                        let cidx = out as usize * self.v + vc as usize;
                        if self.ws.credits[cidx] == 0 {
                            if !self.fault_on {
                                self.ws.wait[idx] = cidx as u32;
                            }
                            continue; // no downstream buffer space
                        }
                        self.ws.credits[cidx] -= 1;
                        self.ws.cred_used[out as usize] += 1;
                        let p = &mut self.ws.packets[pi as usize];
                        p.cur_vc = vc;
                        p.hop += 1;
                        p.hops_taken += 1;
                        p.out_chan = u32::MAX;
                    }
                    self.ws.out_stamp[out as usize] = stamp;
                    granted = true;
                    // Dequeue from the input buffer and return its credit
                    // upstream (network channels only — the injection
                    // channel's upstream is the uncredit-managed source
                    // queue).
                    self.ws.inb_pop(idx);
                    let in_ch = self.ws.chan_of_buf[idx] as usize;
                    self.ws.buf_occ[in_ch] -= 1;
                    self.return_credit(idx, in_ch);
                    // Forward.
                    let p = &mut self.ws.packets[pi as usize];
                    p.cur_chan = out;
                    self.ws.stg_push(out as usize, pi);
                    if !self.ws.in_busy[out as usize] {
                        self.ws.in_busy[out as usize] = true;
                        self.ws.busy_list.push(out);
                    }
                }
                if !granted {
                    break;
                }
            }
            self.ws.rr[sw] = self.ws.rr[sw].wrapping_add(1);
            // Compact the ready list.
            let mut list = std::mem::take(&mut self.ws.ready[sw]);
            list.retain(|&idx| {
                if self.ws.inb_head[idx as usize] == u32::MAX {
                    self.ws.in_ready[idx as usize] = false;
                    false
                } else {
                    true
                }
            });
            self.ws.ready[sw] = list;
        }
    }

    /// Wire transmission: each busy channel moves at most one staged flit
    /// per cycle onto the arrival calendar — or, when the receiving switch
    /// lives in another shard, into that shard's outgoing mailbox batch
    /// (the packet leaves this shard's pool; the receiver re-allocates it
    /// on drain).
    pub(crate) fn transmit(&mut self) {
        let mut i = 0;
        while i < self.ws.busy_list.len() {
            let ch = self.ws.busy_list[i] as usize;
            if self.now >= self.ws.next_free[ch] {
                if let Some(pi) = self.ws.stg_pop(ch) {
                    let due = self.now + self.ws.latency[ch] as u64;
                    if ch < self.n_network && !self.ws.owns_recv[ch] {
                        let pkt = self.ws.packets[pi as usize];
                        // Ephemeral paths live in this shard's slab; ship a
                        // copy so the receiver can re-home it.  (Interned
                        // ids resolve anywhere — the placeholder is unread.)
                        let path = if pkt.path_id & EPH_BIT != 0 {
                            self.ws.eph_paths[pi as usize]
                        } else {
                            Path::default()
                        };
                        self.outbox[self.ws.dst_shard[ch] as usize].push(Msg::Flit {
                            due,
                            pkt,
                            path,
                        });
                        self.free_packet(pi);
                        self.sent += 1;
                        self.prof.flit_sent();
                    } else {
                        self.ws.arrivals[(due & self.ring_mask) as usize].push(pi);
                    }
                    self.ws.next_free[ch] = self.now + 1;
                    self.ws.chan_flits[ch] += 1;
                    if ch < self.n_network {
                        self.obs
                            .on_link_traverse(self.now, ch as u32, self.ws.is_global[ch]);
                    }
                }
            }
            if self.ws.stg_len[ch] == 0 {
                self.ws.in_busy[ch] = false;
                self.ws.busy_list.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
}
