//! Routing decisions: the UGAL-L/G queue metrics, the MIN-vs-VLB choice at
//! the source switch, and PAR's one-shot in-group revision.
//!
//! All candidate draws go through the provider's *borrowed* sampling
//! (`sample_min_ref`/`sample_vlb_ref`): table-backed providers hand out
//! arena borrows and the packet stores the arena id, so the steady-state
//! decision allocates nothing and copies no paths.  The owned and borrowed
//! sampling forms are RNG-equivalent by the `PathProvider` contract, which
//! keeps the golden fixtures bit-for-bit.

use super::observer::SimObserver;
use super::profile::EngineProfiler;
use super::{Engine, F_REVISABLE, F_ROUTED, F_VLB};
use crate::config::RoutingAlgorithm;
use tugal_routing::{vc_class, Path, PathProvider, PathRef};
use tugal_topology::NodeId;

impl<O: SimObserver, P: EngineProfiler> Engine<'_, O, P> {
    /// UGAL-L queue metric of an output channel at its source router:
    /// consumed downstream credits plus flits staged on the wire slot.
    #[inline]
    pub(crate) fn q_local(&self, chan: u32) -> u64 {
        self.ws.cred_used[chan as usize] as u64 + self.ws.stg_len[chan as usize] as u64
    }

    /// UGAL-G metric of a channel: downstream buffer occupancy plus staged
    /// flits (a global snapshot an implementation could not cheaply have).
    /// Reads the begin-of-allocation snapshot the owners published after
    /// injection — identical at every shard count, because the snapshot is
    /// taken at the same point of the cycle regardless of which shard owns
    /// the channel.
    #[inline]
    pub(crate) fn q_global(&self, chan: u32) -> u64 {
        self.snap_q(chan)
    }

    pub(crate) fn q_local_path(&self, path: &Path) -> u64 {
        self.q_local_path_from(path, 0)
    }

    /// UGAL-L metric of the tail of `path` starting at hop `from`: first
    /// remaining channel's queue, weighted by the remaining hop count.
    /// `from = 0` is the whole-path metric; PAR's revision uses `from = 1`
    /// (the suffix after the local hop already taken) without
    /// materializing the suffix.
    pub(crate) fn q_local_path_from(&self, path: &Path, from: usize) -> u64 {
        if path.hops() <= from {
            return 0;
        }
        let c = path.channel_at(&self.sim.topo, from).0;
        self.q_local(c) * (path.hops() - from) as u64
    }

    pub(crate) fn q_global_path(&self, path: &Path) -> u64 {
        let topo = &self.sim.topo;
        (0..path.hops())
            .map(|i| self.q_global(path.channel_at(topo, i).0))
            .sum()
    }

    /// Draws `cfg.vlb_candidates` VLB candidates and keeps the one with
    /// the smallest queue metric (`global` selects the UGAL-G metric).
    /// With the default of one candidate this is a single provider draw —
    /// exactly the paper's UGAL.
    fn best_vlb_candidate<'p>(
        &mut self,
        provider: &'p dyn PathProvider,
        s: tugal_topology::SwitchId,
        d: tugal_topology::SwitchId,
        global: bool,
        gi: usize,
    ) -> PathRef<'p> {
        let k = self.sim.cfg.vlb_candidates.max(1);
        let mut best = provider.sample_vlb_ref(s, d, &mut self.rngs[gi]);
        if k == 1 {
            return best;
        }
        let metric = |e: &Self, p: &Path| {
            if global {
                e.q_global_path(p)
            } else {
                e.q_local_path(p)
            }
        };
        let mut best_q = metric(self, best.path());
        for _ in 1..k {
            let cand = provider.sample_vlb_ref(s, d, &mut self.rngs[gi]);
            let q = metric(self, cand.path());
            if q < best_q {
                best = cand;
                best_q = q;
            }
        }
        best
    }

    /// The initial routing decision at the source switch.
    pub(crate) fn route(&mut self, pi: u32) {
        // Copying the `&Simulator` out of `self` detaches the provider's
        // borrowed candidates from `self`, so no per-packet `Arc` clones
        // are needed to appease the borrow checker.
        let sim = self.sim;
        let topo = &*sim.topo;
        let provider = &*sim.provider;
        let (s, d) = {
            let p = &self.ws.packets[pi as usize];
            (
                topo.switch_of_node(NodeId(p.src_node)),
                topo.switch_of_node(NodeId(p.dst_node)),
            )
        };
        // The routing decision always runs at the head of a buffer of the
        // source switch, so `s` is owned by this shard and its group keys
        // the RNG stream the draws consume.
        let gi = self.gi_of_switch(s);
        // `ugal_threshold == i64::MAX` is the documented force-MIN
        // sentinel: the decision is short-circuited *without drawing the
        // VLB candidate*, so such a run consumes the RNG exactly like
        // `RoutingAlgorithm::Min` (pinned by the differential tests).  Any
        // finite threshold draws both candidates as usual.
        let force_min = sim.cfg.ugal_threshold == i64::MAX;
        let (path, used_vlb, revisable) = match sim.routing {
            RoutingAlgorithm::Min => (
                provider.sample_min_ref(s, d, &mut self.rngs[gi]),
                false,
                false,
            ),
            RoutingAlgorithm::Vlb => {
                let p = provider.sample_vlb_ref(s, d, &mut self.rngs[gi]);
                let vlb = p.path().hops() > 0;
                (p, vlb, false)
            }
            RoutingAlgorithm::UgalL | RoutingAlgorithm::Par => {
                let min = provider.sample_min_ref(s, d, &mut self.rngs[gi]);
                if force_min {
                    (min, false, sim.routing == RoutingAlgorithm::Par)
                } else {
                    let vlb = self.best_vlb_candidate(provider, s, d, false, gi);
                    if min.path() == vlb.path() || min.path().hops() == 0 {
                        (min, false, false)
                    } else {
                        let qm = self.q_local_path(min.path()) as i64;
                        let qv = self.q_local_path(vlb.path()) as i64;
                        if qm <= qv + sim.cfg.ugal_threshold {
                            (min, false, sim.routing == RoutingAlgorithm::Par)
                        } else {
                            (vlb, true, false)
                        }
                    }
                }
            }
            RoutingAlgorithm::UgalG => {
                let min = provider.sample_min_ref(s, d, &mut self.rngs[gi]);
                if force_min {
                    (min, false, false)
                } else {
                    let vlb = self.best_vlb_candidate(provider, s, d, true, gi);
                    if min.path() == vlb.path() || min.path().hops() == 0 {
                        (min, false, false)
                    } else {
                        let qm = self.q_global_path(min.path()) as i64;
                        let qv = self.q_global_path(vlb.path()) as i64;
                        if qm <= qv + sim.cfg.ugal_threshold {
                            (min, false, false)
                        } else {
                            (vlb, true, false)
                        }
                    }
                }
            }
        };
        self.stats.record_route(used_vlb);
        self.obs.on_route(self.now, s, d, used_vlb, false);
        self.set_packet_path(pi, path);
        let p = &mut self.ws.packets[pi as usize];
        p.hop = 0;
        p.out_chan = u32::MAX;
        p.flags |= F_ROUTED;
        if used_vlb {
            p.flags |= F_VLB;
        }
        if revisable {
            p.flags |= F_REVISABLE;
        }
    }

    /// PAR: possibly revise a MIN decision at the second router of the
    /// source group.
    pub(crate) fn par_revise(&mut self, pi: u32) {
        let sim = self.sim;
        let topo = &*sim.topo;
        let (cur, src_sw, dst_node) = {
            let p = &self.ws.packets[pi as usize];
            if p.flags & F_REVISABLE == 0 || p.hop != 1 {
                return;
            }
            let path = self.packet_path(pi);
            (path.switch(1), path.src(), p.dst_node)
        };
        // Only when the first hop stayed inside the source group.
        if topo.group_of(cur) != topo.group_of(src_sw) {
            self.ws.packets[pi as usize].flags &= !F_REVISABLE;
            return;
        }
        let d = topo.switch_of_node(NodeId(dst_node));
        let provider = &*sim.provider;
        // The revision runs at `cur` (the packet sits in one of its
        // buffers), so `cur`'s group keys the draw.
        let gi = self.gi_of_switch(cur);
        let vlb = provider.sample_vlb_ref(cur, d, &mut self.rngs[gi]);
        // The MIN alternative is the remaining suffix of the current path
        // (the hop already taken is sunk either way).
        let q_min = self.q_local_path_from(self.packet_path(pi), 1) as i64;
        let q_vlb = self.q_local_path(vlb.path()) as i64;
        let reroute = q_min > q_vlb + sim.cfg.ugal_threshold && vlb.path().hops() > 0;
        let p = &mut self.ws.packets[pi as usize];
        p.flags &= !F_REVISABLE;
        if reroute {
            // Reroute: the packet has taken one local hop already.
            self.set_packet_path(pi, vlb);
            let p = &mut self.ws.packets[pi as usize];
            p.hop = 0;
            p.out_chan = u32::MAX;
            p.pre_local = 1;
            p.flags |= F_VLB;
            self.stats.vlb_chosen += 1;
            self.obs.on_route(self.now, src_sw, d, true, true);
        }
    }

    /// Output channel and VC for the packet's next hop; `None` VC means no
    /// credit tracking (ejection).
    pub(crate) fn next_hop(&self, pi: u32) -> (u32, Option<u8>) {
        let topo = &self.sim.topo;
        let p = &self.ws.packets[pi as usize];
        let path = self.packet_path(pi);
        if p.hop as usize == path.hops() {
            (topo.ejection_channel(NodeId(p.dst_node)).0, None)
        } else {
            let c = path.channel_at(topo, p.hop as usize);
            // Fault reroutes can push the class past the configured VC
            // count (the scheme sizes VCs for PAR's worst case, not for
            // arbitrarily re-spliced routes); clamping to the top VC keeps
            // the index valid, at the cost of the formal deadlock-freedom
            // argument — the watchdog covers that residual risk.  Without
            // faults `pre_global` is 0 and the clamp never binds.
            let vc = vc_class(
                self.sim.cfg.vc_scheme,
                topo,
                path,
                p.hop as usize,
                p.pre_local,
                p.pre_global,
            )
            .min(self.v as u8 - 1);
            (c.0, Some(vc))
        }
    }
}
