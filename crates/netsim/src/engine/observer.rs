//! The observability seam of the engine.
//!
//! The engine is generic over a [`SimObserver`] and calls its hooks at the
//! few events external instrumentation cares about.  The default
//! [`NoopObserver`] has empty inline bodies, and the engine is
//! monomorphized per observer type, so the hot loop pays nothing for the
//! seam unless an observer actually does work.

use tugal_topology::NodeId;

/// Cycle-level probe interface; every hook has a no-op default body, so an
/// observer implements only what it needs.
///
/// Observers must not assume hooks fire for *every* packet event — the
/// seam covers the events the engine already computes (injection attempts,
/// routing decisions, deliveries, cycle boundaries), not a full trace.
#[allow(unused_variables)]
pub trait SimObserver {
    /// Start of each simulated cycle, before credit returns and arrivals.
    #[inline(always)]
    fn on_cycle(&mut self, now: u64) {}

    /// The measurement window opened (warmup ended) at `now`.
    #[inline(always)]
    fn on_measurement_start(&mut self, now: u64) {}

    /// A packet was created at `src` for `dst` (counted as injected even
    /// if the source queue then drops it).
    #[inline(always)]
    fn on_inject(&mut self, now: u64, src: NodeId, dst: NodeId) {}

    /// A routing decision ran; `used_vlb` tells whether the VLB candidate
    /// won (PAR reroutes fire this a second time).
    #[inline(always)]
    fn on_route(&mut self, now: u64, used_vlb: bool) {}

    /// A packet reached its destination node: `latency` cycles after
    /// creation, over `hops` switch-to-switch hops.
    #[inline(always)]
    fn on_deliver(&mut self, now: u64, latency: u64, hops: u8) {}
}

/// The zero-cost default observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {}
