//! The observability seam of the engine.
//!
//! The engine is generic over a [`SimObserver`] and calls its hooks at the
//! few events external instrumentation cares about.  The default
//! [`NoopObserver`] has empty inline bodies, and the engine is
//! monomorphized per observer type, so the hot loop pays nothing for the
//! seam unless an observer actually does work.

use tugal_topology::{NodeId, SwitchId};

/// Cycle-level probe interface; every hook has a no-op default body, so an
/// observer implements only what it needs.
///
/// Observers must not assume hooks fire for *every* packet event — the
/// seam covers the events the engine already computes (injection attempts,
/// routing decisions, link traversals, deliveries, drops, cycle
/// boundaries), not a full trace.
///
/// ## Event invariants
///
/// The engine guarantees (and `tests/observer_invariants.rs` pins):
///
/// * every packet counted by [`on_inject`](Self::on_inject) is eventually
///   accounted for as exactly one of: an [`on_drop`](Self::on_drop), an
///   [`on_deliver`](Self::on_deliver), or part of the `in_flight`
///   population reported by [`on_run_end`](Self::on_run_end);
/// * [`on_route`](Self::on_route) fires at least once per packet that
///   reaches the head of its source queue — twice when PAR revises a MIN
///   decision (the second call has `reroute = true`);
/// * [`on_link_traverse`](Self::on_link_traverse) fires once per flit per
///   switch-to-switch channel traversal (terminal channels are excluded).
///
/// ## Sharded runs
///
/// With `Config::shards > 1` the engine asks the observer to
/// [`fork`](Self::fork) one child per shard worker; each child receives
/// the hooks of its shard's events and the parent
/// [`absorb`](Self::absorb)s the children back in shard order before the
/// single final [`on_run_end`](Self::on_run_end) fires on the parent.
/// Event *multisets* are shard-count-invariant for packet-level hooks
/// (injections, routes, traversals, deliveries, drops, occupancy
/// samples), but the interleaving within a cycle is not, and the
/// run-level hooks ([`on_cycle`](Self::on_cycle),
/// [`on_measurement_start`](Self::on_measurement_start)) fire once per
/// *shard* per event.  The default `fork` returns `None`, which makes the
/// engine fall back to a sequential run — bit-for-bit identical by the
/// determinism contract, just not parallel — so existing observers keep
/// their exact semantics without implementing the seam.  (`Send` is a
/// supertrait so forks can move onto worker threads.)
#[allow(unused_variables)]
pub trait SimObserver: Send {
    /// Start of each simulated cycle, before credit returns and arrivals.
    #[inline(always)]
    fn on_cycle(&mut self, now: u64) {}

    /// Creates a shard-local child observer for a parallel run, or `None`
    /// (the default) to keep the run sequential.  A fork starts empty:
    /// partially forked children may be dropped unused if any sibling
    /// fork fails.
    #[inline]
    fn fork(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Folds a shard-local child back into `self`; called once per fork,
    /// in shard order, after all workers join and before
    /// [`on_run_end`](Self::on_run_end).
    #[inline]
    fn absorb(&mut self, shard: Self)
    where
        Self: Sized,
    {
    }

    /// The measurement window opened (warmup ended) at `now`.
    #[inline(always)]
    fn on_measurement_start(&mut self, now: u64) {}

    /// A packet was created at `src` for `dst` (counted as injected even
    /// if the source queue then drops it).
    #[inline(always)]
    fn on_inject(&mut self, now: u64, src: NodeId, dst: NodeId) {}

    /// A packet was dropped: at an overflowing source queue (deep
    /// saturation), or — when a fault schedule is attached — because a
    /// failure made it undeliverable (buffered in a dead switch, staged on
    /// a dead channel, arriving into a dead router, or stuck with no
    /// surviving path).  Dropped packets still count as injected.
    #[inline(always)]
    fn on_drop(&mut self, now: u64, src: NodeId, dst: NodeId) {}

    /// A routing decision ran for a packet travelling `src → dst`
    /// (switches); `used_vlb` tells whether the VLB candidate won.  PAR
    /// reroutes fire this a second time with `reroute = true` (and
    /// `used_vlb = true` — a revision always switches to VLB).
    #[inline(always)]
    fn on_route(&mut self, now: u64, src: SwitchId, dst: SwitchId, used_vlb: bool, reroute: bool) {}

    /// A flit left on a switch-to-switch channel: `chan` is the dense
    /// [`tugal_topology::ChannelId`] index, `global` true for inter-group
    /// channels.  Terminal (injection/ejection) traversals do not fire.
    #[inline(always)]
    fn on_link_traverse(&mut self, now: u64, chan: u32, global: bool) {}

    /// Cycle cadence at which the engine should sample per-VC input-buffer
    /// occupancy through
    /// [`on_vc_occupancy_sample`](Self::on_vc_occupancy_sample); `0` (the
    /// default) disables sampling and compiles the sampling loop out.
    #[inline(always)]
    fn occupancy_cadence(&self) -> u64 {
        0
    }

    /// One occupancy sample: the downstream input buffer of network
    /// channel `chan`, VC `vc`, holds `occupancy` flits at cycle `now`.
    /// Fired for every (network channel, VC) pair each time the cadence
    /// from [`occupancy_cadence`](Self::occupancy_cadence) divides `now`.
    #[inline(always)]
    fn on_vc_occupancy_sample(&mut self, now: u64, chan: u32, vc: u8, occupancy: u32) {}

    /// A fault check found the packet's next hop dead and successfully
    /// re-routed it from switch `at` onto a surviving path.  Fires only
    /// when a fault schedule is attached, at or after the first fault
    /// event's cycle.  Packets the check could *not* save are reported
    /// through [`on_drop`](Self::on_drop) instead.
    #[inline(always)]
    fn on_fault_reroute(&mut self, now: u64, at: SwitchId) {}

    /// A packet reached its destination node: `latency` cycles after
    /// creation, over `hops` switch-to-switch hops.
    #[inline(always)]
    fn on_deliver(&mut self, now: u64, latency: u64, hops: u8) {}

    /// The run ended at cycle `now` with `in_flight` packets still in the
    /// network (non-zero for saturated or truncated runs).
    #[inline(always)]
    fn on_run_end(&mut self, now: u64, in_flight: u64) {}

    /// Serializes the observer's accumulated state for a mid-run
    /// checkpoint, or `None` (the default) if the observer does not
    /// support checkpointing — in which case the engine disables
    /// checkpointing for the job with a typed warning, mirroring the
    /// [`fork`](Self::fork) fallback; results are unaffected.
    ///
    /// In sharded runs each *fork* is snapshotted, so a stateless
    /// observer should return `Some(Vec::new())` and accept the empty
    /// blob in [`restore`](Self::restore).
    #[inline]
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`snapshot`](Self::snapshot) on this
    /// observer (or on the matching fork in a sharded run) before the
    /// resumed run starts.
    #[inline]
    fn restore(&mut self, bytes: &[u8]) {}
}

/// The zero-cost default observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {
    // Stateless, so it forks trivially — unobserved runs parallelize.
    fn fork(&self) -> Option<Self> {
        Some(NoopObserver)
    }

    // ... and checkpoints trivially: no state, empty blob.
    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }
}
