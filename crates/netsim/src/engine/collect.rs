//! Statistics collection: window/whole-run counters accumulated during a
//! run and their finalization into a [`SimResult`].

use crate::config::Config;
use crate::stats::SimResult;

/// Counters the engine updates as it simulates (window = measurement
/// window; total = whole run, used when a run saturates before the
/// measurement window starts).
pub(crate) struct Stats {
    pub(crate) measuring: bool,
    pub(crate) injected: u64,
    pub(crate) delivered: u64,
    pub(crate) latency_sum: f64,
    pub(crate) hops_sum: u64,
    pub(crate) total_injected: u64,
    pub(crate) total_delivered: u64,
    /// Whole-run dropped-packet count (source-queue overflow, dead
    /// components, failed fault reroutes) — the third leg of the
    /// watchdog's conservation ledger.  Not part of [`SimResult`].
    pub(crate) total_dropped: u64,
    pub(crate) total_latency_sum: f64,
    pub(crate) total_hops_sum: u64,
    pub(crate) vlb_chosen: u64,
    pub(crate) routed: u64,
    pub(crate) saturated_early: bool,
    pub(crate) last_delivery: u64,
    pub(crate) deadlock_suspected: bool,
    /// Power-of-two latency histogram (measurement window).
    pub(crate) lat_hist: [u64; 24],
}

impl Stats {
    pub(crate) fn new() -> Self {
        Stats {
            measuring: false,
            injected: 0,
            delivered: 0,
            latency_sum: 0.0,
            hops_sum: 0,
            total_injected: 0,
            total_delivered: 0,
            total_dropped: 0,
            total_latency_sum: 0.0,
            total_hops_sum: 0,
            vlb_chosen: 0,
            routed: 0,
            saturated_early: false,
            last_delivery: 0,
            deadlock_suspected: false,
            lat_hist: [0; 24],
        }
    }

    /// Folds another shard's counters into `self`.  Called in ascending
    /// shard order, which keeps the floating-point latency sums
    /// deterministic — and in fact *exact*: latencies are integer cycle
    /// counts whose sums stay far below 2^53, so the order never matters
    /// to the value, only to the principle.
    pub(crate) fn merge(&mut self, o: &Stats) {
        debug_assert_eq!(self.measuring, o.measuring);
        self.injected += o.injected;
        self.delivered += o.delivered;
        self.latency_sum += o.latency_sum;
        self.hops_sum += o.hops_sum;
        self.total_injected += o.total_injected;
        self.total_delivered += o.total_delivered;
        self.total_dropped += o.total_dropped;
        self.total_latency_sum += o.total_latency_sum;
        self.total_hops_sum += o.total_hops_sum;
        self.vlb_chosen += o.vlb_chosen;
        self.routed += o.routed;
        self.saturated_early |= o.saturated_early;
        self.last_delivery = self.last_delivery.max(o.last_delivery);
        self.deadlock_suspected |= o.deadlock_suspected;
        for (a, b) in self.lat_hist.iter_mut().zip(&o.lat_hist) {
            *a += *b;
        }
    }

    /// Opens the measurement window: window counters restart, whole-run
    /// counters keep accumulating.
    pub(crate) fn open_window(&mut self) {
        self.measuring = true;
        self.injected = 0;
        self.delivered = 0;
        self.latency_sum = 0.0;
        self.hops_sum = 0;
        self.lat_hist = [0; 24];
    }

    /// Records a delivery at `now` of a packet born at `birth` that took
    /// `hops` network hops.
    pub(crate) fn record_delivery(&mut self, now: u64, birth: u64, hops: u8) {
        let latency = (now - birth) as f64;
        let hops = hops as u64;
        self.total_delivered += 1;
        self.total_latency_sum += latency;
        self.total_hops_sum += hops;
        self.last_delivery = now;
        // The histogram records the whole run and is reset when the
        // measurement window opens, so it stays aligned with whichever
        // stats (window or whole-run fallback) the final report uses.
        let bucket = (64 - ((latency as u64) | 1).leading_zeros() - 1).min(23) as usize;
        self.lat_hist[bucket] += 1;
        if self.measuring {
            self.delivered += 1;
            self.latency_sum += latency;
            self.hops_sum += hops;
        }
    }

    /// Records an injection attempt (before any source-queue drop).
    pub(crate) fn record_injection(&mut self) {
        self.total_injected += 1;
        if self.measuring {
            self.injected += 1;
        }
    }

    /// Records a dropped packet (it stays counted as injected).
    pub(crate) fn record_drop(&mut self) {
        self.total_dropped += 1;
    }

    /// Records a routing decision.
    pub(crate) fn record_route(&mut self, used_vlb: bool) {
        self.routed += 1;
        if used_vlb {
            self.vlb_chosen += 1;
        }
    }

    /// Latency percentile from the power-of-two histogram (geometric
    /// bucket midpoints).
    fn percentile(&self, p: f64) -> f64 {
        let total: u64 = self.lat_hist.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let target = (p * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in self.lat_hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                let lo = (1u64 << i) as f64;
                return lo * std::f64::consts::SQRT_2;
            }
        }
        f64::NAN
    }

    /// Folds the counters into a [`SimResult`].
    ///
    /// `now` is the last simulated cycle, `chan_flits`/`is_global` the
    /// per-channel flit counts over the first `n_network` (switch-to-
    /// switch) channels.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finalize(
        &self,
        cfg: &Config,
        rate: f64,
        now: u64,
        nodes: usize,
        chan_flits: &[u32],
        is_global: &[bool],
        n_network: usize,
    ) -> SimResult {
        let warmup = cfg.warmup_windows as u64 * cfg.window as u64;
        // If the run saturated before the measurement window opened, fall
        // back to whole-run statistics so callers still see meaningful
        // (deeply saturated) numbers instead of zeros.
        let (delivered, injected, latency_sum, hops_sum, measured_cycles) =
            if self.measuring && !(self.saturated_early && self.delivered == 0) {
                let cycles = if self.saturated_early {
                    (now + 1).saturating_sub(warmup).max(1)
                } else {
                    cfg.window as u64
                };
                (
                    self.delivered,
                    self.injected,
                    self.latency_sum,
                    self.hops_sum,
                    cycles,
                )
            } else {
                (
                    self.total_delivered,
                    self.total_injected,
                    self.total_latency_sum,
                    self.total_hops_sum,
                    (now + 1).max(1),
                )
            };
        let avg_latency = if delivered > 0 {
            latency_sum / delivered as f64
        } else {
            f64::INFINITY
        };
        let throughput = delivered as f64 / (nodes as f64 * measured_cycles as f64);
        let saturated = self.saturated_early
            || avg_latency > cfg.sat_latency
            || (injected > 0 && delivered == 0);
        // Channel utilization over switch-to-switch channels, counted over
        // the whole run (warmup included): at steady state the ratio
        // matches the window view, and it stays meaningful for runs that
        // saturate before the window opens.
        let elapsed = (now + 1) as f64;
        let mut max_util = 0.0f64;
        let (mut gsum, mut gcount, mut lsum, mut lcount) = (0.0f64, 0u64, 0.0f64, 0u64);
        for ch in 0..n_network {
            let util = chan_flits[ch] as f64 / elapsed;
            max_util = max_util.max(util);
            if is_global[ch] {
                gsum += util;
                gcount += 1;
            } else {
                lsum += util;
                lcount += 1;
            }
        }
        SimResult {
            injection_rate: rate,
            avg_latency,
            throughput,
            avg_hops: if delivered > 0 {
                hops_sum as f64 / delivered as f64
            } else {
                0.0
            },
            delivered,
            injected,
            saturated,
            deadlock_suspected: self.deadlock_suspected,
            vlb_fraction: if self.routed > 0 {
                self.vlb_chosen as f64 / self.routed as f64
            } else {
                0.0
            },
            latency_p50: self.percentile(0.50),
            latency_p99: self.percentile(0.99),
            max_channel_util: max_util,
            mean_global_util: if gcount > 0 {
                gsum / gcount as f64
            } else {
                0.0
            },
            mean_local_util: if lcount > 0 {
                lsum / lcount as f64
            } else {
                0.0
            },
        }
    }
}
