//! Watchdog and job-isolation behaviour, pinned against the golden cases.
//!
//! Three contracts:
//!
//! * **Zero-cost when armed but not tripping** — a run with a generous
//!   watchdog reproduces every pristine golden fixture bit-for-bit, and a
//!   degraded (faulted) run reproduces its unarmed twin exactly.
//! * **Livelock detection** — a provably livelocked network (every global
//!   cable dead, all-cross-group traffic, so nothing is ever delivered)
//!   trips the forward-progress check with a well-formed [`StallReport`].
//! * **Isolation** — through the [`ExperimentRunner`], a panicking series
//!   and a cycle-ceiling budget become typed [`JobOutcome`]s and skipped
//!   aggregates, not aborted sweeps.

include!("common/cases.rs");

use tugal_netsim::runner::{ExperimentRunner, JobBudget, JobOutcome, SeriesSpec};
use tugal_netsim::{FaultSchedule, NoopObserver, StallKind, WatchdogConfig};
use tugal_topology::FaultSet;

/// Like `simulator`, with a watchdog armed.
fn watchdog_sim(
    routing: RoutingAlgorithm,
    adversarial: bool,
    seed: u64,
    wd: WatchdogConfig,
) -> Simulator {
    let topo = golden_topo();
    let provider = Arc::new(TableProvider::all_paths(topo.clone()));
    let pattern: Arc<dyn TrafficPattern> = if adversarial {
        Arc::new(Shift::new(&topo, 1, 0))
    } else {
        Arc::new(Uniform::new(&topo))
    };
    let mut cfg = Config::quick().for_routing(routing);
    cfg.seed = seed;
    cfg.watchdog = Some(wd);
    Simulator::new(topo, provider, pattern, routing, cfg)
}

/// Checks that never trip on a healthy run, but do run every cycle.
fn generous() -> WatchdogConfig {
    WatchdogConfig {
        conservation_every: 512,
        stall_cycles: 1_000_000,
        max_cycles: 0,
        wall_limit_ms: 0,
        flight_recorder: 0,
    }
}

#[test]
fn armed_watchdog_reproduces_pristine_goldens() {
    for (routing, adversarial, rate, expected) in CASES {
        let sim = watchdog_sim(routing, adversarial, 7, generous());
        let (result, stall) = sim.run_reported(rate, &mut SimWorkspace::new(), &mut NoopObserver);
        assert!(
            stall.is_none(),
            "{routing:?} adversarial={adversarial}: generous watchdog tripped: {stall:?}"
        );
        assert_eq!(
            format!("{result:?}"),
            expected,
            "{routing:?} adversarial={adversarial}: armed watchdog changed the result"
        );
    }
}

#[test]
fn armed_watchdog_reproduces_faulted_run() {
    let schedule =
        || FaultSchedule::immediate(FaultSet::sample_global_links(&golden_topo(), 0.05, 0xBEEF));
    let plain = simulator(RoutingAlgorithm::UgalL, true, 7)
        .with_faults(schedule())
        .run(0.15);
    let (armed, stall) = watchdog_sim(RoutingAlgorithm::UgalL, true, 7, generous())
        .with_faults(schedule())
        .run_reported(0.15, &mut SimWorkspace::new(), &mut NoopObserver);
    assert!(
        stall.is_none(),
        "watchdog tripped on a degraded run: {stall:?}"
    );
    assert_eq!(
        format!("{armed:?}"),
        format!("{plain:?}"),
        "armed watchdog changed a degraded run"
    );
}

#[test]
fn livelock_trips_forward_progress_check() {
    // Every global cable dead from cycle 0 and all traffic cross-group:
    // nothing can ever be delivered, but injection keeps queueing packets.
    let dead = FaultSet::sample_global_links(&golden_topo(), 1.0, 1);
    assert!(!dead.global_links().is_empty());
    let wd = WatchdogConfig {
        conservation_every: 0,
        stall_cycles: 600,
        max_cycles: 0,
        wall_limit_ms: 0,
        flight_recorder: 0,
    };
    let (result, stall) = watchdog_sim(RoutingAlgorithm::UgalL, true, 7, wd)
        .with_faults(FaultSchedule::immediate(dead))
        .run_reported(0.05, &mut SimWorkspace::new(), &mut NoopObserver);
    let stall = stall.expect("severed network must trip the watchdog");
    assert_eq!(stall.kind, StallKind::Livelock);
    assert!(
        stall.cycle - stall.last_delivery > 600,
        "trip at {} only {} cycles after the last delivery",
        stall.cycle,
        stall.cycle - stall.last_delivery
    );
    // The report must be internally consistent: a balanced ledger with
    // packets in flight, occupancy sorted densest-first, and the oldest
    // packet's age matching its birth cycle.
    assert!(stall.ledger.balanced(), "ledger: {:?}", stall.ledger);
    assert!(stall.ledger.in_flight > 0, "ledger: {:?}", stall.ledger);
    assert!(stall
        .occupancy
        .windows(2)
        .all(|w| w[0].occupancy >= w[1].occupancy));
    if let Some(oldest) = &stall.oldest {
        assert_eq!(oldest.birth + oldest.age, stall.cycle);
    }
    assert!(result.saturated, "a tripped run must be marked saturated");
}

#[test]
fn cycle_ceiling_trips_at_the_configured_cycle() {
    let wd = WatchdogConfig {
        conservation_every: 0,
        stall_cycles: 0,
        max_cycles: 1_000,
        wall_limit_ms: 0,
        flight_recorder: 0,
    };
    let (_, stall) = watchdog_sim(RoutingAlgorithm::UgalL, false, 7, wd).run_reported(
        0.2,
        &mut SimWorkspace::new(),
        &mut NoopObserver,
    );
    let stall = stall.expect("cycle ceiling must trip");
    assert_eq!(stall.kind, StallKind::CycleCeiling);
    assert!(stall.cycle < 1_000, "tripped at {}", stall.cycle);
}

/// A runner over the golden topology with one healthy UGAL-L series.
fn runner_with(cfg: Config) -> ExperimentRunner {
    let topo = golden_topo();
    let provider = Arc::new(TableProvider::all_paths(topo.clone()));
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&topo));
    ExperimentRunner::new(topo).series(SeriesSpec {
        label: "UGAL-L".into(),
        provider,
        pattern,
        routing: RoutingAlgorithm::UgalL,
        cfg,
        faults: None,
    })
}

#[test]
fn panicking_series_is_isolated_and_skipped() {
    // One VC cannot host UGAL-L's escape scheme: `Simulator::new` panics,
    // deterministically, inside the job's `catch_unwind`.
    let mut cfg = Config::quick();
    cfg.num_vcs = 1;
    let (curves, summary, records) = runner_with(cfg)
        .run_recorded(&[0.1, 0.2], &[1, 2], |_| NoopObserver)
        .expect("config passes structural validation");
    assert_eq!(summary.jobs, 4);
    assert_eq!(summary.failed, 4);
    assert!(summary.oneline().contains("4 FAILED"));
    for rec in &records {
        match &rec.outcome {
            JobOutcome::Panicked(msg) => {
                assert!(msg.contains("VC"), "unexpected panic message: {msg}")
            }
            other => panic!("expected a panic outcome, got {}", other.name()),
        }
    }
    // Every point aggregated zero survivors: the no-data sentinel.
    for point in &curves[0].points {
        assert!(point.point.result.saturated);
        assert_eq!(point.point.result.delivered, 0);
        assert!(point.point.result.avg_latency.is_infinite());
    }
}

#[test]
fn cycle_budget_becomes_watchdog_tripped_outcome() {
    let (_, summary, records) = runner_with(Config::quick().for_routing(RoutingAlgorithm::UgalL))
        .with_budget(JobBudget {
            max_cycles: 500,
            wall_limit_ms: 0,
        })
        .run_recorded(&[0.1], &[1], |_| NoopObserver)
        .expect("valid experiment");
    assert_eq!(summary.failed, 1);
    match &records[0].outcome {
        JobOutcome::WatchdogTripped(stall) => {
            assert_eq!(stall.kind, StallKind::CycleCeiling);
            assert!(stall.cycle < 500);
        }
        other => panic!("expected a watchdog trip, got {}", other.name()),
    }
}

#[test]
fn budget_free_runner_matches_direct_simulation() {
    // The runner path (isolation, digests, record-keeping) must not
    // perturb results: one job through `run_recorded` equals the same
    // (rate, seed) simulated directly.
    let direct = simulator(RoutingAlgorithm::UgalL, false, 3).run(0.2);
    let (curves, _, records) = runner_with(Config::quick().for_routing(RoutingAlgorithm::UgalL))
        .run_recorded(&[0.2], &[3], |_| NoopObserver)
        .expect("valid experiment");
    assert_eq!(records[0].outcome, JobOutcome::Ok(direct.clone()));
    assert_eq!(
        format!("{:?}", curves[0].points[0].point.result),
        format!("{direct:?}")
    );
}
