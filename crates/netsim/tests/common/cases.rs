// Shared golden-fixture scaffolding, spliced into the golden test crates
// with `include!` (subdirectories of `tests/` are not compiled as test
// crates, so this file exists only through its includers — which also
// means no `//!` inner doc comments here).
//
// The fixtures pin exact `SimResult` values captured from the
// pre-refactor engine on `dfly(2,4,2,5)`, seed 7, `Config::quick()`.
// Comparison goes through `Debug` formatting, which for `f64` is
// round-trip exact, so a string match is a bit-for-bit match.

use std::sync::Arc;
use tugal_netsim::{Config, RoutingAlgorithm, SimResult, SimWorkspace, Simulator};
use tugal_routing::TableProvider;
use tugal_topology::{Dragonfly, DragonflyParams};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

fn golden_topo() -> Arc<Dragonfly> {
    Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap())
}

// Not every includer uses every helper below (golden.rs runs pristine
// only; shard_parity.rs re-runs everything at several shard counts).
#[allow(dead_code)]
fn simulator_sharded(
    routing: RoutingAlgorithm,
    adversarial: bool,
    seed: u64,
    shards: u32,
) -> Simulator {
    let topo = golden_topo();
    let provider = Arc::new(TableProvider::all_paths(topo.clone()));
    let pattern: Arc<dyn TrafficPattern> = if adversarial {
        Arc::new(Shift::new(&topo, 1, 0))
    } else {
        Arc::new(Uniform::new(&topo))
    };
    let mut cfg = Config::quick().for_routing(routing);
    cfg.seed = seed;
    cfg.shards = shards;
    Simulator::new(topo, provider, pattern, routing, cfg)
}

fn simulator(routing: RoutingAlgorithm, adversarial: bool, seed: u64) -> Simulator {
    simulator_sharded(routing, adversarial, seed, 1)
}

#[allow(dead_code)]
fn run(routing: RoutingAlgorithm, adversarial: bool, seed: u64, rate: f64) -> SimResult {
    simulator(routing, adversarial, seed).run(rate)
}

// Degraded-run fixtures, shared by golden_faults.rs and shard_parity.rs.
// Full paths instead of `use` lines so includers that never touch faults
// pick up no unused imports.

/// Seeded 5% global-cable failure applied at cycle 0.
#[allow(dead_code)]
fn links5() -> tugal_netsim::FaultSchedule {
    tugal_netsim::FaultSchedule::immediate(tugal_topology::FaultSet::sample_global_links(
        &golden_topo(),
        0.05,
        0xBEEF,
    ))
}

/// Switch 3 dies at cycle 2500 (inside the measurement window),
/// exercising the buffered-flit drain and the en-route reroute path.
#[allow(dead_code)]
fn switch3() -> tugal_netsim::FaultSchedule {
    let mut fs = tugal_topology::FaultSet::empty();
    fs.fail_switch(tugal_topology::SwitchId(3));
    tugal_netsim::FaultSchedule::at(2500, fs)
}

#[allow(dead_code)]
fn schedule_of(name: &str) -> tugal_netsim::FaultSchedule {
    match name {
        "links5" => links5(),
        "switch3" => switch3(),
        other => panic!("unknown scenario {other}"),
    }
}

/// (routing, adversarial pattern, rate, expected result) — uniform at a
/// moderate load and shift(1,0) at a low one, seed 7, dfly(2,4,2,5).
const CASES: [(RoutingAlgorithm, bool, f64, &str); 10] = [
    (
        RoutingAlgorithm::Min,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 28.662590768717134, throughput: 0.299525, avg_hops: 2.2080377264001334, delivered: 23962, injected: 23958, saturated: false, deadlock_suspected: false, vlb_fraction: 0.0, latency_p50: 22.627416997969522, latency_p99: 45.254833995939045, max_channel_util: 0.2941764558860285, mean_global_util: 0.24577605598600347, mean_local_util: 0.2776014329750896 }",
    ),
    (
        RoutingAlgorithm::Min,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 32.75358045492839, throughput: 0.148375, avg_hops: 2.5016006739679866, delivered: 11870, injected: 11890, saturated: false, deadlock_suspected: false, vlb_fraction: 0.0, latency_p50: 45.254833995939045, latency_p99: 45.254833995939045, max_channel_util: 0.60959760059985, mean_global_util: 0.14910022494376401, mean_local_util: 0.14819211863700746 }",
    ),
    (
        RoutingAlgorithm::Vlb,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 65.00464066223505, throughput: 0.2989875, avg_hops: 4.995108491157657, delivered: 23919, injected: 23910, saturated: false, deadlock_suspected: false, vlb_fraction: 0.9742130498228059, latency_p50: 90.50966799187809, latency_p99: 90.50966799187809, max_channel_util: 0.6378405398650338, mean_global_util: 0.5804236440889776, mean_local_util: 0.6043822377738899 }",
    ),
    (
        RoutingAlgorithm::Vlb,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 64.22814391392065, throughput: 0.1487, avg_hops: 5.10869199731002, delivered: 11896, injected: 11890, saturated: false, deadlock_suspected: false, vlb_fraction: 1.0, latency_p50: 90.50966799187809, latency_p99: 90.50966799187809, max_channel_util: 0.42914271432141965, mean_global_util: 0.296932016995751, mean_local_util: 0.30784803799050237 }",
    ),
    (
        RoutingAlgorithm::UgalL,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 30.341459342127234, throughput: 0.29945, avg_hops: 2.3411253965603604, delivered: 23956, injected: 23912, saturated: false, deadlock_suspected: false, vlb_fraction: 0.0693631957212101, latency_p50: 22.627416997969522, latency_p99: 90.50966799187809, max_channel_util: 0.30192451887028243, mean_global_util: 0.265602349412647, mean_local_util: 0.2908564525535284 }",
    ),
    (
        RoutingAlgorithm::UgalL,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 41.13402835696414, throughput: 0.149875, avg_hops: 3.2184320266889075, delivered: 11990, injected: 11966, saturated: false, deadlock_suspected: false, vlb_fraction: 0.3064603578429328, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.45188702824293925, mean_global_util: 0.1950137465633591, mean_local_util: 0.1906773306673331 }",
    ),
    (
        RoutingAlgorithm::UgalG,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 32.047443882456214, throughput: 0.2990375, avg_hops: 2.475609246331982, delivered: 23923, injected: 23897, saturated: false, deadlock_suspected: false, vlb_fraction: 0.12618480938661322, latency_p50: 22.627416997969522, latency_p99: 90.50966799187809, max_channel_util: 0.3174206448387903, mean_global_util: 0.2835978505373657, mean_local_util: 0.306148462884279 }",
    ),
    (
        RoutingAlgorithm::UgalG,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 41.5672587774164, throughput: 0.1498875, avg_hops: 3.24810274372446, delivered: 11991, injected: 11966, saturated: false, deadlock_suspected: false, vlb_fraction: 0.3269511533808868, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.4121469632591852, mean_global_util: 0.19804423894026488, mean_local_util: 0.19114388069649252 }",
    ),
    (
        RoutingAlgorithm::Par,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 31.516635859519408, throughput: 0.29755, avg_hops: 2.437909595026046, delivered: 23804, injected: 23833, saturated: false, deadlock_suspected: false, vlb_fraction: 0.10010033025375194, latency_p50: 22.627416997969522, latency_p99: 90.50966799187809, max_channel_util: 0.32066983254186454, mean_global_util: 0.2745626093476631, mean_local_util: 0.3012330250770639 }",
    ),
    (
        RoutingAlgorithm::Par,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 45.5854533322212, throughput: 0.1498625, avg_hops: 3.598465259821503, delivered: 11989, injected: 11993, saturated: false, deadlock_suspected: false, vlb_fraction: 0.43445787176905004, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.3549112721819545, mean_global_util: 0.2125968507873032, mean_local_util: 0.21445888527868043 }",
    ),
];

/// The golden topology re-wired as a zoo shape: same `dfly(2,4,2,5)`
/// parameters under a non-default arrangement and/or `global_lag`.
#[allow(dead_code)]
fn zoo_topo(spec: &str, lag: u32) -> Arc<Dragonfly> {
    let arr = tugal_topology::ArrangementSpec::parse(spec)
        .unwrap_or_else(|| panic!("unknown arrangement {spec:?}"));
    Arc::new(
        Dragonfly::with_shape(DragonflyParams::new(2, 4, 2, 5), arr.build().as_ref(), lag)
            .unwrap(),
    )
}

#[allow(dead_code)]
fn simulator_zoo(
    spec: &str,
    lag: u32,
    routing: RoutingAlgorithm,
    adversarial: bool,
    seed: u64,
    shards: u32,
) -> Simulator {
    let topo = zoo_topo(spec, lag);
    let provider = Arc::new(TableProvider::all_paths(topo.clone()));
    let pattern: Arc<dyn TrafficPattern> = if adversarial {
        Arc::new(Shift::new(&topo, 1, 0))
    } else {
        Arc::new(Uniform::new(&topo))
    };
    let mut cfg = Config::quick().for_routing(routing);
    cfg.seed = seed;
    cfg.shards = shards;
    Simulator::new(topo, provider, pattern, routing, cfg)
}

/// (arrangement, lag, routing, adversarial, rate, expected) — topology-zoo
/// fixtures on `dfly(2,4,2,5)`, seed 7: palmtree at lag 1, and doubled
/// global cables under the absolute and seeded-random arrangements.
#[allow(dead_code)]
const ZOO_CASES: [(&str, u32, RoutingAlgorithm, bool, f64, &str); 4] = [
    (
        "palmtree",
        1,
        RoutingAlgorithm::UgalL,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 30.432687489560713, throughput: 0.29935, avg_hops: 2.3486303657925505, delivered: 23948, injected: 23919, saturated: false, deadlock_suspected: false, vlb_fraction: 0.07266804485372423, latency_p50: 22.627416997969522, latency_p99: 90.50966799187809, max_channel_util: 0.3026743314171457, mean_global_util: 0.2667333166708322, mean_local_util: 0.29141881196367575 }",
    ),
    (
        "palmtree",
        1,
        RoutingAlgorithm::UgalL,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 42.88713845127948, throughput: 0.1499625, avg_hops: 3.368008668833875, delivered: 11997, injected: 11962, saturated: false, deadlock_suspected: false, vlb_fraction: 0.3549288723874682, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.3911522119470133, mean_global_util: 0.20215571107223199, mean_local_util: 0.19983337498958592 }",
    ),
    (
        "absolute",
        2,
        RoutingAlgorithm::UgalL,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 30.341459342127234, throughput: 0.29945, avg_hops: 2.3411253965603604, delivered: 23956, injected: 23912, saturated: false, deadlock_suspected: false, vlb_fraction: 0.0693631957212101, latency_p50: 22.627416997969522, latency_p99: 90.50966799187809, max_channel_util: 0.30192451887028243, mean_global_util: 0.1328011747063235, mean_local_util: 0.2908564525535284 }",
    ),
    (
        "random:0x2007",
        2,
        RoutingAlgorithm::UgalL,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 42.95953950112622, throughput: 0.1498375, avg_hops: 3.3779928255610243, delivered: 11987, injected: 11970, saturated: false, deadlock_suspected: false, vlb_fraction: 0.3539468746090655, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.45388652836790805, mean_global_util: 0.10106535866033492, mean_local_util: 0.20108722819295174 }",
    ),
];

/// (scenario, adversarial, rate, expected) — UGAL-L, seed 7, degraded by
/// the fixture schedules above.
#[allow(dead_code)]
const FAULT_CASES: [(&str, bool, f64, &str); 4] = [
    (
        "links5",
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 31.35961474316211, throughput: 0.2998, avg_hops: 2.4299533022014677, delivered: 23984, injected: 23989, saturated: false, deadlock_suspected: false, vlb_fraction: 0.08224502162693023, latency_p50: 22.627416997969522, latency_p99: 90.50966799187809, max_channel_util: 0.37690577355661087, mean_global_util: 0.2703449137715571, mean_local_util: 0.30498208781138053 }",
    ),
    (
        "links5",
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 41.61608182271745, throughput: 0.150325, avg_hops: 3.2660069848661233, delivered: 12026, injected: 12020, saturated: false, deadlock_suspected: false, vlb_fraction: 0.32140473807140474, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.48187953011747064, mean_global_util: 0.19458885278680332, mean_local_util: 0.19600516537532278 }",
    ),
    (
        "switch3",
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 31.006408532759703, throughput: 0.278925, avg_hops: 2.3966568073854977, delivered: 22314, injected: 24067, saturated: false, deadlock_suspected: false, vlb_fraction: 0.0768, latency_p50: 22.627416997969522, latency_p99: 90.50966799187809, max_channel_util: 0.3444138965258685, mean_global_util: 0.25946638340414896, mean_local_util: 0.28453303340831465 }",
    ),
    (
        "switch3",
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 41.811411031867834, throughput: 0.1384625, avg_hops: 3.275886973007132, delivered: 11077, injected: 11973, saturated: false, deadlock_suspected: false, vlb_fraction: 0.3211219977455996, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.4588852786803299, mean_global_util: 0.1887403149212697, mean_local_util: 0.1852620178288761 }",
    ),
];
