// Shared golden-fixture scaffolding, spliced into the golden test crates
// with `include!` (subdirectories of `tests/` are not compiled as test
// crates, so this file exists only through its includers — which also
// means no `//!` inner doc comments here).
//
// The fixtures pin exact `SimResult` values captured from the
// pre-refactor engine on `dfly(2,4,2,5)`, seed 7, `Config::quick()`.
// Comparison goes through `Debug` formatting, which for `f64` is
// round-trip exact, so a string match is a bit-for-bit match.

use std::sync::Arc;
use tugal_netsim::{Config, RoutingAlgorithm, SimResult, SimWorkspace, Simulator};
use tugal_routing::TableProvider;
use tugal_topology::{Dragonfly, DragonflyParams};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

fn golden_topo() -> Arc<Dragonfly> {
    Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap())
}

fn simulator(routing: RoutingAlgorithm, adversarial: bool, seed: u64) -> Simulator {
    let topo = golden_topo();
    let provider = Arc::new(TableProvider::all_paths(topo.clone()));
    let pattern: Arc<dyn TrafficPattern> = if adversarial {
        Arc::new(Shift::new(&topo, 1, 0))
    } else {
        Arc::new(Uniform::new(&topo))
    };
    let mut cfg = Config::quick().for_routing(routing);
    cfg.seed = seed;
    Simulator::new(topo, provider, pattern, routing, cfg)
}

// Not every includer uses the plain-run helper (golden_faults.rs builds
// its simulators through `with_faults` instead).
#[allow(dead_code)]
fn run(routing: RoutingAlgorithm, adversarial: bool, seed: u64, rate: f64) -> SimResult {
    simulator(routing, adversarial, seed).run(rate)
}

/// (routing, adversarial pattern, rate, expected result) — uniform at a
/// moderate load and shift(1,0) at a low one, seed 7, dfly(2,4,2,5).
const CASES: [(RoutingAlgorithm, bool, f64, &str); 10] = [
    (
        RoutingAlgorithm::Min,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 28.676411794102947, throughput: 0.30015, avg_hops: 2.2086040313176745, delivered: 24012, injected: 24002, saturated: false, deadlock_suspected: false, vlb_fraction: 0.0, latency_p50: 22.627416997969522, latency_p99: 45.254833995939045, max_channel_util: 0.28817795551112224, mean_global_util: 0.24500124968757814, mean_local_util: 0.27568107973006745 }",
    ),
    (
        RoutingAlgorithm::Min,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 32.767312789927104, throughput: 0.1509, avg_hops: 2.499502982107356, delivered: 12072, injected: 12076, saturated: false, deadlock_suspected: false, vlb_fraction: 0.0, latency_p50: 45.254833995939045, latency_p99: 45.254833995939045, max_channel_util: 0.6133466633341664, mean_global_util: 0.14937515621094727, mean_local_util: 0.14935016245938515 }",
    ),
    (
        RoutingAlgorithm::Vlb,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 64.88711417192167, throughput: 0.3013, avg_hops: 4.984981745768337, delivered: 24104, injected: 24030, saturated: false, deadlock_suspected: false, vlb_fraction: 0.9745338885517588, latency_p50: 90.50966799187809, latency_p99: 90.50966799187809, max_channel_util: 0.6345913521619595, mean_global_util: 0.5787303174206448, mean_local_util: 0.6012871782054486 }",
    ),
    (
        RoutingAlgorithm::Vlb,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 64.32541783882178, throughput: 0.151075, avg_hops: 5.111864967731259, delivered: 12086, injected: 12076, saturated: false, deadlock_suspected: false, vlb_fraction: 1.0, latency_p50: 90.50966799187809, latency_p99: 90.50966799187809, max_channel_util: 0.435391152211947, mean_global_util: 0.2976193451637091, mean_local_util: 0.30912688494543017 }",
    ),
    (
        RoutingAlgorithm::UgalL,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 30.588378231178517, throughput: 0.2983625, avg_hops: 2.3604256567095394, delivered: 23869, injected: 23942, saturated: false, deadlock_suspected: false, vlb_fraction: 0.07183566105091752, latency_p50: 22.627416997969522, latency_p99: 90.50966799187809, max_channel_util: 0.30417395651087226, mean_global_util: 0.26629592601849544, mean_local_util: 0.2919853369990835 }",
    ),
    (
        RoutingAlgorithm::UgalL,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 41.24850547990701, throughput: 0.15055, avg_hops: 3.2298239787446033, delivered: 12044, injected: 12057, saturated: false, deadlock_suspected: false, vlb_fraction: 0.3050606440819741, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.45563609097725566, mean_global_util: 0.19427643089227692, mean_local_util: 0.1905481962842623 }",
    ),
    (
        RoutingAlgorithm::UgalG,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 32.343248663101605, throughput: 0.2992, avg_hops: 2.5023813502673797, delivered: 23936, injected: 23991, saturated: false, deadlock_suspected: false, vlb_fraction: 0.12870316281398647, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.32291927018245437, mean_global_util: 0.28435391152211953, mean_local_util: 0.30748979421811207 }",
    ),
    (
        RoutingAlgorithm::UgalG,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 42.01196510178646, throughput: 0.1504375, avg_hops: 3.2938097216452014, delivered: 12035, injected: 12057, saturated: false, deadlock_suspected: false, vlb_fraction: 0.3342116269343371, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.44363909022744313, mean_global_util: 0.1985691077230692, mean_local_util: 0.19292260268266254 }",
    ),
    (
        RoutingAlgorithm::Par,
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 31.50336046754331, throughput: 0.2994375, avg_hops: 2.435024003339595, delivered: 23955, injected: 23946, saturated: false, deadlock_suspected: false, vlb_fraction: 0.09975587873223861, latency_p50: 22.627416997969522, latency_p99: 90.50966799187809, max_channel_util: 0.3164208947763059, mean_global_util: 0.2745376155961009, mean_local_util: 0.3020911438806966 }",
    ),
    (
        RoutingAlgorithm::Par,
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 45.42481484563535, throughput: 0.1502125, avg_hops: 3.5840892069568113, delivered: 12017, injected: 12004, saturated: false, deadlock_suspected: false, vlb_fraction: 0.4357763663713856, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.35616095976005996, mean_global_util: 0.2137903024243939, mean_local_util: 0.21440056652503536 }",
    ),
];
