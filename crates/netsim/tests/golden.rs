//! Golden determinism fixtures: exact `SimResult` values captured from the
//! pre-refactor engine (at the commit that vendored the dependency shims).
//! The engine-layering refactor must reproduce these bit-for-bit — any
//! diff here means the RNG call order, iteration order, or arithmetic
//! changed.
//!
//! The cases themselves live in `common/cases.rs`, shared with the
//! degraded-topology fixtures of `golden_faults.rs`.

include!("common/cases.rs");

#[test]
fn golden_results_bit_for_bit() {
    for (routing, adversarial, rate, expected) in CASES {
        let r = run(routing, adversarial, 7, rate);
        assert_eq!(
            format!("{r:?}"),
            expected,
            "golden mismatch for ({routing:?}, adversarial={adversarial}, rate={rate})"
        );
    }
}

#[test]
fn zoo_golden_results_bit_for_bit() {
    for (spec, lag, routing, adversarial, rate, expected) in ZOO_CASES {
        let r = simulator_zoo(spec, lag, routing, adversarial, 7, 1).run(rate);
        assert_eq!(
            format!("{r:?}"),
            expected,
            "zoo golden mismatch for ({spec}, lag{lag}, {routing:?}, adversarial={adversarial}, rate={rate})"
        );
    }
    // The shapes genuinely differ from the absolute/lag-1 baseline: the
    // palmtree fixture must not just replay the plain UGAL-L case.
    assert_ne!(ZOO_CASES[0].5, CASES[4].3);
}

#[test]
fn golden_results_with_an_explicit_noop_observer() {
    // The observer seam must be invisible: the monomorphized NoopObserver
    // engine reproduces the pre-refactor fixtures bit-for-bit.
    use tugal_netsim::NoopObserver;
    let mut ws = SimWorkspace::new();
    for (routing, adversarial, rate, expected) in CASES {
        let r = simulator(routing, adversarial, 7).run_observed(rate, &mut ws, &mut NoopObserver);
        assert_eq!(
            format!("{r:?}"),
            expected,
            "noop-observer golden mismatch for ({routing:?}, adversarial={adversarial}, rate={rate})"
        );
    }
}

#[test]
fn golden_results_through_a_reused_workspace() {
    // All ten cases back to back through ONE workspace: reuse (including
    // VC-count changes between PAR and the rest) must reproduce the same
    // pre-refactor fixtures bit-for-bit.
    let mut ws = SimWorkspace::new();
    for (routing, adversarial, rate, expected) in CASES {
        let r = simulator(routing, adversarial, 7).run_with(rate, &mut ws);
        assert_eq!(
            format!("{r:?}"),
            expected,
            "reused-workspace golden mismatch for ({routing:?}, adversarial={adversarial}, rate={rate})"
        );
    }
}
