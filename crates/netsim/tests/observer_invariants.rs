//! Event invariants of the [`SimObserver`] seam, pinned independently of
//! any concrete metrics consumer:
//!
//! * packet conservation — every `on_inject` is matched by exactly one of
//!   `on_drop`, `on_deliver`, or the `in_flight` population reported by
//!   `on_run_end`;
//! * `on_route` fires at least once per routed packet, and exactly twice
//!   (second call flagged `reroute`) when PAR revises a MIN decision;
//! * the observer-visible decision stream reproduces the engine's
//!   `vlb_fraction` exactly;
//! * `on_link_traverse` covers switch-to-switch channels only;
//! * under mid-run failures, conservation still balances at drain, and
//!   fault reroutes / fault drops appear only at or after the failure
//!   cycle — never in a pristine run.

use std::sync::Arc;
use tugal_netsim::{
    Config, FaultSchedule, RoutingAlgorithm, SimObserver, SimResult, SimWorkspace, Simulator,
};
use tugal_routing::TableProvider;
use tugal_topology::{Dragonfly, DragonflyParams, FaultSet, NodeId, SwitchId};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

fn topo() -> Arc<Dragonfly> {
    Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap())
}

fn simulator(t: &Arc<Dragonfly>, routing: RoutingAlgorithm, adversarial: bool) -> Simulator {
    let provider = Arc::new(TableProvider::all_paths(t.clone()));
    let pattern: Arc<dyn TrafficPattern> = if adversarial {
        Arc::new(Shift::new(t, 1, 0))
    } else {
        Arc::new(Uniform::new(t))
    };
    let mut cfg = Config::quick().for_routing(routing);
    cfg.seed = 23;
    Simulator::new(t.clone(), provider, pattern, routing, cfg)
}

/// Records the raw event stream.
#[derive(Default)]
struct Ledger {
    injected: u64,
    dropped: u64,
    delivered: u64,
    routes: u64,
    reroutes: u64,
    vlb_first: u64,
    traversals: u64,
    max_chan: u32,
    run_ended: bool,
    in_flight_at_end: u64,
    end_cycle: u64,
    fault_reroutes: u64,
    first_fault_reroute: Option<u64>,
    first_drop: Option<u64>,
}

impl SimObserver for Ledger {
    fn on_inject(&mut self, _now: u64, _src: NodeId, _dst: NodeId) {
        self.injected += 1;
    }
    fn on_drop(&mut self, now: u64, _src: NodeId, _dst: NodeId) {
        self.dropped += 1;
        self.first_drop.get_or_insert(now);
    }
    fn on_fault_reroute(&mut self, now: u64, _at: SwitchId) {
        self.fault_reroutes += 1;
        self.first_fault_reroute.get_or_insert(now);
    }
    fn on_route(
        &mut self,
        _now: u64,
        _src: SwitchId,
        _dst: SwitchId,
        used_vlb: bool,
        reroute: bool,
    ) {
        if reroute {
            assert!(used_vlb, "a PAR revision always switches to VLB");
            self.reroutes += 1;
        } else {
            self.routes += 1;
            if used_vlb {
                self.vlb_first += 1;
            }
        }
    }
    fn on_link_traverse(&mut self, _now: u64, chan: u32, _global: bool) {
        self.traversals += 1;
        self.max_chan = self.max_chan.max(chan);
    }
    fn on_deliver(&mut self, _now: u64, _latency: u64, _hops: u8) {
        self.delivered += 1;
    }
    fn on_run_end(&mut self, now: u64, in_flight: u64) {
        self.run_ended = true;
        self.in_flight_at_end = in_flight;
        self.end_cycle = now;
    }
}

fn run_ledger(routing: RoutingAlgorithm, adversarial: bool, rate: f64) -> (SimResult, Ledger) {
    let t = topo();
    let sim = simulator(&t, routing, adversarial);
    let mut ledger = Ledger::default();
    let result = sim.run_observed(rate, &mut SimWorkspace::new(), &mut ledger);
    (result, ledger)
}

#[test]
fn injected_equals_delivered_plus_dropped_plus_in_flight() {
    for routing in [
        RoutingAlgorithm::Min,
        RoutingAlgorithm::Vlb,
        RoutingAlgorithm::UgalL,
        RoutingAlgorithm::UgalG,
        RoutingAlgorithm::Par,
    ] {
        let (_, l) = run_ledger(routing, false, 0.25);
        assert!(l.run_ended, "{routing:?}: on_run_end must fire");
        assert_eq!(
            l.injected,
            l.delivered + l.dropped + l.in_flight_at_end,
            "{routing:?}: packet conservation at drain"
        );
        assert_eq!(
            l.fault_reroutes, 0,
            "{routing:?}: a pristine run never fault-reroutes"
        );
    }
}

#[test]
fn conservation_holds_in_deep_saturation() {
    // Past saturation the source queues overflow, so drops are non-zero
    // and many packets end the run in flight — conservation must still
    // balance through the on_drop and on_run_end terms.
    let (result, l) = run_ledger(RoutingAlgorithm::Min, true, 0.9);
    assert!(result.saturated);
    assert!(
        l.in_flight_at_end > 0,
        "a saturated run ends with flits inside"
    );
    assert_eq!(l.injected, l.delivered + l.dropped + l.in_flight_at_end);
}

#[test]
fn route_fires_per_routed_packet_and_again_on_par_reroute() {
    // Every packet that left its source queue was routed exactly once
    // (reroutes are flagged separately), so routes ≥ deliveries; and under
    // non-progressive routings the reroute stream is empty.
    for routing in [
        RoutingAlgorithm::Min,
        RoutingAlgorithm::UgalL,
        RoutingAlgorithm::UgalG,
    ] {
        let (_, l) = run_ledger(routing, true, 0.15);
        assert!(l.routes >= l.delivered, "{routing:?}");
        assert_eq!(l.reroutes, 0, "{routing:?} must never reroute");
    }
    let (_, l) = run_ledger(RoutingAlgorithm::Par, true, 0.15);
    assert!(l.routes >= l.delivered);
    assert!(l.reroutes > 0, "PAR on shift traffic must revise decisions");
    assert!(
        l.reroutes <= l.routes,
        "at most one revision per routed packet"
    );
}

#[test]
fn decision_stream_reproduces_engine_vlb_fraction() {
    for (routing, adversarial) in [
        (RoutingAlgorithm::UgalL, true),
        (RoutingAlgorithm::UgalG, true),
        (RoutingAlgorithm::Par, true),
        (RoutingAlgorithm::Vlb, false),
    ] {
        let (result, l) = run_ledger(routing, adversarial, 0.15);
        let observed = if l.routes == 0 {
            0.0
        } else {
            (l.vlb_first + l.reroutes) as f64 / l.routes as f64
        };
        assert_eq!(
            observed, result.vlb_fraction,
            "{routing:?}: observer and engine count the same decisions"
        );
    }
}

#[test]
fn link_traversals_stay_on_network_channels() {
    let t = topo();
    let sim = simulator(&t, RoutingAlgorithm::UgalL, false);
    let mut l = Ledger::default();
    let result = sim.run_observed(0.25, &mut SimWorkspace::new(), &mut l);
    assert!(l.traversals > 0);
    assert!(
        (l.max_chan as usize) < t.num_network_channels(),
        "terminal channels must not fire on_link_traverse"
    );
    // Each delivered packet traverses ≥1 network channel unless source and
    // destination share a switch; traversals also cover undelivered flits,
    // so the count dominates deliveries minus same-switch pairs.
    assert!(l.traversals >= result.delivered / 2);
}

/// The failure cycle for the mid-run scenarios: inside the measurement
/// window of `Config::quick()` (warmup ends at 2000, run ends at 4000).
const FAIL_AT: u64 = 2500;

/// A fault set that reliably bites on dfly(2,4,2,5): a fifth of the
/// global cables plus one whole switch.
fn midrun_schedule(t: &Dragonfly) -> FaultSchedule {
    let mut faults = FaultSet::sample_global_links(t, 0.20, 0xFA17);
    faults.fail_switch(SwitchId(6));
    FaultSchedule::at(FAIL_AT, faults)
}

fn run_ledger_faulted(routing: RoutingAlgorithm, rate: f64) -> (SimResult, Ledger) {
    let t = topo();
    let schedule = midrun_schedule(&t);
    let sim = simulator(&t, routing, false).with_faults(schedule);
    let mut ledger = Ledger::default();
    let result = sim.run_observed(rate, &mut SimWorkspace::new(), &mut ledger);
    (result, ledger)
}

#[test]
fn conservation_holds_under_midrun_failures() {
    // Killing a switch mid-run drains its buffered flits through on_drop
    // and severed cables force en-route reroutes — the inject / deliver /
    // drop / in-flight ledger must still balance exactly at drain.
    for routing in [
        RoutingAlgorithm::Min,
        RoutingAlgorithm::UgalL,
        RoutingAlgorithm::Par,
    ] {
        let (result, l) = run_ledger_faulted(routing, 0.25);
        assert!(l.run_ended, "{routing:?}");
        assert_eq!(
            l.injected,
            l.delivered + l.dropped + l.in_flight_at_end,
            "{routing:?}: conservation must survive mid-run failures"
        );
        assert!(
            l.dropped > 0,
            "{routing:?}: the dead switch must drop flits"
        );
        assert!(result.delivered > 0, "{routing:?}: traffic keeps flowing");
    }
}

#[test]
fn fault_events_fire_only_at_or_after_the_failure_cycle() {
    let (_, l) = run_ledger_faulted(RoutingAlgorithm::UgalL, 0.25);
    assert!(
        l.fault_reroutes > 0,
        "20% dead cables plus a dead switch must force reroutes"
    );
    assert!(
        l.first_fault_reroute.unwrap() >= FAIL_AT,
        "fault reroutes cannot precede the failure (first at {:?})",
        l.first_fault_reroute
    );
    // The run is far from saturation, so every drop is fault-induced and
    // must postdate the failure as well.
    assert!(
        l.first_drop.unwrap() >= FAIL_AT,
        "drops cannot precede the failure (first at {:?})",
        l.first_drop
    );
}
