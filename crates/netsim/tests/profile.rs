//! The self-profiling contract of the engine: a live [`EngineProf`] never
//! changes what the simulator computes (bit-for-bit against the committed
//! goldens and against sequential references at every shard count,
//! pristine, degraded and watchdog-tripped), its phase marks tile the
//! shard wall-clock, its boundary counters balance exactly against the
//! mailbox traffic, and the flight recorder captures the cycles leading
//! up to a watchdog trip.

include!("common/cases.rs");

use tugal_netsim::{EngineProf, NoopObserver, Phase, StallKind, WatchdogConfig};

/// An 8-group dragonfly (as in `shard_parity.rs`) so 2-, 4- and 8-way
/// splits all exist.
fn sim8p(
    routing: RoutingAlgorithm,
    adversarial: bool,
    shards: u32,
    watchdog: Option<WatchdogConfig>,
) -> Simulator {
    let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 7, 1, 8)).unwrap());
    let provider = Arc::new(TableProvider::all_paths(topo.clone()));
    let pattern: Arc<dyn TrafficPattern> = if adversarial {
        Arc::new(Shift::new(&topo, 1, 0))
    } else {
        Arc::new(Uniform::new(&topo))
    };
    let mut cfg = Config::quick().for_routing(routing);
    cfg.seed = 7;
    cfg.shards = shards;
    cfg.watchdog = watchdog;
    Simulator::new(topo, provider, pattern, routing, cfg)
}

fn run_with_prof(sim: &Simulator, rate: f64) -> (String, EngineProf) {
    let mut prof = EngineProf::new();
    let mut ws = SimWorkspace::new();
    let (r, stall) = sim.run_profiled(rate, &mut ws, &mut NoopObserver, &mut prof);
    (format!("{r:?}|{stall:?}"), prof)
}

fn run_without_prof(sim: &Simulator, rate: f64) -> String {
    let mut ws = SimWorkspace::new();
    let (r, stall) = sim.run_reported(rate, &mut ws, &mut NoopObserver);
    format!("{r:?}|{stall:?}")
}

#[test]
fn profiled_runs_reproduce_every_pristine_golden_case() {
    // The committed goldens pin the unprofiled engine; a live profiler
    // must reproduce them bit-for-bit at both valid shard counts.
    for shards in [1, 5] {
        for (routing, adversarial, rate, expected) in CASES {
            let sim = simulator_sharded(routing, adversarial, 7, shards);
            let mut prof = EngineProf::new();
            let mut ws = SimWorkspace::new();
            let (r, _) = sim.run_profiled(rate, &mut ws, &mut NoopObserver, &mut prof);
            assert_eq!(
                format!("{r:?}"),
                expected,
                "profiled {shards}-shard mismatch for \
                 ({routing:?}, adversarial={adversarial}, rate={rate})"
            );
        }
    }
}

#[test]
fn profiled_runs_match_unprofiled_at_every_shard_count() {
    for shards in [1, 2, 4, 8] {
        let plain = run_without_prof(&sim8p(RoutingAlgorithm::UgalL, false, shards, None), 0.3);
        let (profiled, _) =
            run_with_prof(&sim8p(RoutingAlgorithm::UgalL, false, shards, None), 0.3);
        assert_eq!(profiled, plain, "{shards}-shard profiled divergence");
    }
}

#[test]
fn profiled_runs_match_unprofiled_under_faults() {
    // A mid-run switch death plus global-link attrition, so profiled
    // drains and reroutes cross shard boundaries.
    let schedule = || {
        let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 7, 1, 8)).unwrap());
        let mut fs = tugal_topology::FaultSet::sample_global_links(&topo, 0.05, 0xBEEF);
        fs.fail_switch(tugal_topology::SwitchId(5));
        tugal_netsim::FaultSchedule::at(2500, fs)
    };
    for shards in [1, 4] {
        let plain = {
            let sim = sim8p(RoutingAlgorithm::UgalL, false, shards, None).with_faults(schedule());
            run_without_prof(&sim, 0.3)
        };
        let profiled = {
            let sim = sim8p(RoutingAlgorithm::UgalL, false, shards, None).with_faults(schedule());
            run_with_prof(&sim, 0.3).0
        };
        assert_eq!(
            profiled, plain,
            "{shards}-shard degraded profiled divergence"
        );
    }
}

#[test]
fn profiled_runs_match_unprofiled_on_watchdog_trips() {
    // The merged StallReport — flight-recorder frames included — must come
    // out identical with and without a live profiler.
    let wd = WatchdogConfig {
        conservation_every: 256,
        stall_cycles: 0,
        max_cycles: 1500,
        wall_limit_ms: 0,
        flight_recorder: 16,
    };
    for shards in [1, 4] {
        let plain = run_without_prof(
            &sim8p(RoutingAlgorithm::UgalL, false, shards, Some(wd)),
            0.3,
        );
        let (profiled, _) = run_with_prof(
            &sim8p(RoutingAlgorithm::UgalL, false, shards, Some(wd)),
            0.3,
        );
        assert!(plain.contains("CycleCeiling"), "fixture must trip: {plain}");
        assert_eq!(
            profiled, plain,
            "{shards}-shard tripped profiled divergence"
        );
    }
}

#[test]
fn phase_marks_tile_the_shard_wallclock() {
    for shards in [1, 4] {
        let (_, prof) = run_with_prof(&sim8p(RoutingAlgorithm::UgalL, false, shards, None), 0.3);
        let report = prof.report();
        assert_eq!(report.shards.len(), shards as usize);
        for s in &report.shards {
            assert!(s.cycles > 0, "shard {} profiled no cycles", s.shard);
            assert!(
                s.attributed_ns() <= s.wall_ns,
                "shard {} attributed {} ns of {} ns wall",
                s.shard,
                s.attributed_ns(),
                s.wall_ns
            );
        }
        // The marks bracket everything between shard_start and shard_end,
        // so attribution is near-total by construction.
        let frac = report.attributed_fraction();
        assert!(
            frac > 0.90,
            "{shards}-shard run attributed only {:.1}% of wall-clock",
            100.0 * frac
        );
        // Sequential runs never touch the partitioned-only phases.
        if shards == 1 {
            for p in [Phase::Drain, Phase::Flush, Phase::Publish, Phase::Barrier] {
                assert_eq!(report.phase_total(p), 0, "sequential run marked {p:?}");
            }
        } else {
            assert!(report.phase_total(Phase::Barrier) > 0);
        }
    }
}

#[test]
fn boundary_counters_balance_exactly() {
    // Every boundary flit/credit sent must be received (or still sitting
    // in an undrained mailbox when the run stops), shard counts summed.
    for shards in [2, 4, 8] {
        let (_, prof) = run_with_prof(&sim8p(RoutingAlgorithm::UgalG, false, shards, None), 0.3);
        let report = prof.report();
        let sent: u64 = report.shards.iter().map(|s| s.flits_sent).sum();
        let recv: u64 = report.shards.iter().map(|s| s.flits_recv).sum();
        assert!(sent > 0, "{shards}-shard run crossed no boundaries");
        assert_eq!(
            sent,
            recv + report.undrained_flits,
            "{shards}-shard flit imbalance"
        );
        let csent: u64 = report.shards.iter().map(|s| s.credits_sent).sum();
        let crecv: u64 = report.shards.iter().map(|s| s.credits_recv).sum();
        assert_eq!(
            csent,
            crecv + report.undrained_credits,
            "{shards}-shard credit imbalance"
        );
        assert!(report.shards.iter().map(|s| s.batches_flushed).sum::<u64>() > 0);
    }
    // A sequential run has no boundaries at all.
    let (_, prof) = run_with_prof(&sim8p(RoutingAlgorithm::UgalG, false, 1, None), 0.3);
    let report = prof.report();
    let s = &report.shards[0];
    assert_eq!(
        (
            s.flits_sent,
            s.flits_recv,
            s.credits_sent,
            s.credits_recv,
            s.batches_flushed
        ),
        (0, 0, 0, 0, 0)
    );
    assert_eq!(report.undrained_flits, 0);
}

#[test]
fn flight_recorder_captures_the_cycles_before_a_trip() {
    let wd = WatchdogConfig {
        conservation_every: 0,
        stall_cycles: 0,
        max_cycles: 1000,
        wall_limit_ms: 0,
        flight_recorder: 32,
    };
    for shards in [1, 4] {
        let sim = sim8p(RoutingAlgorithm::UgalL, false, shards, Some(wd));
        let mut ws = SimWorkspace::new();
        let (_, stall) = sim.run_reported(0.3, &mut ws, &mut NoopObserver);
        let stall = stall.expect("cycle ceiling must trip");
        assert_eq!(stall.kind, StallKind::CycleCeiling);
        assert!(!stall.recent.is_empty());
        assert!(stall.recent.len() <= 32 * shards as usize);
        // Chronological, ending at (or just before) the trip cycle.
        for w in stall.recent.windows(2) {
            assert!((w[0].cycle, w[0].shard) <= (w[1].cycle, w[1].shard));
        }
        let last = stall.recent.last().unwrap();
        assert!(last.cycle <= stall.cycle);
        assert!(stall.cycle - last.cycle <= 1, "recorder stopped early");
        // Each shard contributed its own ring.
        let shards_seen: std::collections::BTreeSet<u32> =
            stall.recent.iter().map(|f| f.shard).collect();
        assert_eq!(shards_seen.len(), shards as usize);
        // Frames carry the global ledger view: totals are flat across
        // shards within one cycle (globals are summed identically).
        let c0 = stall.recent[0].cycle;
        let first: Vec<_> = stall.recent.iter().filter(|f| f.cycle == c0).collect();
        for f in &first {
            assert_eq!(f.injected, first[0].injected);
            assert_eq!(f.delivered, first[0].delivered);
        }
    }
}
