//! Golden fixtures for degraded runs: two fixed fault scenarios on
//! dfly(2,4,2,5) pinning the full `SimResult` bit-for-bit, so any change
//! to the fault semantics (drain order, reroute policy, RNG draws) is a
//! deliberate fixture update, never an accident.
//!
//! Scenario `links5`: a seeded 5% global-cable failure applied at cycle 0.
//! Scenario `switch3`: switch 3 dies mid-run (cycle 2500, inside the
//! measurement window), exercising the buffered-flit drain and the
//! en-route reroute path.
//!
//! Also pins the zero-cost contract: attaching an *empty* schedule must
//! reproduce every pristine golden case bit-for-bit.

include!("common/cases.rs");

use tugal_netsim::FaultSchedule;
use tugal_topology::{FaultSet, SwitchId};

fn links5() -> FaultSchedule {
    FaultSchedule::immediate(FaultSet::sample_global_links(&golden_topo(), 0.05, 0xBEEF))
}

fn switch3() -> FaultSchedule {
    let mut fs = FaultSet::empty();
    fs.fail_switch(SwitchId(3));
    FaultSchedule::at(2500, fs)
}

fn run_faulted(adversarial: bool, rate: f64, schedule: FaultSchedule) -> SimResult {
    simulator(RoutingAlgorithm::UgalL, adversarial, 7)
        .with_faults(schedule)
        .run(rate)
}

/// (scenario, adversarial, rate, expected) — UGAL-L, seed 7.
const FAULT_CASES: [(&str, bool, f64, &str); 4] = [
    (
        "links5",
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 31.774841042264057, throughput: 0.3007875, avg_hops: 2.4619955948967296, delivered: 24063, injected: 24032, saturated: false, deadlock_suspected: false, vlb_fraction: 0.0822391010300697, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.374656335916021, mean_global_util: 0.27301299675081225, mean_local_util: 0.30814379738398734 }",
    ),
    (
        "links5",
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 41.66718995290424, throughput: 0.1512875, avg_hops: 3.269189457159382, delivered: 12103, injected: 12088, saturated: false, deadlock_suspected: false, vlb_fraction: 0.31879530117470634, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.4798800299925019, mean_global_util: 0.19455136215946012, mean_local_util: 0.19660918103807387 }",
    ),
    (
        "switch3",
        false,
        0.3,
        "SimResult { injection_rate: 0.3, avg_latency: 31.069285939825882, throughput: 0.2771125, avg_hops: 2.402273444900537, delivered: 22169, injected: 23925, saturated: false, deadlock_suspected: false, vlb_fraction: 0.07652143770175705, latency_p50: 22.627416997969522, latency_p99: 90.50966799187809, max_channel_util: 0.33366658335416144, mean_global_util: 0.25811047238190454, mean_local_util: 0.28421644588852785 }",
    ),
    (
        "switch3",
        true,
        0.15,
        "SimResult { injection_rate: 0.15, avg_latency: 41.67745716862038, throughput: 0.138625, avg_hops: 3.2634806131650134, delivered: 11090, injected: 12059, saturated: false, deadlock_suspected: false, vlb_fraction: 0.30989470020015664, latency_p50: 45.254833995939045, latency_p99: 90.50966799187809, max_channel_util: 0.4513871532116971, mean_global_util: 0.1876280929767558, mean_local_util: 0.18420811463800718 }",
    ),
];

fn schedule_of(name: &str) -> FaultSchedule {
    match name {
        "links5" => links5(),
        "switch3" => switch3(),
        other => panic!("unknown scenario {other}"),
    }
}

#[test]
fn degraded_golden_results_bit_for_bit() {
    for (scenario, adversarial, rate, expected) in FAULT_CASES {
        let r = run_faulted(adversarial, rate, schedule_of(scenario));
        assert_eq!(
            format!("{r:?}"),
            expected,
            "degraded golden mismatch for ({scenario}, adversarial={adversarial}, rate={rate})"
        );
    }
}

#[test]
fn degraded_golden_results_through_a_reused_workspace() {
    let mut ws = SimWorkspace::new();
    for (scenario, adversarial, rate, expected) in FAULT_CASES {
        let r = simulator(RoutingAlgorithm::UgalL, adversarial, 7)
            .with_faults(schedule_of(scenario))
            .run_with(rate, &mut ws);
        assert_eq!(
            format!("{r:?}"),
            expected,
            "reused-workspace degraded golden mismatch for ({scenario}, adversarial={adversarial})"
        );
    }
}

#[test]
fn empty_schedule_reproduces_every_pristine_golden_case() {
    // The zero-cost contract: a schedule with no real faults leaves the
    // engine on its pristine fast path — bit-for-bit.
    for (routing, adversarial, rate, expected) in CASES {
        let r = simulator(routing, adversarial, 7)
            .with_faults(FaultSchedule::immediate(FaultSet::empty()))
            .run(rate);
        assert_eq!(
            format!("{r:?}"),
            expected,
            "empty fault schedule perturbed ({routing:?}, adversarial={adversarial}, rate={rate})"
        );
    }
}

#[test]
fn degraded_runs_differ_from_pristine_and_still_deliver() {
    // Sanity around the fixtures: both scenarios really bite (results
    // differ from the pristine golden case) yet traffic keeps flowing.
    for (scenario, adversarial, rate, pristine) in [
        ("links5", false, 0.3, CASES[4].3),
        ("links5", true, 0.15, CASES[5].3),
        ("switch3", false, 0.3, CASES[4].3),
        ("switch3", true, 0.15, CASES[5].3),
    ] {
        let r = run_faulted(adversarial, rate, schedule_of(scenario));
        assert_ne!(
            format!("{r:?}"),
            pristine,
            "({scenario}, adversarial={adversarial}) did not perturb the run"
        );
        assert!(r.delivered > 0, "({scenario}, adversarial={adversarial})");
    }
}
