//! Golden fixtures for degraded runs: two fixed fault scenarios on
//! dfly(2,4,2,5) pinning the full `SimResult` bit-for-bit, so any change
//! to the fault semantics (drain order, reroute policy, RNG draws) is a
//! deliberate fixture update, never an accident.
//!
//! Scenario `links5`: a seeded 5% global-cable failure applied at cycle 0.
//! Scenario `switch3`: switch 3 dies mid-run (cycle 2500, inside the
//! measurement window), exercising the buffered-flit drain and the
//! en-route reroute path.
//!
//! Also pins the zero-cost contract: attaching an *empty* schedule must
//! reproduce every pristine golden case bit-for-bit.

include!("common/cases.rs");

use tugal_netsim::FaultSchedule;
use tugal_topology::FaultSet;

fn run_faulted(adversarial: bool, rate: f64, schedule: FaultSchedule) -> SimResult {
    simulator(RoutingAlgorithm::UgalL, adversarial, 7)
        .with_faults(schedule)
        .run(rate)
}

#[test]
fn degraded_golden_results_bit_for_bit() {
    for (scenario, adversarial, rate, expected) in FAULT_CASES {
        let r = run_faulted(adversarial, rate, schedule_of(scenario));
        assert_eq!(
            format!("{r:?}"),
            expected,
            "degraded golden mismatch for ({scenario}, adversarial={adversarial}, rate={rate})"
        );
    }
}

#[test]
fn degraded_golden_results_through_a_reused_workspace() {
    let mut ws = SimWorkspace::new();
    for (scenario, adversarial, rate, expected) in FAULT_CASES {
        let r = simulator(RoutingAlgorithm::UgalL, adversarial, 7)
            .with_faults(schedule_of(scenario))
            .run_with(rate, &mut ws);
        assert_eq!(
            format!("{r:?}"),
            expected,
            "reused-workspace degraded golden mismatch for ({scenario}, adversarial={adversarial})"
        );
    }
}

#[test]
fn empty_schedule_reproduces_every_pristine_golden_case() {
    // The zero-cost contract: a schedule with no real faults leaves the
    // engine on its pristine fast path — bit-for-bit.
    for (routing, adversarial, rate, expected) in CASES {
        let r = simulator(routing, adversarial, 7)
            .with_faults(FaultSchedule::immediate(FaultSet::empty()))
            .run(rate);
        assert_eq!(
            format!("{r:?}"),
            expected,
            "empty fault schedule perturbed ({routing:?}, adversarial={adversarial}, rate={rate})"
        );
    }
}

#[test]
fn degraded_runs_differ_from_pristine_and_still_deliver() {
    // Sanity around the fixtures: both scenarios really bite (results
    // differ from the pristine golden case) yet traffic keeps flowing.
    for (scenario, adversarial, rate, pristine) in [
        ("links5", false, 0.3, CASES[4].3),
        ("links5", true, 0.15, CASES[5].3),
        ("switch3", false, 0.3, CASES[4].3),
        ("switch3", true, 0.15, CASES[5].3),
    ] {
        let r = run_faulted(adversarial, rate, schedule_of(scenario));
        assert_ne!(
            format!("{r:?}"),
            pristine,
            "({scenario}, adversarial={adversarial}) did not perturb the run"
        );
        assert!(r.delivered > 0, "({scenario}, adversarial={adversarial})");
    }
}
