//! The workspace-reuse determinism contract and the sweep/runner layer on
//! top of it: a reset workspace must be indistinguishable from a fresh
//! one, for any sequence of runs, topologies and configurations.

use std::sync::Arc;
use tugal_netsim::runner::{ExperimentRunner, SeriesSpec};
use tugal_netsim::{
    aggregate_runs, latency_curve, saturation_throughput, Config, NoopObserver, RoutingAlgorithm,
    SimObserver, SimResult, SimWorkspace, Simulator, SweepOptions, WorkspacePool,
};
use tugal_routing::TableProvider;
use tugal_topology::{Dragonfly, DragonflyParams, NodeId};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

fn topo(p: u32, a: u32, h: u32, g: u32) -> Arc<Dragonfly> {
    Arc::new(Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap())
}

fn simulator(t: &Arc<Dragonfly>, routing: RoutingAlgorithm, seed: u64) -> Simulator {
    let provider = Arc::new(TableProvider::all_paths(t.clone()));
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(t));
    let mut cfg = Config::quick().for_routing(routing);
    cfg.seed = seed;
    Simulator::new(t.clone(), provider, pattern, routing, cfg)
}

#[test]
fn fresh_and_reused_workspace_agree() {
    let t = topo(2, 4, 2, 5);
    let sim = simulator(&t, RoutingAlgorithm::UgalL, 11);
    let fresh = sim.run(0.2);

    let mut ws = SimWorkspace::new();
    let first = sim.run_with(0.2, &mut ws);
    // Dirty the workspace with a different routing/rate, then repeat.
    let other = simulator(&t, RoutingAlgorithm::Par, 3);
    let _ = other.run_with(0.35, &mut ws);
    let reused = sim.run_with(0.2, &mut ws);

    assert_eq!(fresh, first, "fresh workspace must match Simulator::run");
    assert_eq!(fresh, reused, "reused workspace must match a fresh one");
}

#[test]
fn workspace_survives_shape_changes() {
    // Reuse across different topologies (different channel/switch counts)
    // must transparently reallocate and still match fresh runs.
    let small = topo(2, 4, 2, 5);
    let large = topo(2, 4, 2, 9);
    let sim_small = simulator(&small, RoutingAlgorithm::Min, 5);
    let sim_large = simulator(&large, RoutingAlgorithm::Min, 5);
    let fresh_small = sim_small.run(0.1);
    let fresh_large = sim_large.run(0.1);

    let mut ws = SimWorkspace::new();
    assert_eq!(sim_small.run_with(0.1, &mut ws), fresh_small);
    assert_eq!(sim_large.run_with(0.1, &mut ws), fresh_large);
    assert_eq!(sim_small.run_with(0.1, &mut ws), fresh_small);
}

#[test]
fn latency_curve_is_repeatable() {
    let t = topo(2, 4, 2, 5);
    let provider: Arc<dyn tugal_routing::PathProvider> =
        Arc::new(TableProvider::all_paths(t.clone()));
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let cfg = Config::quick().for_routing(RoutingAlgorithm::UgalL);
    let opts = SweepOptions {
        seeds: vec![1, 2],
        resolution: 0.02,
    };
    let rates = [0.1, 0.25];
    let a = latency_curve(
        &t,
        &provider,
        &pattern,
        RoutingAlgorithm::UgalL,
        &cfg,
        &rates,
        &opts,
    );
    let b = latency_curve(
        &t,
        &provider,
        &pattern,
        RoutingAlgorithm::UgalL,
        &cfg,
        &rates,
        &opts,
    );
    assert_eq!(a.len(), b.len());
    for (pa, pb) in a.iter().zip(&b) {
        assert_eq!(pa.rate, pb.rate);
        assert_eq!(pa.result, pb.result, "curve must not depend on pool state");
        assert!(pa.elapsed_ms > 0.0, "per-point timing must be recorded");
    }
}

#[test]
fn bisection_is_bounded_by_the_grid() {
    // MIN on shift(1,0) saturates cleanly (analytic cap 1/8 per node), so
    // the bisected saturation throughput must sit between the last
    // unsaturated and the first saturated rate of a grid sweep.
    let t = topo(2, 4, 2, 9);
    let provider: Arc<dyn tugal_routing::PathProvider> =
        Arc::new(TableProvider::all_paths(t.clone()));
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let cfg = Config::quick().for_routing(RoutingAlgorithm::Min);
    let opts = SweepOptions {
        seeds: vec![7],
        resolution: 0.02,
    };
    let rates = [0.05, 0.1, 0.15, 0.2];
    let curve = latency_curve(
        &t,
        &provider,
        &pattern,
        RoutingAlgorithm::Min,
        &cfg,
        &rates,
        &opts,
    );
    let last_unsat = curve
        .iter()
        .take_while(|p| !p.result.saturated)
        .map(|p| p.rate)
        .fold(0.0, f64::max);
    let first_sat = curve
        .iter()
        .find(|p| p.result.saturated)
        .map(|p| p.rate)
        .expect("grid must reach saturation");
    let sat = saturation_throughput(&t, &provider, &pattern, RoutingAlgorithm::Min, &cfg, &opts);
    assert!(
        sat + opts.resolution >= last_unsat,
        "bisection {sat} fell below the last unsaturated grid rate {last_unsat}"
    );
    assert!(
        sat <= first_sat,
        "bisection {sat} exceeded the first saturated grid rate {first_sat}"
    );
}

#[test]
fn runner_matches_per_series_curves() {
    // The flat (series × rate × seed) schedule must produce exactly the
    // per-series latency_curve results.
    let t = topo(2, 4, 2, 5);
    let provider: Arc<dyn tugal_routing::PathProvider> =
        Arc::new(TableProvider::all_paths(t.clone()));
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&t));
    let rates = [0.1, 0.3];
    let seeds = [1u64, 2];
    let mut runner = ExperimentRunner::new(t.clone());
    for routing in [RoutingAlgorithm::Min, RoutingAlgorithm::UgalL] {
        runner = runner.series(SeriesSpec {
            label: routing.name().to_string(),
            provider: provider.clone(),
            pattern: pattern.clone(),
            routing,
            cfg: Config::quick().for_routing(routing),
            faults: None,
        });
    }
    assert_eq!(runner.job_count(&rates, &seeds), 2 * 2 * 2);
    let curves = runner.run(&rates, &seeds);
    assert_eq!(curves.len(), 2);
    let opts = SweepOptions {
        seeds: seeds.to_vec(),
        resolution: 0.02,
    };
    for (curve, routing) in curves
        .iter()
        .zip([RoutingAlgorithm::Min, RoutingAlgorithm::UgalL])
    {
        let cfg = Config::quick().for_routing(routing);
        let expect = latency_curve(&t, &provider, &pattern, routing, &cfg, &rates, &opts);
        assert_eq!(curve.label, routing.name());
        for (got, want) in curve.points.iter().zip(&expect) {
            assert_eq!(
                got.result, want.result,
                "{}: flat vs nested schedule",
                curve.label
            );
        }
        assert!(curve.elapsed_ms() > 0.0);
    }
}

#[test]
fn workspace_pool_parks_and_reuses() {
    let pool = WorkspacePool::new();
    assert_eq!(pool.idle(), 0);
    let t = topo(2, 4, 2, 5);
    let sim = simulator(&t, RoutingAlgorithm::Min, 1);
    let a = pool.with(|ws| sim.run_with(0.1, ws));
    assert_eq!(pool.idle(), 1, "the workspace must return to the pool");
    let b = pool.with(|ws| sim.run_with(0.1, ws));
    assert_eq!(pool.idle(), 1, "reused, not duplicated");
    assert_eq!(a, b);
}

/// An observer counting events — exercises the seam and pins the rule that
/// observing a run cannot change its result.
#[derive(Default)]
struct Counter {
    cycles: u64,
    injected: u64,
    delivered: u64,
    routed: u64,
    window_opened: bool,
}

impl SimObserver for Counter {
    fn on_cycle(&mut self, _now: u64) {
        self.cycles += 1;
    }
    fn on_measurement_start(&mut self, _now: u64) {
        self.window_opened = true;
    }
    fn on_inject(&mut self, _now: u64, _src: NodeId, _dst: NodeId) {
        self.injected += 1;
    }
    fn on_route(
        &mut self,
        _now: u64,
        _src: tugal_topology::SwitchId,
        _dst: tugal_topology::SwitchId,
        _used_vlb: bool,
        _reroute: bool,
    ) {
        self.routed += 1;
    }
    fn on_deliver(&mut self, _now: u64, _latency: u64, _hops: u8) {
        self.delivered += 1;
    }
}

#[test]
fn observer_sees_events_without_perturbing_the_run() {
    let t = topo(2, 4, 2, 5);
    let sim = simulator(&t, RoutingAlgorithm::UgalL, 13);
    let plain = sim.run(0.2);

    let mut ws = SimWorkspace::new();
    let mut counter = Counter::default();
    let observed = sim.run_observed(0.2, &mut ws, &mut counter);
    assert_eq!(plain, observed, "observation must not change the physics");

    let noop = sim.run_observed(0.2, &mut ws, &mut NoopObserver);
    assert_eq!(plain, noop);

    assert!(counter.window_opened);
    assert_eq!(counter.cycles, Config::quick().total_cycles());
    // Window stats are a subset of what the observer saw over the run.
    assert!(counter.delivered >= plain.delivered);
    assert!(counter.injected >= plain.injected);
    assert!(counter.routed > 0);
}

#[test]
fn aggregation_ignores_non_finite_latency_statistics() {
    // One healthy run and one zero-delivery run (infinite mean, NaN
    // percentiles): the aggregate must report the healthy run's latency
    // statistics instead of NaN-poisoning them.
    let healthy = SimResult {
        injection_rate: 0.5,
        avg_latency: 40.0,
        throughput: 0.5,
        avg_hops: 3.0,
        delivered: 100,
        injected: 100,
        saturated: false,
        deadlock_suspected: false,
        vlb_fraction: 0.25,
        latency_p50: 32.0,
        latency_p99: 64.0,
        max_channel_util: 0.5,
        mean_global_util: 0.3,
        mean_local_util: 0.2,
    };
    let starved = SimResult {
        avg_latency: f64::INFINITY,
        throughput: 0.0,
        delivered: 0,
        injected: 50,
        saturated: true,
        vlb_fraction: 0.0,
        latency_p50: f64::NAN,
        latency_p99: f64::NAN,
        max_channel_util: 1.0,
        mean_global_util: 0.9,
        mean_local_util: 0.8,
        ..healthy.clone()
    };
    let agg = aggregate_runs(0.5, &[healthy, starved.clone()]);
    assert_eq!(agg.avg_latency, 40.0);
    assert_eq!(agg.latency_p50, 32.0, "NaN p50 must not poison the mean");
    assert_eq!(agg.latency_p99, 64.0, "NaN p99 must not poison the mean");
    assert_eq!(agg.delivered, 100);
    assert_eq!(agg.injected, 150);
    assert!(!agg.saturated, "1 of 2 saturated is not a majority");

    // All runs starved: the aggregate degrades to infinite latency (not
    // NaN), and the majority rule marks it saturated.
    let all_starved = aggregate_runs(0.5, &[starved.clone(), starved]);
    assert!(all_starved.avg_latency.is_infinite());
    assert!(all_starved.latency_p50.is_infinite());
    assert!(all_starved.saturated);
}
