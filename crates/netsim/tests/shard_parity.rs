//! The determinism contract of the partitioned engine: a run with any
//! valid shard count is **bit-for-bit identical** to the sequential run.
//!
//! The golden fixtures live on `dfly(2,4,2,5)` whose 5 groups admit shard
//! counts of exactly 1 and 5, so the committed strings are checked at the
//! full 5-way split; the 1/2/4-way cross-checks run on `dfly(2,4,2,8)`
//! (8 groups) against an in-process sequential reference.  Both pristine
//! and degraded runs are covered, plus watchdog trips (the merged
//! `StallReport` must come out identical), the observer fork/absorb seam,
//! and the silent sequential fallback for observers that cannot fork.

include!("common/cases.rs");

use tugal_netsim::{NoopObserver, SimObserver, StallKind, WatchdogConfig};
use tugal_topology::NodeId;

#[test]
fn five_shards_reproduce_every_pristine_golden_case() {
    for (routing, adversarial, rate, expected) in CASES {
        let r = simulator_sharded(routing, adversarial, 7, 5).run(rate);
        assert_eq!(
            format!("{r:?}"),
            expected,
            "5-shard mismatch for ({routing:?}, adversarial={adversarial}, rate={rate})"
        );
    }
}

#[test]
fn five_shards_reproduce_every_degraded_golden_case() {
    for (scenario, adversarial, rate, expected) in FAULT_CASES {
        let r = simulator_sharded(RoutingAlgorithm::UgalL, adversarial, 7, 5)
            .with_faults(schedule_of(scenario))
            .run(rate);
        assert_eq!(
            format!("{r:?}"),
            expected,
            "5-shard degraded mismatch for ({scenario}, adversarial={adversarial}, rate={rate})"
        );
    }
}

#[test]
fn five_shards_reproduce_every_zoo_golden_case() {
    for (spec, lag, routing, adversarial, rate, expected) in ZOO_CASES {
        let r = simulator_zoo(spec, lag, routing, adversarial, 7, 5).run(rate);
        assert_eq!(
            format!("{r:?}"),
            expected,
            "5-shard zoo mismatch for ({spec}, lag{lag}, {routing:?}, adversarial={adversarial}, rate={rate})"
        );
    }
}

/// An 8-group dragonfly (`a·h = 7` spread over the 7 peer groups) so
/// 2-, 4- and 8-way splits all exist.
fn sim8(routing: RoutingAlgorithm, adversarial: bool, shards: u32) -> Simulator {
    sim8_watched(routing, adversarial, shards, None)
}

fn sim8_watched(
    routing: RoutingAlgorithm,
    adversarial: bool,
    shards: u32,
    watchdog: Option<WatchdogConfig>,
) -> Simulator {
    let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 7, 1, 8)).unwrap());
    let provider = Arc::new(TableProvider::all_paths(topo.clone()));
    let pattern: Arc<dyn TrafficPattern> = if adversarial {
        Arc::new(Shift::new(&topo, 1, 0))
    } else {
        Arc::new(Uniform::new(&topo))
    };
    let mut cfg = Config::quick().for_routing(routing);
    cfg.seed = 7;
    cfg.shards = shards;
    cfg.watchdog = watchdog;
    Simulator::new(topo, provider, pattern, routing, cfg)
}

#[test]
fn two_and_four_shards_match_sequential_pristine() {
    for routing in [
        RoutingAlgorithm::Min,
        RoutingAlgorithm::Vlb,
        RoutingAlgorithm::UgalL,
        RoutingAlgorithm::UgalG,
        RoutingAlgorithm::Par,
    ] {
        for adversarial in [false, true] {
            let rate = if adversarial { 0.15 } else { 0.3 };
            let seq = format!("{:?}", sim8(routing, adversarial, 1).run(rate));
            for shards in [2, 4] {
                let par = format!("{:?}", sim8(routing, adversarial, shards).run(rate));
                assert_eq!(
                    par, seq,
                    "{shards}-shard divergence for ({routing:?}, adversarial={adversarial})"
                );
            }
        }
    }
}

#[test]
fn two_and_four_shards_match_sequential_under_faults() {
    // A mid-run switch death plus immediate global-link attrition, so the
    // drains, reroute draws and dead-mask broadcasts all cross shard
    // boundaries.
    let schedule = || {
        let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 7, 1, 8)).unwrap());
        let mut fs = tugal_topology::FaultSet::sample_global_links(&topo, 0.05, 0xBEEF);
        fs.fail_switch(tugal_topology::SwitchId(5));
        tugal_netsim::FaultSchedule::at(2500, fs)
    };
    let seq = format!(
        "{:?}",
        sim8(RoutingAlgorithm::UgalL, false, 1)
            .with_faults(schedule())
            .run(0.3)
    );
    for shards in [2, 4] {
        let par = format!(
            "{:?}",
            sim8(RoutingAlgorithm::UgalL, false, shards)
                .with_faults(schedule())
                .run(0.3)
        );
        assert_eq!(par, seq, "{shards}-shard degraded divergence");
    }
}

/// The 8-group topology re-wired as a zoo shape (see `sim8`): shard
/// boundaries must stay bit-for-bit across arrangements and parallel
/// global cables, whose per-pair channel sets the mailboxes canonicalize
/// by channel id.
fn sim8_zoo(spec: &str, lag: u32, routing: RoutingAlgorithm, shards: u32) -> Simulator {
    let arr = tugal_topology::ArrangementSpec::parse(spec)
        .unwrap_or_else(|| panic!("unknown arrangement {spec:?}"));
    let topo = Arc::new(
        Dragonfly::with_shape(DragonflyParams::new(2, 7, 1, 8), arr.build().as_ref(), lag).unwrap(),
    );
    let provider = Arc::new(TableProvider::all_paths(topo.clone()));
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&topo, 1, 0));
    let mut cfg = Config::quick().for_routing(routing);
    cfg.seed = 7;
    cfg.shards = shards;
    Simulator::new(topo, provider, pattern, routing, cfg)
}

#[test]
fn zoo_shards_match_sequential_pristine() {
    for (spec, lag) in [("palmtree", 1), ("palmtree", 2), ("absolute", 2)] {
        let seq = format!(
            "{:?}",
            sim8_zoo(spec, lag, RoutingAlgorithm::UgalL, 1).run(0.15)
        );
        for shards in [2, 4] {
            let par = format!(
                "{:?}",
                sim8_zoo(spec, lag, RoutingAlgorithm::UgalL, shards).run(0.15)
            );
            assert_eq!(par, seq, "{shards}-shard divergence for {spec} lag{lag}");
        }
    }
}

#[test]
fn zoo_shards_match_sequential_under_faults() {
    // Cable attrition plus a *single lag sibling* dying mid-run: the dead
    // masks for individual parallel channels must broadcast identically
    // across shard boundaries.
    for (spec, lag) in [("palmtree", 2), ("random:0x2007", 2)] {
        let run_at = |shards: u32| {
            let arr = tugal_topology::ArrangementSpec::parse(spec).unwrap();
            let topo = Arc::new(
                Dragonfly::with_shape(DragonflyParams::new(2, 7, 1, 8), arr.build().as_ref(), lag)
                    .unwrap(),
            );
            let mut fs = tugal_topology::FaultSet::sample_global_links(&topo, 0.05, 0xBEEF);
            let (_, v) = topo.global_out(tugal_topology::SwitchId(0))[0];
            fs.fail_global_sibling(tugal_topology::SwitchId(0), v, 1);
            let schedule = tugal_netsim::FaultSchedule::at(2500, fs);
            format!(
                "{:?}",
                sim8_zoo(spec, lag, RoutingAlgorithm::UgalL, shards)
                    .with_faults(schedule)
                    .run(0.15)
            )
        };
        let seq = run_at(1);
        for shards in [2, 4] {
            assert_eq!(
                run_at(shards),
                seq,
                "{shards}-shard degraded divergence for {spec} lag{lag}"
            );
        }
    }
}

#[test]
fn watchdog_trips_identically_at_every_shard_count() {
    // A cycle ceiling mid-traffic: the trip cycle, the merged ledger, the
    // canonical occupancy snapshot and the oldest-packet choice must all
    // come out the same.
    let run_at = |shards: u32| {
        let wd = WatchdogConfig {
            conservation_every: 256,
            stall_cycles: 0,
            max_cycles: 1500,
            wall_limit_ms: 0,
            flight_recorder: 0,
        };
        let sim = sim8_watched(RoutingAlgorithm::UgalL, false, shards, Some(wd));
        let mut ws = SimWorkspace::new();
        let (r, stall) = sim.run_reported(0.3, &mut ws, &mut NoopObserver);
        (format!("{r:?}"), format!("{stall:?}"))
    };
    let (seq_r, seq_stall) = run_at(1);
    assert!(
        seq_stall.contains("CycleCeiling"),
        "fixture must actually trip: {seq_stall}"
    );
    for shards in [2, 4, 8] {
        let (r, stall) = run_at(shards);
        assert_eq!(r, seq_r, "{shards}-shard result divergence under a trip");
        assert_eq!(stall, seq_stall, "{shards}-shard stall-report divergence");
    }
}

/// Forkable counting observer: order-insensitive event totals.
#[derive(Debug, Default, PartialEq)]
struct Counter {
    injected: u64,
    delivered: u64,
    dropped: u64,
    routed: u64,
    vlb: u64,
    reroutes: u64,
    local_hops: u64,
    global_hops: u64,
    latency_sum: u64,
    hops_sum: u64,
    end: Option<(u64, u64)>,
}

impl SimObserver for Counter {
    fn fork(&self) -> Option<Self> {
        Some(Counter::default())
    }
    fn absorb(&mut self, s: Self) {
        self.injected += s.injected;
        self.delivered += s.delivered;
        self.dropped += s.dropped;
        self.routed += s.routed;
        self.vlb += s.vlb;
        self.reroutes += s.reroutes;
        self.local_hops += s.local_hops;
        self.global_hops += s.global_hops;
        self.latency_sum += s.latency_sum;
        self.hops_sum += s.hops_sum;
    }
    fn on_inject(&mut self, _now: u64, _src: NodeId, _dst: NodeId) {
        self.injected += 1;
    }
    fn on_drop(&mut self, _now: u64, _src: NodeId, _dst: NodeId) {
        self.dropped += 1;
    }
    fn on_route(
        &mut self,
        _now: u64,
        _src: tugal_topology::SwitchId,
        _dst: tugal_topology::SwitchId,
        used_vlb: bool,
        reroute: bool,
    ) {
        self.routed += 1;
        if used_vlb {
            self.vlb += 1;
        }
        if reroute {
            self.reroutes += 1;
        }
    }
    fn on_link_traverse(&mut self, _now: u64, _chan: u32, global: bool) {
        if global {
            self.global_hops += 1;
        } else {
            self.local_hops += 1;
        }
    }
    fn on_deliver(&mut self, _now: u64, latency: u64, hops: u8) {
        self.delivered += 1;
        self.latency_sum += latency;
        self.hops_sum += hops as u64;
    }
    fn on_run_end(&mut self, now: u64, in_flight: u64) {
        self.end = Some((now, in_flight));
    }
}

#[test]
fn forked_observers_see_the_same_event_totals() {
    let run_counted = |shards: u32| {
        let mut obs = Counter::default();
        let mut ws = SimWorkspace::new();
        let r = sim8(RoutingAlgorithm::Par, true, shards).run_observed(0.15, &mut ws, &mut obs);
        (format!("{r:?}"), obs)
    };
    let (seq_r, seq_obs) = run_counted(1);
    assert!(seq_obs.end.is_some());
    for shards in [2, 4] {
        let (r, obs) = run_counted(shards);
        assert_eq!(r, seq_r, "{shards}-shard result divergence");
        assert_eq!(obs, seq_obs, "{shards}-shard observer-event divergence");
    }
}

/// Order-*sensitive* trace observer with no fork override: requesting
/// shards must silently fall back to one sequential worker, reproducing
/// the exact event interleaving.
#[derive(Debug, Default, PartialEq)]
struct Trace {
    events: Vec<(u64, u32, u32)>,
}

impl SimObserver for Trace {
    fn on_inject(&mut self, now: u64, src: NodeId, dst: NodeId) {
        self.events.push((now, src.0, dst.0));
    }
}

#[test]
fn non_forking_observer_falls_back_to_an_identical_sequential_run() {
    let run_traced = |shards: u32| {
        let mut obs = Trace::default();
        let mut ws = SimWorkspace::new();
        let r = sim8(RoutingAlgorithm::UgalL, false, shards).run_observed(0.3, &mut ws, &mut obs);
        (format!("{r:?}"), obs)
    };
    let (seq_r, seq_obs) = run_traced(1);
    let (par_r, par_obs) = run_traced(4);
    assert!(!seq_obs.events.is_empty());
    assert_eq!(par_r, seq_r);
    assert_eq!(
        par_obs, seq_obs,
        "fallback must replay the exact sequential interleaving"
    );
}

#[test]
fn invalid_shard_counts_panic_with_the_typed_diagnostic() {
    let err = std::panic::catch_unwind(|| {
        // 3 does not divide 8 groups.
        sim8(RoutingAlgorithm::Min, false, 3).run(0.1);
    })
    .expect_err("3 shards over 8 groups must be rejected");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("does not divide"), "{msg}");
}

#[test]
fn conservation_holds_at_every_shard_count() {
    // An armed conservation watchdog that never trips doubles as a global
    // ledger audit across the mailbox accounting (sent/recv/in-flight).
    for shards in [1, 2, 4, 8] {
        let wd = WatchdogConfig {
            conservation_every: 64,
            stall_cycles: 0,
            max_cycles: 0,
            wall_limit_ms: 0,
            flight_recorder: 0,
        };
        let sim = sim8_watched(RoutingAlgorithm::UgalG, false, shards, Some(wd));
        let mut ws = SimWorkspace::new();
        let (r, stall) = sim.run_reported(0.3, &mut ws, &mut NoopObserver);
        assert!(
            stall.is_none(),
            "conservation tripped at {shards} shards: {stall:?}"
        );
        assert!(r.delivered > 0);
    }
}

#[test]
fn stallkind_is_shared_between_shard_counts() {
    // Regression guard for the merged-report plumbing: the kind survives
    // the merge verbatim.
    let wd = WatchdogConfig {
        conservation_every: 0,
        stall_cycles: 0,
        max_cycles: 500,
        wall_limit_ms: 0,
        flight_recorder: 0,
    };
    let sim = sim8_watched(RoutingAlgorithm::Min, false, 2, Some(wd));
    let mut ws = SimWorkspace::new();
    let (_, stall) = sim.run_reported(0.2, &mut ws, &mut NoopObserver);
    assert_eq!(stall.map(|s| s.kind), Some(StallKind::CycleCeiling));
}
