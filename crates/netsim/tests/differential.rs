//! Differential tests: pairs of configurations that must be *flit-for-flit
//! identical* by construction, pinning the engine's RNG-consumption
//! contracts.
//!
//! * UGAL-L/G with the `ugal_threshold == i64::MAX` force-MIN sentinel
//!   reproduce `RoutingAlgorithm::Min` exactly — the sentinel
//!   short-circuits the decision *without drawing the VLB candidate*, so
//!   the shared RNG stream is consumed identically.
//! * `vlb_candidates = 1` is the paper's single-draw UGAL — making the
//!   default explicit changes nothing.
//! * A provider that only implements the *owned* sampling API (inheriting
//!   the borrowed `_ref` defaults) produces the same results as the
//!   table provider's interned borrowed sampling — the RNG-equivalence
//!   contract of `PathProvider`, end to end through the engine.
//!
//! Comparison goes through `SimResult`'s `Debug` form, which is
//! round-trip exact for `f64`, so a string match is a bit-for-bit match.

use std::sync::Arc;
use tugal_netsim::{Config, RoutingAlgorithm, SimResult, SimWorkspace, Simulator};
use tugal_routing::{PathProvider, PathRef, TableProvider};
use tugal_topology::{Dragonfly, DragonflyParams, SwitchId};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

fn topo() -> Arc<Dragonfly> {
    Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap())
}

fn pattern(topo: &Arc<Dragonfly>, adversarial: bool) -> Arc<dyn TrafficPattern> {
    if adversarial {
        Arc::new(Shift::new(topo, 1, 0))
    } else {
        Arc::new(Uniform::new(topo))
    }
}

fn run_configured(
    routing: RoutingAlgorithm,
    adversarial: bool,
    rate: f64,
    tweak: impl FnOnce(&mut Config),
) -> SimResult {
    let topo = topo();
    let provider = Arc::new(TableProvider::all_paths(topo.clone()));
    let pattern = pattern(&topo, adversarial);
    let mut cfg = Config::quick().for_routing(routing);
    cfg.seed = 7;
    tweak(&mut cfg);
    Simulator::new(topo, provider, pattern, routing, cfg).run(rate)
}

/// The force-MIN sentinel makes UGAL-L *identical* to MIN: same decisions
/// (always the MIN candidate) and — the part a huge finite threshold
/// cannot deliver — the same RNG stream, because the VLB draw is skipped.
#[test]
fn ugal_l_with_force_min_sentinel_equals_min() {
    for (adversarial, rate) in [(false, 0.3), (true, 0.15)] {
        let min = run_configured(RoutingAlgorithm::Min, adversarial, rate, |_| {});
        let forced = run_configured(RoutingAlgorithm::UgalL, adversarial, rate, |c| {
            c.ugal_threshold = i64::MAX;
        });
        assert_eq!(
            format!("{min:?}"),
            format!("{forced:?}"),
            "UGAL-L with the force-MIN sentinel diverged from MIN \
             (adversarial={adversarial}, rate={rate})"
        );
        assert_eq!(forced.vlb_fraction, 0.0);
    }
}

/// The sentinel applies to the UGAL-G metric the same way.
#[test]
fn ugal_g_with_force_min_sentinel_equals_min() {
    let min = run_configured(RoutingAlgorithm::Min, false, 0.3, |_| {});
    let forced = run_configured(RoutingAlgorithm::UgalG, false, 0.3, |c| {
        c.ugal_threshold = i64::MAX;
    });
    assert_eq!(format!("{min:?}"), format!("{forced:?}"));
}

/// Guards the differential above from becoming vacuous: at the same load
/// and seed, plain UGAL-L (threshold 0) does take VLB detours, so the
/// sentinel test really is distinguishing two behaviours.
#[test]
fn plain_ugal_l_differs_from_min() {
    let min = run_configured(RoutingAlgorithm::Min, true, 0.15, |_| {});
    let ugal = run_configured(RoutingAlgorithm::UgalL, true, 0.15, |_| {});
    assert!(ugal.vlb_fraction > 0.0);
    assert_ne!(format!("{min:?}"), format!("{ugal:?}"));
}

/// `vlb_candidates = 1` (explicit) is the default single-draw UGAL: the
/// k == 1 early return draws exactly one VLB candidate, like the paper.
#[test]
fn one_vlb_candidate_is_the_default_single_draw_ugal() {
    for routing in [RoutingAlgorithm::UgalL, RoutingAlgorithm::UgalG] {
        let implicit = run_configured(routing, true, 0.15, |_| {});
        let explicit = run_configured(routing, true, 0.15, |c| c.vlb_candidates = 1);
        assert_eq!(
            format!("{implicit:?}"),
            format!("{explicit:?}"),
            "explicit vlb_candidates = 1 diverged for {routing:?}"
        );
    }
}

/// ... and `vlb_candidates > 1` genuinely changes the decision (more RNG
/// draws, a queue-metric competition), so the equality above is not an
/// artifact of the knob being ignored.
#[test]
fn multiple_vlb_candidates_change_the_outcome() {
    let one = run_configured(RoutingAlgorithm::UgalL, true, 0.15, |_| {});
    let three = run_configured(RoutingAlgorithm::UgalL, true, 0.15, |c| {
        c.vlb_candidates = 3
    });
    assert_ne!(format!("{one:?}"), format!("{three:?}"));
}

/// Forwards the owned sampling of an inner provider while *hiding* its
/// borrowed API: `sample_min_ref`/`sample_vlb_ref` fall back to the
/// trait's `PathRef::Owned` defaults and `path_store()` to `None`, the
/// situation of any external provider written against the pre-interning
/// API.
struct OwnedShim(TableProvider);

impl PathProvider for OwnedShim {
    fn topo(&self) -> &Dragonfly {
        self.0.topo()
    }

    fn mean_vlb_hops(&self) -> f64 {
        self.0.mean_vlb_hops()
    }

    fn sample_min(
        &self,
        s: SwitchId,
        d: SwitchId,
        rng: &mut rand::rngs::SmallRng,
    ) -> tugal_routing::Path {
        self.0.sample_min(s, d, rng)
    }

    fn sample_vlb(
        &self,
        s: SwitchId,
        d: SwitchId,
        rng: &mut rand::rngs::SmallRng,
    ) -> tugal_routing::Path {
        self.0.sample_vlb(s, d, rng)
    }
}

/// The borrowed and owned sampling forms are interchangeable through the
/// whole engine: a provider stuck on the owned API (every path goes
/// through the packet's ephemeral slot) reproduces the interned table
/// provider bit-for-bit, for every routing algorithm.
#[test]
fn owned_only_provider_matches_interned_table_provider() {
    let topo = topo();
    let mut ws = SimWorkspace::new();
    for (routing, adversarial, rate) in [
        (RoutingAlgorithm::Min, false, 0.3),
        (RoutingAlgorithm::UgalL, true, 0.15),
        (RoutingAlgorithm::UgalG, false, 0.3),
        (RoutingAlgorithm::Par, true, 0.15),
        (RoutingAlgorithm::Vlb, false, 0.3),
    ] {
        let pattern = pattern(&topo, adversarial);
        let mut cfg = Config::quick().for_routing(routing);
        cfg.seed = 7;

        let interned: Arc<dyn PathProvider> = Arc::new(TableProvider::all_paths(topo.clone()));
        let shimmed: Arc<dyn PathProvider> =
            Arc::new(OwnedShim(TableProvider::all_paths(topo.clone())));
        assert!(interned.path_store().is_some());
        assert!(shimmed.path_store().is_none());

        let a = Simulator::new(
            topo.clone(),
            interned,
            pattern.clone(),
            routing,
            cfg.clone(),
        )
        .run_with(rate, &mut ws);
        let b =
            Simulator::new(topo.clone(), shimmed, pattern, routing, cfg).run_with(rate, &mut ws);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "owned-only shim diverged from interned provider for {routing:?}"
        );
    }
}

/// The borrowed API agrees with the owned API draw by draw, not just in
/// aggregate: same path and same RNG state after each call (the golden
/// case of the `PathProvider` contract).
#[test]
fn borrowed_and_owned_sampling_agree_draw_by_draw() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let topo = topo();
    let provider = TableProvider::all_paths(topo.clone());
    let n = topo.num_switches() as u32;
    let mut rng_owned = SmallRng::seed_from_u64(99);
    let mut rng_ref = SmallRng::seed_from_u64(99);
    for s in 0..n {
        for d in 0..n {
            let (s, d) = (SwitchId(s), SwitchId(d));
            let owned = provider.sample_min(s, d, &mut rng_owned);
            let byref = provider.sample_min_ref(s, d, &mut rng_ref);
            assert_eq!(owned, *byref.path(), "min path mismatch {s:?}->{d:?}");
            if let PathRef::Interned(id, p) = byref {
                assert_eq!(provider.resolve(id), p);
            }
            let owned = provider.sample_vlb(s, d, &mut rng_owned);
            let byref = provider.sample_vlb_ref(s, d, &mut rng_ref);
            assert_eq!(owned, *byref.path(), "vlb path mismatch {s:?}->{d:?}");
        }
    }
    // Identical RNG consumption: both streams end at the same state.
    use rand::RngCore;
    assert_eq!(rng_owned.next_u64(), rng_ref.next_u64());
}
