//! Checkpoint/restore integration: kill-9-safe resume must be
//! **bit-for-bit** identical to an uninterrupted run.
//!
//! The fixture is the 8-group `dfly(2,7,1,8)` of `shard_parity.rs`, so
//! shard counts 1/2/4 all exist.  A "kill" is emulated with a watchdog
//! cycle ceiling: the run dies mid-simulation *after* its last checkpoint
//! write and before the next one, exactly like a `SIGKILL` between write
//! points — retained checkpoint files are untainted either way, because
//! writes are tmp-file + rename atomic.  Every comparison goes through
//! `Debug` formatting of `SimResult`, which is round-trip exact for
//! `f64`, so a string match is a bit-for-bit match.

use std::path::PathBuf;
use std::sync::Arc;
use tugal_netsim::{
    CkptConfig, Config, NoopObserver, RoutingAlgorithm, SimObserver, SimWorkspace, Simulator,
    WatchdogConfig,
};
use tugal_routing::TableProvider;
use tugal_topology::{Dragonfly, DragonflyParams};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-tmp")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ckpt_files(dir: &std::path::Path) -> Vec<String> {
    let mut v: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(String::from))
        .filter(|n| n.ends_with(".ckpt"))
        .collect();
    v.sort();
    v
}

struct Fixture {
    routing: RoutingAlgorithm,
    adversarial: bool,
    shards: u32,
    faulted: bool,
    ckpt: Option<CkptConfig>,
    watchdog: Option<WatchdogConfig>,
}

impl Fixture {
    fn new(routing: RoutingAlgorithm, adversarial: bool) -> Self {
        Fixture {
            routing,
            adversarial,
            shards: 1,
            faulted: false,
            ckpt: None,
            watchdog: None,
        }
    }

    fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    fn faulted(mut self) -> Self {
        self.faulted = true;
        self
    }

    fn ckpt(mut self, dir: &std::path::Path, every: u64) -> Self {
        let mut cc = CkptConfig::new(dir.to_string_lossy().into_owned());
        cc.every = every;
        self.ckpt = Some(cc);
        self
    }

    /// Emulated kill: a cycle ceiling that trips the run mid-simulation.
    fn killed_at(mut self, cycle: u64) -> Self {
        self.watchdog = Some(WatchdogConfig {
            conservation_every: 0,
            stall_cycles: 0,
            max_cycles: cycle,
            wall_limit_ms: 0,
            flight_recorder: 0,
        });
        self
    }

    /// Armed, non-tripping watchdog (conservation audit), for the
    /// watchdog-armed grid axis.
    fn armed(mut self) -> Self {
        self.watchdog = Some(WatchdogConfig {
            conservation_every: 64,
            stall_cycles: 0,
            max_cycles: 0,
            wall_limit_ms: 0,
            flight_recorder: 0,
        });
        self
    }

    fn build(&self) -> Simulator {
        let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 7, 1, 8)).unwrap());
        let provider = Arc::new(TableProvider::all_paths(topo.clone()));
        let pattern: Arc<dyn TrafficPattern> = if self.adversarial {
            Arc::new(Shift::new(&topo, 1, 0))
        } else {
            Arc::new(Uniform::new(&topo))
        };
        let mut cfg = Config::quick().for_routing(self.routing);
        cfg.seed = 7;
        cfg.shards = self.shards;
        cfg.watchdog = self.watchdog;
        cfg.checkpoint = self.ckpt.clone();
        let sim = Simulator::new(topo.clone(), provider, pattern, self.routing, cfg);
        if self.faulted {
            // A mid-run switch death plus global-link attrition, applied
            // before the emulated kill so the checkpoint carries dead
            // masks, rerouted (ephemeral-path) packets and an advanced
            // fault cursor.
            let mut fs = tugal_topology::FaultSet::sample_global_links(&topo, 0.05, 0xBEEF);
            fs.fail_switch(tugal_topology::SwitchId(5));
            sim.with_faults(tugal_netsim::FaultSchedule::at(1000, fs))
        } else {
            sim
        }
    }

    fn run(&self, rate: f64) -> String {
        format!("{:?}", self.build().run(rate))
    }
}

#[test]
fn checkpointing_on_is_result_invisible_and_retains_two_files() {
    let dir = tmp_dir("ckpt_invisible");
    let plain = Fixture::new(RoutingAlgorithm::UgalL, false).run(0.3);
    let with_ckpt = Fixture::new(RoutingAlgorithm::UgalL, false)
        .ckpt(&dir, 700)
        .run(0.3);
    assert_eq!(with_ckpt, plain, "checkpoint writes perturbed the run");
    // Config::quick runs 4000 cycles: writes at the end of cycles
    // 700..3500 (each resuming at the following cycle), pruned to the
    // newest two.
    let files = ckpt_files(&dir);
    assert_eq!(files.len(), 2, "retention must keep exactly 2: {files:?}");
    assert!(files[1].ends_with("00000000000000003501.ckpt"), "{files:?}");
}

#[test]
fn killed_run_resumes_bit_for_bit() {
    for every in [137, 700, 1021] {
        let dir = tmp_dir(&format!("ckpt_resume_{every}"));
        let golden = Fixture::new(RoutingAlgorithm::UgalL, true).run(0.15);
        // Die at cycle 1500: the last retained checkpoint precedes it.
        let killed = Fixture::new(RoutingAlgorithm::UgalL, true)
            .ckpt(&dir, every)
            .killed_at(1500)
            .run(0.15);
        assert_ne!(killed, golden, "the emulated kill must truncate the run");
        assert!(!ckpt_files(&dir).is_empty(), "no checkpoint written");
        let resumed = Fixture::new(RoutingAlgorithm::UgalL, true)
            .ckpt(&dir, every)
            .run(0.15);
        assert_eq!(resumed, golden, "divergent resume at every={every}");
    }
}

#[test]
fn determinism_grid_across_shards_faults_and_watchdogs() {
    for shards in [1u32, 2, 4] {
        for scenario in ["pristine", "faulted", "armed"] {
            let fix = || {
                let f = Fixture::new(RoutingAlgorithm::UgalL, false).shards(shards);
                match scenario {
                    "pristine" => f,
                    "faulted" => f.faulted(),
                    "armed" => f.armed(),
                    _ => unreachable!(),
                }
            };
            let dir = tmp_dir(&format!("ckpt_grid_{shards}_{scenario}"));
            let golden = fix().run(0.3);
            // The kill axis replaces the armed watchdog (one watchdog
            // slot), so the armed scenario verifies its counters through
            // the golden + resumed runs instead.
            let _ = fix().ckpt(&dir, 600).killed_at(1900).run(0.3);
            assert!(!ckpt_files(&dir).is_empty());
            let resumed = fix().ckpt(&dir, 600).run(0.3);
            assert_eq!(
                resumed, golden,
                "divergent resume at shards={shards}, {scenario}"
            );
        }
    }
}

#[test]
fn checkpoint_written_at_four_shards_restores_at_any_shard_count() {
    for faulted in [false, true] {
        let dir = tmp_dir(&format!("ckpt_cross_shards_{faulted}"));
        let base = || {
            let f = Fixture::new(RoutingAlgorithm::UgalL, false);
            if faulted {
                f.faulted()
            } else {
                f
            }
        };
        let golden = base().run(0.3);
        let _ = base().shards(4).ckpt(&dir, 600).killed_at(1900).run(0.3);
        assert!(!ckpt_files(&dir).is_empty());
        for shards in [1u32, 2, 4] {
            let resumed = base().shards(shards).ckpt(&dir, 600).run(0.3);
            assert_eq!(
                resumed, golden,
                "4-shard checkpoint diverged restoring at {shards} shard(s), faulted={faulted}"
            );
        }
    }
}

#[test]
fn corrupt_checkpoints_fall_back_and_never_diverge() {
    let dir = tmp_dir("ckpt_corrupt_tolerance");
    let golden = Fixture::new(RoutingAlgorithm::UgalL, true).run(0.15);
    let _ = Fixture::new(RoutingAlgorithm::UgalL, true)
        .ckpt(&dir, 600)
        .killed_at(1900)
        .run(0.15);
    let files = ckpt_files(&dir);
    assert_eq!(files.len(), 2, "need both retained files: {files:?}");

    // Bit-flip the newest: restore must fall back to the previous file
    // and still reproduce the uninterrupted run exactly.
    let newest = dir.join(&files[1]);
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&newest, &bytes).unwrap();
    let resumed = Fixture::new(RoutingAlgorithm::UgalL, true)
        .ckpt(&dir, 600)
        .run(0.15);
    assert_eq!(resumed, golden, "fallback to previous checkpoint diverged");

    // Truncate both (the torn-write shape a crash can leave): restore
    // degrades to a cold start — slower, never divergent.  Re-list first:
    // the resumed run above wrote fresh checkpoints and pruned the old
    // ones.
    for f in ckpt_files(&dir) {
        let p = dir.join(f);
        let b = std::fs::read(&p).unwrap();
        std::fs::write(&p, &b[..b.len().min(40)]).unwrap();
    }
    let resumed = Fixture::new(RoutingAlgorithm::UgalL, true)
        .ckpt(&dir, 600)
        .run(0.15);
    assert_eq!(resumed, golden, "cold-start fallback diverged");
}

/// Order-sensitive observer with no `snapshot` override: configuring a
/// checkpoint must warn, write nothing, and leave results untouched.
#[derive(Default)]
struct NoSnapshot {
    events: Vec<(u64, u32, u32)>,
}

impl SimObserver for NoSnapshot {
    fn on_inject(&mut self, now: u64, src: tugal_topology::NodeId, dst: tugal_topology::NodeId) {
        self.events.push((now, src.0, dst.0));
    }
}

#[test]
fn non_snapshotting_observer_disables_checkpointing_without_perturbing_results() {
    let dir = tmp_dir("ckpt_no_snapshot_observer");
    let run_with = |ckpt: Option<&std::path::Path>| {
        let mut fix = Fixture::new(RoutingAlgorithm::UgalL, false);
        if let Some(d) = ckpt {
            fix = fix.ckpt(d, 600);
        }
        let mut obs = NoSnapshot::default();
        let mut ws = SimWorkspace::new();
        let r = fix.build().run_observed(0.3, &mut ws, &mut obs);
        (format!("{r:?}"), obs.events)
    };
    let (plain_r, plain_ev) = run_with(None);
    let (ckpt_r, ckpt_ev) = run_with(Some(&dir));
    assert_eq!(ckpt_r, plain_r);
    assert_eq!(ckpt_ev, plain_ev);
    assert!(
        ckpt_files(&dir).is_empty(),
        "checkpointing must be disabled for non-snapshotting observers"
    );
}

#[test]
fn restore_resumes_workspace_reuse_and_noop_observer_paths() {
    // A reused workspace plus an explicit NoopObserver (the snapshotting
    // default) across kill + resume: the reset-then-apply path must leave
    // no residue from the killed run.
    let dir = tmp_dir("ckpt_ws_reuse");
    let mut ws = SimWorkspace::new();
    let golden = format!(
        "{:?}",
        Fixture::new(RoutingAlgorithm::Par, true)
            .build()
            .run_observed(0.15, &mut ws, &mut NoopObserver)
    );
    let _ = Fixture::new(RoutingAlgorithm::Par, true)
        .ckpt(&dir, 600)
        .killed_at(1900)
        .build()
        .run_observed(0.15, &mut ws, &mut NoopObserver);
    let resumed = format!(
        "{:?}",
        Fixture::new(RoutingAlgorithm::Par, true)
            .ckpt(&dir, 600)
            .build()
            .run_observed(0.15, &mut ws, &mut NoopObserver)
    );
    assert_eq!(resumed, golden, "workspace reuse across restore diverged");
}
