//! Property tests of the dragonfly structural invariants, checked over a
//! grid of valid `(p,a,h,g)` shapes — and re-checked on degraded views,
//! where the same invariants must hold minus exactly the failed channels.
//!
//! Seeded and exhaustive over the grid (no external fuzzing dependency):
//! every run checks the same shapes and the same sampled fault sets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tugal_topology::{
    ArrangementSpec, ChannelKind, Dragonfly, DragonflyParams, FaultSet, SwitchId,
};

/// Every valid dragonfly with p ≤ 3, a ≤ 6, h ≤ 4, g ≤ 9 — the validation
/// rules (balanced global links, enough groups) prune the rest.
fn valid_grid() -> Vec<Dragonfly> {
    let mut out = Vec::new();
    for p in 1..=3u32 {
        for a in 1..=6u32 {
            for h in 1..=4u32 {
                for g in 2..=9u32 {
                    if let Ok(t) = Dragonfly::new(DragonflyParams::new(p, a, h, g)) {
                        out.push(t);
                    }
                }
            }
        }
    }
    assert!(
        out.len() >= 20,
        "the grid must cover a real spread of shapes, got {}",
        out.len()
    );
    out
}

/// Outgoing global channels of a switch.
fn global_out(t: &Dragonfly, s: SwitchId) -> Vec<(SwitchId, tugal_topology::ChannelId)> {
    t.channels()
        .iter()
        .filter(|c| c.kind == ChannelKind::Global && c.src_switch() == Some(s))
        .map(|c| (c.dst_switch().unwrap(), c.id))
        .collect()
}

#[test]
fn pristine_invariants_hold_across_the_grid() {
    for t in valid_grid() {
        let p = t.params();
        let (a, h, g) = (p.a, p.h, p.g);
        for s in 0..t.num_switches() as u32 {
            let s = SwitchId(s);
            // Per-switch global-link budget: at most (here: exactly) h.
            let out = global_out(&t, s);
            assert!(out.len() <= h as usize, "{p}: switch {s} exceeds h");
            assert_eq!(out.len(), h as usize, "{p}: unused global port on {s}");
            for (peer, _ch) in out {
                // Every global link is bidirectional (a cable, not an arc).
                // Parallel cables between a pair are allowed, so only the
                // pair-level lookup is pinned, not the channel identity.
                assert_ne!(t.group_of(s), t.group_of(peer), "{p}: intra-group global");
                assert!(t.global_channel(s, peer).is_some());
                assert!(
                    t.global_channel(peer, s).is_some(),
                    "{p}: global {s}->{peer} has no reverse"
                );
            }
            // Intra-group completeness: a local channel to every sibling.
            for d in t.switches_in_group(t.group_of(s)) {
                if d != s {
                    let c = t
                        .channel_between(s, d)
                        .unwrap_or_else(|| panic!("{p}: missing local {s}->{d}"));
                    assert_eq!(t.channel(c).kind, ChannelKind::Local);
                }
            }
        }
        // Global channel total: g·a·h directed channels.
        let n_global = t
            .channels()
            .iter()
            .filter(|c| c.kind == ChannelKind::Global)
            .count();
        assert_eq!(n_global, (g * a * h) as usize, "{p}");
    }
}

#[test]
fn degraded_views_keep_the_invariants_minus_the_failed_channels() {
    for t in valid_grid() {
        let p = t.params();
        let mut rng = SmallRng::seed_from_u64(0xD1E);
        for trial in 0..3u64 {
            let frac = rng.gen_range(0.0..0.4);
            let mut faults = FaultSet::sample_global_links(&t, frac, 0xFA17 + trial);
            if t.num_switches() > 1 && trial == 2 {
                faults.fail_switch(SwitchId(rng.gen_range(0..t.num_switches() as u32)));
            }
            let deg = t.degrade(&faults);

            // The dead-channel count is exactly the number of dead flags.
            let dead = (0..t.num_channels())
                .filter(|&i| deg.channel_dead(tugal_topology::ChannelId(i as u32)))
                .count();
            assert_eq!(dead, deg.num_dead_channels(), "{p}");

            for s in 0..t.num_switches() as u32 {
                let s = SwitchId(s);
                if deg.switch_dead(s) {
                    // A dead switch keeps no live incident channel.
                    for c in t.channels() {
                        if c.src_switch() == Some(s) || c.dst_switch() == Some(s) {
                            assert!(deg.channel_dead(c.id), "{p}: live channel on dead {s}");
                        }
                    }
                    continue;
                }
                // Surviving global links stay bidirectional (cable
                // semantics: both directions die together) and within the
                // per-switch budget.
                let alive_out: Vec<_> = global_out(&t, s)
                    .into_iter()
                    .filter(|&(_, ch)| !deg.channel_dead(ch))
                    .collect();
                assert!(alive_out.len() <= p.h as usize, "{p}");
                for (peer, _) in alive_out {
                    let rev = t.global_channel(peer, s).unwrap();
                    assert!(
                        !deg.channel_dead(rev),
                        "{p}: cable {s}<->{peer} died in one direction only"
                    );
                }
                // Intra-group completeness among alive siblings: only an
                // explicit local-link failure may break it (none sampled
                // here).
                for d in t.switches_in_group(t.group_of(s)) {
                    if d != s && !deg.switch_dead(d) {
                        let c = t.channel_between(s, d).unwrap();
                        assert!(!deg.channel_dead(c), "{p}: local {s}->{d} died spuriously");
                    }
                }
            }

            // Exactly the channels of the sampled pairs died (failures are
            // pair-level: parallel cables between a pair die together).
            if faults.switches().is_empty() {
                let expected = t
                    .channels()
                    .iter()
                    .filter(|c| c.kind == ChannelKind::Global)
                    .filter(|c| {
                        let (u, v) = (c.src_switch().unwrap(), c.dst_switch().unwrap());
                        let pair = (SwitchId(u.0.min(v.0)), SwitchId(u.0.max(v.0)));
                        faults.global_links().contains(&pair)
                    })
                    .count();
                assert_eq!(deg.num_dead_channels(), expected, "{p}");
            }
        }
    }
}

#[test]
fn sampling_is_deterministic_and_nested() {
    let t = Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap();
    let a = FaultSet::sample_global_links(&t, 0.25, 7);
    let b = FaultSet::sample_global_links(&t, 0.25, 7);
    assert_eq!(a, b, "same seed and fraction must sample the same cables");
    assert!(!a.is_empty());

    // Same seed, growing fraction: supersets (one shuffled prefix).
    let small = FaultSet::sample_global_links(&t, 0.1, 7);
    let large = FaultSet::sample_global_links(&t, 0.3, 7);
    for link in small.global_links() {
        assert!(
            large.global_links().contains(link),
            "larger fraction must contain the smaller sample"
        );
    }

    // A different seed picks a different set (for these parameters).
    let other = FaultSet::sample_global_links(&t, 0.25, 8);
    assert_ne!(a, other);
}

#[test]
fn switch_failure_kills_exactly_the_incident_channels() {
    let t = Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap();
    let victim = SwitchId(3);
    let mut faults = FaultSet::empty();
    faults.fail_switch(victim);
    let deg = t.degrade(&faults);
    assert!(deg.switch_dead(victim));
    assert_eq!(deg.num_dead_switches(), 1);
    for c in t.channels() {
        let incident = c.src_switch() == Some(victim)
            || c.dst_switch() == Some(victim)
            || match (c.src, c.dst) {
                // Terminal channels of the victim's nodes.
                (tugal_topology::Endpoint::Node(n), _) | (_, tugal_topology::Endpoint::Node(n)) => {
                    t.switch_of_node(n) == victim
                }
                _ => false,
            };
        assert_eq!(deg.channel_dead(c.id), incident, "channel {:?}", c.id);
    }
}

/// A representative spread of valid shapes for the zoo contract: maximal
/// (`L = 1`), dense (`L > 1`), tiny `g`, and a paper topology.
fn zoo_params() -> [DragonflyParams; 5] {
    [
        DragonflyParams::new(2, 4, 2, 9),
        DragonflyParams::new(2, 4, 2, 5),
        DragonflyParams::new(1, 2, 1, 3),
        DragonflyParams::new(2, 3, 2, 4),
        DragonflyParams::new(4, 8, 4, 9),
    ]
}

/// The arrangement contract, checked for every zoo arrangement × lag:
///
/// * global links are symmetric (equal directed multiplicity both ways),
/// * no global link stays within a group,
/// * each group emits exactly `a·h·lag` directed global channels,
/// * `channel_between` agrees with a brute-force scan of the channel list.
#[test]
fn arrangement_contract_across_the_zoo() {
    for params in zoo_params() {
        for spec in ArrangementSpec::zoo(0x2007) {
            for lag in [1u32, 2, 3] {
                let t = Dragonfly::with_shape(params, spec.build().as_ref(), lag)
                    .unwrap_or_else(|e| panic!("{params} {spec} lag{lag}: {e}"));
                let tag = format!("{params} {spec} lag{lag}");
                let a = params.a;

                // Directed global multiplicity per ordered switch pair.
                let mut mult = std::collections::HashMap::<(u32, u32), u32>::new();
                let mut per_group = vec![0u32; params.g as usize];
                for c in t
                    .channels()
                    .iter()
                    .filter(|c| c.kind == ChannelKind::Global)
                {
                    let (u, v) = (c.src_switch().unwrap(), c.dst_switch().unwrap());
                    assert_ne!(u.0 / a, v.0 / a, "{tag}: intra-group global {u}->{v}");
                    *mult.entry((u.0, v.0)).or_default() += 1;
                    per_group[(u.0 / a) as usize] += 1;
                }
                for (&(u, v), &n) in &mult {
                    assert_eq!(
                        mult.get(&(v, u)),
                        Some(&n),
                        "{tag}: asymmetric multiplicity {u}->{v}"
                    );
                }
                for (gi, &n) in per_group.iter().enumerate() {
                    assert_eq!(
                        n,
                        params.a * params.h * lag,
                        "{tag}: group {gi} emits {n} global channels"
                    );
                }

                // Gateway lists grow by exactly the lag factor.
                for from in 0..params.g {
                    for to in 0..params.g {
                        if from == to {
                            continue;
                        }
                        let gw =
                            t.gateways(tugal_topology::GroupId(from), tugal_topology::GroupId(to));
                        assert_eq!(
                            gw.len() as u32,
                            t.links_per_group_pair(),
                            "{tag}: gateways {from}->{to}"
                        );
                    }
                }

                // channel_between == first matching network channel by id.
                let n_net = t.num_network_channels();
                for u in 0..t.num_switches() as u32 {
                    for v in 0..t.num_switches() as u32 {
                        let (u, v) = (SwitchId(u), SwitchId(v));
                        let brute = t.channels()[..n_net]
                            .iter()
                            .find(|c| c.src_switch() == Some(u) && c.dst_switch() == Some(v))
                            .map(|c| c.id);
                        assert_eq!(t.channel_between(u, v), brute, "{tag}: {u}->{v}");
                    }
                }
            }
        }
    }
}

/// Palmtree is the relative arrangement with the group indices reflected:
/// mapping switch `(G, j) → ((g − G) mod g, j)` carries the relative
/// wiring cable-for-cable onto the palmtree wiring (the literature's
/// palmtree is "relative, walked downward").
#[test]
fn palmtree_is_a_group_reflection_of_relative() {
    for params in [
        DragonflyParams::new(4, 8, 4, 9),
        DragonflyParams::new(4, 8, 4, 17),
        DragonflyParams::new(2, 4, 2, 5),
    ] {
        let palm =
            Dragonfly::with_shape(params, ArrangementSpec::Palmtree.build().as_ref(), 1).unwrap();
        let rel =
            Dragonfly::with_shape(params, ArrangementSpec::Relative.build().as_ref(), 1).unwrap();
        let (a, g) = (params.a, params.g);
        let reflect = |s: SwitchId| SwitchId(((g - s.0 / a) % g) * a + s.0 % a);
        assert_eq!(
            cable_multiset(&palm, |s| s),
            cable_multiset(&rel, reflect),
            "{params}: palmtree != reflected relative"
        );
    }
}

/// Undirected global cable multiset under a switch relabeling.
fn cable_multiset(
    t: &Dragonfly,
    map: impl Fn(SwitchId) -> SwitchId,
) -> std::collections::BTreeMap<(u32, u32), u32> {
    let mut cables = std::collections::BTreeMap::new();
    for c in t
        .channels()
        .iter()
        .filter(|c| c.kind == ChannelKind::Global)
    {
        let (u, v) = (map(c.src_switch().unwrap()), map(c.dst_switch().unwrap()));
        if u.0 < v.0 {
            *cables.entry((u.0, v.0)).or_default() += 1;
        }
    }
    cables
}

/// Triangle count of the switch-level global graph (boolean adjacency) —
/// invariant under any switch relabeling.
fn global_triangles(t: &Dragonfly) -> usize {
    let n = t.num_switches();
    let mut adj = vec![false; n * n];
    for c in t
        .channels()
        .iter()
        .filter(|c| c.kind == ChannelKind::Global)
    {
        let (u, v) = (c.src_switch().unwrap(), c.dst_switch().unwrap());
        adj[u.index() * n + v.index()] = true;
    }
    let mut count = 0;
    for x in 0..n {
        for y in x + 1..n {
            if !adj[x * n + y] {
                continue;
            }
            for z in y + 1..n {
                if adj[x * n + z] && adj[y * n + z] {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Palmtree is *not* a relabeling of the paper's absolute arrangement: the
/// triangle count of the switch-level global graph is invariant under any
/// relabeling, and on `dfly(4,8,4,9)` absolute has 80 triangles while
/// palmtree (like relative, its reflection) has none.
#[test]
fn palmtree_genuinely_differs_from_absolute() {
    let params = DragonflyParams::new(4, 8, 4, 9);
    let palm =
        Dragonfly::with_shape(params, ArrangementSpec::Palmtree.build().as_ref(), 1).unwrap();
    let abs = Dragonfly::with_shape(params, ArrangementSpec::Absolute.build().as_ref(), 1).unwrap();
    assert_eq!(global_triangles(&abs), 80);
    assert_eq!(global_triangles(&palm), 0);
}

#[test]
fn empty_faults_degrade_to_a_pristine_view() {
    for t in valid_grid().into_iter().take(8) {
        let deg = t.degrade(&FaultSet::empty());
        assert!(deg.is_pristine());
        assert_eq!(deg.num_dead_channels(), 0);
        assert_eq!(deg.num_dead_switches(), 0);
        for gs in 0..t.num_groups() as u32 {
            for gd in 0..t.num_groups() as u32 {
                let (gs, gd) = (tugal_topology::GroupId(gs), tugal_topology::GroupId(gd));
                assert_eq!(deg.gateways(gs, gd), t.gateways(gs, gd));
            }
        }
    }
}
