//! The [`Dragonfly`] network object: switches, nodes, channels and the
//! index structures hot loops need.

use crate::arrangement::{AbsoluteArrangement, GlobalArrangement};
use crate::channels::{Channel, ChannelId, ChannelKind, Endpoint};
use crate::ids::{GroupId, NodeId, SwitchId};
use crate::params::{DragonflyParams, TopologyError};

/// A fully built `dfly(p, a, h, g)` network.
///
/// Construction wires the intra-group all-to-all, the global links (absolute
/// arrangement by default) and the terminal links, and precomputes:
///
/// * a dense, stable [`ChannelId`] space (local, global, injection, ejection
///   channels in that order),
/// * per-switch outgoing global channel lists,
/// * per-ordered-group-pair *gateway* lists — the `(src switch, dst switch,
///   channel)` triples of the global links from one group to another, which
///   is the inner loop of MIN/VLB path enumeration.
#[derive(Debug, Clone)]
pub struct Dragonfly {
    params: DragonflyParams,
    arrangement_name: &'static str,
    /// Stable arrangement identity (seeded arrangements carry their seed).
    arrangement_id: String,
    /// Parallel copies of each global cable (`1` = the plain arrangement).
    global_lag: u32,
    /// Precomputed digest/cache-key suffix: empty for the default shape.
    shape_suffix: String,
    channels: Vec<Channel>,
    /// Outgoing global channels per switch: `(channel, remote switch)`.
    global_out: Vec<Vec<(ChannelId, SwitchId)>>,
    /// For each ordered group pair `(from · g) + to`, the global links
    /// leaving `from` toward `to`.
    gateways: Vec<Vec<(SwitchId, SwitchId, ChannelId)>>,
    /// Group of each switch (`s / a`, precomputed: `group_of` sits on the
    /// per-hop hot path of the simulation engine, and `a` is a runtime
    /// value, so the division is real).
    switch_group: Vec<u32>,
    /// Directed channel between each ordered switch pair (`u32::MAX` for
    /// none): one load instead of a division plus a scan of the global
    /// adjacency.  `num_switches()²` entries — 2 MB at the paper's largest
    /// evaluated topology (702 switches).
    pair_chan: Vec<u32>,
    base_injection: usize,
    base_ejection: usize,
}

impl Dragonfly {
    /// Builds the topology with the paper's default (absolute) global-link
    /// arrangement.
    pub fn new(params: DragonflyParams) -> Result<Self, TopologyError> {
        Self::with_arrangement(params, &AbsoluteArrangement)
    }

    /// Builds the topology with an explicit global-link arrangement (and
    /// `global_lag = 1`).
    pub fn with_arrangement(
        params: DragonflyParams,
        arrangement: &dyn GlobalArrangement,
    ) -> Result<Self, TopologyError> {
        Self::with_shape(params, arrangement, 1)
    }

    /// Builds the topology with an explicit arrangement and `global_lag`
    /// parallel copies of every global cable (caminos-lib's `global_lag`):
    /// each switch then has `h · global_lag` physical global ports and
    /// every pair of groups is joined by `lag × a·h/(g−1)` cables.
    ///
    /// `with_shape(params, &AbsoluteArrangement, 1)` is byte-identical to
    /// [`Dragonfly::new`] — the default shape is not a special case, it is
    /// the lag-1 point of this constructor.
    pub fn with_shape(
        params: DragonflyParams,
        arrangement: &dyn GlobalArrangement,
        global_lag: u32,
    ) -> Result<Self, TopologyError> {
        params.validate()?;
        if global_lag == 0 {
            return Err(TopologyError::ZeroGlobalLag);
        }
        let (a, g, p, h) = (params.a, params.g, params.p, params.h);
        let s_count = params.num_switches();
        let n_count = params.num_nodes();

        let n_local = s_count * (a as usize - 1);
        let undirected = arrangement.links(&params);
        let n_global = undirected.len() * 2 * global_lag as usize;
        debug_assert_eq!(n_global, s_count * (h * global_lag) as usize);
        let mut channels = Vec::with_capacity(n_local + n_global + 2 * n_count);

        // 1. Local channels: for each switch, one to every other switch of
        //    its group, ordered by the peer's local index.
        for s in 0..s_count as u32 {
            let group = s / a;
            for lt in 0..a {
                let t = group * a + lt;
                if t == s {
                    continue;
                }
                channels.push(Channel {
                    id: ChannelId::from_index(channels.len()),
                    src: Endpoint::Switch(SwitchId(s)),
                    dst: Endpoint::Switch(SwitchId(t)),
                    kind: ChannelKind::Local,
                });
            }
        }
        // 2. Global channels: both directions of every cable, `global_lag`
        //    sibling cables consecutively per arrangement cable — so the
        //    cable-partner relation stays "flip the low id bit" and the
        //    lag-1 layout is bit-identical to the historical one.
        let mut global_out: Vec<Vec<(ChannelId, SwitchId)>> =
            vec![Vec::with_capacity((h * global_lag) as usize); s_count];
        for &(u, v) in &undirected {
            for _ in 0..global_lag {
                for (x, y) in [(u, v), (v, u)] {
                    let id = ChannelId::from_index(channels.len());
                    channels.push(Channel {
                        id,
                        src: Endpoint::Switch(x),
                        dst: Endpoint::Switch(y),
                        kind: ChannelKind::Global,
                    });
                    global_out[x.index()].push((id, y));
                }
            }
        }
        let base_injection = channels.len();

        // 3. Terminal channels.
        for n in 0..n_count as u32 {
            channels.push(Channel {
                id: ChannelId::from_index(channels.len()),
                src: Endpoint::Node(NodeId(n)),
                dst: Endpoint::Switch(SwitchId(n / p)),
                kind: ChannelKind::Injection,
            });
        }
        let base_ejection = channels.len();
        for n in 0..n_count as u32 {
            channels.push(Channel {
                id: ChannelId::from_index(channels.len()),
                src: Endpoint::Switch(SwitchId(n / p)),
                dst: Endpoint::Node(NodeId(n)),
                kind: ChannelKind::Ejection,
            });
        }

        // Gateway lists per ordered group pair.
        let mut gateways = vec![Vec::new(); (g * g) as usize];
        for (s, outs) in global_out.iter().enumerate() {
            let from = s as u32 / a;
            for &(c, t) in outs {
                let to = t.0 / a;
                gateways[(from * g + to) as usize].push((SwitchId(s as u32), t, c));
            }
        }
        // Deterministic order regardless of arrangement iteration order.
        for gw in &mut gateways {
            gw.sort_unstable_by_key(|&(u, v, _)| (u, v));
        }

        let switch_group: Vec<u32> = (0..s_count as u32).map(|s| s / a).collect();
        // Scanning channels in id order keeps `pair_chan` on the first
        // (lowest-id) channel per pair, matching the documented
        // "local first, then any parallel global" resolution.
        let mut pair_chan = vec![u32::MAX; s_count * s_count];
        for ch in &channels[..base_injection] {
            if let (Endpoint::Switch(u), Endpoint::Switch(v)) = (ch.src, ch.dst) {
                let slot = &mut pair_chan[u.index() * s_count + v.index()];
                if *slot == u32::MAX {
                    *slot = ch.id.0;
                }
            }
        }

        let arrangement_id = arrangement.id();
        // Empty for the default shape, so every digest/cache key that
        // appends it stays byte-identical to pre-zoo runs.
        let shape_suffix = if arrangement_id == "absolute" && global_lag == 1 {
            String::new()
        } else {
            format!("|{arrangement_id}|lag{global_lag}")
        };
        Ok(Self {
            params,
            arrangement_name: arrangement.name(),
            arrangement_id,
            global_lag,
            shape_suffix,
            channels,
            global_out,
            gateways,
            switch_group,
            pair_chan,
            base_injection,
            base_ejection,
        })
    }

    /// The defining parameters.
    #[inline]
    pub fn params(&self) -> DragonflyParams {
        self.params
    }

    /// Name of the global-link arrangement used.
    pub fn arrangement_name(&self) -> &'static str {
        self.arrangement_name
    }

    /// Stable arrangement identity: the name, plus the seed for seeded
    /// arrangements (e.g. `random:0x2007`).
    pub fn arrangement_id(&self) -> &str {
        &self.arrangement_id
    }

    /// Parallel copies of each global cable (`1` unless built through
    /// [`Dragonfly::with_shape`] with a larger lag).
    #[inline]
    pub fn global_lag(&self) -> u32 {
        self.global_lag
    }

    /// Shape-identity suffix for digests and cache keys: the empty string
    /// for the default shape (absolute arrangement, `global_lag = 1`) —
    /// keeping historical keys byte-identical — otherwise
    /// `"|<arrangement id>|lag<l>"`.
    pub fn shape_suffix(&self) -> &str {
        &self.shape_suffix
    }

    /// Number of switches, `g · a`.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.params.num_switches()
    }

    /// Number of compute nodes, `g · a · p`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.params.num_nodes()
    }

    /// Number of groups, `g`.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.params.g as usize
    }

    /// Parallel global links between each pair of groups,
    /// `global_lag × a·h/(g−1)`.
    #[inline]
    pub fn links_per_group_pair(&self) -> u32 {
        self.params.links_per_group_pair() * self.global_lag
    }

    /// All directed channels, densely indexed by [`ChannelId`].
    #[inline]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Channel metadata by id.
    #[inline]
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Total number of directed channels (local + global + terminal).
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of switch-to-switch directed channels (local + global); these
    /// occupy the low end of the [`ChannelId`] space.
    #[inline]
    pub fn num_network_channels(&self) -> usize {
        self.base_injection
    }

    /// Group of a switch.
    #[inline]
    pub fn group_of(&self, s: SwitchId) -> GroupId {
        GroupId(self.switch_group[s.index()])
    }

    /// Local index of a switch within its group.
    #[inline]
    pub fn local_index(&self, s: SwitchId) -> u32 {
        s.0 % self.params.a
    }

    /// Switch with a given local index in a group.
    #[inline]
    pub fn switch_in_group(&self, g: GroupId, local: u32) -> SwitchId {
        debug_assert!(local < self.params.a);
        SwitchId(g.0 * self.params.a + local)
    }

    /// Switches of a group, in local-index order.
    pub fn switches_in_group(&self, g: GroupId) -> impl Iterator<Item = SwitchId> {
        let base = g.0 * self.params.a;
        (base..base + self.params.a).map(SwitchId)
    }

    /// The switch a node attaches to.
    #[inline]
    pub fn switch_of_node(&self, n: NodeId) -> SwitchId {
        SwitchId(n.0 / self.params.p)
    }

    /// Group of a node.
    #[inline]
    pub fn group_of_node(&self, n: NodeId) -> GroupId {
        self.group_of(self.switch_of_node(n))
    }

    /// Nodes attached to a switch, in terminal order.
    pub fn nodes_of_switch(&self, s: SwitchId) -> impl Iterator<Item = NodeId> {
        let base = s.0 * self.params.p;
        (base..base + self.params.p).map(NodeId)
    }

    /// Node `(g_i, s_j, n_k)` in the paper's coordinate notation.
    #[inline]
    pub fn node_at(&self, g: GroupId, s_local: u32, n_local: u32) -> NodeId {
        debug_assert!(s_local < self.params.a && n_local < self.params.p);
        NodeId((g.0 * self.params.a + s_local) * self.params.p + n_local)
    }

    /// Decomposes a node into the paper's `(g_i, s_j, n_k)` coordinates.
    #[inline]
    pub fn node_coords(&self, n: NodeId) -> (GroupId, u32, u32) {
        let s = n.0 / self.params.p;
        (
            GroupId(s / self.params.a),
            s % self.params.a,
            n.0 % self.params.p,
        )
    }

    /// The directed local channel between two distinct switches of the same
    /// group (O(1), arithmetic on the dense channel layout).
    #[inline]
    pub fn local_channel(&self, s: SwitchId, t: SwitchId) -> ChannelId {
        debug_assert_eq!(self.group_of(s), self.group_of(t));
        debug_assert_ne!(s, t);
        let a = self.params.a;
        let (ls, lt) = (s.0 % a, t.0 % a);
        let rank = if lt < ls { lt } else { lt - 1 };
        ChannelId(s.0 * (a - 1) + rank)
    }

    /// Outgoing global channels of a switch: `(channel, remote switch)`.
    #[inline]
    pub fn global_out(&self, s: SwitchId) -> &[(ChannelId, SwitchId)] {
        &self.global_out[s.index()]
    }

    /// First directed global channel from switch `u` to switch `v`, if any.
    pub fn global_channel(&self, u: SwitchId, v: SwitchId) -> Option<ChannelId> {
        self.global_out[u.index()]
            .iter()
            .find(|&&(_, t)| t == v)
            .map(|&(c, _)| c)
    }

    /// The opposite direction of a global cable: global channels are laid
    /// out as consecutive `(forward, reverse)` pairs per physical cable,
    /// so the partner is one id away.
    ///
    /// # Panics
    /// (Debug builds) if `c` is not a global channel.
    #[inline]
    pub fn cable_partner(&self, c: ChannelId) -> ChannelId {
        let base = self.num_switches() * (self.params.a as usize - 1);
        debug_assert!(
            c.index() >= base && c.index() < self.base_injection,
            "{c:?} is not a global channel"
        );
        ChannelId::from_index(base + ((c.index() - base) ^ 1))
    }

    /// The global links from group `from` toward group `to`:
    /// `(source switch, destination switch, channel)` triples, sorted.
    #[inline]
    pub fn gateways(&self, from: GroupId, to: GroupId) -> &[(SwitchId, SwitchId, ChannelId)] {
        &self.gateways[(from.0 * self.params.g + to.0) as usize]
    }

    /// Injection channel of a node (node → switch).
    #[inline]
    pub fn injection_channel(&self, n: NodeId) -> ChannelId {
        ChannelId::from_index(self.base_injection + n.index())
    }

    /// Ejection channel toward a node (switch → node).
    #[inline]
    pub fn ejection_channel(&self, n: NodeId) -> ChannelId {
        ChannelId::from_index(self.base_ejection + n.index())
    }

    /// The directed channel between two switches regardless of kind
    /// (local first, then any parallel global link).  One table load — this
    /// is the engine's per-hop path-to-channel resolution.
    #[inline]
    pub fn channel_between(&self, u: SwitchId, v: SwitchId) -> Option<ChannelId> {
        match self.pair_chan[u.index() * self.num_switches() + v.index()] {
            u32::MAX => None,
            c => Some(ChannelId(c)),
        }
    }
}
