//! Fault injection: failed links and switches, and the degraded view of a
//! [`Dragonfly`] they induce.
//!
//! A [`FaultSet`] names the failed components — whole switches, local
//! links, global links — either explicitly or through deterministic seeded
//! sampling.  Link failures are *cable-level*: both directed channels of a
//! cable die together (a cut fibre takes out both directions).  A switch
//! failure kills every channel incident to the switch, including the
//! terminal channels of its attached nodes.
//!
//! [`Dragonfly::degrade`] resolves a fault set into a [`Degraded`] view:
//! per-channel and per-switch death masks plus gateway lists with the dead
//! entries filtered out, in the *same deterministic order* as the pristine
//! lists — degrading by an empty fault set yields data byte-identical to
//! the pristine topology, which the differential tests pin.

use crate::channels::{ChannelId, ChannelKind, Endpoint};
use crate::dragonfly::Dragonfly;
use crate::ids::{GroupId, SwitchId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;
use std::fmt;

/// A set of failed components of a dragonfly.
///
/// Links are stored as unordered switch pairs (both directions of the
/// cable fail together).  A *pair-level* global fault kills every
/// parallel cable between its switches (a cut conduit); a *sibling*
/// fault ([`FaultSet::fail_global_sibling`]) kills exactly one of the
/// `global_lag × L` parallel cables.  The set is purely descriptive;
/// resolution against a concrete topology happens in
/// [`Dragonfly::degrade`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    global_links: Vec<(SwitchId, SwitchId)>,
    local_links: Vec<(SwitchId, SwitchId)>,
    switches: Vec<SwitchId>,
    /// `(u, v, k)`: the `k`-th parallel global cable between `u` and `v`,
    /// counted in channel-id order from the lower switch.
    global_siblings: Vec<(SwitchId, SwitchId, u32)>,
}

// Hand-written to render exactly like the old three-field derive when no
// sibling faults are present: journal digests and golden strings format
// fault sets through `Debug`, and pre-zoo runs must keep their identity.
impl fmt::Debug for FaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("FaultSet");
        d.field("global_links", &self.global_links)
            .field("local_links", &self.local_links)
            .field("switches", &self.switches);
        if !self.global_siblings.is_empty() {
            d.field("global_siblings", &self.global_siblings);
        }
        d.finish()
    }
}

fn normalize(u: SwitchId, v: SwitchId) -> (SwitchId, SwitchId) {
    if u.0 <= v.0 {
        (u, v)
    } else {
        (v, u)
    }
}

impl FaultSet {
    /// The empty fault set (a pristine network).
    pub fn empty() -> Self {
        Self::default()
    }

    /// True when nothing is marked failed.
    pub fn is_empty(&self) -> bool {
        self.global_links.is_empty()
            && self.local_links.is_empty()
            && self.switches.is_empty()
            && self.global_siblings.is_empty()
    }

    /// Marks the global cable between `u` and `v` (both directions) failed.
    pub fn fail_global_link(&mut self, u: SwitchId, v: SwitchId) -> &mut Self {
        let pair = normalize(u, v);
        if !self.global_links.contains(&pair) {
            self.global_links.push(pair);
        }
        self
    }

    /// Marks the local cable between `u` and `v` (both directions) failed.
    pub fn fail_local_link(&mut self, u: SwitchId, v: SwitchId) -> &mut Self {
        let pair = normalize(u, v);
        if !self.local_links.contains(&pair) {
            self.local_links.push(pair);
        }
        self
    }

    /// Marks a whole switch failed (all incident channels, terminals
    /// included).
    pub fn fail_switch(&mut self, s: SwitchId) -> &mut Self {
        if !self.switches.contains(&s) {
            self.switches.push(s);
        }
        self
    }

    /// Marks only the `k`-th parallel global cable between `u` and `v`
    /// failed (both directions), leaving its siblings alive — the
    /// per-sibling alternative to the pair-level
    /// [`FaultSet::fail_global_link`], which kills all parallel cables
    /// together.  Cables are counted in channel-id order from the
    /// lower-indexed switch, so `k` is stable across shard counts and
    /// reruns.
    pub fn fail_global_sibling(&mut self, u: SwitchId, v: SwitchId, k: u32) -> &mut Self {
        let (lo, hi) = normalize(u, v);
        if !self.global_siblings.contains(&(lo, hi, k)) {
            self.global_siblings.push((lo, hi, k));
        }
        self
    }

    /// Failed global cables, as normalized `(low, high)` switch pairs.
    pub fn global_links(&self) -> &[(SwitchId, SwitchId)] {
        &self.global_links
    }

    /// Failed local cables, as normalized `(low, high)` switch pairs.
    pub fn local_links(&self) -> &[(SwitchId, SwitchId)] {
        &self.local_links
    }

    /// Failed switches.
    pub fn switches(&self) -> &[SwitchId] {
        &self.switches
    }

    /// Failed single parallel cables, as normalized `(low, high, k)`
    /// triples.
    pub fn global_siblings(&self) -> &[(SwitchId, SwitchId, u32)] {
        &self.global_siblings
    }

    /// Samples `fraction` of the global cables of `topo` (rounded to the
    /// nearest count) uniformly without replacement, deterministically in
    /// `seed`.  The selected cables are stored sorted, so equal seeds give
    /// equal fault sets regardless of topology iteration details.
    pub fn sample_global_links(topo: &Dragonfly, fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of [0,1]");
        // Each cable appears as two directed channels; canonicalize on the
        // low-to-high direction to enumerate cables once, in channel order.
        let cables: Vec<(SwitchId, SwitchId)> = topo
            .channels()
            .iter()
            .filter(|c| c.kind == ChannelKind::Global)
            .filter_map(|c| match (c.src, c.dst) {
                (Endpoint::Switch(u), Endpoint::Switch(v)) if u.0 < v.0 => Some((u, v)),
                _ => None,
            })
            .collect();
        let take = ((cables.len() as f64) * fraction).round() as usize;
        let mut order: Vec<usize> = (0..cables.len()).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let mut chosen: Vec<(SwitchId, SwitchId)> = order[..take.min(cables.len())]
            .iter()
            .map(|&i| cables[i])
            .collect();
        chosen.sort_unstable();
        // Topologies with parallel cables (h > g−1 per peer) can sample the
        // same switch pair twice; failures are pair-level, so dedup.
        chosen.dedup();
        FaultSet {
            global_links: chosen,
            ..FaultSet::default()
        }
    }

    /// Samples `count` distinct switches uniformly, deterministically in
    /// `seed`, stored sorted.
    pub fn sample_switches(topo: &Dragonfly, count: usize, seed: u64) -> Self {
        let mut order: Vec<u32> = (0..topo.num_switches() as u32).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let mut chosen: Vec<SwitchId> = order[..count.min(order.len())]
            .iter()
            .map(|&s| SwitchId(s))
            .collect();
        chosen.sort_unstable();
        FaultSet {
            switches: chosen,
            ..FaultSet::default()
        }
    }
}

/// The degraded view of one topology under one [`FaultSet`]: death masks
/// over the dense channel/switch id spaces plus pre-filtered gateway
/// lists, so fault-aware path enumeration runs at pristine-enumeration
/// speed.
///
/// The view is an owned snapshot (it does not borrow the topology), and
/// the surviving gateway entries keep the pristine sorted order —
/// degrading by [`FaultSet::empty`] reproduces the pristine lists exactly.
#[derive(Debug, Clone)]
pub struct Degraded {
    g: u32,
    dead_channel: Vec<bool>,
    dead_switch: Vec<bool>,
    n_dead_channels: usize,
    /// Gateway lists per ordered group pair, dead entries removed.
    gateways: Vec<Vec<(SwitchId, SwitchId, ChannelId)>>,
}

impl Degraded {
    /// True when nothing died (the view is equivalent to the pristine
    /// topology).
    pub fn is_pristine(&self) -> bool {
        self.n_dead_channels == 0
    }

    /// True when the directed channel is dead.
    #[inline]
    pub fn channel_dead(&self, c: ChannelId) -> bool {
        self.dead_channel[c.index()]
    }

    /// True when the switch is dead.
    #[inline]
    pub fn switch_dead(&self, s: SwitchId) -> bool {
        self.dead_switch[s.index()]
    }

    /// Death mask over the dense directed-channel id space.
    pub fn dead_channel_mask(&self) -> &[bool] {
        &self.dead_channel
    }

    /// Death mask over the switch id space.
    pub fn dead_switch_mask(&self) -> &[bool] {
        &self.dead_switch
    }

    /// Number of dead directed channels (terminal channels included).
    pub fn num_dead_channels(&self) -> usize {
        self.n_dead_channels
    }

    /// Number of dead switches.
    pub fn num_dead_switches(&self) -> usize {
        self.dead_switch.iter().filter(|&&d| d).count()
    }

    /// The *alive* global links from group `from` toward group `to`, in
    /// the pristine sorted order minus the dead entries.
    #[inline]
    pub fn gateways(&self, from: GroupId, to: GroupId) -> &[(SwitchId, SwitchId, ChannelId)] {
        &self.gateways[(from.0 * self.g + to.0) as usize]
    }
}

impl Dragonfly {
    /// Resolves a fault set against this topology into a [`Degraded`]
    /// view.
    ///
    /// Semantics: a failed link kills both directed channels of its cable;
    /// a failed switch kills every incident channel (local, global, and
    /// the injection/ejection channels of its nodes).
    ///
    /// # Panics
    /// If the fault set names a switch outside the topology or a link with
    /// no cable between its endpoints (faults must describe real
    /// hardware).
    pub fn degrade(&self, faults: &FaultSet) -> Degraded {
        let g = self.params().g;
        let mut dead_switch = vec![false; self.num_switches()];
        for &s in faults.switches() {
            assert!(s.index() < dead_switch.len(), "fault names unknown {s}");
            dead_switch[s.index()] = true;
        }
        let check_link = |u: SwitchId, v: SwitchId, global: bool| {
            let ok = u != v
                && u.index() < self.num_switches()
                && v.index() < self.num_switches()
                && (self.group_of(u) != self.group_of(v)) == global
                && (!global || self.global_channel(u, v).is_some());
            assert!(
                ok,
                "fault names a non-existent {} link {u}-{v}",
                if global { "global" } else { "local" }
            );
        };
        let mut dead_global: HashSet<(u32, u32)> = HashSet::new();
        for &(u, v) in faults.global_links() {
            check_link(u, v, true);
            dead_global.insert((u.0.min(v.0), u.0.max(v.0)));
        }
        let mut dead_local: HashSet<(u32, u32)> = HashSet::new();
        for &(u, v) in faults.local_links() {
            check_link(u, v, false);
            dead_local.insert((u.0.min(v.0), u.0.max(v.0)));
        }
        // Sibling faults resolve to exactly one physical cable: the k-th
        // directed channel u→v in channel-id order plus its reverse
        // direction (the cable partner).
        let mut dead_sibling: HashSet<u32> = HashSet::new();
        for &(u, v, k) in faults.global_siblings() {
            check_link(u, v, true);
            let c = self
                .global_out(u)
                .iter()
                .filter(|&&(_, t)| t == v)
                .nth(k as usize)
                .map(|&(c, _)| c)
                .unwrap_or_else(|| {
                    panic!("fault names non-existent parallel cable {k} between {u}-{v}")
                });
            dead_sibling.insert(c.0);
            dead_sibling.insert(self.cable_partner(c).0);
        }

        let mut dead_channel = vec![false; self.num_channels()];
        let mut n_dead = 0usize;
        for ch in self.channels() {
            let dead = match (ch.src, ch.dst) {
                (Endpoint::Switch(u), Endpoint::Switch(v)) => {
                    let pair = (u.0.min(v.0), u.0.max(v.0));
                    dead_switch[u.index()]
                        || dead_switch[v.index()]
                        || match ch.kind {
                            ChannelKind::Global => {
                                dead_global.contains(&pair) || dead_sibling.contains(&ch.id.0)
                            }
                            _ => dead_local.contains(&pair),
                        }
                }
                (Endpoint::Node(_), Endpoint::Switch(s))
                | (Endpoint::Switch(s), Endpoint::Node(_)) => dead_switch[s.index()],
                _ => false,
            };
            if dead {
                dead_channel[ch.id.index()] = true;
                n_dead += 1;
            }
        }

        let mut gateways = Vec::with_capacity((g * g) as usize);
        for from in 0..g {
            for to in 0..g {
                let pristine = self.gateways(GroupId(from), GroupId(to));
                gateways.push(
                    pristine
                        .iter()
                        .filter(|&&(_, _, c)| !dead_channel[c.index()])
                        .copied()
                        .collect(),
                );
            }
        }

        Degraded {
            g,
            dead_channel,
            dead_switch,
            n_dead_channels: n_dead,
            gateways,
        }
    }
}
