//! Topology parameters and their validation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four parameters defining a `dfly(p, a, h, g)` topology (§2.1 of the
/// paper).
///
/// * `p` — compute nodes per switch,
/// * `a` — switches per group (intra-group topology is fully connected),
/// * `h` — global ports per switch,
/// * `g` — number of groups.
///
/// A *balanced* Dragonfly has `a = 2p = 2h` (Kim et al., ISCA'08); the
/// constructor does not enforce balance, only structural validity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DragonflyParams {
    /// Compute nodes per switch.
    pub p: u32,
    /// Switches per group.
    pub a: u32,
    /// Global ports per switch.
    pub h: u32,
    /// Number of groups.
    pub g: u32,
}

impl fmt::Debug for DragonflyParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dfly({},{},{},{})", self.p, self.a, self.h, self.g)
    }
}

impl fmt::Display for DragonflyParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dfly({},{},{},{})", self.p, self.a, self.h, self.g)
    }
}

/// Errors produced when validating [`DragonflyParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// One of `p`, `a`, `h`, `g` is zero.
    ZeroParameter,
    /// Fewer than two groups — a Dragonfly needs an inter-group network.
    TooFewGroups,
    /// More groups than the `a·h + 1` maximum supported by the radix.
    TooManyGroups {
        /// Requested number of groups.
        g: u32,
        /// Maximum `a·h + 1`.
        max: u32,
    },
    /// The arrangement requires `a·h` to be divisible by `g - 1` so every
    /// pair of groups gets the same number of global links.
    UnevenGlobalLinks {
        /// Total global ports per group, `a·h`.
        ports: u32,
        /// `g - 1` peer groups.
        peers: u32,
    },
    /// `global_lag` must be at least 1 (one copy of each global cable).
    ZeroGlobalLag,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ZeroParameter => write!(f, "p, a, h and g must all be nonzero"),
            TopologyError::TooFewGroups => write!(f, "a Dragonfly needs at least 2 groups"),
            TopologyError::TooManyGroups { g, max } => {
                write!(f, "{g} groups requested but a*h+1 = {max} is the maximum")
            }
            TopologyError::UnevenGlobalLinks { ports, peers } => write!(
                f,
                "a*h = {ports} global ports per group cannot be spread evenly over {peers} peer groups"
            ),
            TopologyError::ZeroGlobalLag => write!(f, "global_lag must be at least 1"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl DragonflyParams {
    /// Creates parameters without validating them; call
    /// [`DragonflyParams::validate`] or pass to
    /// [`crate::Dragonfly::new`], which validates.
    pub fn new(p: u32, a: u32, h: u32, g: u32) -> Self {
        Self { p, a, h, g }
    }

    /// The maximal *balanced* topology for a given `h`: `p = h`, `a = 2h`,
    /// `g = a·h + 1` (one global link between every pair of groups).
    pub fn max_balanced(h: u32) -> Self {
        Self::new(h, 2 * h, h, 2 * h * h + 1)
    }

    /// Checks structural validity (see [`TopologyError`]).
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.p == 0 || self.a == 0 || self.h == 0 || self.g == 0 {
            return Err(TopologyError::ZeroParameter);
        }
        if self.g < 2 {
            return Err(TopologyError::TooFewGroups);
        }
        let max = self.a * self.h + 1;
        if self.g > max {
            return Err(TopologyError::TooManyGroups { g: self.g, max });
        }
        if !(self.a * self.h).is_multiple_of(self.g - 1) {
            return Err(TopologyError::UnevenGlobalLinks {
                ports: self.a * self.h,
                peers: self.g - 1,
            });
        }
        Ok(())
    }

    /// Number of switches: `g · a`.
    pub fn num_switches(&self) -> usize {
        (self.g * self.a) as usize
    }

    /// Number of compute nodes: `g · a · p`.
    pub fn num_nodes(&self) -> usize {
        (self.g * self.a * self.p) as usize
    }

    /// Ports per switch: `p + (a-1) + h` (terminals, local, global).
    pub fn switch_radix(&self) -> u32 {
        self.p + self.a - 1 + self.h
    }

    /// Parallel global links between each pair of groups,
    /// `a·h / (g-1)`.
    pub fn links_per_group_pair(&self) -> u32 {
        (self.a * self.h) / (self.g - 1)
    }

    /// True when `a = 2p = 2h` (the load-balance recommendation of the
    /// original Dragonfly paper).
    pub fn is_balanced(&self) -> bool {
        self.a == 2 * self.p && self.a == 2 * self.h
    }

    /// The four topologies of Table 2 in the paper, in the order listed.
    pub fn paper_topologies() -> [DragonflyParams; 4] {
        [
            DragonflyParams::new(4, 8, 4, 33),
            DragonflyParams::new(4, 8, 4, 17),
            DragonflyParams::new(4, 8, 4, 9),
            DragonflyParams::new(13, 26, 13, 27),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_parameters() {
        // Table 2 of the paper (the 135-switch entry for dfly(4,8,4,17) is a
        // typo in the paper: 17 * 8 = 136).
        let t = DragonflyParams::paper_topologies();
        assert_eq!(t[0].num_nodes(), 1056);
        assert_eq!(t[0].num_switches(), 264);
        assert_eq!(t[0].links_per_group_pair(), 1);
        assert_eq!(t[1].num_nodes(), 544);
        assert_eq!(t[1].num_switches(), 136);
        assert_eq!(t[1].links_per_group_pair(), 2);
        assert_eq!(t[2].num_nodes(), 288);
        assert_eq!(t[2].num_switches(), 72);
        assert_eq!(t[2].links_per_group_pair(), 4);
        assert_eq!(t[3].num_nodes(), 9126);
        assert_eq!(t[3].num_switches(), 702);
        assert_eq!(t[3].links_per_group_pair(), 13);
        for p in t {
            p.validate().unwrap();
            assert!(p.is_balanced());
        }
    }

    #[test]
    fn switch_radix_matches_paper() {
        // "These topologies are built with 15-port switches."
        assert_eq!(DragonflyParams::new(4, 8, 4, 9).switch_radix(), 15);
    }

    #[test]
    fn max_balanced() {
        let p = DragonflyParams::max_balanced(4);
        assert_eq!(p, DragonflyParams::new(4, 8, 4, 33));
        p.validate().unwrap();
        let e = DragonflyParams::max_balanced(2);
        assert_eq!(e, DragonflyParams::new(2, 4, 2, 9));
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            DragonflyParams::new(0, 8, 4, 9).validate(),
            Err(TopologyError::ZeroParameter)
        );
        assert_eq!(
            DragonflyParams::new(4, 8, 4, 1).validate(),
            Err(TopologyError::TooFewGroups)
        );
        assert_eq!(
            DragonflyParams::new(4, 8, 4, 34).validate(),
            Err(TopologyError::TooManyGroups { g: 34, max: 33 })
        );
        assert_eq!(
            DragonflyParams::new(4, 8, 4, 20).validate(),
            Err(TopologyError::UnevenGlobalLinks {
                ports: 32,
                peers: 19
            })
        );
    }

    #[test]
    fn display_format() {
        let p = DragonflyParams::new(4, 8, 4, 9);
        assert_eq!(format!("{p}"), "dfly(4,8,4,9)");
        assert_eq!(format!("{p:?}"), "dfly(4,8,4,9)");
    }
}
