//! Global-link arrangements.
//!
//! When `g < a·h + 1`, each group has more global ports than peer groups and
//! several *parallel* global links connect each pair of groups.  How the
//! `a·h` ports of a group map onto the `g−1` peers is the *arrangement*
//! (Hastings et al., *Comparing global link arrangements for Dragonfly
//! networks*, CLUSTER'15).  The paper uses "a minor variation of [the]
//! absolute arrangement" that forms bidirectional topologies for any valid
//! `g`; that variation is implemented here as [`AbsoluteArrangement`] and is
//! the default.  [`RelativeArrangement`] and [`CirculantArrangement`] are
//! provided because the paper notes its techniques are arrangement-agnostic,
//! which our test-suite and ablation benches exercise.
//!
//! All arrangements share port bookkeeping: group `gi` owns global ports
//! `0 .. a·h`, port `k` belongs to switch `gi·a + k/h` (each switch owns `h`
//! consecutive ports).  Writing `L = a·h / (g−1)` for the links per group
//! pair, port `k` is split as `k = r·(g−1) + o` into a *round* `r ∈ 0..L`
//! and an *offset* `o ∈ 0..g−1` that selects the peer group.

use crate::ids::SwitchId;
use crate::params::DragonflyParams;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// Maps each group's global ports onto peer groups.
///
/// Implementations return every undirected global cable exactly once.  The
/// [`crate::Dragonfly`] constructor validates the returned wiring (port
/// budgets, symmetry, even spread across group pairs).
pub trait GlobalArrangement {
    /// Human-readable arrangement name (used in reports).
    fn name(&self) -> &'static str;

    /// Stable identity for digests and cache keys.  Defaults to
    /// [`GlobalArrangement::name`]; seeded arrangements append their seed
    /// so distinct wirings never share an identity.
    fn id(&self) -> String {
        self.name().to_string()
    }

    /// All undirected global links, each reported once as
    /// `(lower switch, higher switch)` in unspecified order.
    fn links(&self, params: &DragonflyParams) -> Vec<(SwitchId, SwitchId)>;
}

/// Switch owning global port `k` of group `gi`.
fn port_switch(params: &DragonflyParams, gi: u32, k: u32) -> SwitchId {
    debug_assert!(k < params.a * params.h);
    SwitchId(gi * params.a + k / params.h)
}

/// The paper's default: a variation of the *absolute* arrangement.
///
/// Port `k = r·(g−1) + o` of group `gi` targets group `o` if `o < gi` and
/// `o + 1` otherwise (the group-index space with `gi` removed).  The peer
/// group reaches back with the mirrored offset in the same round, which makes
/// the wiring bidirectionally consistent for every `g` with
/// `(g−1) | a·h` — including non-maximal topologies, which is exactly the
/// "minor variation" the paper needs.  For the maximal topology
/// (`g = a·h + 1`, `L = 1`) this degenerates to the textbook absolute
/// arrangement.
#[derive(Debug, Clone, Copy, Default)]
pub struct AbsoluteArrangement;

impl GlobalArrangement for AbsoluteArrangement {
    fn name(&self) -> &'static str {
        "absolute"
    }

    fn links(&self, params: &DragonflyParams) -> Vec<(SwitchId, SwitchId)> {
        let (a, h, g) = (params.a, params.h, params.g);
        let rounds = (a * h) / (g - 1);
        let mut links = Vec::with_capacity((g * (g - 1) / 2 * rounds) as usize);
        for gi in 0..g {
            for k in 0..a * h {
                let r = k / (g - 1);
                let o = k % (g - 1);
                let gj = if o < gi { o } else { o + 1 };
                if gj < gi {
                    // Emitted once, from the lower-indexed peer.
                    continue;
                }
                debug_assert!(r < rounds);
                // Offset with which gj looks back at gi.
                let o_back = if gi < gj { gi } else { gi - 1 };
                let k_back = r * (g - 1) + o_back;
                links.push((port_switch(params, gi, k), port_switch(params, gj, k_back)));
            }
        }
        links
    }
}

/// The *relative* arrangement: port offset `o` of group `gi` targets group
/// `(gi + o + 1) mod g`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelativeArrangement;

impl GlobalArrangement for RelativeArrangement {
    fn name(&self) -> &'static str {
        "relative"
    }

    fn links(&self, params: &DragonflyParams) -> Vec<(SwitchId, SwitchId)> {
        let (a, h, g) = (params.a, params.h, params.g);
        let mut links = Vec::new();
        for gi in 0..g {
            for k in 0..a * h {
                let r = k / (g - 1);
                let o = k % (g - 1);
                let gj = (gi + o + 1) % g;
                // Emit each undirected cable once.  The peer reaches back
                // with offset o' = g - o - 2; break the tie by offset (or by
                // group index when the offsets coincide).
                let o_back = g - o - 2;
                if o > o_back || (o == o_back && gi > gj) {
                    continue;
                }
                let k_back = r * (g - 1) + o_back;
                links.push((port_switch(params, gi, k), port_switch(params, gj, k_back)));
            }
        }
        links
    }
}

/// The *circulant-based* arrangement: offsets alternate `+1, −1, +2, −2, …`
/// around the ring of groups.
#[derive(Debug, Clone, Copy, Default)]
pub struct CirculantArrangement;

impl GlobalArrangement for CirculantArrangement {
    fn name(&self) -> &'static str {
        "circulant"
    }

    fn links(&self, params: &DragonflyParams) -> Vec<(SwitchId, SwitchId)> {
        let (a, h, g) = (params.a, params.h, params.g);
        let mut links = Vec::new();
        for gi in 0..g {
            for k in 0..a * h {
                let r = k / (g - 1);
                let o = k % (g - 1);
                let d = o / 2 + 1;
                let half = g % 2 == 0 && d == g / 2 && o % 2 == 0;
                let (gj, o_back) = if half {
                    // +g/2 is its own inverse: pair equal offsets.
                    (((gi + d) % g), o)
                } else if o % 2 == 0 {
                    (((gi + d) % g), o + 1)
                } else {
                    (((gi + g - d) % g), o - 1)
                };
                if o > o_back || (o == o_back && gi > gj) {
                    continue;
                }
                let k_back = r * (g - 1) + o_back;
                links.push((port_switch(params, gi, k), port_switch(params, gj, k_back)));
            }
        }
        links
    }
}

/// The *palmtree* arrangement (the caminos-lib default): port
/// `k = r·(g−1) + o` of group `gi` targets group `(gi − o − 1) mod g`, so
/// each switch's consecutive ports walk consecutively *descending* peer
/// groups.  The peer reaches back with offset `g − 2 − o` in the same
/// round, making the wiring bidirectionally consistent for every valid
/// `g`.  Palmtree is group-relabeling-isomorphic to the relative
/// arrangement (reflect the group indices — pinned by the differential
/// test in `tests/properties.rs`) but wires different switch pairs than
/// the absolute arrangement, which is what earns it a zoo slot.
#[derive(Debug, Clone, Copy, Default)]
pub struct PalmtreeArrangement;

impl GlobalArrangement for PalmtreeArrangement {
    fn name(&self) -> &'static str {
        "palmtree"
    }

    fn links(&self, params: &DragonflyParams) -> Vec<(SwitchId, SwitchId)> {
        let (a, h, g) = (params.a, params.h, params.g);
        let mut links = Vec::new();
        for gi in 0..g {
            for k in 0..a * h {
                let r = k / (g - 1);
                let o = k % (g - 1);
                let gj = (gi + g - o - 1) % g;
                // The peer reaches back with o' = g - 2 - o (same round);
                // emit each undirected cable once, tie-broken as in the
                // relative arrangement.
                let o_back = g - 2 - o;
                if o > o_back || (o == o_back && gi > gj) {
                    continue;
                }
                let k_back = r * (g - 1) + o_back;
                links.push((port_switch(params, gi, k), port_switch(params, gj, k_back)));
            }
        }
        links
    }
}

/// A seeded *random* arrangement: an independent random permutation of
/// each group's `a·h` global ports, applied on top of the absolute base
/// pairing.  The group-level cable structure is untouched — every pair of
/// groups keeps exactly `a·h/(g−1)` cables, so gateway counts and even
/// spread hold like for the named arrangements — while the switch-level
/// endpoints are shuffled deterministically in `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomArrangement {
    /// Seed of the per-group port permutations; equal seeds give equal
    /// wirings.
    pub seed: u64,
}

impl GlobalArrangement for RandomArrangement {
    fn name(&self) -> &'static str {
        "random"
    }

    fn id(&self) -> String {
        format!("random:{:#x}", self.seed)
    }

    fn links(&self, params: &DragonflyParams) -> Vec<(SwitchId, SwitchId)> {
        let (a, h, g) = (params.a, params.h, params.g);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let perms: Vec<Vec<u32>> = (0..g)
            .map(|_| {
                let mut p: Vec<u32> = (0..a * h).collect();
                p.shuffle(&mut rng);
                p
            })
            .collect();
        let mut links = Vec::new();
        for gi in 0..g {
            for k in 0..a * h {
                let r = k / (g - 1);
                let o = k % (g - 1);
                let gj = if o < gi { o } else { o + 1 };
                if gj < gi {
                    continue;
                }
                let o_back = if gi < gj { gi } else { gi - 1 };
                let k_back = r * (g - 1) + o_back;
                links.push((
                    port_switch(params, gi, perms[gi as usize][k as usize]),
                    port_switch(params, gj, perms[gj as usize][k_back as usize]),
                ));
            }
        }
        links
    }
}

/// A named, copyable description of a global-link arrangement — the form
/// configs, replay capsules and CLI grids carry, round-tripping through
/// the identity strings of [`GlobalArrangement::id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrangementSpec {
    /// [`AbsoluteArrangement`] (the default).
    Absolute,
    /// [`RelativeArrangement`].
    Relative,
    /// [`CirculantArrangement`].
    Circulant,
    /// [`PalmtreeArrangement`].
    Palmtree,
    /// [`RandomArrangement`] with the given seed.
    Random(u64),
}

impl ArrangementSpec {
    /// The whole zoo: every fixed-name arrangement plus a random one under
    /// `seed` — the grid benches and property suites iterate.
    pub fn zoo(seed: u64) -> [ArrangementSpec; 5] {
        [
            ArrangementSpec::Absolute,
            ArrangementSpec::Relative,
            ArrangementSpec::Circulant,
            ArrangementSpec::Palmtree,
            ArrangementSpec::Random(seed),
        ]
    }

    /// Builds the arrangement this spec names.
    pub fn build(&self) -> Box<dyn GlobalArrangement> {
        match *self {
            ArrangementSpec::Absolute => Box::new(AbsoluteArrangement),
            ArrangementSpec::Relative => Box::new(RelativeArrangement),
            ArrangementSpec::Circulant => Box::new(CirculantArrangement),
            ArrangementSpec::Palmtree => Box::new(PalmtreeArrangement),
            ArrangementSpec::Random(seed) => Box::new(RandomArrangement { seed }),
        }
    }

    /// Parses the identity format produced by [`GlobalArrangement::id`]:
    /// a plain arrangement name, or `random:<seed>` with a decimal or
    /// `0x`-hex seed (`random` alone means seed 0).
    pub fn parse(s: &str) -> Option<ArrangementSpec> {
        match s {
            "absolute" => Some(ArrangementSpec::Absolute),
            "relative" => Some(ArrangementSpec::Relative),
            "circulant" => Some(ArrangementSpec::Circulant),
            "palmtree" => Some(ArrangementSpec::Palmtree),
            "random" => Some(ArrangementSpec::Random(0)),
            other => {
                let seed = other.strip_prefix("random:")?;
                let seed = if let Some(hex) = seed.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).ok()?
                } else {
                    seed.parse().ok()?
                };
                Some(ArrangementSpec::Random(seed))
            }
        }
    }
}

impl fmt::Display for ArrangementSpec {
    /// Renders the same identity string [`GlobalArrangement::id`] reports
    /// (so `parse(spec.to_string())` round-trips).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.build().id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_wiring(arr: &dyn GlobalArrangement, params: DragonflyParams) {
        let links = arr.links(&params);
        let expected = (params.g * params.a * params.h / 2) as usize;
        assert_eq!(links.len(), expected, "{} link count", arr.name());

        // Per-switch global-port budget.
        let mut degree = vec![0u32; params.num_switches()];
        for &(u, v) in &links {
            assert_ne!(u, v);
            degree[u.index()] += 1;
            degree[v.index()] += 1;
            // Never intra-group.
            assert_ne!(u.0 / params.a, v.0 / params.a, "{} intra-group", arr.name());
        }
        for (s, d) in degree.iter().enumerate() {
            assert_eq!(*d, params.h, "{} switch {s} port budget", arr.name());
        }

        // Even spread across group pairs.
        let mut per_pair = std::collections::HashMap::<(u32, u32), u32>::with_capacity(links.len());
        for &(u, v) in &links {
            let (ga, gb) = (u.0 / params.a, v.0 / params.a);
            let key = (ga.min(gb), ga.max(gb));
            *per_pair.entry(key).or_default() += 1;
        }
        let l = params.links_per_group_pair();
        assert_eq!(
            per_pair.len() as u32,
            params.g * (params.g - 1) / 2,
            "{} pair coverage",
            arr.name()
        );
        for (&pair, &n) in &per_pair {
            assert_eq!(n, l, "{} links between pair {pair:?}", arr.name());
        }
    }

    #[test]
    fn absolute_wiring_paper_topologies() {
        for params in DragonflyParams::paper_topologies() {
            check_wiring(&AbsoluteArrangement, params);
        }
    }

    #[test]
    fn absolute_wiring_small() {
        check_wiring(&AbsoluteArrangement, DragonflyParams::new(2, 4, 2, 9));
        check_wiring(&AbsoluteArrangement, DragonflyParams::new(2, 4, 2, 3));
        check_wiring(&AbsoluteArrangement, DragonflyParams::new(2, 4, 2, 5));
        check_wiring(&AbsoluteArrangement, DragonflyParams::new(1, 2, 1, 3));
    }

    #[test]
    fn relative_wiring() {
        check_wiring(&RelativeArrangement, DragonflyParams::new(2, 4, 2, 9));
        check_wiring(&RelativeArrangement, DragonflyParams::new(2, 4, 2, 5));
        check_wiring(&RelativeArrangement, DragonflyParams::new(4, 8, 4, 17));
        check_wiring(&RelativeArrangement, DragonflyParams::new(4, 8, 4, 9));
    }

    #[test]
    fn circulant_wiring() {
        check_wiring(&CirculantArrangement, DragonflyParams::new(2, 4, 2, 9));
        check_wiring(&CirculantArrangement, DragonflyParams::new(2, 4, 2, 5));
        check_wiring(&CirculantArrangement, DragonflyParams::new(4, 8, 4, 17));
        // Even g exercises the self-inverse half-offset case.
        check_wiring(&CirculantArrangement, DragonflyParams::new(2, 4, 2, 2));
        check_wiring(&CirculantArrangement, DragonflyParams::new(4, 8, 4, 5));
    }

    #[test]
    fn maximal_absolute_has_one_link_per_pair() {
        let params = DragonflyParams::new(2, 4, 2, 9);
        let links = AbsoluteArrangement.links(&params);
        assert_eq!(links.len(), 36); // C(9,2)
    }

    #[test]
    fn palmtree_wiring() {
        check_wiring(&PalmtreeArrangement, DragonflyParams::new(2, 4, 2, 9));
        check_wiring(&PalmtreeArrangement, DragonflyParams::new(2, 4, 2, 5));
        check_wiring(&PalmtreeArrangement, DragonflyParams::new(2, 4, 2, 2));
        check_wiring(&PalmtreeArrangement, DragonflyParams::new(4, 8, 4, 17));
        check_wiring(&PalmtreeArrangement, DragonflyParams::new(4, 8, 4, 9));
    }

    #[test]
    fn palmtree_ports_walk_descending_groups() {
        // Maximal topology, L = 1: port k of group gi reaches gi - k - 1.
        let params = DragonflyParams::new(2, 4, 2, 9);
        let links = PalmtreeArrangement.links(&params);
        let g = params.g;
        for gi in 0..g {
            for k in 0..params.a * params.h {
                let u = port_switch(&params, gi, k);
                let expect = (gi + g - k - 1) % g;
                assert!(
                    links
                        .iter()
                        .any(|&(x, y)| (x == u && y.0 / params.a == expect)
                            || (y == u && x.0 / params.a == expect)),
                    "group {gi} port {k}: no cable toward group {expect}"
                );
            }
        }
    }

    #[test]
    fn random_wiring_is_valid_and_seed_deterministic() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let arr = RandomArrangement { seed };
            check_wiring(&arr, DragonflyParams::new(2, 4, 2, 9));
            check_wiring(&arr, DragonflyParams::new(2, 4, 2, 5));
            check_wiring(&arr, DragonflyParams::new(4, 8, 4, 9));
        }
        let params = DragonflyParams::new(2, 4, 2, 5);
        let a = RandomArrangement { seed: 7 }.links(&params);
        let b = RandomArrangement { seed: 7 }.links(&params);
        assert_eq!(a, b, "equal seeds must give equal wirings");
        let c = RandomArrangement { seed: 8 }.links(&params);
        assert_ne!(a, c, "different seeds should shuffle differently here");
    }

    #[test]
    fn spec_round_trips_through_identity_strings() {
        for spec in ArrangementSpec::zoo(0x2007) {
            let id = spec.build().id();
            assert_eq!(ArrangementSpec::parse(&id), Some(spec), "{id}");
            assert_eq!(spec.to_string(), id);
        }
        assert_eq!(
            ArrangementSpec::parse("random:12"),
            Some(ArrangementSpec::Random(12))
        );
        assert_eq!(
            ArrangementSpec::parse("random"),
            Some(ArrangementSpec::Random(0))
        );
        assert_eq!(ArrangementSpec::parse("banyan"), None);
        assert_eq!(ArrangementSpec::parse("random:xyz"), None);
        assert_eq!(AbsoluteArrangement.id(), "absolute");
    }
}
