//! Global-link arrangements.
//!
//! When `g < a·h + 1`, each group has more global ports than peer groups and
//! several *parallel* global links connect each pair of groups.  How the
//! `a·h` ports of a group map onto the `g−1` peers is the *arrangement*
//! (Hastings et al., *Comparing global link arrangements for Dragonfly
//! networks*, CLUSTER'15).  The paper uses "a minor variation of [the]
//! absolute arrangement" that forms bidirectional topologies for any valid
//! `g`; that variation is implemented here as [`AbsoluteArrangement`] and is
//! the default.  [`RelativeArrangement`] and [`CirculantArrangement`] are
//! provided because the paper notes its techniques are arrangement-agnostic,
//! which our test-suite and ablation benches exercise.
//!
//! All arrangements share port bookkeeping: group `gi` owns global ports
//! `0 .. a·h`, port `k` belongs to switch `gi·a + k/h` (each switch owns `h`
//! consecutive ports).  Writing `L = a·h / (g−1)` for the links per group
//! pair, port `k` is split as `k = r·(g−1) + o` into a *round* `r ∈ 0..L`
//! and an *offset* `o ∈ 0..g−1` that selects the peer group.

use crate::ids::SwitchId;
use crate::params::DragonflyParams;

/// Maps each group's global ports onto peer groups.
///
/// Implementations return every undirected global cable exactly once.  The
/// [`crate::Dragonfly`] constructor validates the returned wiring (port
/// budgets, symmetry, even spread across group pairs).
pub trait GlobalArrangement {
    /// Human-readable arrangement name (used in reports).
    fn name(&self) -> &'static str;

    /// All undirected global links, each reported once as
    /// `(lower switch, higher switch)` in unspecified order.
    fn links(&self, params: &DragonflyParams) -> Vec<(SwitchId, SwitchId)>;
}

/// Switch owning global port `k` of group `gi`.
fn port_switch(params: &DragonflyParams, gi: u32, k: u32) -> SwitchId {
    debug_assert!(k < params.a * params.h);
    SwitchId(gi * params.a + k / params.h)
}

/// The paper's default: a variation of the *absolute* arrangement.
///
/// Port `k = r·(g−1) + o` of group `gi` targets group `o` if `o < gi` and
/// `o + 1` otherwise (the group-index space with `gi` removed).  The peer
/// group reaches back with the mirrored offset in the same round, which makes
/// the wiring bidirectionally consistent for every `g` with
/// `(g−1) | a·h` — including non-maximal topologies, which is exactly the
/// "minor variation" the paper needs.  For the maximal topology
/// (`g = a·h + 1`, `L = 1`) this degenerates to the textbook absolute
/// arrangement.
#[derive(Debug, Clone, Copy, Default)]
pub struct AbsoluteArrangement;

impl GlobalArrangement for AbsoluteArrangement {
    fn name(&self) -> &'static str {
        "absolute"
    }

    fn links(&self, params: &DragonflyParams) -> Vec<(SwitchId, SwitchId)> {
        let (a, h, g) = (params.a, params.h, params.g);
        let rounds = (a * h) / (g - 1);
        let mut links = Vec::with_capacity((g * (g - 1) / 2 * rounds) as usize);
        for gi in 0..g {
            for k in 0..a * h {
                let r = k / (g - 1);
                let o = k % (g - 1);
                let gj = if o < gi { o } else { o + 1 };
                if gj < gi {
                    // Emitted once, from the lower-indexed peer.
                    continue;
                }
                debug_assert!(r < rounds);
                // Offset with which gj looks back at gi.
                let o_back = if gi < gj { gi } else { gi - 1 };
                let k_back = r * (g - 1) + o_back;
                links.push((port_switch(params, gi, k), port_switch(params, gj, k_back)));
            }
        }
        links
    }
}

/// The *relative* arrangement: port offset `o` of group `gi` targets group
/// `(gi + o + 1) mod g`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelativeArrangement;

impl GlobalArrangement for RelativeArrangement {
    fn name(&self) -> &'static str {
        "relative"
    }

    fn links(&self, params: &DragonflyParams) -> Vec<(SwitchId, SwitchId)> {
        let (a, h, g) = (params.a, params.h, params.g);
        let mut links = Vec::new();
        for gi in 0..g {
            for k in 0..a * h {
                let r = k / (g - 1);
                let o = k % (g - 1);
                let gj = (gi + o + 1) % g;
                // Emit each undirected cable once.  The peer reaches back
                // with offset o' = g - o - 2; break the tie by offset (or by
                // group index when the offsets coincide).
                let o_back = g - o - 2;
                if o > o_back || (o == o_back && gi > gj) {
                    continue;
                }
                let k_back = r * (g - 1) + o_back;
                links.push((port_switch(params, gi, k), port_switch(params, gj, k_back)));
            }
        }
        links
    }
}

/// The *circulant-based* arrangement: offsets alternate `+1, −1, +2, −2, …`
/// around the ring of groups.
#[derive(Debug, Clone, Copy, Default)]
pub struct CirculantArrangement;

impl GlobalArrangement for CirculantArrangement {
    fn name(&self) -> &'static str {
        "circulant"
    }

    fn links(&self, params: &DragonflyParams) -> Vec<(SwitchId, SwitchId)> {
        let (a, h, g) = (params.a, params.h, params.g);
        let mut links = Vec::new();
        for gi in 0..g {
            for k in 0..a * h {
                let r = k / (g - 1);
                let o = k % (g - 1);
                let d = o / 2 + 1;
                let half = g % 2 == 0 && d == g / 2 && o % 2 == 0;
                let (gj, o_back) = if half {
                    // +g/2 is its own inverse: pair equal offsets.
                    (((gi + d) % g), o)
                } else if o % 2 == 0 {
                    (((gi + d) % g), o + 1)
                } else {
                    (((gi + g - d) % g), o - 1)
                };
                if o > o_back || (o == o_back && gi > gj) {
                    continue;
                }
                let k_back = r * (g - 1) + o_back;
                links.push((port_switch(params, gi, k), port_switch(params, gj, k_back)));
            }
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_wiring(arr: &dyn GlobalArrangement, params: DragonflyParams) {
        let links = arr.links(&params);
        let expected = (params.g * params.a * params.h / 2) as usize;
        assert_eq!(links.len(), expected, "{} link count", arr.name());

        // Per-switch global-port budget.
        let mut degree = vec![0u32; params.num_switches()];
        for &(u, v) in &links {
            assert_ne!(u, v);
            degree[u.index()] += 1;
            degree[v.index()] += 1;
            // Never intra-group.
            assert_ne!(u.0 / params.a, v.0 / params.a, "{} intra-group", arr.name());
        }
        for (s, d) in degree.iter().enumerate() {
            assert_eq!(*d, params.h, "{} switch {s} port budget", arr.name());
        }

        // Even spread across group pairs.
        let mut per_pair = std::collections::HashMap::<(u32, u32), u32>::with_capacity(links.len());
        for &(u, v) in &links {
            let (ga, gb) = (u.0 / params.a, v.0 / params.a);
            let key = (ga.min(gb), ga.max(gb));
            *per_pair.entry(key).or_default() += 1;
        }
        let l = params.links_per_group_pair();
        assert_eq!(
            per_pair.len() as u32,
            params.g * (params.g - 1) / 2,
            "{} pair coverage",
            arr.name()
        );
        for (&pair, &n) in &per_pair {
            assert_eq!(n, l, "{} links between pair {pair:?}", arr.name());
        }
    }

    #[test]
    fn absolute_wiring_paper_topologies() {
        for params in DragonflyParams::paper_topologies() {
            check_wiring(&AbsoluteArrangement, params);
        }
    }

    #[test]
    fn absolute_wiring_small() {
        check_wiring(&AbsoluteArrangement, DragonflyParams::new(2, 4, 2, 9));
        check_wiring(&AbsoluteArrangement, DragonflyParams::new(2, 4, 2, 3));
        check_wiring(&AbsoluteArrangement, DragonflyParams::new(2, 4, 2, 5));
        check_wiring(&AbsoluteArrangement, DragonflyParams::new(1, 2, 1, 3));
    }

    #[test]
    fn relative_wiring() {
        check_wiring(&RelativeArrangement, DragonflyParams::new(2, 4, 2, 9));
        check_wiring(&RelativeArrangement, DragonflyParams::new(2, 4, 2, 5));
        check_wiring(&RelativeArrangement, DragonflyParams::new(4, 8, 4, 17));
        check_wiring(&RelativeArrangement, DragonflyParams::new(4, 8, 4, 9));
    }

    #[test]
    fn circulant_wiring() {
        check_wiring(&CirculantArrangement, DragonflyParams::new(2, 4, 2, 9));
        check_wiring(&CirculantArrangement, DragonflyParams::new(2, 4, 2, 5));
        check_wiring(&CirculantArrangement, DragonflyParams::new(4, 8, 4, 17));
        // Even g exercises the self-inverse half-offset case.
        check_wiring(&CirculantArrangement, DragonflyParams::new(2, 4, 2, 2));
        check_wiring(&CirculantArrangement, DragonflyParams::new(4, 8, 4, 5));
    }

    #[test]
    fn maximal_absolute_has_one_link_per_pair() {
        let params = DragonflyParams::new(2, 4, 2, 9);
        let links = AbsoluteArrangement.links(&params);
        assert_eq!(links.len(), 36); // C(9,2)
    }
}
