//! Directed channels (links) of the network.
//!
//! Every physical cable is represented as **two directed channels**, one per
//! direction, because routing, buffering and credit flow are directional.
//! Channels are densely numbered so per-channel simulator state can live in
//! flat vectors:
//!
//! 1. local channels (switch → switch within a group), then
//! 2. global channels (switch → switch across groups), then
//! 3. injection channels (node → its switch), then
//! 4. ejection channels (switch → node).

use crate::ids::{NodeId, SwitchId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier for a directed channel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds the identifier from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(i as u32)
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// What a channel connects.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Endpoint {
    /// A switch port.
    Switch(SwitchId),
    /// A compute-node port.
    Node(NodeId),
}

/// The class of a channel; link latencies and routing logic depend on it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Intra-group switch-to-switch link (the short cables).
    Local,
    /// Inter-group switch-to-switch link (the long cables).
    Global,
    /// Node-to-switch terminal link.
    Injection,
    /// Switch-to-node terminal link.
    Ejection,
}

impl ChannelKind {
    /// True for switch-to-switch channels (the hops that the paper counts in
    /// path lengths).
    pub fn is_network(self) -> bool {
        matches!(self, ChannelKind::Local | ChannelKind::Global)
    }
}

/// A directed channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Channel {
    /// Dense identifier; equals this channel's position in
    /// [`crate::Dragonfly::channels`].
    pub id: ChannelId,
    /// Transmitting endpoint.
    pub src: Endpoint,
    /// Receiving endpoint.
    pub dst: Endpoint,
    /// Channel class.
    pub kind: ChannelKind,
}

impl Channel {
    /// Source switch, if the source endpoint is a switch.
    pub fn src_switch(&self) -> Option<SwitchId> {
        match self.src {
            Endpoint::Switch(s) => Some(s),
            Endpoint::Node(_) => None,
        }
    }

    /// Destination switch, if the destination endpoint is a switch.
    pub fn dst_switch(&self) -> Option<SwitchId> {
        match self.dst {
            Endpoint::Switch(s) => Some(s),
            Endpoint::Node(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(ChannelKind::Local.is_network());
        assert!(ChannelKind::Global.is_network());
        assert!(!ChannelKind::Injection.is_network());
        assert!(!ChannelKind::Ejection.is_network());
    }

    #[test]
    fn endpoint_accessors() {
        let c = Channel {
            id: ChannelId(0),
            src: Endpoint::Switch(SwitchId(3)),
            dst: Endpoint::Node(NodeId(9)),
            kind: ChannelKind::Ejection,
        };
        assert_eq!(c.src_switch(), Some(SwitchId(3)));
        assert_eq!(c.dst_switch(), None);
    }
}
