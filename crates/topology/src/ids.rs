//! Strongly typed identifiers for topology entities.
//!
//! All identifiers are dense `u32` indices so they can be used directly as
//! `Vec` indices in hot simulator loops without hashing.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $short:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw dense index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds the identifier from a dense index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(v: $name) -> usize {
                v.index()
            }
        }
    };
}

id_type!(
    /// A switch (router).  Switch `s` lives in group `s / a` and has local
    /// index `s % a` within its group.
    SwitchId,
    "s"
);

id_type!(
    /// A group of `a` fully connected switches.
    GroupId,
    "g"
);

id_type!(
    /// A compute node (processing element).  Node `n` attaches to switch
    /// `n / p` as its `n % p`-th terminal.
    NodeId,
    "n"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let s = SwitchId::from_index(17);
        assert_eq!(s.index(), 17);
        assert_eq!(format!("{s}"), "s17");
        assert_eq!(format!("{s:?}"), "s17");
        let g = GroupId(3);
        assert_eq!(format!("{g}"), "g3");
        let n = NodeId(255);
        assert_eq!(usize::from(n), 255);
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SwitchId(1));
        set.insert(SwitchId(1));
        set.insert(SwitchId(2));
        assert_eq!(set.len(), 2);
        assert!(SwitchId(1) < SwitchId(2));
    }
}
