//! # Dragonfly topology (`dfly(p, a, h, g)`)
//!
//! This crate builds the two-layer Dragonfly topology studied in
//! *"Topology-Custom UGAL Routing on Dragonfly"* (Rahman et al., SC '19):
//! a number of *groups*, each a fully connected graph of `a` switches, with
//! the groups themselves fully connected by global links.
//!
//! A topology is described by four parameters:
//!
//! * `p` — compute nodes (terminals) per switch,
//! * `a` — switches per group,
//! * `h` — global ports per switch,
//! * `g` — number of groups (`2 ≤ g ≤ a·h + 1`).
//!
//! The maximal topology has `g = a·h + 1` groups with exactly one global
//! link between each pair of groups.  Smaller `g` leaves `a·h / (g-1)`
//! parallel global links between each pair of groups, which is precisely the
//! path-diversity knob the paper's T-UGAL exploits.
//!
//! Global links are wired with a *minor variation of the absolute
//! arrangement* (Hastings et al., CLUSTER'15), the paper's default; the
//! relative, circulant, palmtree and seeded random arrangements are also
//! provided (the topology zoo), along with a `global_lag` multiplier that
//! replicates every global cable — see [`Dragonfly::with_shape`].
//!
//! ```
//! use tugal_topology::{Dragonfly, DragonflyParams};
//!
//! // The dfly(4,8,4,9) topology from Table 2 of the paper.
//! let topo = Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap();
//! assert_eq!(topo.num_switches(), 72);
//! assert_eq!(topo.num_nodes(), 288);
//! assert_eq!(topo.links_per_group_pair(), 4);
//! ```

#![warn(missing_docs)]

mod arrangement;
mod channels;
mod dragonfly;
mod fault;
mod ids;
mod params;

pub use arrangement::{
    AbsoluteArrangement, ArrangementSpec, CirculantArrangement, GlobalArrangement,
    PalmtreeArrangement, RandomArrangement, RelativeArrangement,
};
pub use channels::{Channel, ChannelId, ChannelKind, Endpoint};
pub use dragonfly::Dragonfly;
pub use fault::{Degraded, FaultSet};
pub use ids::{GroupId, NodeId, SwitchId};
pub use params::{DragonflyParams, TopologyError};

#[cfg(test)]
mod tests;
