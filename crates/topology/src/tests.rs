//! Cross-module topology tests, including property-based wiring checks.

use crate::*;
use proptest::prelude::*;

fn dfly(p: u32, a: u32, h: u32, g: u32) -> Dragonfly {
    Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap()
}

#[test]
fn channel_layout_counts() {
    let t = dfly(2, 4, 2, 9);
    // 36 switches: locals 36*3 = 108, globals 36*2 = 72, terminals 72*2.
    assert_eq!(t.num_switches(), 36);
    assert_eq!(t.num_nodes(), 72);
    assert_eq!(t.num_network_channels(), 108 + 72);
    assert_eq!(t.num_channels(), 108 + 72 + 72 + 72);
}

#[test]
fn local_channel_is_consistent_with_channel_table() {
    let t = dfly(2, 4, 2, 3);
    for s in 0..t.num_switches() as u32 {
        let s = SwitchId(s);
        for v in t.switches_in_group(t.group_of(s)) {
            if v == s {
                continue;
            }
            let c = t.local_channel(s, v);
            let ch = t.channel(c);
            assert_eq!(ch.src, Endpoint::Switch(s));
            assert_eq!(ch.dst, Endpoint::Switch(v));
            assert_eq!(ch.kind, ChannelKind::Local);
        }
    }
}

#[test]
fn global_out_matches_channel_table() {
    let t = dfly(4, 8, 4, 9);
    for s in 0..t.num_switches() as u32 {
        let s = SwitchId(s);
        let outs = t.global_out(s);
        assert_eq!(outs.len(), 4);
        for &(c, v) in outs {
            let ch = t.channel(c);
            assert_eq!(ch.src, Endpoint::Switch(s));
            assert_eq!(ch.dst, Endpoint::Switch(v));
            assert_eq!(ch.kind, ChannelKind::Global);
            assert_ne!(t.group_of(s), t.group_of(v));
        }
    }
}

#[test]
fn global_links_are_bidirectional() {
    let t = dfly(4, 8, 4, 17);
    for s in 0..t.num_switches() as u32 {
        let s = SwitchId(s);
        for &(_, v) in t.global_out(s) {
            assert!(
                t.global_channel(v, s).is_some(),
                "missing reverse of {s}->{v}"
            );
        }
    }
}

#[test]
fn gateways_cover_every_ordered_pair() {
    let t = dfly(4, 8, 4, 9);
    let l = t.links_per_group_pair() as usize;
    for from in 0..t.num_groups() as u32 {
        for to in 0..t.num_groups() as u32 {
            let gw = t.gateways(GroupId(from), GroupId(to));
            if from == to {
                assert!(gw.is_empty());
            } else {
                assert_eq!(gw.len(), l, "pair ({from},{to})");
                for &(u, v, c) in gw {
                    assert_eq!(t.group_of(u).0, from);
                    assert_eq!(t.group_of(v).0, to);
                    let ch = t.channel(c);
                    assert_eq!(ch.src, Endpoint::Switch(u));
                    assert_eq!(ch.dst, Endpoint::Switch(v));
                }
            }
        }
    }
}

#[test]
fn node_coordinates_roundtrip() {
    let t = dfly(4, 8, 4, 9);
    for n in 0..t.num_nodes() as u32 {
        let n = NodeId(n);
        let (g, s, k) = t.node_coords(n);
        assert_eq!(t.node_at(g, s, k), n);
        assert_eq!(t.group_of_node(n), g);
        assert_eq!(t.switch_of_node(n), t.switch_in_group(g, s));
    }
}

#[test]
fn terminal_channels() {
    let t = dfly(2, 4, 2, 3);
    for n in 0..t.num_nodes() as u32 {
        let n = NodeId(n);
        let inj = t.channel(t.injection_channel(n));
        assert_eq!(inj.kind, ChannelKind::Injection);
        assert_eq!(inj.src, Endpoint::Node(n));
        assert_eq!(inj.dst, Endpoint::Switch(t.switch_of_node(n)));
        let ej = t.channel(t.ejection_channel(n));
        assert_eq!(ej.kind, ChannelKind::Ejection);
        assert_eq!(ej.src, Endpoint::Switch(t.switch_of_node(n)));
        assert_eq!(ej.dst, Endpoint::Node(n));
    }
}

#[test]
fn nodes_of_switch_partition() {
    let t = dfly(4, 8, 4, 9);
    let mut seen = vec![false; t.num_nodes()];
    for s in 0..t.num_switches() as u32 {
        for n in t.nodes_of_switch(SwitchId(s)) {
            assert!(!seen[n.index()]);
            seen[n.index()] = true;
            assert_eq!(t.switch_of_node(n), SwitchId(s));
        }
    }
    assert!(seen.iter().all(|&x| x));
}

#[test]
fn arrangements_produce_distinct_but_valid_wirings() {
    let params = DragonflyParams::new(4, 8, 4, 9);
    let a = Dragonfly::with_arrangement(params, &AbsoluteArrangement).unwrap();
    let r = Dragonfly::with_arrangement(params, &RelativeArrangement).unwrap();
    let c = Dragonfly::with_arrangement(params, &CirculantArrangement).unwrap();
    assert_eq!(a.arrangement_name(), "absolute");
    assert_eq!(r.arrangement_name(), "relative");
    assert_eq!(c.arrangement_name(), "circulant");
    for t in [&a, &r, &c] {
        assert_eq!(t.num_network_channels(), 72 * 7 + 72 * 4);
    }
}

#[test]
fn channel_between_prefers_kind_by_topology() {
    let t = dfly(2, 4, 2, 3);
    let s0 = SwitchId(0);
    let s1 = SwitchId(1);
    let c = t.channel_between(s0, s1).unwrap();
    assert_eq!(t.channel(c).kind, ChannelKind::Local);
    assert_eq!(t.channel_between(s0, s0), None);
}

/// Strategy over valid small parameter tuples.
fn valid_params() -> impl Strategy<Value = DragonflyParams> {
    (1u32..4, 2u32..7, 1u32..4)
        .prop_flat_map(|(p, a, h)| {
            let max = a * h + 1;
            let divisors: Vec<u32> = (2..=max).filter(|g| (a * h) % (g - 1) == 0).collect();
            (
                Just(p),
                Just(a),
                Just(h),
                proptest::sample::select(divisors),
            )
        })
        .prop_map(|(p, a, h, g)| DragonflyParams::new(p, a, h, g))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_every_valid_topology_builds_with_sound_wiring(params in valid_params()) {
        let t = Dragonfly::new(params).unwrap();
        // Degree invariants.
        let mut global_degree = vec![0u32; t.num_switches()];
        for ch in t.channels() {
            if ch.kind == ChannelKind::Global {
                global_degree[ch.src_switch().unwrap().index()] += 1;
            }
        }
        for d in global_degree {
            prop_assert_eq!(d, params.h);
        }
        // Every ordered group pair has exactly L gateways.
        let l = params.links_per_group_pair() as usize;
        for from in 0..params.g {
            for to in 0..params.g {
                if from != to {
                    prop_assert_eq!(t.gateways(GroupId(from), GroupId(to)).len(), l);
                }
            }
        }
    }

    #[test]
    fn prop_channel_ids_dense_and_self_describing(params in valid_params()) {
        let t = Dragonfly::new(params).unwrap();
        for (i, ch) in t.channels().iter().enumerate() {
            prop_assert_eq!(ch.id.index(), i);
        }
        prop_assert_eq!(
            t.num_channels(),
            t.num_switches() * (params.a as usize - 1)
                + t.num_switches() * params.h as usize
                + 2 * t.num_nodes()
        );
    }
}
