//! Step 1: coarse-grain estimation over the Table-1 configuration sweep.

use rayon::prelude::*;
use tugal_model::{modeled_throughput_multi, ModelVariant};
use tugal_routing::VlbRule;
use tugal_topology::Dragonfly;
use tugal_traffic::{type_1_set, type_2_set, TrafficPattern};

/// The data points probed in Step 1 (Table 1 of the paper): for each hop
/// limit 3..=5, the pure limit plus 10%..90% of the next class, and the
/// full set — 31 configurations.
pub fn table1_points() -> Vec<VlbRule> {
    let mut points = Vec::with_capacity(31);
    for max_hops in 3u8..=5 {
        points.push(VlbRule::ClassLimit {
            max_hops,
            frac_next: 0.0,
        });
        for pct in (10..=90).step_by(10) {
            points.push(VlbRule::ClassLimit {
                max_hops,
                frac_next: pct as f64 / 100.0,
            });
        }
    }
    points.push(VlbRule::All);
    points
}

/// Controls for the Step-1 sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Evaluate at most this many TYPE_1 (shift) patterns, evenly sampled;
    /// `None` evaluates all `(g−1)·a` of them as the paper does.  Sampling
    /// is offered because our LP solver is slower than CPLEX on the
    /// largest topologies (documented in DESIGN.md).
    pub type1_sample: Option<usize>,
    /// Number of TYPE_2 (random hierarchical permutation) patterns
    /// (the paper uses 20).
    pub type2_count: usize,
    /// Seed for TYPE_2 generation.
    pub seed: u64,
    /// Model variant to score with.
    pub variant: ModelVariant,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            type1_sample: None,
            type2_count: 20,
            seed: 0x5EE9,
            variant: ModelVariant::DrawProportional,
        }
    }
}

impl SweepConfig {
    /// A CI-speed sweep: few patterns, same structure.
    pub fn quick() -> Self {
        SweepConfig {
            type1_sample: Some(4),
            type2_count: 2,
            ..Self::default()
        }
    }
}

/// Score of one Table-1 configuration.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The configuration.
    pub rule: VlbRule,
    /// Mean modeled throughput over all evaluated patterns.
    pub mean: f64,
    /// Standard error of the mean (the error bars of Figures 4/5).
    pub sem: f64,
}

/// Runs the Step-1 sweep: the modeled throughput of every Table-1
/// configuration, averaged over the TYPE_1 and TYPE_2 adversarial suites.
pub fn coarse_grain_sweep(topo: &Dragonfly, cfg: &SweepConfig) -> Vec<SweepOutcome> {
    coarse_grain_sweep_rules(topo, cfg, &table1_points())
}

/// [`coarse_grain_sweep`] over an explicit configuration grid (must be in
/// increasing candidate-set-size order for [`candidate_vicinity`]).  Used
/// by harnesses that probe a reduced grid on very large topologies.
pub fn coarse_grain_sweep_rules(
    topo: &Dragonfly,
    cfg: &SweepConfig,
    rules: &[VlbRule],
) -> Vec<SweepOutcome> {
    let rules = rules.to_vec();
    let mut demands: Vec<Vec<(u32, u32, u32)>> = Vec::new();
    let t1 = type_1_set(topo);
    match cfg.type1_sample {
        Some(n) if n < t1.len() => {
            let step = t1.len() / n.max(1);
            demands.extend(
                t1.iter()
                    .step_by(step.max(1))
                    .take(n)
                    .map(|p| p.demands().expect("shift patterns are deterministic")),
            );
        }
        _ => demands.extend(t1.iter().map(|p| p.demands().unwrap())),
    }
    for p in type_2_set(topo, cfg.type2_count, cfg.seed) {
        demands.push(p.demands().unwrap());
    }

    // Per pattern, score all rules at once (pair statistics are shared);
    // patterns run in parallel.
    let per_pattern: Vec<Vec<f64>> = demands
        .par_iter()
        .map(|d| {
            modeled_throughput_multi(topo, d, &rules, cfg.variant).expect("throughput model failed")
        })
        .collect();

    let n = per_pattern.len() as f64;
    rules
        .iter()
        .enumerate()
        .map(|(ri, &rule)| {
            let values: Vec<f64> = per_pattern.iter().map(|row| row[ri]).collect();
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n.max(1.0);
            SweepOutcome {
                rule,
                mean,
                sem: (var / n.max(1.0)).sqrt(),
            }
        })
        .collect()
}

/// Picks the configurations that advance to Step 2 by *region champions*:
/// for every maximum-path-length region (≤3+fraction-of-4, ≤4+fraction-of-5,
/// ≤5+fraction-of-6, all), the best-scoring configuration of that region —
/// plus "all VLB paths" itself, which Step 2 must always be able to fall
/// back to (maximal topologies).
///
/// Rationale: the modeled curve on dense topologies is multi-modal (local
/// peaks inside the 4-hop and 5-hop fraction regions — compare the paper's
/// Figure 4), and the fluid model systematically underestimates how much
/// *shorter* candidate sets gain from reduced queueing.  Advancing one
/// champion per region and deciding by the Step-2 **simulation** follows
/// the paper: its final T-VLB pick and its convergence-on-maximal claim
/// are both established by simulating the candidates.
pub fn candidate_regions(outcomes: &[SweepOutcome]) -> Vec<VlbRule> {
    let region = |rule: &VlbRule| -> u8 {
        match rule {
            VlbRule::All => 6,
            VlbRule::Strategic { .. } => 5,
            VlbRule::ClassLimit {
                max_hops,
                frac_next,
            } => {
                if *frac_next > 0.0 {
                    max_hops + 1
                } else {
                    *max_hops
                }
            }
        }
    };
    let mut champions: [Option<&SweepOutcome>; 7] = [None; 7];
    for o in outcomes {
        let r = region(&o.rule) as usize;
        if champions[r].is_none_or(|c| o.mean > c.mean) {
            champions[r] = Some(o);
        }
    }
    let mut rules: Vec<VlbRule> = champions.iter().flatten().map(|o| o.rule).collect();
    if !rules.contains(&VlbRule::All) {
        rules.push(VlbRule::All);
    }
    rules
}

/// Picks the configurations that advance to Step 2: the best-scoring point
/// plus up to `k − 1` of the *smallest* configurations within `tolerance`
/// (relative) of it.
///
/// `outcomes` must be in Table-1 order (increasing candidate-set size, as
/// [`coarse_grain_sweep`] returns them).  Preferring the left edge of the
/// near-optimal region implements the paper's intent — T-VLB should be the
/// smallest/shortest set that still scores like the best point; on dense
/// topologies the model's near-optimal region is a wide plateau and the
/// Step-2 simulation discriminates within it.
pub fn candidate_vicinity(outcomes: &[SweepOutcome], k: usize, tolerance: f64) -> Vec<VlbRule> {
    let best = outcomes
        .iter()
        .max_by(|a, b| a.mean.total_cmp(&b.mean))
        .expect("non-empty sweep");
    let cutoff = best.mean * (1.0 - tolerance);
    let mut rules: Vec<VlbRule> = outcomes
        .iter()
        .filter(|o| o.mean >= cutoff)
        .take(k.max(1))
        .map(|o| o.rule)
        .collect();
    if !rules.contains(&best.rule) {
        rules.pop();
        rules.push(best.rule);
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_31_points_in_paper_order() {
        let points = table1_points();
        assert_eq!(points.len(), 31);
        assert_eq!(points[0].to_string(), "3-hop paths");
        assert_eq!(points[1].to_string(), "10% 4-hop");
        assert_eq!(points[10].to_string(), "4-hop paths");
        assert_eq!(points[16].to_string(), "60% 5-hop");
        assert_eq!(points[20].to_string(), "5-hop paths");
        assert_eq!(points[30].to_string(), "all VLB paths");
    }

    #[test]
    fn vicinity_selects_best_and_near() {
        let outcomes = vec![
            SweepOutcome {
                rule: VlbRule::ClassLimit {
                    max_hops: 4,
                    frac_next: 0.4,
                },
                mean: 0.57,
                sem: 0.01,
            },
            SweepOutcome {
                rule: VlbRule::ClassLimit {
                    max_hops: 4,
                    frac_next: 0.6,
                },
                mean: 0.58,
                sem: 0.01,
            },
            SweepOutcome {
                rule: VlbRule::ClassLimit {
                    max_hops: 3,
                    frac_next: 0.0,
                },
                mean: 0.40,
                sem: 0.01,
            },
        ];
        let cands = candidate_vicinity(&outcomes, 4, 0.05);
        assert_eq!(cands.len(), 2);
        // Smallest near-best configuration leads; the best is included.
        assert_eq!(
            cands[0],
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.4
            }
        );
        assert!(cands.contains(&VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.6
        }));
    }

    #[test]
    fn vicinity_caps_at_k() {
        let outcomes: Vec<SweepOutcome> = (0..10)
            .map(|i| SweepOutcome {
                rule: VlbRule::ClassLimit {
                    max_hops: 4,
                    frac_next: i as f64 / 10.0,
                },
                mean: 0.5,
                sem: 0.0,
            })
            .collect();
        assert_eq!(candidate_vicinity(&outcomes, 3, 0.1).len(), 3);
    }
}

#[cfg(test)]
mod region_tests {
    use super::*;

    fn o(rule: VlbRule, mean: f64) -> SweepOutcome {
        SweepOutcome {
            rule,
            mean,
            sem: 0.0,
        }
    }

    #[test]
    fn champions_one_per_region_plus_all() {
        // A double-hump curve like the measured dfly(4,8,4,17) sweep.
        let outcomes = vec![
            o(
                VlbRule::ClassLimit {
                    max_hops: 3,
                    frac_next: 0.0,
                },
                0.33,
            ),
            o(
                VlbRule::ClassLimit {
                    max_hops: 3,
                    frac_next: 0.4,
                },
                0.466,
            ), // region-4 peak
            o(
                VlbRule::ClassLimit {
                    max_hops: 4,
                    frac_next: 0.0,
                },
                0.456,
            ),
            o(
                VlbRule::ClassLimit {
                    max_hops: 4,
                    frac_next: 0.4,
                },
                0.490,
            ), // region-5 peak
            o(
                VlbRule::ClassLimit {
                    max_hops: 5,
                    frac_next: 0.0,
                },
                0.469,
            ),
            o(
                VlbRule::ClassLimit {
                    max_hops: 5,
                    frac_next: 0.9,
                },
                0.528,
            ), // region-6 peak
            o(VlbRule::All, 0.531),
        ];
        let cands = candidate_regions(&outcomes);
        assert!(cands.contains(&VlbRule::ClassLimit {
            max_hops: 3,
            frac_next: 0.4
        }));
        assert!(cands.contains(&VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.4
        }));
        assert!(cands.contains(&VlbRule::All));
        // Region 6's champion is All itself here (0.531 > 0.528).
        assert!(!cands.contains(&VlbRule::ClassLimit {
            max_hops: 5,
            frac_next: 0.9
        }));
        // Region 3's only member also advances.
        assert!(cands.contains(&VlbRule::ClassLimit {
            max_hops: 3,
            frac_next: 0.0
        }));
        assert_eq!(cands.len(), 4);
    }

    #[test]
    fn all_is_always_included() {
        // Even when some fraction of 6-hop beats the full set, Step 2 must
        // be able to fall back to conventional UGAL.
        let outcomes = vec![
            o(
                VlbRule::ClassLimit {
                    max_hops: 5,
                    frac_next: 0.5,
                },
                0.58,
            ),
            o(VlbRule::All, 0.56),
        ];
        let cands = candidate_regions(&outcomes);
        assert!(cands.contains(&VlbRule::All));
        assert!(cands.contains(&VlbRule::ClassLimit {
            max_hops: 5,
            frac_next: 0.5
        }));
    }

    #[test]
    fn monotone_curve_still_yields_small_champions() {
        // On maximal topologies the curve rises monotonically; region
        // champions are each region's largest set, and Step 2 will reject
        // them by simulation.
        let cands = candidate_regions(
            &table1_points()
                .into_iter()
                .enumerate()
                .map(|(i, rule)| o(rule, i as f64))
                .collect::<Vec<_>>(),
        );
        assert!(cands.contains(&VlbRule::All));
        assert_eq!(cands.len(), 4); // regions 4, 5, 6 champions + region 3
    }
}
