//! Algorithm 1 end-to-end: compute T-VLB for any `dfly(p, a, h, g)`.

use crate::balance::{self, BalanceOptions, BalanceReport};
use crate::sweep::{candidate_regions, coarse_grain_sweep, SweepConfig, SweepOutcome};
use std::sync::Arc;
use tugal_netsim::{saturation_throughput, Config as SimConfig, RoutingAlgorithm, SweepOptions};
use tugal_routing::{PathProvider, PathTable, RuleProvider, TableProvider, VlbRule};
use tugal_topology::Dragonfly;
use tugal_traffic::{type_2_set, TrafficPattern};

/// Everything Algorithm 1 needs beyond the topology.
#[derive(Debug, Clone)]
pub struct TUgalConfig {
    /// Step-1 sweep controls.
    pub sweep: SweepConfig,
    /// Load-balance adjustment thresholds.
    pub balance: BalanceOptions,
    /// Simulator settings for the Step-2 evaluation.
    pub sim: SimConfig,
    /// Routing algorithm used to score candidates in Step 2 (the paper
    /// simulates its practical UGAL variants; UGAL-L is the default).
    pub routing: RoutingAlgorithm,
    /// Number of TYPE_2 patterns simulated in Step 2 (the paper uses 5).
    pub eval_patterns: usize,
    /// Bisection resolution for the per-candidate saturation-throughput
    /// measurement of Step 2.
    pub eval_resolution: f64,
    /// Seed for table materialization and pattern generation.
    pub seed: u64,
    /// Above this many switches, explicit tables are not materialized;
    /// candidates are evaluated through the O(1)-memory rule sampler and
    /// the balance-adjustment step is skipped (documented deviation for
    /// very large networks).
    pub max_table_switches: usize,
}

impl Default for TUgalConfig {
    fn default() -> Self {
        TUgalConfig {
            sweep: SweepConfig::default(),
            balance: BalanceOptions::default(),
            sim: SimConfig::quick(),
            routing: RoutingAlgorithm::UgalL,
            eval_patterns: 5,
            eval_resolution: 0.02,
            seed: 0x7065,
            max_table_switches: 300,
        }
    }
}

impl TUgalConfig {
    /// CI-speed settings (small sweeps, short simulations).
    pub fn quick() -> Self {
        TUgalConfig {
            sweep: SweepConfig::quick(),
            eval_patterns: 2,
            eval_resolution: 0.04,
            ..Default::default()
        }
    }

    /// Stable 64-bit digest of the *full* configuration (FNV-1a over the
    /// `Debug` rendering, which covers every field recursively).  Disk
    /// caches of Algorithm-1 outcomes key on this so entries produced
    /// under any other sweep/balance/simulation setting — including
    /// settings from older code with different fields — can never be
    /// mistaken for the current one.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        for b in format!("{self:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// One Step-2 candidate and its simulated score.
#[derive(Debug, Clone)]
pub struct CandidateScore {
    /// The configuration (strategic choices included).
    pub rule: VlbRule,
    /// Mean saturation throughput over the evaluation patterns
    /// (packets/cycle/node), located by bisection — the paper's Step-2
    /// metric.
    pub throughput: f64,
    /// Mean VLB hops of the candidate set (tie-break: shorter wins, the
    /// low-load-latency advantage the throughput metric cannot see).
    pub mean_vlb_hops: f64,
    /// What the balance adjustment did (explicit tables only).
    pub balance: Option<BalanceReport>,
}

/// Full account of an Algorithm-1 run.
#[derive(Debug, Clone)]
pub struct TUgalReport {
    /// Step-1 scores for all 31 Table-1 points.
    pub sweep: Vec<SweepOutcome>,
    /// Configurations advanced to Step 2 (after strategic expansion).
    pub candidates: Vec<VlbRule>,
    /// Step-2 simulation scores.
    pub scores: Vec<CandidateScore>,
    /// Mean VLB hops of the conventional (all paths) candidate sets.
    pub mean_hops_all: f64,
    /// Mean VLB hops of the chosen T-VLB.
    pub mean_hops_tvlb: f64,
}

/// The product of Algorithm 1.
pub struct TUgalResult {
    /// Candidate-path source implementing the chosen T-VLB; plug into the
    /// simulator (or a router) in place of the conventional provider.
    pub provider: Arc<dyn PathProvider>,
    /// The winning configuration.
    pub chosen: VlbRule,
    /// Full report (Figures 4/5 are `report.sweep`).
    pub report: TUgalReport,
}

/// The conventional-UGAL provider for a topology: an explicit all-paths
/// table for small networks, the on-the-fly sampler for large ones.
pub fn conventional_provider(
    topo: Arc<Dragonfly>,
    max_table_switches: usize,
) -> Arc<dyn PathProvider> {
    if topo.num_switches() <= max_table_switches {
        Arc::new(TableProvider::all_paths(topo))
    } else {
        Arc::new(RuleProvider::new(topo, VlbRule::All))
    }
}

/// Runs Algorithm 1 and returns the T-VLB provider plus a full report.
pub fn compute_tvlb(topo: Arc<Dragonfly>, cfg: &TUgalConfig) -> TUgalResult {
    // Step 1: coarse-grain model sweep (lines 8–12 of Algorithm 1).
    let sweep = coarse_grain_sweep(&topo, &cfg.sweep);
    let mut candidates = candidate_regions(&sweep);

    // Strategic expansion (line 13): when a fractional 5-hop point is a
    // candidate, add the two deterministic split choices.
    let has_frac5 = candidates.iter().any(|r| {
        matches!(r, VlbRule::ClassLimit { max_hops: 4, frac_next } if *frac_next > 0.0 && *frac_next < 1.0)
    });
    if has_frac5 {
        candidates.push(VlbRule::Strategic { first_seg: 2 });
        candidates.push(VlbRule::Strategic { first_seg: 3 });
    }

    // Step 2 (lines 14–21): materialize, balance-adjust, simulate.  The
    // full set is always among the candidates, so on maximal topologies —
    // where simulation confirms every subset degrades (Figure 5) — the
    // procedure converges to conventional UGAL by measurement, exactly as
    // the paper establishes it.
    let explicit = topo.num_switches() <= cfg.max_table_switches;
    let mut scores: Vec<CandidateScore> = Vec::with_capacity(candidates.len());
    let mut built: Vec<Arc<dyn PathProvider>> = Vec::with_capacity(candidates.len());
    for &rule in &candidates {
        let (provider, report): (Arc<dyn PathProvider>, Option<BalanceReport>) = if explicit {
            let mut table = PathTable::build_with_rule(&topo, rule, cfg.seed);
            let report = balance::adjust(&mut table, &topo, &cfg.balance);
            (
                Arc::new(TableProvider::new(topo.clone(), table)),
                Some(report),
            )
        } else {
            (Arc::new(RuleProvider::new(topo.clone(), rule)), None)
        };
        let throughput = evaluate(&topo, &provider, cfg);
        scores.push(CandidateScore {
            rule,
            throughput,
            mean_vlb_hops: provider.mean_vlb_hops(),
            balance: report,
        });
        built.push(provider);
    }

    // Highest mean saturation throughput wins; candidates within one
    // bisection step of each other are tied and the shorter set wins the
    // tie (its low-load latency advantage, which the saturation metric is
    // blind to).
    let eps = cfg.eval_resolution * 1.01;
    let best_idx = (0..scores.len())
        .max_by(|&a, &b| {
            let (sa, sb) = (&scores[a], &scores[b]);
            if (sa.throughput - sb.throughput).abs() <= eps {
                sb.mean_vlb_hops.total_cmp(&sa.mean_vlb_hops)
            } else {
                sa.throughput.total_cmp(&sb.throughput)
            }
        })
        .expect("at least one candidate");
    let provider = built.swap_remove(best_idx);
    let chosen = scores[best_idx].rule;

    let mean_hops_all = conventional_provider(topo.clone(), cfg.max_table_switches).mean_vlb_hops();
    let mean_hops_tvlb = provider.mean_vlb_hops();
    TUgalResult {
        provider,
        chosen,
        report: TUgalReport {
            sweep,
            candidates,
            scores,
            mean_hops_all,
            mean_hops_tvlb,
        },
    }
}

/// Simulates a candidate on TYPE_2 patterns: mean saturation throughput
/// (bisection per pattern, §3.3.3's "average throughput of the patterns").
fn evaluate(topo: &Arc<Dragonfly>, provider: &Arc<dyn PathProvider>, cfg: &TUgalConfig) -> f64 {
    let patterns: Vec<Arc<dyn TrafficPattern>> =
        type_2_set(topo, cfg.eval_patterns, cfg.seed ^ 0xABCD)
            .into_iter()
            .map(|p| Arc::new(p) as Arc<dyn TrafficPattern>)
            .collect();
    let sim_cfg = cfg.sim.clone().for_routing(cfg.routing);
    let opts = SweepOptions {
        seeds: vec![cfg.seed],
        resolution: cfg.eval_resolution,
    };
    let mut sum = 0.0;
    for pattern in &patterns {
        sum += saturation_throughput(topo, provider, pattern, cfg.routing, &sim_cfg, &opts);
    }
    sum / patterns.len().max(1) as f64
}
