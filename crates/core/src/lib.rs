//! # T-UGAL: topology-custom UGAL routing
//!
//! The paper's primary contribution (§3): given any `dfly(p, a, h, g)`
//! topology, compute a *topology-custom* set of VLB candidate paths
//! (T-VLB) with a smaller average path length but sufficient path
//! diversity, so that UGAL routing over T-VLB (T-UGAL) dominates
//! conventional UGAL in both low-load latency and saturation throughput.
//!
//! [`compute_tvlb`] implements Algorithm 1 end-to-end:
//!
//! 1. build the adversarial pattern suites `TYPE_1_SET` and `TYPE_2_SET`;
//! 2. **Step 1, coarse-grain** ([`sweep`]): score every Table-1 candidate
//!    configuration ("all ≤4-hop paths plus 60% of the 5-hop paths", …)
//!    with the LP throughput model averaged over the adversarial suites,
//!    and keep the best-scoring point plus its vicinity;
//! 3. expand the candidates with the deterministic *strategic* 5-hop
//!    choices (all 2+3 or all 3+2 MIN-segment splits, §3.3.3);
//! 4. **Step 2, finalize** ([`balance`]): materialize each candidate as an
//!    explicit path table, detect local (per switch pair) and global link
//!    usage imbalance and remove offending paths, then simulate the
//!    candidates on TYPE_2 patterns and keep the best performer.
//!
//! The result wraps a [`tugal_routing::PathProvider`], so plugging T-UGAL
//! into the simulator (or comparing UGAL/T-UGAL variants) is a one-line
//! provider swap — exactly the paper's framing that T-UGAL "only changes
//! the set of candidate paths".
//!
//! All analysis happens at network design time (the paper's closing
//! argument): nothing here runs in a router's critical path.

#![warn(missing_docs)]

pub mod algorithm;
pub mod balance;
pub mod sweep;

pub use algorithm::{compute_tvlb, conventional_provider, TUgalConfig, TUgalReport, TUgalResult};
pub use balance::{BalanceOptions, BalanceReport};
pub use sweep::{
    candidate_vicinity, coarse_grain_sweep, coarse_grain_sweep_rules, table1_points, SweepConfig,
    SweepOutcome,
};

#[cfg(test)]
mod tests;
