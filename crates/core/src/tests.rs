//! Algorithm-1 integration tests on small topologies.

use crate::*;
use std::sync::Arc;
use tugal_routing::VlbRule;
use tugal_topology::{Dragonfly, DragonflyParams};

fn topo(p: u32, a: u32, h: u32, g: u32) -> Arc<Dragonfly> {
    Arc::new(Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap())
}

#[test]
fn tvlb_on_dense_topology_restricts_and_shortens() {
    // dfly(2,4,2,3): 4 links per group pair — plenty of short VLB paths.
    let t = topo(2, 4, 2, 3);
    let result = compute_tvlb(t.clone(), &TUgalConfig::quick());
    assert_ne!(
        result.chosen,
        VlbRule::All,
        "dense topology should restrict"
    );
    assert!(
        result.report.mean_hops_tvlb < result.report.mean_hops_all - 0.2,
        "T-VLB should be shorter on average: {} vs {}",
        result.report.mean_hops_tvlb,
        result.report.mean_hops_all
    );
    assert_eq!(result.report.sweep.len(), 31);
    assert!(!result.report.scores.is_empty());
}

#[test]
fn tvlb_on_maximal_topology_never_loses_throughput() {
    // dfly(2,4,2,9) is maximal (1 link per pair).  The paper's Figure-5
    // claim — T-UGAL converges with conventional UGAL when every VLB path
    // is needed — is established by Step-2 *simulation*; on this small
    // maximal instance we assert the measurable form of it: whatever
    // Step 2 picks scores at least as much simulated saturation
    // throughput as the full candidate set (All is always a candidate).
    let t = topo(2, 4, 2, 9);
    let result = compute_tvlb(t.clone(), &TUgalConfig::quick());
    let all_score = result
        .report
        .scores
        .iter()
        .find(|s| s.rule == VlbRule::All)
        .expect("the full set is always a Step-2 candidate");
    let chosen_score = result
        .report
        .scores
        .iter()
        .find(|s| s.rule == result.chosen)
        .unwrap();
    assert!(
        chosen_score.throughput >= all_score.throughput - 0.05,
        "chosen {:?} at {} must not lose to All at {}",
        result.chosen,
        chosen_score.throughput,
        all_score.throughput
    );
}

#[test]
fn sweep_report_orders_match_table1() {
    let t = topo(2, 4, 2, 3);
    // (uses the same quick config as the other tests)
    let result = compute_tvlb(t.clone(), &TUgalConfig::quick());
    let labels: Vec<String> = result
        .report
        .sweep
        .iter()
        .map(|o| o.rule.to_string())
        .collect();
    assert_eq!(labels[0], "3-hop paths");
    assert_eq!(labels[30], "all VLB paths");
    for o in &result.report.sweep {
        assert!(o.mean > 0.0 && o.mean <= 1.0, "{o:?}");
        assert!(o.sem >= 0.0);
    }
}

#[test]
fn strategic_candidates_appear_for_fractional_five_hop() {
    let t = topo(2, 4, 2, 3);
    let result = compute_tvlb(t.clone(), &TUgalConfig::quick());
    let has_frac5 = result.report.candidates.iter().any(|r| {
        matches!(r, VlbRule::ClassLimit { max_hops: 4, frac_next } if *frac_next > 0.0 && *frac_next < 1.0)
    });
    let has_strategic = result
        .report
        .candidates
        .iter()
        .any(|r| matches!(r, VlbRule::Strategic { .. }));
    assert_eq!(has_frac5, has_strategic, "{:?}", result.report.candidates);
}

#[test]
fn provider_is_usable_in_simulation() {
    use tugal_netsim::{Config, RoutingAlgorithm, Simulator};
    use tugal_traffic::{Shift, TrafficPattern};

    let t = topo(2, 4, 2, 3);
    let result = compute_tvlb(t.clone(), &TUgalConfig::quick());
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&t, 1, 0));
    let r = Simulator::new(
        t.clone(),
        result.provider,
        pattern,
        RoutingAlgorithm::UgalL,
        Config::quick(),
    )
    .run(0.2);
    assert!(r.delivered > 0);
    assert!(!r.saturated, "{r:?}");
}

#[test]
fn conventional_provider_picks_representation_by_size() {
    let small = topo(2, 4, 2, 3);
    let p = conventional_provider(small, 300);
    assert!(p.mean_vlb_hops() > 2.0);
    // Force the rule-provider path with a tiny table budget.
    let also_small = topo(2, 4, 2, 3);
    let p = conventional_provider(also_small, 1);
    assert!(p.mean_vlb_hops() > 2.0);
}

#[test]
fn deterministic_given_seed() {
    let t = topo(2, 4, 2, 3);
    let a = compute_tvlb(t.clone(), &TUgalConfig::quick());
    let b = compute_tvlb(t.clone(), &TUgalConfig::quick());
    assert_eq!(a.chosen, b.chosen);
    assert_eq!(a.report.mean_hops_tvlb, b.report.mean_hops_tvlb);
}
