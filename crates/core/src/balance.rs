//! Step 2a: load-balance analysis and adjustment of a T-VLB path table.
//!
//! A subset of VLB paths can use links unevenly (§3.3.3), at two levels:
//!
//! * **locally** — within one switch pair's candidate set, some link is
//!   much more likely to carry that pair's traffic than the others;
//! * **globally** — over all pairs (each path equally likely), some link
//!   is much more likely to carry traffic than its peers of the same kind.
//!
//! The paper's adjustment is deliberately simple: *remove* paths that
//! cause the imbalance (replacement strategies were unnecessary in their
//! experiments, and UGAL tolerates residual imbalance).  This module
//! mirrors that: iterative removal of paths crossing over-used links,
//! never shrinking a pair below a configured diversity floor.

use std::collections::HashMap;
use tugal_routing::PathTable;
use tugal_topology::{ChannelKind, Dragonfly, SwitchId};

/// Thresholds for imbalance detection and the diversity floor.
#[derive(Debug, Clone)]
pub struct BalanceOptions {
    /// A link is locally over-used when its usage probability exceeds this
    /// multiple of the pair's mean link usage probability.
    pub local_ratio: f64,
    /// Same, for the global all-pairs distribution (compared per channel
    /// kind, since local and global links have different base loads).
    pub global_ratio: f64,
    /// Never reduce a pair below this many VLB candidates.
    pub min_paths_per_pair: usize,
    /// Each pass may remove at most this fraction of a pair's candidates —
    /// the adjustment trims outliers, it must not reshape the set.
    pub max_removed_frac: f64,
    /// Iteration cap for the remove-and-recheck loops.
    pub max_rounds: usize,
}

impl Default for BalanceOptions {
    fn default() -> Self {
        BalanceOptions {
            local_ratio: 2.5,
            global_ratio: 2.0,
            min_paths_per_pair: 4,
            max_removed_frac: 0.25,
            max_rounds: 4,
        }
    }
}

impl BalanceOptions {
    /// Per-pair floor given the candidate count a pass starts from.
    fn floor(&self, starting_len: usize) -> usize {
        let by_frac = ((starting_len as f64) * (1.0 - self.max_removed_frac)).ceil() as usize;
        self.min_paths_per_pair.max(by_frac).min(starting_len)
    }
}

/// What the adjustment did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BalanceReport {
    /// Paths removed by the per-pair (local) pass.
    pub removed_local: usize,
    /// Paths removed by the all-pairs (global) pass.
    pub removed_global: usize,
    /// Worst global over-use ratio before adjustment (1.0 = perfectly
    /// even).
    pub worst_ratio_before: f64,
    /// Worst global over-use ratio after adjustment.
    pub worst_ratio_after: f64,
}

/// Detects and removes local imbalance: for each pair, the candidate set's
/// usage of *global* channels is compared per hop position (first global
/// hop, second global hop) — every VLB path has exactly one of each, so
/// positions are comparable — and channels exceeding
/// `local_ratio × (position mean)` lose their paths, subject to the
/// diversity floor.
///
/// Comparing within a position matters: channels near the source
/// inherently carry more of a pair's traffic than distant ones (even under
/// the full VLB set), so a flat per-pair comparison would flag structure,
/// not path-set skew.
pub fn adjust_local(table: &mut PathTable, topo: &Dragonfly, opts: &BalanceOptions) -> usize {
    let n = table.num_switches();
    let mut removed = 0;
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s == d {
                continue;
            }
            let pair = table.pair_mut(SwitchId(s), SwitchId(d));
            let floor = opts.floor(pair.vlb.len());
            for _ in 0..opts.max_rounds {
                if pair.vlb.len() <= floor {
                    break;
                }
                // usage[position][channel] over the pair's candidates.
                let mut usage: [HashMap<u32, usize>; 2] = [HashMap::new(), HashMap::new()];
                for p in &pair.vlb {
                    let mut gpos = 0;
                    for i in 0..p.hops() {
                        if p.hop_kind(topo, i) == ChannelKind::Global {
                            if gpos < 2 {
                                *usage[gpos].entry(p.channel_at(topo, i).0).or_default() += 1;
                            }
                            gpos += 1;
                        }
                    }
                }
                // Hottest offending (position, channel).
                let mut hot: Option<(usize, u32, f64)> = None;
                for (pos, u) in usage.iter().enumerate() {
                    if u.len() < 2 {
                        continue;
                    }
                    let mean = u.values().sum::<usize>() as f64 / u.len() as f64;
                    for (&ch, &cnt) in u {
                        let ratio = cnt as f64 / mean;
                        if ratio > opts.local_ratio && hot.is_none_or(|(_, _, r)| ratio > r) {
                            hot = Some((pos, ch, ratio));
                        }
                    }
                }
                let Some((pos, hot_ch, _)) = hot else { break };
                let before = pair.vlb.len();
                let keep_at_least = floor;
                let mut kept = Vec::with_capacity(before);
                let mut dropped = 0;
                for p in pair.vlb.drain(..) {
                    let mut gpos = 0;
                    let mut uses_hot = false;
                    for i in 0..p.hops() {
                        if p.hop_kind(topo, i) == ChannelKind::Global {
                            if gpos == pos && p.channel_at(topo, i).0 == hot_ch {
                                uses_hot = true;
                            }
                            gpos += 1;
                        }
                    }
                    if uses_hot && before - dropped > keep_at_least {
                        dropped += 1;
                    } else {
                        kept.push(p);
                    }
                }
                pair.vlb = kept;
                removed += dropped;
                if dropped == 0 {
                    break;
                }
            }
        }
    }
    removed
}

/// Global usage probability per channel: every pair equally likely, every
/// candidate of a pair equally likely.
fn global_usage(table: &PathTable, topo: &Dragonfly) -> Vec<f64> {
    let n = table.num_switches();
    let mut usage = vec![0.0f64; topo.num_network_channels()];
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s == d {
                continue;
            }
            let pair = table.pair(SwitchId(s), SwitchId(d));
            if pair.vlb.is_empty() {
                continue;
            }
            let w = 1.0 / pair.vlb.len() as f64;
            for p in &pair.vlb {
                for c in p.channels(topo) {
                    usage[c.index()] += w;
                }
            }
        }
    }
    usage
}

/// Worst over-use ratio (max/mean) per channel kind.
fn worst_ratio(usage: &[f64], topo: &Dragonfly) -> f64 {
    let mut worst = 0.0f64;
    for kind in [ChannelKind::Local, ChannelKind::Global] {
        let values: Vec<f64> = topo
            .channels()
            .iter()
            .filter(|c| c.kind == kind)
            .map(|c| usage[c.id.index()])
            .collect();
        if values.is_empty() {
            continue;
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        if mean > 0.0 {
            let max = values.iter().copied().fold(0.0, f64::max);
            worst = worst.max(max / mean);
        }
    }
    worst
}

/// Detects and removes global imbalance: channels whose all-pairs usage
/// probability exceeds `global_ratio × (mean of their kind)` lose paths,
/// one pass per round, subject to the per-pair floor.
pub fn adjust_global(table: &mut PathTable, topo: &Dragonfly, opts: &BalanceOptions) -> usize {
    let n = table.num_switches();
    let mut removed = 0;
    for _ in 0..opts.max_rounds {
        let usage = global_usage(table, topo);
        // Hot channels per kind.
        let mut hot = vec![false; usage.len()];
        let mut any_hot = false;
        for kind in [ChannelKind::Local, ChannelKind::Global] {
            let idx: Vec<usize> = topo
                .channels()
                .iter()
                .filter(|c| c.kind == kind)
                .map(|c| c.id.index())
                .collect();
            if idx.is_empty() {
                continue;
            }
            let mean = idx.iter().map(|&i| usage[i]).sum::<f64>() / idx.len() as f64;
            for &i in &idx {
                if usage[i] > opts.global_ratio * mean && mean > 0.0 {
                    hot[i] = true;
                    any_hot = true;
                }
            }
        }
        if !any_hot {
            break;
        }
        let mut this_round = 0;
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s == d {
                    continue;
                }
                let pair = table.pair_mut(SwitchId(s), SwitchId(d));
                let mut len = pair.vlb.len();
                let min_keep = opts.floor(len);
                if len <= min_keep {
                    continue;
                }
                let before = len;
                pair.vlb.retain(|p| {
                    if len <= min_keep {
                        return true;
                    }
                    let uses_hot = p.channels(topo).any(|c| hot[c.index()]);
                    if uses_hot {
                        len -= 1;
                        false
                    } else {
                        true
                    }
                });
                this_round += before - pair.vlb.len();
            }
        }
        removed += this_round;
        if this_round == 0 {
            break;
        }
    }
    removed
}

/// Runs both passes and reports what changed.
pub fn adjust(table: &mut PathTable, topo: &Dragonfly, opts: &BalanceOptions) -> BalanceReport {
    let before = worst_ratio(&global_usage(table, topo), topo);
    let removed_local = adjust_local(table, topo, opts);
    let removed_global = adjust_global(table, topo, opts);
    let after = worst_ratio(&global_usage(table, topo), topo);
    BalanceReport {
        removed_local,
        removed_global,
        worst_ratio_before: before,
        worst_ratio_after: after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tugal_routing::VlbRule;
    use tugal_topology::DragonflyParams;

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap()
    }

    #[test]
    fn full_table_is_roughly_balanced() {
        let t = topo();
        let table = PathTable::build_all(&t);
        let ratio = worst_ratio(&global_usage(&table, &t), &t);
        // The symmetric all-VLB set should not be wildly imbalanced.
        assert!(ratio < 3.0, "{ratio}");
    }

    #[test]
    fn adjustment_never_breaks_diversity_floor() {
        let t = topo();
        let mut table = PathTable::build_with_rule(
            &t,
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.3,
            },
            3,
        );
        let opts = BalanceOptions {
            local_ratio: 1.2,
            global_ratio: 1.2,
            min_paths_per_pair: 3,
            max_removed_frac: 1.0,
            max_rounds: 4,
        };
        adjust(&mut table, &t, &opts);
        for s in 0..t.num_switches() as u32 {
            for d in 0..t.num_switches() as u32 {
                if s == d {
                    continue;
                }
                let pair = table.pair(SwitchId(s), SwitchId(d));
                assert!(
                    pair.vlb.len() >= 3.min(pair.vlb.len().max(1)),
                    "pair ({s},{d}) has {} paths",
                    pair.vlb.len()
                );
                assert!(!pair.vlb.is_empty(), "pair ({s},{d}) emptied");
            }
        }
    }

    #[test]
    fn adjustment_keeps_worst_ratio_sane() {
        // Removal can shuffle which channel is hottest (the report exists
        // to surface that), but it must not blow the distribution up.
        let t = topo();
        let mut table = PathTable::build_with_rule(
            &t,
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.2,
            },
            99,
        );
        let report = adjust(&mut table, &t, &BalanceOptions::default());
        assert!(report.worst_ratio_before >= 1.0);
        assert!(
            report.worst_ratio_after <= report.worst_ratio_before * 1.5 + 0.5,
            "{report:?}"
        );
    }

    #[test]
    fn aggressive_thresholds_remove_paths() {
        let t = topo();
        let mut table = PathTable::build_with_rule(
            &t,
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.2,
            },
            5,
        );
        let opts = BalanceOptions {
            local_ratio: 1.01,
            global_ratio: 1.01,
            min_paths_per_pair: 2,
            max_removed_frac: 1.0,
            max_rounds: 3,
        };
        let report = adjust(&mut table, &t, &opts);
        assert!(
            report.removed_local + report.removed_global > 0,
            "{report:?}"
        );
    }

    #[test]
    fn lenient_thresholds_remove_nothing() {
        let t = topo();
        let mut table = PathTable::build_all(&t);
        let opts = BalanceOptions {
            local_ratio: 100.0,
            global_ratio: 100.0,
            ..Default::default()
        };
        let report = adjust(&mut table, &t, &opts);
        assert_eq!(report.removed_local + report.removed_global, 0);
    }
}
