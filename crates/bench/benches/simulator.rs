//! Criterion micro-benchmarks of the cycle-accurate simulator: cycles per
//! second under the paper's routings and candidate-provider kinds, and the
//! workspace-reuse speedup of the sweep layer.

use criterion::{criterion_group, criterion_main, Criterion};
use rayon::prelude::*;
use std::sync::Arc;
use tugal_netsim::{
    latency_curve, Config, RoutingAlgorithm, SimWorkspace, Simulator, SweepOptions,
};
use tugal_routing::{PathProvider, RuleProvider, TableProvider, VlbRule};
use tugal_topology::{Dragonfly, DragonflyParams};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

fn bench_cfg() -> Config {
    let mut cfg = Config::quick();
    cfg.warmup_windows = 0;
    cfg.window = 1_000;
    cfg
}

fn simulator_throughput(c: &mut Criterion) {
    let topo = Arc::new(Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap());
    let table: Arc<dyn PathProvider> = Arc::new(TableProvider::all_paths(topo.clone()));
    let rule: Arc<dyn PathProvider> = Arc::new(RuleProvider::new(topo.clone(), VlbRule::All));
    let uniform: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&topo));
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&topo, 2, 0));

    let mut group = c.benchmark_group("simulator/1k-cycles dfly(4,8,4,9)");
    group.sample_size(10);
    for routing in [
        RoutingAlgorithm::Min,
        RoutingAlgorithm::UgalL,
        RoutingAlgorithm::UgalG,
        RoutingAlgorithm::Par,
    ] {
        group.bench_function(format!("{} uniform table", routing.name()), |b| {
            b.iter(|| {
                Simulator::new(
                    topo.clone(),
                    table.clone(),
                    uniform.clone(),
                    routing,
                    bench_cfg().for_routing(routing),
                )
                .run(0.2)
            })
        });
    }
    group.bench_function("UGAL-L adversarial table", |b| {
        b.iter(|| {
            Simulator::new(
                topo.clone(),
                table.clone(),
                adv.clone(),
                RoutingAlgorithm::UgalL,
                bench_cfg().for_routing(RoutingAlgorithm::UgalL),
            )
            .run(0.2)
        })
    });
    group.bench_function("UGAL-L adversarial rule-sampler", |b| {
        b.iter(|| {
            Simulator::new(
                topo.clone(),
                rule.clone(),
                adv.clone(),
                RoutingAlgorithm::UgalL,
                bench_cfg().for_routing(RoutingAlgorithm::UgalL),
            )
            .run(0.2)
        })
    });
    group.finish();
}

/// Workspace reuse versus per-run allocation, at quick settings on the
/// paper's dfly(4,8,4,9): a single-run fresh/reused pair (the sensitive
/// measurement) and the 8-job `latency_curve` against the same flat job
/// list with per-run allocation (the no-regression guard).  Packet state
/// is stored inline (`Path` is a fixed array), so a fresh workspace only
/// pays small-buffer allocation against thousands of simulated cycles —
/// expect parity within noise here; the pool's value is bounded peak
/// memory and the reset≡fresh determinism contract.
fn sweep_workspace_reuse(c: &mut Criterion) {
    let topo = Arc::new(Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap());
    let provider: Arc<dyn PathProvider> = Arc::new(TableProvider::all_paths(topo.clone()));
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&topo));
    let routing = RoutingAlgorithm::UgalL;
    let cfg = Config::quick().for_routing(routing);
    let rates = [0.05, 0.10, 0.15, 0.20];
    let opts = SweepOptions {
        seeds: vec![1, 2],
        resolution: 0.02,
    };

    let mut group = c.benchmark_group("sweep/8-job curve dfly(4,8,4,9) quick");
    group.sample_size(10);
    // Single-run granularity first: the per-run allocation overhead is a
    // few ms against a ~100 ms quick run, so this pair is the sensitive
    // measurement; the curve-level pair below is the no-regression check.
    group.bench_function("one run, fresh workspace", |b| {
        let mut c = cfg.clone();
        c.seed = 1;
        let sim = Simulator::new(topo.clone(), provider.clone(), pattern.clone(), routing, c);
        b.iter(|| {
            let mut ws = SimWorkspace::new();
            sim.run_with(0.2, &mut ws)
        })
    });
    group.bench_function("one run, reused workspace", |b| {
        let mut c = cfg.clone();
        c.seed = 1;
        let sim = Simulator::new(topo.clone(), provider.clone(), pattern.clone(), routing, c);
        let mut ws = SimWorkspace::new();
        b.iter(|| sim.run_with(0.2, &mut ws))
    });
    group.bench_function("per-run allocation", |b| {
        // The pre-refactor shape: same flat parallel job list, but every
        // run builds its engine state from scratch.
        let jobs: Vec<(f64, u64)> = rates
            .iter()
            .flat_map(|&r| opts.seeds.iter().map(move |&s| (r, s)))
            .collect();
        b.iter(|| {
            let results: Vec<_> = jobs
                .par_iter()
                .map(|&(rate, seed)| {
                    let mut c = cfg.clone();
                    c.seed = seed;
                    Simulator::new(topo.clone(), provider.clone(), pattern.clone(), routing, c)
                        .run(rate)
                })
                .collect();
            results
        })
    });
    group.bench_function("latency_curve (pooled workspaces)", |b| {
        b.iter(|| latency_curve(&topo, &provider, &pattern, routing, &cfg, &rates, &opts))
    });
    group.finish();
}

criterion_group!(benches, simulator_throughput, sweep_workspace_reuse);
criterion_main!(benches);
