//! Criterion micro-benchmarks of the cycle-accurate simulator: cycles per
//! second under the paper's routings and candidate-provider kinds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tugal_netsim::{Config, RoutingAlgorithm, Simulator};
use tugal_routing::{PathProvider, RuleProvider, TableProvider, VlbRule};
use tugal_topology::{Dragonfly, DragonflyParams};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

fn bench_cfg() -> Config {
    let mut cfg = Config::quick();
    cfg.warmup_windows = 0;
    cfg.window = 1_000;
    cfg
}

fn simulator_throughput(c: &mut Criterion) {
    let topo = Arc::new(Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap());
    let table: Arc<dyn PathProvider> = Arc::new(TableProvider::all_paths(topo.clone()));
    let rule: Arc<dyn PathProvider> = Arc::new(RuleProvider::new(topo.clone(), VlbRule::All));
    let uniform: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(&topo));
    let adv: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&topo, 2, 0));

    let mut group = c.benchmark_group("simulator/1k-cycles dfly(4,8,4,9)");
    group.sample_size(10);
    for routing in [
        RoutingAlgorithm::Min,
        RoutingAlgorithm::UgalL,
        RoutingAlgorithm::UgalG,
        RoutingAlgorithm::Par,
    ] {
        group.bench_function(format!("{} uniform table", routing.name()), |b| {
            b.iter(|| {
                Simulator::new(
                    topo.clone(),
                    table.clone(),
                    uniform.clone(),
                    routing,
                    bench_cfg().for_routing(routing),
                )
                .run(0.2)
            })
        });
    }
    group.bench_function("UGAL-L adversarial table", |b| {
        b.iter(|| {
            Simulator::new(
                topo.clone(),
                table.clone(),
                adv.clone(),
                RoutingAlgorithm::UgalL,
                bench_cfg().for_routing(RoutingAlgorithm::UgalL),
            )
            .run(0.2)
        })
    });
    group.bench_function("UGAL-L adversarial rule-sampler", |b| {
        b.iter(|| {
            Simulator::new(
                topo.clone(),
                rule.clone(),
                adv.clone(),
                RoutingAlgorithm::UgalL,
                bench_cfg().for_routing(RoutingAlgorithm::UgalL),
            )
            .run(0.2)
        })
    });
    group.finish();
}

criterion_group!(benches, simulator_throughput);
criterion_main!(benches);
