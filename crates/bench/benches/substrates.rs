//! Criterion micro-benchmarks of the substrates: topology construction,
//! path enumeration, path-table builds, pair statistics and LP solves.
//!
//! These guard the performance assumptions the experiment harnesses rely
//! on (e.g. "a Step-1 LP solves in well under a second").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tugal_lp::{LinearProgram, Relation};
use tugal_model::{modeled_throughput, ModelVariant, PairStats};
use tugal_routing::{all_vlb_paths, min_paths, PathTable, VlbRule};
use tugal_topology::{Dragonfly, DragonflyParams, SwitchId};
use tugal_traffic::{Shift, TrafficPattern};

fn topology_construction(c: &mut Criterion) {
    c.bench_function("topology/build dfly(4,8,4,9)", |b| {
        b.iter(|| Dragonfly::new(black_box(DragonflyParams::new(4, 8, 4, 9))).unwrap())
    });
    c.bench_function("topology/build dfly(13,26,13,27)", |b| {
        b.iter(|| Dragonfly::new(black_box(DragonflyParams::new(13, 26, 13, 27))).unwrap())
    });
}

fn path_enumeration(c: &mut Criterion) {
    let t9 = Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap();
    let t33 = Dragonfly::new(DragonflyParams::new(4, 8, 4, 33)).unwrap();
    c.bench_function("paths/min dfly(4,8,4,9)", |b| {
        b.iter(|| min_paths(&t9, black_box(SwitchId(0)), black_box(SwitchId(9))))
    });
    c.bench_function("paths/all_vlb dfly(4,8,4,9)", |b| {
        b.iter(|| all_vlb_paths(&t9, black_box(SwitchId(0)), black_box(SwitchId(9))))
    });
    c.bench_function("paths/all_vlb dfly(4,8,4,33)", |b| {
        b.iter(|| all_vlb_paths(&t33, black_box(SwitchId(0)), black_box(SwitchId(9))))
    });
}

fn table_builds(c: &mut Criterion) {
    let t = Dragonfly::new(DragonflyParams::new(2, 4, 2, 9)).unwrap();
    c.bench_function("table/build_all dfly(2,4,2,9)", |b| {
        b.iter(|| PathTable::build_all(black_box(&t)))
    });
    let full = PathTable::build_all(&t);
    c.bench_function("table/apply_rule 50% 5-hop", |b| {
        b.iter_batched(
            || full.clone(),
            |mut table| {
                table.apply_rule(
                    &t,
                    VlbRule::ClassLimit {
                        max_hops: 4,
                        frac_next: 0.5,
                    },
                    7,
                );
                table
            },
            BatchSize::LargeInput,
        )
    });
}

fn pair_stats(c: &mut Criterion) {
    let t9 = Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap();
    let t27 = Dragonfly::new(DragonflyParams::new(13, 26, 13, 27)).unwrap();
    c.bench_function("model/pair_stats dfly(4,8,4,9)", |b| {
        b.iter(|| PairStats::compute(&t9, black_box(SwitchId(0)), black_box(SwitchId(9))))
    });
    c.bench_function("model/pair_stats dfly(13,26,13,27)", |b| {
        b.iter(|| PairStats::compute(&t27, black_box(SwitchId(0)), black_box(SwitchId(40))))
    });
}

fn lp_solves(c: &mut Criterion) {
    c.bench_function("lp/simplex 30x60 dense", |b| {
        b.iter(|| {
            let mut lp = LinearProgram::new();
            let mut state = 0x9E3779B97F4A7C15u64;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64) / (u32::MAX as f64)
            };
            let vars: Vec<_> = (0..30).map(|_| lp.add_var(next())).collect();
            for _ in 0..60 {
                let terms: Vec<_> = vars.iter().map(|&v| (v, next())).collect();
                lp.add_constraint(&terms, Relation::Le, 1.0 + next());
            }
            lp.solve().unwrap()
        })
    });
    let t = Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap();
    let demands = Shift::new(&t, 2, 0).demands().unwrap();
    c.bench_function("model/throughput shift(2,0) dfly(4,8,4,9) all-VLB", |b| {
        b.iter(|| {
            modeled_throughput(
                &t,
                black_box(&demands),
                VlbRule::All,
                ModelVariant::DrawProportional,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = topology_construction, path_enumeration, table_builds, pair_stats, lp_solves
}
criterion_main!(benches);
