//! Table 1: the data points probed in the coarse-grain Step 1.

use tugal::table1_points;

fn main() {
    println!("# table1: configurations probed in coarse-grain Step 1");
    println!("{:>6}  data point", "idx");
    for (i, rule) in table1_points().iter().enumerate() {
        let explanation = match rule {
            tugal_routing::VlbRule::All => "all VLB paths".to_string(),
            tugal_routing::VlbRule::ClassLimit {
                max_hops,
                frac_next,
            } if *frac_next == 0.0 => format!("all paths {max_hops}-hop or less"),
            tugal_routing::VlbRule::ClassLimit {
                max_hops,
                frac_next,
            } => format!(
                "all paths {max_hops}-hop or less plus {:.0}% {}-hop paths",
                frac_next * 100.0,
                max_hops + 1
            ),
            tugal_routing::VlbRule::Strategic { .. } => unreachable!("not a Table-1 point"),
        };
        println!("{:>6}  {:<14} {}", i, rule.to_string(), explanation);
    }
}
