//! Figure 6: latency vs offered load for UGAL-L, T-UGAL-L, PAR and T-PAR
//! on dfly(4,8,4,9) under the adversarial shift(2,0) pattern.
//!
//! Paper numbers: UGAL-L saturates ≈0.23 vs T-UGAL-L ≈0.29; PAR ≈0.29 vs
//! T-PAR ≈0.38; T- variants also have lower latency before saturation.

use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;

fn main() {
    let topo = dfly(4, 8, 4, 9);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern = shift(&topo, 2, 0);
    let series = run_series(
        &topo,
        &pattern,
        &[
            ("UGAL-L", ugal.clone(), RoutingAlgorithm::UgalL),
            ("T-UGAL-L", tvlb.clone(), RoutingAlgorithm::UgalL),
            ("PAR", ugal, RoutingAlgorithm::Par),
            ("T-PAR", tvlb, RoutingAlgorithm::Par),
        ],
        &rate_grid(0.5),
        None,
    );
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig6",
        "adversarial shift(2,0), dfly(4,8,4,9), UGAL-L/PAR vs T- variants",
        &series,
    );
    tugal_bench::finish();
}
