//! Resilience smoke harness: a tiny pinned sweep whose results file
//! contains only deterministic fields, so CI can kill it mid-batch,
//! re-run it against the same `TUGAL_JOURNAL`, and byte-compare the
//! output against an uninterrupted run.
//!
//! Environment knobs:
//!
//! * `TUGAL_JOURNAL=<path>` — resume journal (handled by the shared sweep
//!   path; completed jobs are recorded as they finish and replayed on a
//!   re-invocation).
//! * `TUGAL_RESILIENCE_OUT=<path>` — where to write the deterministic
//!   results JSON (default `results/resilience.json`).
//! * `TUGAL_RESILIENCE_PANIC=1` — add a series whose every job panics
//!   (1 VC under UGAL-L), exercising job isolation, capsule writing and
//!   the failure exit code (3 via [`tugal_bench::finish`]).
//! * `TUGAL_RESILIENCE_TOPO=p,a,h,g` — override the default
//!   `dfly(2,4,2,5)`; the CI shard-smoke job uses `2,7,1,8` so its
//!   8 groups admit a `TUGAL_SHARDS=4` partition, then byte-compares the
//!   sharded results file against a sequential run's.
//! * `TUGAL_RESILIENCE_KILL9=<n>` — SIGKILL this process as soon as `n`
//!   checkpoint files exist under the `TUGAL_CKPT` directory (requires
//!   `TUGAL_CKPT`; see [`tugal_netsim::CkptConfig`]).  The CI ckpt-smoke
//!   job uses it to die mid-simulation — no unwinding, no flushes — and
//!   asserts a resumed re-invocation (same `TUGAL_JOURNAL` and
//!   `TUGAL_CKPT`) reproduces the uninterrupted results byte-for-byte.
//!
//! All floating-point results are written as exact IEEE-754 bits: two runs
//! produce byte-identical files iff they produced bit-identical results.

use tugal_bench::{
    dfly, fatal, finish, print_figure, run_series_cfg, shift, sim_config, ugal_provider, Series,
};
use tugal_netsim::RoutingAlgorithm;

#[derive(serde::Serialize)]
struct PointOut {
    rate_bits: u64,
    latency_bits: u64,
    throughput_bits: u64,
    p50_bits: u64,
    p99_bits: u64,
    delivered: u64,
    injected: u64,
    saturated: bool,
}

#[derive(serde::Serialize)]
struct Out {
    id: String,
    series: Vec<(String, Vec<PointOut>)>,
}

fn panic_injection() -> bool {
    std::env::var("TUGAL_RESILIENCE_PANIC")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The sweep's topology: `TUGAL_RESILIENCE_TOPO=p,a,h,g` if set (and
/// well-formed — anything else is a fatal setup error), else the default
/// `dfly(2,4,2,5)`.
fn resilience_topo() -> std::sync::Arc<tugal_topology::Dragonfly> {
    let spec = match std::env::var("TUGAL_RESILIENCE_TOPO") {
        Ok(s) if !s.trim().is_empty() => s,
        _ => return dfly(2, 4, 2, 5),
    };
    let parts: Vec<u32> = spec
        .split(',')
        .map(|t| t.trim().parse::<u32>())
        .collect::<Result<_, _>>()
        .unwrap_or_default();
    match parts.as_slice() {
        [p, a, h, g] => dfly(*p, *a, *h, *g),
        _ => fatal(
            "parsing TUGAL_RESILIENCE_TOPO",
            format!("expected `p,a,h,g`, got `{spec}`"),
        ),
    }
}

/// Arms the `TUGAL_RESILIENCE_KILL9` watcher: a thread that polls the
/// `TUGAL_CKPT` directory and SIGKILLs the process once the requested
/// number of checkpoint files exist — the hardest crash the harness can
/// inflict on itself (no unwinding, no atexit hooks, no stdio flushes),
/// exactly what the checkpoint layer's durability discipline must survive.
fn arm_kill9() {
    let Some(n) = std::env::var("TUGAL_RESILIENCE_KILL9")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    else {
        return;
    };
    let Ok(dir) = std::env::var("TUGAL_CKPT") else {
        eprintln!("warning: TUGAL_RESILIENCE_KILL9 set without TUGAL_CKPT; ignoring");
        return;
    };
    std::thread::spawn(move || {
        let dir = std::path::PathBuf::from(dir);
        loop {
            let ckpts = std::fs::read_dir(&dir)
                .map(|it| {
                    it.flatten()
                        .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
                        .count()
                })
                .unwrap_or(0);
            if ckpts >= n {
                let pid = std::process::id().to_string();
                let _ = std::process::Command::new("kill")
                    .args(["-9", &pid])
                    .status();
                // Unreachable unless the `kill` binary is missing; abort is
                // the closest std-only stand-in (still no cleanup).
                std::process::abort();
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    });
}

fn main() {
    arm_kill9();
    let out_path =
        std::env::var("TUGAL_RESILIENCE_OUT").unwrap_or_else(|_| "results/resilience.json".into());
    let topo = resilience_topo();
    let provider = ugal_provider(&topo);
    let pattern = shift(&topo, 1, 0);
    let ugal_cfg = sim_config().for_routing(RoutingAlgorithm::UgalL);
    let vlb_cfg = sim_config().for_routing(RoutingAlgorithm::Vlb);
    let mut entries = vec![
        (
            "UGAL-L".to_string(),
            provider.clone(),
            RoutingAlgorithm::UgalL,
            ugal_cfg.clone(),
        ),
        (
            "VLB".to_string(),
            provider.clone(),
            RoutingAlgorithm::Vlb,
            vlb_cfg,
        ),
    ];
    if panic_injection() {
        // One VC cannot host UGAL-L's escape scheme: Config::validate
        // accepts it (it is a routing-specific minimum, not a structural
        // one) and Simulator::new panics — deterministically — inside the
        // runner's job isolation.
        let mut broken = ugal_cfg;
        broken.num_vcs = 1;
        entries.push((
            "PANIC".to_string(),
            provider,
            RoutingAlgorithm::UgalL,
            broken,
        ));
    }
    let rates = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30];
    let series = run_series_cfg(&topo, &pattern, &entries, &rates);
    let title = format!("resilience smoke sweep, {}, shift(1,0)", topo.params());
    print_figure("resilience", &title, &series);
    write_deterministic(&out_path, &series);
    println!("# wrote {out_path}");
    finish();
}

/// Writes only bit-stable fields, excluding everything wall-clock.
fn write_deterministic(path: &str, series: &[Series]) {
    let out = Out {
        id: "resilience".into(),
        series: series
            .iter()
            .map(|s| {
                (
                    s.label.clone(),
                    s.points
                        .iter()
                        .map(|p| PointOut {
                            rate_bits: p.rate.to_bits(),
                            latency_bits: p.result.avg_latency.to_bits(),
                            throughput_bits: p.result.throughput.to_bits(),
                            p50_bits: p.result.latency_p50.to_bits(),
                            p99_bits: p.result.latency_p99.to_bits(),
                            delivered: p.result.delivered,
                            injected: p.result.injected,
                            saturated: p.result.saturated,
                        })
                        .collect(),
                )
            })
            .collect(),
    };
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                fatal(&format!("creating {}", parent.display()), e);
            }
        }
    }
    let json = match serde_json::to_string_pretty(&out) {
        Ok(j) => j,
        Err(e) => fatal("serializing resilience results", format!("{e:?}")),
    };
    if let Err(e) = std::fs::write(path, json) {
        fatal(&format!("writing {path}"), e);
    }
}
