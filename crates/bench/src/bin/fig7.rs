//! Figure 7: latency vs offered load for UGAL-G and T-UGAL-G on
//! dfly(4,8,4,9) under the adversarial shift(2,0) pattern.
//!
//! Paper numbers: saturation 0.23 (UGAL-G) vs 0.30 (T-UGAL-G); at load
//! 0.1 latency 61.2 vs 54.2 cycles.

use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;

fn main() {
    let topo = dfly(4, 8, 4, 9);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern = shift(&topo, 2, 0);
    let series = run_series(
        &topo,
        &pattern,
        &[
            ("UGAL-G", ugal, RoutingAlgorithm::UgalG),
            ("T-UGAL-G", tvlb, RoutingAlgorithm::UgalG),
        ],
        &rate_grid(0.5),
        None,
    );
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig7",
        "adversarial shift(2,0), dfly(4,8,4,9), UGAL-G vs T-UGAL-G",
        &series,
    );
    tugal_bench::finish();
}
