//! Topology zoo sweep: UGAL-L vs T-UGAL-L across global-link arrangements
//! and parallel-cable (`global_lag`) multipliers.
//!
//! The paper wires its dragonflies with (a minor variation of) the
//! absolute arrangement; this harness re-runs the UGAL-L / T-UGAL-L
//! comparison of `fig_linkload` on the whole arrangement zoo — absolute,
//! relative, circulant, palmtree and a seeded random arrangement — each at
//! `global_lag` 1 and 2, under the adversarial shift(2,0) pattern with the
//! metrics layer forced on.
//!
//! Differential anchors built into the run:
//!
//! * the absolute/lag-1 grid point goes through the zoo construction path
//!   (`ArrangementSpec::parse` + `Dragonfly::with_shape`) and is asserted
//!   bit-for-bit equal to the plain `Dragonfly::new` baseline that
//!   `fig_linkload` runs — the zoo layer must be invisible at the default
//!   shape;
//! * every grid point must deliver traffic under both routings;
//! * each arrangement's coarse-grain LP solve chains a warm-start basis
//!   from lag 1 into lag 2 (the keyed cache re-maps whatever survives the
//!   channel renumbering), and every warm θ is asserted bit-identical to
//!   the plain cold model of the same shape.  Chain counters land in the
//!   `lp_stats` section of `results/fig_zoo.json`.
//!
//! `TUGAL_ZOO_TINY=1` swaps in `dfly(2,4,2,5)` for CI smoke runs.

use tugal_bench::*;
use tugal_model::{modeled_throughput, modeled_throughput_warm, ModelVariant, ModelWarmCache};
use tugal_netsim::RoutingAlgorithm;
use tugal_obs::MetricsConfig;
use tugal_routing::VlbRule;

/// Seed of the random arrangement in the zoo grid.
const ZOO_SEED: u64 = 0x2007;

fn tiny() -> bool {
    std::env::var("TUGAL_ZOO_TINY")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn main() {
    // Per-channel telemetry on, exactly as fig_linkload configures it, so
    // the absolute/lag-1 anchor runs the identical code path.
    force_metrics(MetricsConfig {
        enabled: true,
        sample_every: 500,
        occupancy_every: 250,
        per_channel: true,
    });

    let (p, a, h, g) = if tiny() { (2, 4, 2, 5) } else { (4, 8, 4, 9) };
    let rates = [0.1, 0.2];
    let arrangements = ["absolute", "relative", "circulant", "palmtree"];
    let random_id = format!("random:{ZOO_SEED:#x}");

    // The fig_linkload baseline: plain construction, no zoo machinery.
    let base_topo = dfly(p, a, h, g);
    let (base_tvlb, base_chosen) = tvlb_provider(&base_topo);
    let base_ugal = ugal_provider(&base_topo);
    let base_pattern = shift(&base_topo, 2, 0);
    let baseline = run_series(
        &base_topo,
        &base_pattern,
        &[
            ("UGAL-L", base_ugal, RoutingAlgorithm::UgalL),
            ("T-UGAL-L", base_tvlb, RoutingAlgorithm::UgalL),
        ],
        &rates,
        None,
    );
    println!("# baseline T-VLB = {base_chosen}");

    let mut all_series = Vec::new();
    let last = rates.len() - 1;
    println!(
        "# shape grid @ rate {:.2}: throughput / max global util / mean global util",
        rates[last]
    );
    for spec in arrangements.iter().copied().chain([random_id.as_str()]) {
        // The LP basis chains lag 1 → lag 2 within one arrangement; lag 2
        // renumbers the global channels, so the keyed cache re-maps the
        // surviving rows/columns and the solver repairs the rest.
        let mut model_chain = ModelWarmCache::new();
        for lag in [1u32, 2] {
            let topo = dfly_shape(p, a, h, g, spec, lag);
            let (tvlb, chosen) = tvlb_provider(&topo);
            let ugal = ugal_provider(&topo);
            let pattern = shift(&topo, 2, 0);
            let label_u = format!("{spec} lag{lag} UGAL-L");
            let label_t = format!("{spec} lag{lag} T-UGAL-L");
            let series = run_series(
                &topo,
                &pattern,
                &[
                    (&label_u, ugal, RoutingAlgorithm::UgalL),
                    (&label_t, tvlb, RoutingAlgorithm::UgalL),
                ],
                &rates,
                None,
            );

            if spec == "absolute" && lag == 1 {
                // Differential anchor: the default shape through the zoo
                // path must reproduce the plain-construction baseline
                // exactly (labels differ, results may not).
                for (zoo, base) in series.iter().zip(&baseline) {
                    for (za, ba) in zoo.points.iter().zip(&base.points) {
                        assert_eq!(
                            za.result, ba.result,
                            "{}: absolute/lag1 zoo run diverged from the plain baseline",
                            zoo.label
                        );
                    }
                }
                println!("# absolute lag1 matches the plain-construction baseline");
            }
            for s in &series {
                assert!(
                    s.points.iter().all(|pt| pt.result.delivered > 0),
                    "{}: a grid point delivered no traffic",
                    s.label
                );
            }

            for s in &series {
                let r = &s.points[last].result;
                let rep = &s.metrics[last];
                println!(
                    "# {:<28} T-VLB={chosen}  thr {:.4}  gmax {:.4}  gmean {:.4}",
                    s.label, r.throughput, rep.links.global.max_load, rep.links.global.mean_load
                );
            }
            all_series.extend(series);

            // Coarse-grain LP throughput of this shape, warm-chained from
            // the previous lag; the plain (cache-free) model is the
            // bit-identity oracle.
            if let Some(demands) = pattern.demands() {
                match modeled_throughput_warm(
                    &topo,
                    &demands,
                    VlbRule::All,
                    ModelVariant::DrawProportional,
                    &mut model_chain,
                ) {
                    Ok(theta) => {
                        let plain = modeled_throughput(
                            &topo,
                            &demands,
                            VlbRule::All,
                            ModelVariant::DrawProportional,
                        )
                        .unwrap_or_else(|e| fatal("plain model solve", e));
                        assert_eq!(
                            theta.to_bits(),
                            plain.to_bits(),
                            "{spec} lag{lag}: warm-chained θ {theta} diverged from plain {plain}"
                        );
                        println!("# model[{spec} lag{lag}]: Γ = {theta:.4}");
                    }
                    Err(e) => println!("# model[{spec} lag{lag}]: failed ({e})"),
                }
            }
        }
        record_lp_stats(&format!("{spec} lag-chain"), &model_chain.stats);
    }

    print_figure(
        "fig_zoo",
        "arrangement x global_lag grid, shift(2,0), UGAL-L vs T-UGAL-L",
        &all_series,
    );
    tugal_bench::finish();
}
