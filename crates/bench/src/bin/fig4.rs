//! Figure 4: average modeled throughput of the Step-1 sweep on
//! dfly(4,8,4,9) (mean ± standard error over TYPE_1 ∪ TYPE_2).
//!
//! Paper shape: steep rise from "3-hop" (~0.4), best region around
//! 40–70% 5-hop (~0.58), all-VLB ~0.56.  Our reconstruction rises to a
//! plateau (see DESIGN.md §4): the 5-hop region and all-VLB are within
//! ~1%, and the very small sets fall far below.

use tugal::{coarse_grain_sweep, SweepConfig};
use tugal_bench::{dfly, full_fidelity};

fn main() {
    let topo = dfly(4, 8, 4, 9);
    let cfg = if full_fidelity() {
        SweepConfig::default()
    } else {
        SweepConfig {
            type1_sample: Some(16),
            type2_count: 5,
            ..SweepConfig::default()
        }
    };
    println!("# fig4: average modeled throughput, Step-1 sweep, dfly(4,8,4,9)");
    println!(
        "# mode: {}",
        if full_fidelity() {
            "full"
        } else {
            "quick (sampled patterns)"
        }
    );
    println!("{:>16} {:>12} {:>10}", "config", "throughput", "stderr");
    for o in coarse_grain_sweep(&topo, &cfg) {
        println!(
            "{:>16} {:>12.4} {:>10.4}",
            o.rule.to_string(),
            o.mean,
            o.sem
        );
    }
}
