//! Ablation: the model variant (the paper's Model-3 modification).
//!
//! Compares [`ModelVariant::DrawProportional`] (default: VLB spreads
//! uniformly over the candidate set) against
//! [`ModelVariant::MonotoneClasses`] (the literal monotone relaxation of
//! the paper's added constraints) across the Table-1 sweep on
//! dfly(4,8,4,9).  The relaxation is provably monotone in the candidate
//! set — it cannot penalize oversized sets — which is why the default
//! variant is the one Algorithm 1 uses (DESIGN.md §4).

use tugal_bench::dfly;
use tugal_model::{modeled_throughput_multi, ModelVariant};
use tugal_traffic::{Shift, TrafficPattern};

fn main() {
    let topo = dfly(4, 8, 4, 9);
    let rules = tugal::table1_points();
    let demands = Shift::new(&topo, 2, 0).demands().unwrap();
    let draw =
        modeled_throughput_multi(&topo, &demands, &rules, ModelVariant::DrawProportional).unwrap();
    let mono =
        modeled_throughput_multi(&topo, &demands, &rules, ModelVariant::MonotoneClasses).unwrap();
    println!("# ablation_monotonicity: model variants on shift(2,0), dfly(4,8,4,9)");
    println!(
        "{:>16} {:>18} {:>18} {:>8}",
        "config", "draw-proportional", "monotone-classes", "gap"
    );
    for ((rule, d), m) in rules.iter().zip(&draw).zip(&mono) {
        println!(
            "{:>16} {:>18.4} {:>18.4} {:>8.4}",
            rule.to_string(),
            d,
            m,
            m - d
        );
    }
    println!("# monotone-classes is a relaxation: it must dominate draw-proportional");
    println!("# and be non-decreasing toward 'all VLB paths'.");
}
