//! Global-link load profile: UGAL-L vs T-UGAL-L on dfly(4,8,4,9) under the
//! adversarial shift(2,0) pattern, with the metrics layer forced on.
//!
//! The paper's argument for topology-custom VLB is that conventional UGAL
//! concentrates adversarial load on a few minimal global links while T-UGAL
//! spreads it; the scalar `max_channel_util` hints at this, but only the
//! per-channel load vector shows the whole distribution.  This harness
//! prints that distribution as load deciles over all global channels, plus
//! the decision mix and exact latency percentiles the metrics layer adds.

use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_obs::MetricsConfig;

/// `p`-th percentile of an ascending-sorted load vector (nearest rank).
fn pct(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    // Telemetry is the whole point of this figure, so override the
    // environment: summary + per-channel loads, with time-series and
    // occupancy sampling at moderate cadences.
    force_metrics(MetricsConfig {
        enabled: true,
        sample_every: 500,
        occupancy_every: 250,
        per_channel: true,
    });

    let topo = dfly(4, 8, 4, 9);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern = shift(&topo, 2, 0);
    let rates = [0.1, 0.2];
    let series = run_series(
        &topo,
        &pattern,
        &[
            ("UGAL-L", ugal, RoutingAlgorithm::UgalL),
            ("T-UGAL-L", tvlb, RoutingAlgorithm::UgalL),
        ],
        &rates,
        None,
    );
    println!("# T-VLB = {chosen}");

    // The load profile at the highest swept rate: per-global-channel loads
    // sorted ascending, reported as deciles so the two series' shapes are
    // comparable side by side.
    let last = rates.len() - 1;
    println!(
        "# global-link load profile @ rate {:.2} (flits/cycle per channel, sorted)",
        rates[last]
    );
    print!("{:>8}", "pctile");
    for s in &series {
        print!("\t{:>12}", s.label);
    }
    println!();
    let profiles: Vec<Vec<f64>> = series
        .iter()
        .map(|s| {
            let rep = &s.metrics[last];
            let mut loads = rep.links.per_global_load.clone();
            assert!(
                !loads.is_empty(),
                "{}: metrics layer produced no per-global-channel loads",
                s.label
            );
            loads.sort_by(f64::total_cmp);
            loads
        })
        .collect();
    for decile in (0..=10).map(|d| d as f64 * 10.0) {
        print!("{:>7.0}%", decile);
        for loads in &profiles {
            print!("\t{:>12.4}", pct(loads, decile));
        }
        println!();
    }

    for s in &series {
        let rep = &s.metrics[last];
        let d = &rep.decisions;
        println!(
            "# decisions[{}]: min_intra={} vlb_intra={} min_inter={} vlb_inter={} \
             par_reroutes={} (vlb_fraction {:.3})",
            s.label,
            d.min_intra,
            d.vlb_intra,
            d.min_inter,
            d.vlb_inter,
            d.par_reroutes,
            d.vlb_fraction()
        );
        println!(
            "# latency[{}]: exact p50 {:.1}, p99 {:.1} cycles over {} deliveries; \
             global load mean {:.4}, max {:.4}",
            s.label,
            rep.latency.p50,
            rep.latency.p99,
            rep.latency.count,
            rep.links.global.mean_load,
            rep.links.global.max_load
        );
    }

    print_figure(
        "fig_linkload",
        "global-link load profile, shift(2,0), dfly(4,8,4,9), UGAL-L vs T-UGAL-L",
        &series,
    );
    tugal_bench::finish();
}
