//! Table 2: the topologies used in the experiments.

use tugal_topology::{Dragonfly, DragonflyParams};

fn main() {
    println!("# table2: topologies used in the experiments");
    println!(
        "{:>22} {:>8} {:>10} {:>8} {:>16}",
        "topology", "PEs", "switches", "groups", "links/group-pair"
    );
    for params in DragonflyParams::paper_topologies() {
        let t = Dragonfly::new(params).unwrap();
        println!(
            "{:>22} {:>8} {:>10} {:>8} {:>16}",
            params.to_string(),
            t.num_nodes(),
            t.num_switches(),
            t.num_groups(),
            t.links_per_group_pair()
        );
    }
    println!("# note: the paper lists 135 switches for dfly(4,8,4,17); 17*8 = 136 (typo there).");
}
