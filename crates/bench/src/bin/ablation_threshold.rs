//! Ablation: the UGAL bias threshold `T` (§2.2).
//!
//! The paper evaluates with `T = 0` ("so the routing schemes do not bias
//! towards MIN or VLB paths"); this harness shows what the knob does:
//! positive `T` favours MIN (good for uniform traffic, harmful under
//! adversarial load), and an extreme `T` degenerates UGAL-L into MIN.

use std::sync::Arc;
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_traffic::TrafficPattern;

fn main() {
    let topo = dfly(4, 8, 4, 9);
    let ugal = ugal_provider(&topo);
    let patterns: [(&str, Arc<dyn TrafficPattern>); 2] =
        [("UR", uniform(&topo)), ("shift(2,0)", shift(&topo, 2, 0))];
    println!("# ablation_threshold: UGAL-L bias T on dfly(4,8,4,9)");
    for (pname, pattern) in &patterns {
        let mut entries = Vec::new();
        for t in [0i64, 30, 1_000_000] {
            let mut cfg = sim_config().for_routing(RoutingAlgorithm::UgalL);
            cfg.ugal_threshold = t;
            entries.push((format!("T={t}"), ugal.clone(), RoutingAlgorithm::UgalL, cfg));
        }
        let series = run_series_cfg(&topo, pattern, &entries, &rate_grid(0.4));
        println!("## pattern {pname}");
        for s in &series {
            println!(
                "#   {}: saturation ~ {:.3}",
                s.label,
                saturation_from_curve(&s.points)
            );
        }
    }
    tugal_bench::finish();
}
