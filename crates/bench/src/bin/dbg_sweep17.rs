use tugal::{coarse_grain_sweep, SweepConfig};
use tugal_topology::{Dragonfly, DragonflyParams};

fn main() {
    let topo = Dragonfly::new(DragonflyParams::new(4, 8, 4, 17)).unwrap();
    let cfg = SweepConfig {
        type1_sample: Some(8),
        type2_count: 4,
        ..SweepConfig::default()
    };
    for o in coarse_grain_sweep(&topo, &cfg) {
        println!(
            "{:>16} {:.4} (sem {:.4})",
            o.rule.to_string(),
            o.mean,
            o.sem
        );
    }
}
