//! Figure 13: adversarial shift(1,0) on the large dfly(13,26,13,27)
//! (9126 nodes) for all six routings: UGAL-L, T-UGAL-L, PAR, T-PAR,
//! UGAL-G, T-UGAL-G.
//!
//! The explicit path table does not fit for this topology; both UGAL and
//! T-UGAL run through the O(1)-memory samplers.  Quick mode also shrinks
//! the rate grid (the cycle-accurate run is ~9k nodes).

use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;

fn main() {
    let topo = dfly(13, 26, 13, 27);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern = shift(&topo, 1, 0);
    let rates: Vec<f64> = if full_fidelity() {
        rate_grid(0.5)
    } else {
        vec![0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35]
    };
    let series = run_series(
        &topo,
        &pattern,
        &[
            ("UGAL-L", ugal.clone(), RoutingAlgorithm::UgalL),
            ("T-UGAL-L", tvlb.clone(), RoutingAlgorithm::UgalL),
            ("PAR", ugal.clone(), RoutingAlgorithm::Par),
            ("T-PAR", tvlb.clone(), RoutingAlgorithm::Par),
            ("UGAL-G", ugal, RoutingAlgorithm::UgalG),
            ("T-UGAL-G", tvlb, RoutingAlgorithm::UgalG),
        ],
        &rates,
        None,
    );
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig13",
        "adversarial shift(1,0), dfly(13,26,13,27), all six routings",
        &series,
    );
    tugal_bench::finish();
}
