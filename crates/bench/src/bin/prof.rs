//! Phase-attribution harness: where do the partitioned engine's cycles
//! go?
//!
//! Runs the pinned `scale/` shard-scaling scenarios (the same workload
//! definitions as `perf`'s scaling suite: single UGAL-L series, uniform
//! traffic, one load × two seeds, every shard count the topology admits)
//! with a live [`tugal_netsim::EngineProf`] on every job, prints a
//! per-phase attribution table, and writes the full breakdown to
//! `results/profile.json`.
//!
//! The profiler's marks tile the shard run loop, so attribution is
//! near-total by construction; the harness enforces that ≥ 90% of every
//! scenario's shard wall-clock is attributed (exit 1 otherwise) — a
//! regression here means someone added engine work outside the phase
//! tiling.
//!
//! Environment knobs:
//!
//! * `TUGAL_PROF_TINY=1` — only `dfly(2,4,2,5)` at shard counts 1/5
//!   (CI smoke mode).
//! * `TUGAL_FULL=1` — paper-scale windows.
//! * `TUGAL_PROF_OUT=<path>` — output path (default
//!   `results/profile.json`).

use std::sync::Arc;
use tugal_bench::{dfly, fatal, sim_config};
use tugal_netsim::runner::{ExperimentRunner, SeriesSpec};
use tugal_netsim::trace::phase_totals;
use tugal_netsim::{NoopObserver, Phase, ProfileReport, RoutingAlgorithm};
use tugal_routing::{PathProvider, PathTable, TableProvider};
use tugal_traffic::Uniform;

fn tiny_only() -> bool {
    std::env::var("TUGAL_PROF_TINY")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[derive(serde::Serialize)]
struct PhaseRow {
    phase: String,
    ns: u64,
    /// Share of the scenario's total attributed time.
    share: f64,
}

#[derive(serde::Serialize)]
struct ProfScenario {
    /// Same label scheme as `perf`'s `scale/` suite.
    label: String,
    shards: u32,
    jobs: u64,
    /// Summed shard wall-clock over every job, ns.
    wall_ns: u64,
    /// Nanoseconds the phase marks accounted for.
    attributed_ns: u64,
    /// `attributed_ns / wall_ns` — the harness enforces ≥ 0.9.
    attributed_fraction: f64,
    phases: Vec<PhaseRow>,
    /// Boundary flits sent across shard mailboxes (0 when sequential).
    flits_sent: u64,
    /// Boundary credits sent across shard mailboxes.
    credits_sent: u64,
    /// Mailbox lock acquisitions that found the lock held.
    mailbox_stalls: u64,
    /// Outbox batches flushed to neighbour shards.
    batches_flushed: u64,
}

/// Runs one pinned scenario with profiling on and folds every job's
/// report into one scenario-level breakdown.
fn profile_scenario(
    label: &str,
    topo: &Arc<tugal_topology::Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    shards: u32,
    cfg: &tugal_netsim::Config,
) -> ProfScenario {
    let mut scfg = cfg.clone().for_routing(RoutingAlgorithm::UgalL);
    scfg.shards = shards;
    let runner = ExperimentRunner::new(topo.clone())
        .with_profiling(true)
        .series(SeriesSpec {
            label: "UGAL-L".into(),
            provider: provider.clone(),
            pattern: Arc::new(Uniform::new(topo)),
            routing: RoutingAlgorithm::UgalL,
            cfg: scfg,
            faults: None,
        });
    let (_, _, records) = match runner.run_recorded(&[0.2], &[1, 2], |_| NoopObserver) {
        Ok(out) => out,
        Err(e) => fatal("invalid profiling scenario", e),
    };
    let mut agg = ProfileReport::default();
    let mut jobs = 0u64;
    for rec in &records {
        let Some(p) = &rec.profile else {
            fatal(
                &format!("profiling scenario {label}"),
                "job carried no profile (runner profiling off?)",
            )
        };
        agg.absorb(p);
        jobs += 1;
    }
    let wall_ns = agg.wall_ns();
    let attributed_ns: u64 = agg.shards.iter().map(|s| s.attributed_ns()).sum();
    let phases = phase_totals(&agg)
        .into_iter()
        .map(|t| PhaseRow {
            share: t.ns as f64 / attributed_ns.max(1) as f64,
            phase: t.phase,
            ns: t.ns,
        })
        .collect();
    ProfScenario {
        label: label.to_string(),
        shards,
        jobs,
        wall_ns,
        attributed_ns,
        attributed_fraction: agg.attributed_fraction(),
        phases,
        flits_sent: agg.shards.iter().map(|s| s.flits_sent).sum(),
        credits_sent: agg.shards.iter().map(|s| s.credits_sent).sum(),
        mailbox_stalls: agg.shards.iter().map(|s| s.mailbox_stalls).sum(),
        batches_flushed: agg.shards.iter().map(|s| s.batches_flushed).sum(),
    }
}

fn main() {
    let out_path =
        std::env::var("TUGAL_PROF_OUT").unwrap_or_else(|_| "results/profile.json".into());
    let cfg = sim_config();
    println!(
        "# prof: engine phase attribution ({} windows of {} cycles)",
        cfg.warmup_windows + 1,
        cfg.window
    );

    let topologies: Vec<(u32, u32, u32, u32, Vec<u32>)> = if tiny_only() {
        vec![(2, 4, 2, 5, vec![1, 5])]
    } else {
        vec![(4, 7, 4, 8, vec![1, 2, 4, 8]), (4, 8, 4, 9, vec![1, 3, 9])]
    };

    let mut scenarios = Vec::new();
    for (p, a, h, g, shard_counts) in topologies {
        let topo = dfly(p, a, h, g);
        println!(
            "# building candidate tables for {} ({} switches)...",
            topo.params(),
            topo.num_switches()
        );
        let ugal = PathTable::build_all(&topo);
        let provider: Arc<dyn PathProvider> = Arc::new(TableProvider::new(topo.clone(), ugal));
        for shards in shard_counts {
            let label = format!("scale/dfly({p},{a},{h},{g})/UR/shards={shards}");
            let s = profile_scenario(&label, &topo, &provider, shards, &cfg);
            println!(
                "# {label}: {:.1}% of {:.1} ms shard wall-clock attributed",
                100.0 * s.attributed_fraction,
                s.wall_ns as f64 / 1e6
            );
            for row in &s.phases {
                println!(
                    "#   {:>10}  {:>10.2} ms  {:>5.1}%",
                    row.phase,
                    row.ns as f64 / 1e6,
                    100.0 * row.share
                );
            }
            if s.mailbox_stalls > 0 || s.flits_sent > 0 {
                println!(
                    "#   boundary: {} flits, {} credits, {} batches, {} lock stalls",
                    s.flits_sent, s.credits_sent, s.batches_flushed, s.mailbox_stalls
                );
            }
            scenarios.push(s);
        }
    }

    // Every phase name the report can carry is a real phase (belt and
    // braces for the JSON consumers).
    let known: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
    for s in &scenarios {
        for row in &s.phases {
            assert!(
                known.contains(&row.phase.as_str()),
                "unknown phase {:?}",
                row.phase
            );
        }
    }

    #[derive(serde::Serialize)]
    struct Out {
        id: String,
        host_threads: u64,
        scenarios: Vec<ProfScenario>,
    }
    let out = Out {
        id: "profile".into(),
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        scenarios,
    };
    if let Err(e) = std::fs::create_dir_all("results") {
        fatal("creating results/", e);
    }
    let json = match serde_json::to_string_pretty(&out) {
        Ok(j) => j,
        Err(e) => fatal("serializing profile file", format!("{e:?}")),
    };
    if let Err(e) = std::fs::write(&out_path, json) {
        fatal(&format!("writing {out_path}"), e);
    }
    println!("# wrote {out_path}");

    let lagging: Vec<&ProfScenario> = out
        .scenarios
        .iter()
        .filter(|s| s.attributed_fraction < 0.90)
        .collect();
    if !lagging.is_empty() {
        eprintln!("phase attribution check failed (marks no longer tile the run loop?):");
        for s in lagging {
            eprintln!(
                "  {}: only {:.1}% of shard wall-clock attributed",
                s.label,
                100.0 * s.attributed_fraction
            );
        }
        std::process::exit(1);
    }
    println!("# attribution check passed (every scenario ≥ 90%)");
}
