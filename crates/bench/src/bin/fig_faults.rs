//! Fault sweep: UGAL-L vs T-UGAL-L on degraded dragonflies.
//!
//! The paper evaluates topology-custom VLB on pristine dragonflies; this
//! harness probes how the comparison degrades when global links fail.  A
//! seeded fraction of global cables (0–10%) is removed, the candidate
//! tables are re-derived on the degraded view (with T-VLB regeneration for
//! pairs whose custom subset died), the engine runs with the corresponding
//! fault schedule, and the coarse-grain LP throughput of the degraded
//! topology is printed next to the simulated curves.
//!
//! Differential anchors built into the run:
//!
//! * the 0%-failure point is executed through the full fault machinery
//!   (empty `FaultSet`, degraded tables, attached schedule) and asserted
//!   bit-for-bit equal to a pristine run without any of it;
//! * every non-zero fraction must still deliver traffic under both
//!   routings (a drop-everything regression cannot pass).
//!
//! `TUGAL_FAULTS_TINY=1` swaps in `dfly(2,4,2,5)` for CI smoke runs.

use std::sync::Arc;
use tugal_bench::*;
use tugal_model::{modeled_throughput_degraded, ModelVariant};
use tugal_netsim::{FaultSchedule, RoutingAlgorithm};
use tugal_routing::{PathProvider, PathTable, TableProvider, VlbRule};
use tugal_topology::{Dragonfly, FaultSet};
use tugal_traffic::TrafficPattern;

/// Seed of the failure samples: every fraction draws from the same shuffle,
/// so larger fractions are supersets of smaller ones.
const FAULT_SEED: u64 = 0xFA17;

/// Table seed of the T-VLB construction (matching `tvlb_provider`).
const TVLB_TABLE_SEED: u64 = 0x7065;

fn tiny() -> bool {
    std::env::var("TUGAL_FAULTS_TINY")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Clones a pristine table, filters it against the degraded view and wraps
/// it as a provider, printing the reachability report.
fn degraded_provider(
    topo: &Arc<Dragonfly>,
    pristine: &PathTable,
    deg: &tugal_topology::Degraded,
    rule: VlbRule,
    seed: u64,
    tag: &str,
) -> Arc<dyn PathProvider> {
    let mut table = pristine.clone();
    let rep = table.degrade(topo, deg, rule, seed);
    println!(
        "#   reachability[{tag}]: {} pairs, removed {} MIN / {} VLB paths, \
         regenerated {} pairs, unreachable {}",
        rep.pairs, rep.removed_min, rep.removed_vlb, rep.regenerated_pairs, rep.unreachable_pairs
    );
    Arc::new(TableProvider::new(topo.clone(), table))
}

fn main() {
    let topo = if tiny() {
        dfly(2, 4, 2, 5)
    } else {
        dfly(4, 8, 4, 9)
    };
    let fractions = [0.0, 0.025, 0.05, 0.10];
    let rates = if tiny() {
        vec![0.1, 0.2]
    } else {
        vec![0.1, 0.2, 0.3]
    };

    // Pristine candidate tables, built once; each fraction degrades a copy.
    let (_, chosen) = tvlb_provider(&topo);
    println!("# T-VLB = {chosen}");
    let ugal_table = PathTable::build_all(&topo);
    let mut tvlb_table = PathTable::build_with_rule(&topo, chosen, TVLB_TABLE_SEED);
    if !chosen.is_all() {
        tugal::balance::adjust(&mut tvlb_table, &topo, &tugal::BalanceOptions::default());
    }

    let patterns: Vec<(&str, Arc<dyn TrafficPattern>)> =
        vec![("UR", uniform(&topo)), ("SHIFT", shift(&topo, 1, 0))];

    let mut all_series = Vec::new();
    for (ptag, pattern) in &patterns {
        // Pristine baseline: no fault machinery anywhere.
        let baseline = run_series_faulted(
            &topo,
            pattern,
            &[
                (
                    "UGAL-L",
                    Arc::new(TableProvider::new(topo.clone(), ugal_table.clone()))
                        as Arc<dyn PathProvider>,
                    RoutingAlgorithm::UgalL,
                ),
                (
                    "T-UGAL-L",
                    Arc::new(TableProvider::new(topo.clone(), tvlb_table.clone()))
                        as Arc<dyn PathProvider>,
                    RoutingAlgorithm::UgalL,
                ),
            ],
            &rates,
            None,
            None,
        );

        for &f in &fractions {
            let faults = if f == 0.0 {
                FaultSet::empty()
            } else {
                FaultSet::sample_global_links(&topo, f, FAULT_SEED)
            };
            let deg = topo.degrade(&faults);
            println!(
                "# {ptag} f={:.1}%: {} dead channels, {} failed cables",
                100.0 * f,
                deg.num_dead_channels(),
                faults.global_links().len()
            );
            let ugal = degraded_provider(&topo, &ugal_table, &deg, VlbRule::All, 0, "UGAL-L");
            let tvlb = degraded_provider(
                &topo,
                &tvlb_table,
                &deg,
                chosen,
                TVLB_TABLE_SEED,
                "T-UGAL-L",
            );
            let schedule = Arc::new(FaultSchedule::immediate(faults.clone()));
            let label_u = format!("{ptag} UGAL f={:.1}%", 100.0 * f);
            let label_t = format!("{ptag} T-UGAL f={:.1}%", 100.0 * f);
            let series = run_series_faulted(
                &topo,
                pattern,
                &[
                    (&label_u, ugal, RoutingAlgorithm::UgalL),
                    (&label_t, tvlb, RoutingAlgorithm::UgalL),
                ],
                &rates,
                None,
                Some(schedule),
            );

            if f == 0.0 {
                // Differential anchor: the zero-failure point ran through
                // empty degraded tables plus an attached (empty) schedule
                // and must reproduce the pristine run exactly.
                for (faulted, pristine) in series.iter().zip(&baseline) {
                    for (a, b) in faulted.points.iter().zip(&pristine.points) {
                        assert_eq!(
                            a.result, b.result,
                            "{}: zero-failure run diverged from the pristine baseline",
                            faulted.label
                        );
                    }
                }
                println!("# {ptag}: zero-failure sweep matches the pristine baseline");
            } else {
                // Degraded runs must still deliver under both routings.
                for s in &series {
                    assert!(
                        s.points.iter().any(|p| p.result.delivered > 0),
                        "{}: no packets delivered on the degraded topology",
                        s.label
                    );
                }
            }

            // Coarse-grain LP throughput of the degraded topology
            // (deterministic patterns only — UR has no demand matrix).
            if let Some(demands) = pattern.demands() {
                for (tag, rule) in [("UGAL", VlbRule::All), ("T-UGAL", chosen)] {
                    match modeled_throughput_degraded(
                        &topo,
                        &deg,
                        &demands,
                        rule,
                        ModelVariant::DrawProportional,
                    ) {
                        Ok(m) => println!(
                            "# model[{ptag} {tag} f={:.1}%]: Γ = {:.4} \
                             ({} reachable pairs, {} unreachable)",
                            100.0 * f,
                            m.theta,
                            m.reachable_pairs,
                            m.unreachable_pairs
                        ),
                        Err(e) => {
                            println!("# model[{ptag} {tag} f={:.1}%]: failed ({e})", 100.0 * f)
                        }
                    }
                }
            }

            all_series.extend(series);
        }
    }

    print_figure(
        "fig_faults",
        "failure sweep (global-link faults), UGAL-L vs T-UGAL-L, UR + shift(1,0)",
        &all_series,
    );
    tugal_bench::finish();
}
