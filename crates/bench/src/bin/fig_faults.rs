//! Fault sweep: UGAL-L vs T-UGAL-L on degraded dragonflies.
//!
//! The paper evaluates topology-custom VLB on pristine dragonflies; this
//! harness probes how the comparison degrades when global links fail.  A
//! seeded fraction of global cables (0–10%) is removed, the candidate
//! tables are re-derived on the degraded view (with T-VLB regeneration for
//! pairs whose custom subset died), the engine runs with the corresponding
//! fault schedule, and the coarse-grain LP throughput of the degraded
//! topology is printed next to the simulated curves.
//!
//! Differential anchors built into the run:
//!
//! * the 0%-failure point is executed through the full fault machinery
//!   (empty `FaultSet`, degraded tables, attached schedule) and asserted
//!   bit-for-bit equal to a pristine run without any of it;
//! * every non-zero fraction must still deliver traffic under both
//!   routings (a drop-everything regression cannot pass);
//! * the coarse-grain LP solves chain a warm-start basis along the fault
//!   superset chain (growing fractions under one seed), every warm θ is
//!   asserted bit-identical to a cold solve of the same instance, the
//!   zero-failure θ bit-identical to the pristine model, and the chain
//!   tail must spend ≥3× fewer pivots than the cold solves in tiny mode
//!   (strictly fewer at full size, where a 2.5% fault step re-prices
//!   nearly every LP column and no basis can shortcut the move); an
//!   exact re-solve of the last fraction must hit the carried basis in
//!   zero pivots.  Chain counters land in the `lp_stats` section of
//!   `results/fig_faults.json`.
//!
//! `TUGAL_FAULTS_TINY=1` swaps in `dfly(2,4,2,5)` for CI smoke runs.

use std::collections::BTreeMap;
use std::sync::Arc;
use tugal_bench::*;
use tugal_model::{
    modeled_throughput, modeled_throughput_degraded_warm, ModelVariant, ModelWarmCache,
};
use tugal_netsim::{FaultSchedule, RoutingAlgorithm};
use tugal_routing::{PathProvider, PathTable, TableProvider, VlbRule};
use tugal_topology::{Dragonfly, FaultSet};
use tugal_traffic::TrafficPattern;

/// Seed of the failure samples: every fraction draws from the same shuffle,
/// so larger fractions are supersets of smaller ones.
const FAULT_SEED: u64 = 0xFA17;

/// Table seed of the T-VLB construction (matching `tvlb_provider`).
const TVLB_TABLE_SEED: u64 = 0x7065;

fn tiny() -> bool {
    std::env::var("TUGAL_FAULTS_TINY")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Clones a pristine table, filters it against the degraded view and wraps
/// it as a provider, printing the reachability report.
fn degraded_provider(
    topo: &Arc<Dragonfly>,
    pristine: &PathTable,
    deg: &tugal_topology::Degraded,
    rule: VlbRule,
    seed: u64,
    tag: &str,
) -> Arc<dyn PathProvider> {
    let mut table = pristine.clone();
    let rep = table.degrade(topo, deg, rule, seed);
    println!(
        "#   reachability[{tag}]: {} pairs, removed {} MIN / {} VLB paths, \
         regenerated {} pairs, unreachable {}",
        rep.pairs, rep.removed_min, rep.removed_vlb, rep.regenerated_pairs, rep.unreachable_pairs
    );
    Arc::new(TableProvider::new(topo.clone(), table))
}

fn main() {
    let topo = if tiny() {
        dfly(2, 4, 2, 5)
    } else {
        dfly(4, 8, 4, 9)
    };
    let fractions = [0.0, 0.025, 0.05, 0.10];
    let rates = if tiny() {
        vec![0.1, 0.2]
    } else {
        vec![0.1, 0.2, 0.3]
    };

    // Pristine candidate tables, built once; each fraction degrades a copy.
    let (_, chosen) = tvlb_provider(&topo);
    println!("# T-VLB = {chosen}");
    let ugal_table = PathTable::build_all(&topo);
    let mut tvlb_table = PathTable::build_with_rule(&topo, chosen, TVLB_TABLE_SEED);
    if !chosen.is_all() {
        tugal::balance::adjust(&mut tvlb_table, &topo, &tugal::BalanceOptions::default());
    }

    let patterns: Vec<(&str, Arc<dyn TrafficPattern>)> =
        vec![("UR", uniform(&topo)), ("SHIFT", shift(&topo, 1, 0))];

    // One warm-start chain per (pattern, rule): the cache carries the LP
    // basis along the fault superset chain.  Alongside each cache:
    // pivots at the previous step, and the (warm, cold) pivot totals over
    // the chain's tail (every fraction past the cold head).
    struct Chain {
        cache: ModelWarmCache,
        last_pivots: usize,
        tail_warm: usize,
        tail_cold: usize,
    }
    let mut chains: BTreeMap<String, Chain> = BTreeMap::new();

    let mut all_series = Vec::new();
    for (ptag, pattern) in &patterns {
        // Pristine baseline: no fault machinery anywhere.
        let baseline = run_series_faulted(
            &topo,
            pattern,
            &[
                (
                    "UGAL-L",
                    Arc::new(TableProvider::new(topo.clone(), ugal_table.clone()))
                        as Arc<dyn PathProvider>,
                    RoutingAlgorithm::UgalL,
                ),
                (
                    "T-UGAL-L",
                    Arc::new(TableProvider::new(topo.clone(), tvlb_table.clone()))
                        as Arc<dyn PathProvider>,
                    RoutingAlgorithm::UgalL,
                ),
            ],
            &rates,
            None,
            None,
        );

        for &f in &fractions {
            let faults = if f == 0.0 {
                FaultSet::empty()
            } else {
                FaultSet::sample_global_links(&topo, f, FAULT_SEED)
            };
            let deg = topo.degrade(&faults);
            println!(
                "# {ptag} f={:.1}%: {} dead channels, {} failed cables",
                100.0 * f,
                deg.num_dead_channels(),
                faults.global_links().len()
            );
            let ugal = degraded_provider(&topo, &ugal_table, &deg, VlbRule::All, 0, "UGAL-L");
            let tvlb = degraded_provider(
                &topo,
                &tvlb_table,
                &deg,
                chosen,
                TVLB_TABLE_SEED,
                "T-UGAL-L",
            );
            let schedule = Arc::new(FaultSchedule::immediate(faults.clone()));
            let label_u = format!("{ptag} UGAL f={:.1}%", 100.0 * f);
            let label_t = format!("{ptag} T-UGAL f={:.1}%", 100.0 * f);
            let series = run_series_faulted(
                &topo,
                pattern,
                &[
                    (&label_u, ugal, RoutingAlgorithm::UgalL),
                    (&label_t, tvlb, RoutingAlgorithm::UgalL),
                ],
                &rates,
                None,
                Some(schedule),
            );

            if f == 0.0 {
                // Differential anchor: the zero-failure point ran through
                // empty degraded tables plus an attached (empty) schedule
                // and must reproduce the pristine run exactly.
                for (faulted, pristine) in series.iter().zip(&baseline) {
                    for (a, b) in faulted.points.iter().zip(&pristine.points) {
                        assert_eq!(
                            a.result, b.result,
                            "{}: zero-failure run diverged from the pristine baseline",
                            faulted.label
                        );
                    }
                }
                println!("# {ptag}: zero-failure sweep matches the pristine baseline");
            } else {
                // Degraded runs must still deliver under both routings.
                for s in &series {
                    assert!(
                        s.points.iter().any(|p| p.result.delivered > 0),
                        "{}: no packets delivered on the degraded topology",
                        s.label
                    );
                }
            }

            // Coarse-grain LP throughput of the degraded topology
            // (deterministic patterns only — UR has no demand matrix).
            // Each (pattern, rule) chain warm-starts from the previous
            // fraction's basis; a fresh-cache cold solve of the same
            // instance is the bit-identity oracle.
            if let Some(demands) = pattern.demands() {
                for (tag, rule) in [("UGAL", VlbRule::All), ("T-UGAL", chosen)] {
                    let key = format!("{ptag} {tag}");
                    let chain = chains.entry(key.clone()).or_insert_with(|| Chain {
                        cache: ModelWarmCache::new(),
                        last_pivots: 0,
                        tail_warm: 0,
                        tail_cold: 0,
                    });
                    let warm = modeled_throughput_degraded_warm(
                        &topo,
                        &deg,
                        &demands,
                        rule,
                        ModelVariant::DrawProportional,
                        &mut chain.cache,
                    );
                    let mut cold_cache = ModelWarmCache::new();
                    let cold = modeled_throughput_degraded_warm(
                        &topo,
                        &deg,
                        &demands,
                        rule,
                        ModelVariant::DrawProportional,
                        &mut cold_cache,
                    );
                    match (warm, cold) {
                        (Ok(m), Ok(c)) => {
                            assert_eq!(
                                m.theta.to_bits(),
                                c.theta.to_bits(),
                                "{key} f={:.1}%: warm θ {} diverged from cold θ {}",
                                100.0 * f,
                                m.theta,
                                c.theta
                            );
                            if f == 0.0 {
                                // The chain head runs through the degraded
                                // machinery with zero faults and must
                                // reproduce the pristine model exactly.
                                let pristine = modeled_throughput(
                                    &topo,
                                    &demands,
                                    rule,
                                    ModelVariant::DrawProportional,
                                )
                                .unwrap_or_else(|e| fatal("pristine model solve", e));
                                assert_eq!(
                                    m.theta.to_bits(),
                                    pristine.to_bits(),
                                    "{key}: zero-failure model diverged from pristine"
                                );
                            } else {
                                chain.tail_warm += chain.cache.stats.pivots - chain.last_pivots;
                                chain.tail_cold += cold_cache.stats.pivots;
                            }
                            chain.last_pivots = chain.cache.stats.pivots;
                            if f == *fractions.last().unwrap() {
                                // Exact-reuse pin: re-solving the very same
                                // degraded instance through the chain must
                                // reconstruct the carried basis verbatim —
                                // zero pivots, the warm-start fast path the
                                // chain exists for.  (A cloned cache keeps
                                // the probe out of the recorded counters.)
                                let mut reuse = chain.cache.clone();
                                let again = modeled_throughput_degraded_warm(
                                    &topo,
                                    &deg,
                                    &demands,
                                    rule,
                                    ModelVariant::DrawProportional,
                                    &mut reuse,
                                )
                                .unwrap_or_else(|e| fatal("reuse model solve", e));
                                assert_eq!(
                                    again.theta.to_bits(),
                                    m.theta.to_bits(),
                                    "{key}: exact-reuse solve changed θ"
                                );
                                let extra = reuse.stats.pivots - chain.cache.stats.pivots;
                                assert_eq!(
                                    extra,
                                    0,
                                    "{key}: exact re-solve of f={:.1}% cost {extra} pivots",
                                    100.0 * f
                                );
                            }
                            println!(
                                "# model[{key} f={:.1}%]: Γ = {:.4} \
                                 ({} reachable pairs, {} unreachable)",
                                100.0 * f,
                                m.theta,
                                m.reachable_pairs,
                                m.unreachable_pairs
                            );
                        }
                        (Err(e), _) | (_, Err(e)) => {
                            println!("# model[{key} f={:.1}%]: failed ({e})", 100.0 * f)
                        }
                    }
                }
            }

            all_series.extend(series);
        }
    }

    // Warm-start acceptance: across every chain's tail the carried bases
    // must save real pivot work.  In tiny mode the fault steps kill at
    // most a cable or two, the carried basis stays near-optimal, and the
    // saving must reach ≥3×.  At full size a 2.5% fault step re-prices
    // most LP columns (every global cable serves ~2/g of all pairs' VLB
    // path sets, so a handful of deaths renormalizes nearly every
    // column): the optimum genuinely moves far, cold starts pay no phase
    // 1 on this all-`≤` family, and basis reuse cannot shortcut the
    // distance — the chain must still win strictly, and the exact-reuse
    // pin above guarantees the zero-pivot fast path on repeats.
    assert!(
        chains.values().any(|c| c.tail_cold > 0),
        "no model chain accumulated a tail: the LP model never ran"
    );
    for (key, chain) in &chains {
        let s = &chain.cache.stats;
        println!(
            "# lp[{key}]: {} solves, {} pivots ({} refactorizations), \
             warm {}/{} accepted, tail warm/cold pivots {}/{}, {:.1} ms",
            s.solves,
            s.pivots,
            s.refactorizations,
            s.warm_hits,
            s.warm_attempts,
            chain.tail_warm,
            chain.tail_cold,
            s.wall_ms
        );
        record_lp_stats(key, s);
        if tiny() {
            assert!(
                3 * chain.tail_warm <= chain.tail_cold,
                "{key}: warm chain tail spent {} pivots vs cold {} (< 3x saving)",
                chain.tail_warm,
                chain.tail_cold
            );
        } else {
            assert!(
                chain.tail_warm < chain.tail_cold,
                "{key}: warm chain tail spent {} pivots vs cold {}",
                chain.tail_warm,
                chain.tail_cold
            );
        }
    }

    print_figure(
        "fig_faults",
        "failure sweep (global-link faults), UGAL-L vs T-UGAL-L, UR + shift(1,0)",
        &all_series,
    );
    tugal_bench::finish();
}
