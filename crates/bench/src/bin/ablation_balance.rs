//! Ablation: the Step-2 load-balance adjustment.
//!
//! Builds the same restricted candidate set (the paper's 5-hop region)
//! with and without the local/global balance adjustment and simulates the
//! adversarial shift(2,0) pattern under UGAL-L on dfly(4,8,4,9).

use std::sync::Arc;
use tugal::{balance, BalanceOptions};
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_routing::{PathProvider, PathTable, TableProvider, VlbRule};

fn main() {
    let topo = dfly(4, 8, 4, 9);
    let rule = VlbRule::ClassLimit {
        max_hops: 4,
        frac_next: 0.6,
    };
    let raw = PathTable::build_with_rule(&topo, rule, 0x6A1);
    let mut adjusted = raw.clone();
    let report = balance::adjust(&mut adjusted, &topo, &BalanceOptions::default());
    println!("# ablation_balance: {rule} on dfly(4,8,4,9), shift(2,0), UGAL-L");
    println!(
        "# adjustment removed {} paths locally, {} globally; worst usage ratio {:.2} -> {:.2}",
        report.removed_local,
        report.removed_global,
        report.worst_ratio_before,
        report.worst_ratio_after
    );
    let providers: [(&str, Arc<dyn PathProvider>); 2] = [
        (
            "unadjusted",
            Arc::new(TableProvider::new(topo.clone(), raw)),
        ),
        (
            "adjusted",
            Arc::new(TableProvider::new(topo.clone(), adjusted)),
        ),
    ];
    let pattern = shift(&topo, 2, 0);
    let entries: Vec<_> = providers
        .iter()
        .map(|(label, p)| (*label, p.clone(), RoutingAlgorithm::UgalL))
        .collect();
    let series = run_series(&topo, &pattern, &entries, &rate_grid(0.4), None);
    print_figure(
        "ablation_balance",
        "load-balance adjustment on/off, 60% 5-hop T-VLB",
        &series,
    );
    tugal_bench::finish();
}
