//! Trace validator: checks a `TUGAL_TRACE` JSONL file line-by-line
//! against the span schema (the CI gate of the profile-smoke job).
//!
//! Usage: `tracecheck <trace.jsonl>`.  Every line must parse as a
//! [`tugal_netsim::trace::TraceSpan`] and satisfy its event's required
//! fields; on top of the per-line schema, batch events must pair up
//! (`batch_start` count == `batch_end` count) and every `job_end` must
//! belong to a batch.  Exit 0 prints a one-line summary; any violation
//! prints the offending line numbers and exits 1.

use tugal_netsim::trace::validate_line;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: tracecheck <trace.jsonl>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };

    let mut errors = Vec::new();
    let mut counts = std::collections::BTreeMap::new();
    let mut spans = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        match validate_line(line) {
            Ok(()) => {
                spans += 1;
                // validate_line guarantees the line parses; re-read just
                // the event tag for the pairing checks.
                if let Ok(span) = serde_json::from_str::<tugal_netsim::trace::TraceSpan>(line) {
                    *counts.entry(span.ev).or_insert(0usize) += 1;
                }
            }
            Err(e) => errors.push(format!("line {}: {e}", i + 1)),
        }
    }

    let starts = counts.get("batch_start").copied().unwrap_or(0);
    let ends = counts.get("batch_end").copied().unwrap_or(0);
    if starts != ends {
        errors.push(format!(
            "unbalanced batches: {starts} batch_start vs {ends} batch_end"
        ));
    }
    let job_ends = counts.get("job_end").copied().unwrap_or(0);
    if job_ends > 0 && starts == 0 {
        errors.push(format!("{job_ends} job_end spans outside any batch"));
    }

    if !errors.is_empty() {
        eprintln!("tracecheck: {path}: {} violation(s)", errors.len());
        for e in &errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    println!("# tracecheck: {path}: {spans} spans ok ({starts} batches, {job_ends} job_end)",);
}
