//! Figure 17: sensitivity to router-internal speedup — PAR vs T-PAR on
//! dfly(4,8,4,17) under MIXED(25,75), with speedups 1 and 2.
//!
//! Legend format matches the paper: `routing(speedup)`.

use std::sync::Arc;
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_traffic::{Mixed, Shift, TrafficPattern};

fn main() {
    let topo = dfly(4, 8, 4, 17);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern: Arc<dyn TrafficPattern> =
        Arc::new(Mixed::new(&topo, 25, Shift::new(&topo, 1, 0), 0xA17));
    let mut entries = Vec::new();
    for speedup in [1u32, 2] {
        for (name, provider) in [("PAR", &ugal), ("T_PAR", &tvlb)] {
            let mut cfg = sim_config().for_routing(RoutingAlgorithm::Par);
            cfg.speedup = speedup;
            entries.push((
                format!("{name}({speedup})"),
                provider.clone(),
                RoutingAlgorithm::Par,
                cfg,
            ));
        }
    }
    let series = run_series_cfg(&topo, &pattern, &entries, &rate_grid(0.45));
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig17",
        "speedup sensitivity, PAR, dfly(4,8,4,17), MIXED(25,75)",
        &series,
    );
    tugal_bench::finish();
}
