//! Figure 8: latency vs offered load for UGAL-L, T-UGAL-L, PAR and T-PAR
//! on dfly(4,8,4,9) under a random node permutation.
//!
//! Paper numbers: UGAL-L saturates ≈0.63 vs T-UGAL-L ≈0.68 (smaller gains
//! than the adversarial case — fewer packets ride VLB paths).

use std::sync::Arc;
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_traffic::{NodePermutation, TrafficPattern};

fn main() {
    let topo = dfly(4, 8, 4, 9);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(NodePermutation::random(&topo, 0xF18));
    let series = run_series(
        &topo,
        &pattern,
        &[
            ("UGAL-L", ugal.clone(), RoutingAlgorithm::UgalL),
            ("T-UGAL-L", tvlb.clone(), RoutingAlgorithm::UgalL),
            ("PAR", ugal, RoutingAlgorithm::Par),
            ("T-PAR", tvlb, RoutingAlgorithm::Par),
        ],
        &rate_grid(0.9),
        None,
    );
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig8",
        "random permutation, dfly(4,8,4,9), UGAL-L/PAR vs T- variants",
        &series,
    );
    tugal_bench::finish();
}
