//! Ablation: global-link arrangements (absolute / relative / circulant).
//!
//! The paper claims its techniques do not depend on the arrangement; this
//! harness compares conventional UGAL-L across the three wirings on
//! dfly(4,8,4,9) under adversarial traffic.

use std::sync::Arc;
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_routing::PathProvider;
use tugal_topology::{
    AbsoluteArrangement, CirculantArrangement, Dragonfly, DragonflyParams, GlobalArrangement,
    RelativeArrangement,
};

fn main() {
    let params = DragonflyParams::new(4, 8, 4, 9);
    let arrangements: [&dyn GlobalArrangement; 3] = [
        &AbsoluteArrangement,
        &RelativeArrangement,
        &CirculantArrangement,
    ];
    println!("# ablation_arrangement: UGAL-L on dfly(4,8,4,9) shift(2,0) per wiring");
    for arr in arrangements {
        let topo = Arc::new(Dragonfly::with_arrangement(params, arr).unwrap());
        let provider: Arc<dyn PathProvider> = ugal_provider(&topo);
        let pattern = shift(&topo, 2, 0);
        let series = run_series(
            &topo,
            &pattern,
            &[("UGAL-L", provider, RoutingAlgorithm::UgalL)],
            &rate_grid(0.4),
            None,
        );
        let sat = saturation_from_curve(&series[0].points);
        println!(
            "{:>10}: saturation ~ {:.3} packets/cycle/node",
            arr.name(),
            sat
        );
    }
    tugal_bench::finish();
}
