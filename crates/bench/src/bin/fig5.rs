//! Figure 5: average modeled throughput of the Step-1 sweep on the
//! maximal dfly(4,8,4,33): all VLB paths are needed — every restriction
//! loses throughput, so T-UGAL converges with UGAL there.

use tugal::{coarse_grain_sweep_rules, table1_points, SweepConfig};
use tugal_bench::{dfly, full_fidelity};
use tugal_routing::VlbRule;

fn main() {
    let topo = dfly(4, 8, 4, 33);
    let (cfg, rules) = if full_fidelity() {
        (SweepConfig::default(), table1_points())
    } else {
        // Quick mode: a representative sub-grid — each LP on the maximal
        // 264-switch topology takes seconds on one core.
        let rules = vec![
            VlbRule::ClassLimit {
                max_hops: 3,
                frac_next: 0.0,
            },
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.0,
            },
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.5,
            },
            VlbRule::ClassLimit {
                max_hops: 5,
                frac_next: 0.0,
            },
            VlbRule::ClassLimit {
                max_hops: 5,
                frac_next: 0.5,
            },
            VlbRule::All,
        ];
        (
            SweepConfig {
                type1_sample: Some(4),
                type2_count: 2,
                ..SweepConfig::default()
            },
            rules,
        )
    };
    println!("# fig5: average modeled throughput, Step-1 sweep, dfly(4,8,4,33)");
    println!(
        "# mode: {}",
        if full_fidelity() {
            "full"
        } else {
            "quick (sampled patterns, sub-grid)"
        }
    );
    println!("{:>16} {:>12} {:>10}", "config", "throughput", "stderr");
    let outcomes = coarse_grain_sweep_rules(&topo, &cfg, &rules);
    for o in &outcomes {
        println!(
            "{:>16} {:>12.4} {:>10.4}",
            o.rule.to_string(),
            o.mean,
            o.sem
        );
    }
    let best = outcomes
        .iter()
        .max_by(|a, b| a.mean.total_cmp(&b.mean))
        .unwrap();
    println!("# best: {} — expected: all VLB paths", best.rule);
}
