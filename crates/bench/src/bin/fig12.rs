//! Figure 12: time-domain mixed traffic TMIXED(50,50) on dfly(4,8,4,17):
//! every packet is uniform with probability 50% and adversarial otherwise.

use std::sync::Arc;
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_traffic::{Shift, TMixed, TrafficPattern};

fn main() {
    let topo = dfly(4, 8, 4, 17);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern: Arc<dyn TrafficPattern> =
        Arc::new(TMixed::new(&topo, 50, Shift::new(&topo, 1, 0)));
    let series = run_series(
        &topo,
        &pattern,
        &[
            ("UGAL-L", ugal.clone(), RoutingAlgorithm::UgalL),
            ("T-UGAL-L", tvlb.clone(), RoutingAlgorithm::UgalL),
            ("PAR", ugal, RoutingAlgorithm::Par),
            ("T-PAR", tvlb, RoutingAlgorithm::Par),
        ],
        &rate_grid(0.55),
        None,
    );
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig12",
        "TMIXED(50,50), dfly(4,8,4,17), UGAL-L/PAR vs T- variants",
        &series,
    );
    tugal_bench::finish();
}
