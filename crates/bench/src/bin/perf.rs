//! Perf-baseline harness: fixed reference scenarios through the unified
//! [`ExperimentRunner`], reported as `BENCH_netsim.json` at the repo root.
//!
//! Unlike the figure harnesses (which chase the paper's curves), this
//! binary exists to measure the *simulator*: every scenario is pinned —
//! topology, candidate tables, patterns, offered loads, seeds — so two
//! runs of the same code produce the same simulated work and their
//! jobs/sec are directly comparable.  The reference sweep is
//! `dfly(4,8,4,9)`, UGAL-L vs T-UGAL-L, uniform + shift traffic, three
//! offered loads × three seeds; a `tiny/`-prefixed suite on
//! `dfly(2,4,2,5)` always runs too, so CI smoke numbers share labels with
//! locally generated baselines.
//!
//! Environment knobs:
//!
//! * `TUGAL_PERF_TINY=1` — run only the tiny suite (CI smoke mode).
//! * `TUGAL_PERF_CHECK=<baseline.json>` — after running, compare each
//!   scenario's jobs/sec against the same-label scenario of the baseline
//!   file and exit non-zero on a regression beyond the tolerance.
//! * `TUGAL_PERF_TOLERANCE=<fraction>` — allowed jobs/sec drop before the
//!   check fails (default `0.25`, i.e. >25% regression fails).
//! * `TUGAL_FULL=1` — paper-scale windows (the committed baseline uses the
//!   default quick windows so CI and laptops can reproduce it).
//! * `TUGAL_SHARDS=<n>` — run every suite's engine partitioned into `n`
//!   group-sharded workers (the count must divide each topology's
//!   groups).  The `scale/` scenarios ignore this and pin their own
//!   counts: they *are* the scaling curve (1/2/4/8 on `dfly(4,7,4,8)`,
//!   1/3/9 on the reference `dfly(4,8,4,9)`), recorded per-scenario via
//!   the `shards` field and digest.
//!
//! Each scenario record carries a digest of everything that defines its
//! workload (topology, table construction, patterns, loads, seeds, full
//! simulator config), so a baseline produced under different parameters is
//! never silently compared against.

use std::sync::Arc;
use tugal_bench::{dfly, fatal, sim_config};
use tugal_netsim::runner::{ExperimentRunner, RunSummary, SeriesSpec};
use tugal_netsim::{Config, RoutingAlgorithm};
use tugal_routing::{PathProvider, PathTable, TableProvider, VlbRule};
use tugal_topology::Dragonfly;
use tugal_traffic::{Shift, TrafficPattern, Uniform};

/// Table seed of the T-VLB construction (shared with `fig_faults`).
const TVLB_TABLE_SEED: u64 = 0x7065;

/// The fixed T-VLB rule of the reference scenarios: the dense-topology
/// outcome of Algorithm 1 (DESIGN.md §4), pinned here so the harness never
/// depends on the Algorithm-1 sweep or its cache.
const TVLB_RULE: VlbRule = VlbRule::ClassLimit {
    max_hops: 4,
    frac_next: 0.6,
};

fn tiny_only() -> bool {
    std::env::var("TUGAL_PERF_TINY")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn tolerance() -> f64 {
    std::env::var("TUGAL_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25)
}

/// FNV-1a over the scenario's defining parameters.
fn digest(parts: &[&str]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        h ^= 0xff; // field separator
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    format!("{h:016x}")
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Scenario {
    /// Stable scenario label (`ref/…` or `tiny/…`); the regression check
    /// matches baselines by this.
    label: String,
    /// Digest of the scenario's defining parameters (topology, tables,
    /// patterns, loads, seeds, simulator config, shard count).
    config_digest: String,
    /// Shard workers per job (1 = the sequential engine).  Also hashed
    /// into `config_digest`, so sharded and sequential runs of the same
    /// sweep are never silently compared.
    shards: u32,
    /// Jobs scheduled (series × loads × seeds).
    jobs: u64,
    /// Wall-clock of the whole batch, ms.
    wall_ms: f64,
    /// Jobs completed per wall-clock second — the headline metric.
    jobs_per_sec: f64,
    /// Simulated cycles retired per wall-clock second (jobs × cycles/job,
    /// over wall time).
    sim_cycles_per_sec: f64,
    /// Delivered flits per wall-clock second, summed over every job.
    delivered_flits_per_sec: f64,
    /// `(series label, rate, seed, ms)` of the slowest job.
    slowest: Option<(String, f64, u64, f64)>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct BenchFile {
    id: String,
    /// True when the scenarios ran under paper-scale windows.
    full_fidelity: bool,
    /// Host parallelism (`std::thread::available_parallelism`) the
    /// baseline was produced under — throughput numbers from hosts with
    /// different core counts are not comparable, and the scaling suite's
    /// curve is only meaningful when this is > 1.
    host_threads: u64,
    scenarios: Vec<Scenario>,
}

/// Builds the pinned provider pair for one topology: conventional UGAL
/// (all paths) and T-UGAL (class-limited table + balance adjustment).
fn providers(topo: &Arc<Dragonfly>) -> [(String, Arc<dyn PathProvider>); 2] {
    let ugal = PathTable::build_all(topo);
    let mut tvlb = PathTable::build_with_rule(topo, TVLB_RULE, TVLB_TABLE_SEED);
    tugal::balance::adjust(&mut tvlb, topo, &tugal::BalanceOptions::default());
    [
        (
            "UGAL-L".into(),
            Arc::new(TableProvider::new(topo.clone(), ugal)) as Arc<dyn PathProvider>,
        ),
        (
            "T-UGAL-L".into(),
            Arc::new(TableProvider::new(topo.clone(), tvlb)) as Arc<dyn PathProvider>,
        ),
    ]
}

/// Runs one pinned scenario: both providers under one pattern over the
/// load grid × seeds, through a single [`ExperimentRunner`] batch.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    label: &str,
    topo: &Arc<Dragonfly>,
    provs: &[(String, Arc<dyn PathProvider>)],
    pattern: Arc<dyn TrafficPattern>,
    pattern_tag: &str,
    rates: &[f64],
    seeds: &[u64],
    cfg: &Config,
) -> Scenario {
    let mut runner = ExperimentRunner::new(topo.clone());
    for (series_label, provider) in provs {
        runner = runner.series(SeriesSpec {
            label: series_label.clone(),
            provider: provider.clone(),
            pattern: pattern.clone(),
            routing: RoutingAlgorithm::UgalL,
            cfg: cfg.clone().for_routing(RoutingAlgorithm::UgalL),
            faults: None,
        });
    }
    let (curves, summary) = runner.run_with_summary(rates, seeds);
    let delivered: u64 = curves
        .iter()
        .flat_map(|c| c.points.iter().map(|p| p.result.delivered))
        .sum();
    let wall_s = summary.wall_ms / 1e3;
    let cycles = summary.jobs as u64 * cfg.total_cycles();
    let scenario = Scenario {
        label: label.to_string(),
        config_digest: digest(&[
            &topo.params().to_string(),
            &format!("{TVLB_RULE:?} seed {TVLB_TABLE_SEED:#x}"),
            pattern_tag,
            &format!("{rates:?}"),
            &format!("{seeds:?}"),
            &format!("{cfg:?}"),
            &format!("shards={}", cfg.shards),
        ]),
        shards: cfg.shards,
        jobs: summary.jobs as u64,
        wall_ms: summary.wall_ms,
        jobs_per_sec: summary.jobs_per_sec,
        sim_cycles_per_sec: if wall_s > 0.0 {
            cycles as f64 / wall_s
        } else {
            0.0
        },
        delivered_flits_per_sec: if wall_s > 0.0 {
            delivered as f64 / wall_s
        } else {
            0.0
        },
        slowest: summary.slowest.clone(),
    };
    println!(
        "# {label}: {} ({:.0} cycles/s, {:.0} flits/s)",
        RunSummary {
            slowest: summary.slowest,
            ..summary
        }
        .oneline(),
        scenario.sim_cycles_per_sec,
        scenario.delivered_flits_per_sec,
    );
    scenario
}

/// The tiny CI suite: `dfly(2,4,2,5)`, two loads × two seeds.
fn tiny_suite(cfg: &Config) -> Vec<Scenario> {
    let topo = dfly(2, 4, 2, 5);
    let provs = providers(&topo);
    let seeds = [1, 2];
    vec![
        run_scenario(
            "tiny/dfly(2,4,2,5)/UR",
            &topo,
            &provs,
            Arc::new(Uniform::new(&topo)),
            "UR",
            &[0.1, 0.2],
            &seeds,
            cfg,
        ),
        run_scenario(
            "tiny/dfly(2,4,2,5)/SHIFT",
            &topo,
            &provs,
            Arc::new(Shift::new(&topo, 1, 0)),
            "SHIFT(1,0)",
            &[0.05, 0.1],
            &seeds,
            cfg,
        ),
    ]
}

/// The reference suite: `dfly(4,8,4,9)`, three loads × three seeds.
fn reference_suite(cfg: &Config) -> Vec<Scenario> {
    let topo = dfly(4, 8, 4, 9);
    println!(
        "# building candidate tables for {} ({} switches)...",
        topo.params(),
        topo.num_switches()
    );
    let provs = providers(&topo);
    let seeds = [1, 2, 3];
    vec![
        run_scenario(
            "ref/dfly(4,8,4,9)/UR",
            &topo,
            &provs,
            Arc::new(Uniform::new(&topo)),
            "UR",
            &[0.1, 0.2, 0.3],
            &seeds,
            cfg,
        ),
        run_scenario(
            "ref/dfly(4,8,4,9)/SHIFT",
            &topo,
            &provs,
            Arc::new(Shift::new(&topo, 1, 0)),
            "SHIFT(1,0)",
            &[0.05, 0.1, 0.15],
            &seeds,
            cfg,
        ),
    ]
}

/// The shard-scaling suite: one pinned sweep repeated at every shard
/// count its topology admits, so the baseline file carries the scaling
/// curve of the partitioned engine.  Two topologies cover the useful
/// divisor sets: `dfly(4,7,4,8)` (8 groups — the 1/2/4/8 power-of-two
/// curve) and the reference `dfly(4,8,4,9)` (9 groups — 1/3/9).  Single
/// series (conventional UGAL-L), one load, two seeds: with so few jobs
/// the batch cannot hide shard speedup behind rayon's job-level
/// parallelism.  Note the curve is only meaningful on a multi-core
/// machine; a single-core runner reports flat-to-inverted scaling (the
/// workers time-slice one core and pay the barrier overhead).
fn scaling_suite(cfg: &Config) -> Vec<Scenario> {
    let mut out = Vec::new();
    for (p, a, h, g, shard_counts) in [
        (4, 7, 4, 8, &[1u32, 2, 4, 8][..]),
        (4, 8, 4, 9, &[1u32, 3, 9][..]),
    ] {
        let topo = dfly(p, a, h, g);
        println!(
            "# building candidate tables for {} ({} switches)...",
            topo.params(),
            topo.num_switches()
        );
        let ugal = PathTable::build_all(&topo);
        let prov: [(String, Arc<dyn PathProvider>); 1] = [(
            "UGAL-L".into(),
            Arc::new(TableProvider::new(topo.clone(), ugal)) as Arc<dyn PathProvider>,
        )];
        for &shards in shard_counts {
            let mut scfg = cfg.clone();
            scfg.shards = shards;
            out.push(run_scenario(
                &format!("scale/dfly({p},{a},{h},{g})/UR/shards={shards}"),
                &topo,
                &prov,
                Arc::new(Uniform::new(&topo)),
                "UR",
                &[0.2],
                &[1, 2],
                &scfg,
            ));
        }
    }
    out
}

/// Compares `current` against a baseline file by scenario label; returns
/// the regression report lines (empty = pass).
fn check_regressions(current: &[Scenario], baseline: &BenchFile, tol: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in current {
        let Some(base) = baseline.scenarios.iter().find(|s| s.label == cur.label) else {
            continue; // baseline lacks this scenario: nothing to compare
        };
        if base.config_digest != cur.config_digest {
            println!(
                "# check[{}]: baseline digest {} != current {}; skipping \
                 (different workload definitions are not comparable)",
                cur.label, base.config_digest, cur.config_digest
            );
            continue;
        }
        let floor = base.jobs_per_sec * (1.0 - tol);
        let verdict = if cur.jobs_per_sec < floor {
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "# check[{}]: {:.2} jobs/s vs baseline {:.2} (floor {:.2}) — {verdict}",
            cur.label, cur.jobs_per_sec, base.jobs_per_sec, floor
        );
        if cur.jobs_per_sec < floor {
            failures.push(format!(
                "{}: {:.2} jobs/s is a >{:.0}% regression from {:.2}",
                cur.label,
                cur.jobs_per_sec,
                tol * 100.0,
                base.jobs_per_sec
            ));
        }
    }
    failures
}

fn main() {
    let out_path = std::env::var("TUGAL_PERF_OUT").unwrap_or_else(|_| "BENCH_netsim.json".into());
    // Load the baseline before the run (the run overwrites the file).  A
    // missing or malformed baseline is a typed setup error (exit 2 via
    // `fatal`), not a panic: the regression gate must fail loudly and
    // distinguishably when its reference input is unusable.
    let baseline: Option<BenchFile> = std::env::var("TUGAL_PERF_CHECK").ok().map(|p| {
        let data = match std::fs::read_to_string(&p) {
            Ok(d) => d,
            Err(e) => fatal(
                &format!("TUGAL_PERF_CHECK={p}"),
                format!("cannot read baseline: {e}"),
            ),
        };
        match serde_json::from_str(&data) {
            Ok(f) => f,
            Err(e) => fatal(
                &format!("TUGAL_PERF_CHECK={p}"),
                format!("malformed baseline: {e:?}"),
            ),
        }
    });

    let cfg = sim_config();
    println!(
        "# perf: netsim throughput baseline ({} windows of {} cycles)",
        cfg.warmup_windows + 1,
        cfg.window
    );
    let mut scenarios = tiny_suite(&cfg);
    if !tiny_only() {
        scenarios.extend(reference_suite(&cfg));
        scenarios.extend(scaling_suite(&cfg));
    }

    let file = BenchFile {
        id: "perf".into(),
        full_fidelity: tugal_bench::full_fidelity(),
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        scenarios,
    };
    let json = match serde_json::to_string_pretty(&file) {
        Ok(j) => j,
        Err(e) => fatal("serializing bench file", format!("{e:?}")),
    };
    if let Err(e) = std::fs::write(&out_path, json) {
        fatal(&format!("writing {out_path}"), e);
    }
    println!("# wrote {out_path}");

    if let Some(baseline) = baseline {
        let failures = check_regressions(&file.scenarios, &baseline, tolerance());
        if !failures.is_empty() {
            eprintln!("perf regression check failed:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!(
            "# regression check passed (tolerance {:.0}%)",
            tolerance() * 100.0
        );
    }
}
