//! Figure 18: sensitivity to the VC allocation scheme — UGAL-G vs
//! T-UGAL-G on dfly(4,8,4,9) under adversarial shift(1,0), with
//! `routing(4)` (the compact Won et al. scheme, 4 VCs) and `routing(6)`
//! (a new VC every hop, 6 VCs).
//!
//! Paper finding: `routing(6)` outperforms `routing(4)` (more buffers per
//! link, less head-of-line blocking), and T-UGAL-G beats UGAL-G under
//! both schemes.

use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_routing::VcScheme;

fn main() {
    let topo = dfly(4, 8, 4, 9);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern = shift(&topo, 1, 0);
    let mut entries = Vec::new();
    for (scheme, vcs) in [(VcScheme::Compact, 4u8), (VcScheme::PerHop, 6)] {
        for (name, provider) in [("UGAL_G", &ugal), ("T_UGAL_G", &tvlb)] {
            let mut cfg = sim_config();
            cfg.vc_scheme = scheme;
            cfg.num_vcs = vcs;
            entries.push((
                format!("{name}({vcs})"),
                provider.clone(),
                RoutingAlgorithm::UgalG,
                cfg,
            ));
        }
    }
    let series = run_series_cfg(&topo, &pattern, &entries, &rate_grid(0.5));
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig18",
        "VC-scheme sensitivity, UGAL-G, dfly(4,8,4,9), shift(1,0)",
        &series,
    );
    tugal_bench::finish();
}
