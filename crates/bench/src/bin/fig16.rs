//! Figure 16: sensitivity to buffer depth — UGAL-L vs T-UGAL-L on
//! dfly(4,8,4,17) under MIXED(50,50), with per-VC buffers of 8 and 32
//! flits.
//!
//! Legend format matches the paper: `routing(buffer)`.

use std::sync::Arc;
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_traffic::{Mixed, Shift, TrafficPattern};

fn main() {
    let topo = dfly(4, 8, 4, 17);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern: Arc<dyn TrafficPattern> =
        Arc::new(Mixed::new(&topo, 50, Shift::new(&topo, 1, 0), 0xA16));
    let mut entries = Vec::new();
    for buf in [8u16, 32] {
        for (name, provider) in [("UGAL_L", &ugal), ("T_UGAL_L", &tvlb)] {
            let mut cfg = sim_config().for_routing(RoutingAlgorithm::UgalL);
            cfg.buf_size = buf;
            entries.push((
                format!("{name}({buf})"),
                provider.clone(),
                RoutingAlgorithm::UgalL,
                cfg,
            ));
        }
    }
    let series = run_series_cfg(&topo, &pattern, &entries, &rate_grid(0.55));
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig16",
        "buffer-depth sensitivity, UGAL-L, dfly(4,8,4,17), MIXED(50,50)",
        &series,
    );
    tugal_bench::finish();
}
