//! Figure 14: MIXED(50,50) on the large dfly(13,26,13,27) for all six
//! routings.

use std::sync::Arc;
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_traffic::{Mixed, Shift, TrafficPattern};

fn main() {
    let topo = dfly(13, 26, 13, 27);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern: Arc<dyn TrafficPattern> =
        Arc::new(Mixed::new(&topo, 50, Shift::new(&topo, 1, 0), 0xA14));
    let rates: Vec<f64> = if full_fidelity() {
        rate_grid(0.6)
    } else {
        vec![0.05, 0.1, 0.2, 0.3, 0.4]
    };
    let series = run_series(
        &topo,
        &pattern,
        &[
            ("UGAL-L", ugal.clone(), RoutingAlgorithm::UgalL),
            ("T-UGAL-L", tvlb.clone(), RoutingAlgorithm::UgalL),
            ("PAR", ugal.clone(), RoutingAlgorithm::Par),
            ("T-PAR", tvlb.clone(), RoutingAlgorithm::Par),
            ("UGAL-G", ugal, RoutingAlgorithm::UgalG),
            ("T-UGAL-G", tvlb, RoutingAlgorithm::UgalG),
        ],
        &rates,
        None,
    );
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig14",
        "MIXED(50,50), dfly(13,26,13,27), all six routings",
        &series,
    );
    tugal_bench::finish();
}
