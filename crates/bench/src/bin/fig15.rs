//! Figure 15: sensitivity to link latency — UGAL-G vs T-UGAL-G on
//! dfly(4,8,4,17) under a random permutation, with (local, global) link
//! latencies (10, 15) and (40, 60).
//!
//! Legend format matches the paper: `routing(local,global)`.

use std::sync::Arc;
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_traffic::{NodePermutation, TrafficPattern};

fn main() {
    let topo = dfly(4, 8, 4, 17);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(NodePermutation::random(&topo, 0xF15));
    let mut entries = Vec::new();
    for (ll, gl) in [(10u32, 15u32), (40, 60)] {
        for (name, provider) in [("UGAL_G", &ugal), ("T_UGAL_G", &tvlb)] {
            let mut cfg = sim_config().for_routing(RoutingAlgorithm::UgalG);
            cfg.local_latency = ll;
            cfg.global_latency = gl;
            entries.push((
                format!("{name}({ll},{gl})"),
                provider.clone(),
                RoutingAlgorithm::UgalG,
                cfg,
            ));
        }
    }
    let series = run_series_cfg(&topo, &pattern, &entries, &rate_grid(0.8));
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig15",
        "link-latency sensitivity, UGAL-G, dfly(4,8,4,17), random permutation",
        &series,
    );
    tugal_bench::finish();
}
