//! Ablation: number of VLB candidates per decision.
//!
//! The paper (and the original UGAL for Dragonfly) draws **one** VLB
//! candidate per packet; letting the router pick the best of `k` draws is
//! a natural extension (Singh's thesis).  This harness quantifies how far
//! extra candidates close the gap that T-UGAL closes by *construction* —
//! at the cost of `k` queue lookups per packet in a real router.

use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;

fn main() {
    let topo = dfly(4, 8, 4, 9);
    let ugal = ugal_provider(&topo);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let pattern = shift(&topo, 2, 0);
    let mut entries = Vec::new();
    for k in [1u8, 2, 4] {
        let mut cfg = sim_config().for_routing(RoutingAlgorithm::UgalL);
        cfg.vlb_candidates = k;
        entries.push((
            format!("UGAL-L(k={k})"),
            ugal.clone(),
            RoutingAlgorithm::UgalL,
            cfg,
        ));
    }
    let cfg = sim_config().for_routing(RoutingAlgorithm::UgalL);
    entries.push((
        "T-UGAL-L(k=1)".to_string(),
        tvlb,
        RoutingAlgorithm::UgalL,
        cfg,
    ));
    let series = run_series_cfg(&topo, &pattern, &entries, &rate_grid(0.4));
    println!("# T-VLB = {chosen}");
    print_figure(
        "ablation_candidates",
        "k VLB candidates vs T-UGAL, dfly(4,8,4,9), shift(2,0)",
        &series,
    );
    tugal_bench::finish();
}
