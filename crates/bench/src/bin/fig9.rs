//! Figure 9: latency vs offered load for UGAL-G and T-UGAL-G on
//! dfly(4,8,4,9) under a random node permutation.
//!
//! Paper numbers: saturation 0.59 (UGAL-G) vs 0.66 (T-UGAL-G); similar
//! latency at low load.

use std::sync::Arc;
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_traffic::{NodePermutation, TrafficPattern};

fn main() {
    let topo = dfly(4, 8, 4, 9);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern: Arc<dyn TrafficPattern> = Arc::new(NodePermutation::random(&topo, 0xF19));
    let series = run_series(
        &topo,
        &pattern,
        &[
            ("UGAL-G", ugal, RoutingAlgorithm::UgalG),
            ("T-UGAL-G", tvlb, RoutingAlgorithm::UgalG),
        ],
        &rate_grid(0.9),
        None,
    );
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig9",
        "random permutation, dfly(4,8,4,9), UGAL-G vs T-UGAL-G",
        &series,
    );
    tugal_bench::finish();
}
