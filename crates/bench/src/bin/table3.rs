//! Table 3: default network parameters in the simulations.

use tugal_netsim::{Config, RoutingAlgorithm};

fn main() {
    let base = Config::paper_default();
    println!("# table3: default network parameters");
    println!(
        "{:<24} {}",
        "# of virtual channels",
        format_args!(
            "{} for UGAL-L and UGAL-G / {} for PAR",
            base.clone().for_routing(RoutingAlgorithm::UgalL).num_vcs,
            base.clone().for_routing(RoutingAlgorithm::Par).num_vcs
        )
    );
    println!("{:<24} {}", "buffer size", base.buf_size);
    println!(
        "{:<24} {} cycles (local) / {} cycles (global)",
        "link latency", base.local_latency, base.global_latency
    );
    println!("{:<24} {}", "switch speed-up", base.speedup);
    println!(
        "{:<24} {} cycles x {} windows warmup, {}-cycle window, saturation at {} cycles",
        "measurement", base.window, base.warmup_windows, base.window, base.sat_latency
    );
}
