//! Figure 11: MIXED(25,75) on dfly(4,8,4,17) — mostly adversarial —
//! for UGAL-L/PAR and their T- variants.
//!
//! Paper numbers: PAR saturates ≈0.25 vs T-PAR ≈0.30 (+20%); the more
//! adversarial the mix, the larger T-UGAL's advantage.

use std::sync::Arc;
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_traffic::{Mixed, Shift, TrafficPattern};

fn main() {
    let topo = dfly(4, 8, 4, 17);
    let (tvlb, chosen) = tvlb_provider(&topo);
    let ugal = ugal_provider(&topo);
    let pattern: Arc<dyn TrafficPattern> =
        Arc::new(Mixed::new(&topo, 25, Shift::new(&topo, 1, 0), 0xA11));
    let series = run_series(
        &topo,
        &pattern,
        &[
            ("UGAL-L", ugal.clone(), RoutingAlgorithm::UgalL),
            ("T-UGAL-L", tvlb.clone(), RoutingAlgorithm::UgalL),
            ("PAR", ugal, RoutingAlgorithm::Par),
            ("T-PAR", tvlb, RoutingAlgorithm::Par),
        ],
        &rate_grid(0.45),
        None,
    );
    println!("# T-VLB = {chosen}");
    print_figure(
        "fig11",
        "MIXED(25,75), dfly(4,8,4,17), UGAL-L/PAR vs T- variants",
        &series,
    );
    tugal_bench::finish();
}
