//! Re-runs replay capsules (`logs/capsules/*.json`) and asserts each one
//! reproduces its recorded failure.
//!
//! ```text
//! replay <capsule.json> [more.json ...]
//! ```
//!
//! For every capsule: the topology, provider, pattern, configuration,
//! budget and fault schedule are rebuilt from the capsule's specs, the
//! single (rate, seed) job is re-run under the runner's isolation, and the
//! outcome is compared against the recorded one — panics by exact message,
//! watchdog trips by exact trip cycle, wall-clock timeouts by kind only.
//! Exit 0 when every capsule reproduces, 1 when any does not, 2 on a
//! capsule that cannot be read or rebuilt.

use std::path::Path;
use std::sync::Arc;
use tugal_bench::{capsule, fatal};
use tugal_obs::render_stall;
use tugal_topology::Dragonfly;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        fatal("usage", "replay <capsule.json> [more.json ...]");
    }
    let mut unreproduced = 0usize;
    for path in &paths {
        let c = match capsule::read_capsule(Path::new(path)) {
            Ok(c) => c,
            Err(e) => fatal("loading capsule", e),
        };
        println!(
            "# replaying {path}: {} on {:?}, rate {} seed {} (recorded: {})",
            c.label, c.topology, c.rate, c.seed, c.outcome
        );
        match capsule::replay(&c) {
            Ok(rep) => {
                if let Some(stall) = rep.record.outcome.stall() {
                    let topo = Dragonfly::new(c.topology).ok().map(Arc::new);
                    for line in render_stall(stall, topo.as_deref()).lines() {
                        println!("#   {line}");
                    }
                }
                if rep.reproduced {
                    println!(
                        "# reproduced: {} ({})",
                        rep.record.outcome.name(),
                        rep.expectation
                    );
                } else {
                    eprintln!(
                        "# NOT reproduced: got {}, capsule recorded {} (checked: {})",
                        rep.record.outcome.name(),
                        c.outcome,
                        rep.expectation
                    );
                    unreproduced += 1;
                }
            }
            Err(e) => fatal(&format!("replaying {path}"), e),
        }
    }
    std::process::exit(if unreproduced > 0 { 1 } else { 0 });
}
