//! Ablation: random fractional 5-hop selection versus the deterministic
//! *strategic* choices (§3.3.3) — all 2+3 or all 3+2 MIN-segment splits.
//!
//! The paper's final T-VLB for dfly(4,8,4,9) was the strategic 2+3 choice
//! (with balance adjustment); this harness shows how the three ways of
//! halving the 5-hop class compare under adversarial traffic.

use std::sync::Arc;
use tugal_bench::*;
use tugal_netsim::RoutingAlgorithm;
use tugal_routing::{PathProvider, PathTable, TableProvider, VlbRule};

fn main() {
    let topo = dfly(4, 8, 4, 9);
    let variants = [
        (
            "random 50% 5-hop",
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.5,
            },
        ),
        ("strategic 2+3", VlbRule::Strategic { first_seg: 2 }),
        ("strategic 3+2", VlbRule::Strategic { first_seg: 3 }),
    ];
    let pattern = shift(&topo, 2, 0);
    let mut entries = Vec::new();
    for (label, rule) in variants {
        let table = PathTable::build_with_rule(&topo, rule, 0x57A);
        let provider: Arc<dyn PathProvider> = Arc::new(TableProvider::new(topo.clone(), table));
        entries.push((label, provider, RoutingAlgorithm::UgalL));
    }
    let series = run_series(&topo, &pattern, &entries, &rate_grid(0.4), None);
    print_figure(
        "ablation_strategic",
        "random vs strategic 5-hop halves, dfly(4,8,4,9), shift(2,0), UGAL-L",
        &series,
    );
    tugal_bench::finish();
}
