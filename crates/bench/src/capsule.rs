//! Replay capsules: minimal deterministic repros of failed jobs.
//!
//! When a job of an [`ExperimentRunner`] batch fails — panics, times out
//! or trips the engine watchdog — the harness serializes everything needed
//! to re-run exactly that job to `logs/capsules/capsule_<digest>.json`:
//! topology parameters, the full simulator [`Config`], the routing
//! algorithm, reconstructible provider/pattern specs, the (rate, seed)
//! pair (rate stored as exact `f64` bits), the fault schedule and the
//! observed outcome.  The `replay` binary loads a capsule, re-runs the job
//! under the same isolation, and asserts the outcome reproduces.
//!
//! Providers and patterns are trait objects with no identity of their own,
//! so harnesses *register* a [`ProviderSpec`]/[`PatternSpec`] for each one
//! they build (the [`crate::ugal_provider`]/[`crate::tvlb_provider`]/
//! [`crate::uniform`]/[`crate::shift`] helpers do this automatically).  An
//! unregistered object is captured as an `Opaque` spec: the capsule still
//! records the failure, but `replay` refuses it with a clear message.
//!
//! The capsule directory is created lazily and pruned to the newest
//! [`capsule_retain`] files; committed fixtures (`fixture_*.json`) are
//! exempt from both the pruning and `.gitignore`.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use tugal_netsim::runner::{ExperimentRunner, JobBudget, JobOutcome, JobRecord, SeriesSpec};
use tugal_netsim::{Config, FaultSchedule, NoopObserver, RoutingAlgorithm};
use tugal_routing::{PathProvider, PathTable, RuleProvider, TableProvider, VlbRule};
use tugal_topology::{Dragonfly, DragonflyParams, FaultSet, SwitchId};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

/// Capsule format version, bumped on incompatible changes.
pub const CAPSULE_VERSION: u32 = 1;

/// How to rebuild a candidate-path provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProviderSpec {
    /// [`TableProvider::all_paths`] — the explicit all-VLB table.
    AllPaths,
    /// [`RuleProvider`] sampling paths of `rule` on the fly.
    Sampled {
        /// The candidate rule sampled per decision.
        rule: VlbRule,
    },
    /// [`PathTable::build_with_rule`] with optional balance adjustment —
    /// how `tvlb_provider` materializes a chosen rule.
    Rule {
        /// The chosen candidate rule.
        rule: VlbRule,
        /// Seed of the table construction.
        table_seed: u64,
        /// Whether the Step-2 balance adjustment ran on the table.
        balanced: bool,
    },
    /// Not registered — recorded for the log, not replayable.
    Opaque {
        /// Whatever identity the harness could salvage.
        desc: String,
    },
}

/// How to rebuild a traffic pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PatternSpec {
    /// [`Uniform`] random traffic.
    Uniform,
    /// [`Shift`] by `dg` groups and `ds` switches.
    Shift {
        /// Group shift.
        dg: u32,
        /// Switch shift within the group.
        ds: u32,
    },
    /// Not registered — recorded for the log, not replayable.
    Opaque {
        /// The pattern's self-reported name.
        desc: String,
    },
}

/// One serializable fault event: the components that die at `cycle`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultEventSpec {
    /// Cycle at which the components die.
    pub cycle: u64,
    /// Failed global cables, as switch-id pairs.
    pub global_links: Vec<(u32, u32)>,
    /// Failed local links, as switch-id pairs.
    pub local_links: Vec<(u32, u32)>,
    /// Failed switches.
    pub switches: Vec<u32>,
    /// Failed individual lag siblings, as `(u, v, k)` — the `k`-th
    /// parallel cable between switches `u` and `v` (see
    /// [`FaultSet::fail_global_sibling`]).
    pub global_siblings: Vec<(u32, u32, u32)>,
}

// Hand-written so `global_siblings` defaults to empty: the vendored
// minimal serde derive has no `#[serde(default)]`, and capsules written
// before per-sibling faults existed must keep deserializing to the same
// job they described.
impl Deserialize for FaultEventSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(FaultEventSpec {
            cycle: Deserialize::from_value(serde::obj_field(v, "cycle")?)?,
            global_links: Deserialize::from_value(serde::obj_field(v, "global_links")?)?,
            local_links: Deserialize::from_value(serde::obj_field(v, "local_links")?)?,
            switches: Deserialize::from_value(serde::obj_field(v, "switches")?)?,
            global_siblings: match serde::obj_field(v, "global_siblings") {
                Ok(s) => Deserialize::from_value(s)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

/// A self-contained deterministic repro of one failed job.
#[derive(Debug, Clone, Serialize)]
pub struct Capsule {
    /// [`CAPSULE_VERSION`] at write time.
    pub version: u32,
    /// Series label of the failed job.
    pub label: String,
    /// Outcome name (`panicked`, `timed-out`, `watchdog-tripped`).
    pub outcome: String,
    /// Panic message, or the stall report's one-line form.
    pub detail: String,
    /// Trip cycle of a watchdog outcome (`None` for panics).
    pub trip_cycle: Option<u64>,
    /// Topology parameters.
    pub topology: DragonflyParams,
    /// Global arrangement identity ([`tugal_topology::ArrangementSpec`]
    /// syntax; `"absolute"` for the paper default).
    pub arrangement: String,
    /// Parallel copies of every global cable (`1` = the plain topology).
    pub global_lag: u32,
    /// How to rebuild the candidate provider.
    pub provider: ProviderSpec,
    /// How to rebuild the traffic pattern.
    pub pattern: PatternSpec,
    /// Routing algorithm.
    pub routing: RoutingAlgorithm,
    /// Full simulator configuration of the series (pre-budget).
    pub cfg: Config,
    /// Runner budget: simulated-cycle ceiling (`0` = none).
    pub budget_max_cycles: u64,
    /// Runner budget: wall-clock ceiling in ms (`0` = none).
    pub budget_wall_ms: u64,
    /// Offered load, human-readable.
    pub rate: f64,
    /// Offered load as exact IEEE-754 bits (authoritative on replay).
    pub rate_bits: u64,
    /// Replication seed.
    pub seed: u64,
    /// The job's journal digest (also the capsule's file name).
    pub digest: u64,
    /// Fault schedule, if the series ran degraded.
    pub faults: Vec<FaultEventSpec>,
}

// Hand-written so `arrangement`/`global_lag` default to the paper shape:
// capsules written before the topology zoo existed described absolute
// lag-1 topologies, and must replay as exactly those.
impl Deserialize for Capsule {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Capsule {
            version: Deserialize::from_value(serde::obj_field(v, "version")?)?,
            label: Deserialize::from_value(serde::obj_field(v, "label")?)?,
            outcome: Deserialize::from_value(serde::obj_field(v, "outcome")?)?,
            detail: Deserialize::from_value(serde::obj_field(v, "detail")?)?,
            trip_cycle: Deserialize::from_value(serde::obj_field(v, "trip_cycle")?)?,
            topology: Deserialize::from_value(serde::obj_field(v, "topology")?)?,
            arrangement: match serde::obj_field(v, "arrangement") {
                Ok(s) => Deserialize::from_value(s)?,
                Err(_) => "absolute".to_string(),
            },
            global_lag: match serde::obj_field(v, "global_lag") {
                Ok(s) => Deserialize::from_value(s)?,
                Err(_) => 1,
            },
            provider: Deserialize::from_value(serde::obj_field(v, "provider")?)?,
            pattern: Deserialize::from_value(serde::obj_field(v, "pattern")?)?,
            routing: Deserialize::from_value(serde::obj_field(v, "routing")?)?,
            cfg: Deserialize::from_value(serde::obj_field(v, "cfg")?)?,
            budget_max_cycles: Deserialize::from_value(serde::obj_field(v, "budget_max_cycles")?)?,
            budget_wall_ms: Deserialize::from_value(serde::obj_field(v, "budget_wall_ms")?)?,
            rate: Deserialize::from_value(serde::obj_field(v, "rate")?)?,
            rate_bits: Deserialize::from_value(serde::obj_field(v, "rate_bits")?)?,
            seed: Deserialize::from_value(serde::obj_field(v, "seed")?)?,
            digest: Deserialize::from_value(serde::obj_field(v, "digest")?)?,
            faults: Deserialize::from_value(serde::obj_field(v, "faults")?)?,
        })
    }
}

/// `(provider pointer, spec)` pairs registered by the harness helpers.
static PROVIDER_SPECS: Mutex<Vec<(usize, ProviderSpec)>> = Mutex::new(Vec::new());
/// Same for patterns.
static PATTERN_SPECS: Mutex<Vec<(usize, PatternSpec)>> = Mutex::new(Vec::new());

fn thin_ptr<T: ?Sized>(arc: &Arc<T>) -> usize {
    Arc::as_ptr(arc) as *const () as usize
}

/// Records how `provider` can be rebuilt, so capsules for jobs using it
/// are replayable.  Registration is by pointer identity of the `Arc`.
pub fn register_provider(provider: &Arc<dyn PathProvider>, spec: ProviderSpec) {
    if let Ok(mut m) = PROVIDER_SPECS.lock() {
        let key = thin_ptr(provider);
        m.retain(|(k, _)| *k != key);
        m.push((key, spec));
    }
}

/// Records how `pattern` can be rebuilt (see [`register_provider`]).
pub fn register_pattern(pattern: &Arc<dyn TrafficPattern>, spec: PatternSpec) {
    if let Ok(mut m) = PATTERN_SPECS.lock() {
        let key = thin_ptr(pattern);
        m.retain(|(k, _)| *k != key);
        m.push((key, spec));
    }
}

/// The registered spec of `provider`, or an `Opaque` placeholder.
pub fn provider_spec(provider: &Arc<dyn PathProvider>) -> ProviderSpec {
    let key = thin_ptr(provider);
    PROVIDER_SPECS
        .lock()
        .ok()
        .and_then(|m| m.iter().find(|(k, _)| *k == key).map(|(_, s)| s.clone()))
        .unwrap_or(ProviderSpec::Opaque {
            desc: "unregistered provider".into(),
        })
}

/// The registered spec of `pattern`, or an `Opaque` placeholder carrying
/// the pattern's self-reported name.
pub fn pattern_spec(pattern: &Arc<dyn TrafficPattern>) -> PatternSpec {
    let key = thin_ptr(pattern);
    PATTERN_SPECS
        .lock()
        .ok()
        .and_then(|m| m.iter().find(|(k, _)| *k == key).map(|(_, s)| s.clone()))
        .unwrap_or_else(|| PatternSpec::Opaque {
            desc: pattern.name(),
        })
}

/// Serializes a fault schedule into capsule events.
pub fn fault_specs(faults: Option<&Arc<FaultSchedule>>) -> Vec<FaultEventSpec> {
    let Some(schedule) = faults else {
        return Vec::new();
    };
    schedule
        .events()
        .iter()
        .map(|e| FaultEventSpec {
            cycle: e.cycle,
            global_links: e
                .faults
                .global_links()
                .iter()
                .map(|&(u, v)| (u.0, v.0))
                .collect(),
            local_links: e
                .faults
                .local_links()
                .iter()
                .map(|&(u, v)| (u.0, v.0))
                .collect(),
            switches: e.faults.switches().iter().map(|s| s.0).collect(),
            global_siblings: e
                .faults
                .global_siblings()
                .iter()
                .map(|&(u, v, k)| (u.0, v.0, k))
                .collect(),
        })
        .collect()
}

/// Builds the capsule for a failed [`JobRecord`]; `None` for `Ok` jobs.
#[allow(clippy::too_many_arguments)]
pub fn capsule_for_failure(
    record: &JobRecord,
    topo: &Arc<Dragonfly>,
    provider: &Arc<dyn PathProvider>,
    pattern: &Arc<dyn TrafficPattern>,
    routing: RoutingAlgorithm,
    cfg: &Config,
    budget: JobBudget,
    faults: Option<&Arc<FaultSchedule>>,
) -> Option<Capsule> {
    let (detail, trip_cycle) = match &record.outcome {
        JobOutcome::Ok(_) => return None,
        JobOutcome::Panicked(msg) => (msg.clone(), None),
        JobOutcome::TimedOut(stall) | JobOutcome::WatchdogTripped(stall) => {
            (stall.oneline(), Some(stall.cycle))
        }
    };
    Some(Capsule {
        version: CAPSULE_VERSION,
        label: record.label.clone(),
        outcome: record.outcome.name().to_string(),
        detail,
        trip_cycle,
        topology: topo.params(),
        arrangement: topo.arrangement_id().to_string(),
        global_lag: topo.global_lag(),
        provider: provider_spec(provider),
        pattern: pattern_spec(pattern),
        routing,
        cfg: cfg.clone(),
        budget_max_cycles: budget.max_cycles,
        budget_wall_ms: budget.wall_limit_ms,
        rate: record.rate,
        rate_bits: record.rate.to_bits(),
        seed: record.seed,
        digest: record.digest,
        faults: fault_specs(faults),
    })
}

/// Where capsules are written (relative to the harness working directory).
pub fn capsule_dir() -> PathBuf {
    PathBuf::from("logs/capsules")
}

/// How many `capsule_*.json` files the pruning keeps (newest first);
/// override with `TUGAL_CAPSULE_KEEP`.  Fixtures are never pruned.
pub fn capsule_retain() -> usize {
    std::env::var("TUGAL_CAPSULE_KEEP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Writes `capsule` into `dir` (created lazily) as
/// `capsule_<digest>.json` and prunes old capsules beyond
/// [`capsule_retain`].  Returns the written path.
pub fn write_capsule_to(dir: &Path, capsule: &Capsule) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("capsule_{:016x}.json", capsule.digest));
    let json = serde_json::to_string_pretty(capsule)
        .map_err(|e| std::io::Error::other(format!("serializing capsule: {e:?}")))?;
    std::fs::write(&path, json)?;
    prune_capsules(dir, capsule_retain());
    Ok(path)
}

/// [`write_capsule_to`] into the default [`capsule_dir`].
pub fn write_capsule(capsule: &Capsule) -> std::io::Result<PathBuf> {
    write_capsule_to(&capsule_dir(), capsule)
}

/// Deletes the oldest `capsule_*.json` files beyond `keep`.  Files not
/// matching the prefix (committed `fixture_*.json` repros) are untouched.
fn prune_capsules(dir: &Path, keep: usize) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut capsules: Vec<(std::time::SystemTime, PathBuf)> = entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("capsule_") && name.ends_with(".json")
        })
        .filter_map(|e| {
            let modified = e.metadata().and_then(|m| m.modified()).ok()?;
            Some((modified, e.path()))
        })
        .collect();
    // Newest first; ties broken by name so pruning is deterministic.
    capsules.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| b.1.cmp(&a.1)));
    for (_, path) in capsules.into_iter().skip(keep) {
        let _ = std::fs::remove_file(path);
    }
}

/// Loads a capsule, rejecting unknown versions.
pub fn read_capsule(path: &Path) -> Result<Capsule, String> {
    let data = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let capsule: Capsule = serde_json::from_str(&data)
        .map_err(|e| format!("{}: malformed capsule ({e:?})", path.display()))?;
    if capsule.version != CAPSULE_VERSION {
        return Err(format!(
            "{}: capsule version {} (this binary reads {})",
            path.display(),
            capsule.version,
            CAPSULE_VERSION
        ));
    }
    Ok(capsule)
}

/// Rebuilds the provider a capsule describes.
pub fn rebuild_provider(
    spec: &ProviderSpec,
    topo: &Arc<Dragonfly>,
) -> Result<Arc<dyn PathProvider>, String> {
    match spec {
        ProviderSpec::AllPaths => Ok(Arc::new(TableProvider::all_paths(topo.clone()))),
        ProviderSpec::Sampled { rule } => Ok(Arc::new(RuleProvider::new(topo.clone(), *rule))),
        ProviderSpec::Rule {
            rule,
            table_seed,
            balanced,
        } => {
            let mut table = PathTable::build_with_rule(topo, *rule, *table_seed);
            if *balanced {
                tugal::balance::adjust(&mut table, topo, &tugal::BalanceOptions::default());
            }
            Ok(Arc::new(TableProvider::new(topo.clone(), table)))
        }
        ProviderSpec::Opaque { desc } => Err(format!(
            "provider is not replayable ({desc}); register a ProviderSpec in the harness"
        )),
    }
}

/// Rebuilds the traffic pattern a capsule describes.
pub fn rebuild_pattern(
    spec: &PatternSpec,
    topo: &Arc<Dragonfly>,
) -> Result<Arc<dyn TrafficPattern>, String> {
    match spec {
        PatternSpec::Uniform => Ok(Arc::new(Uniform::new(topo))),
        PatternSpec::Shift { dg, ds } => Ok(Arc::new(Shift::new(topo, *dg, *ds))),
        PatternSpec::Opaque { desc } => Err(format!(
            "pattern is not replayable ({desc}); register a PatternSpec in the harness"
        )),
    }
}

/// Rebuilds the fault schedule a capsule describes (`None` when empty).
pub fn rebuild_faults(events: &[FaultEventSpec]) -> Option<Arc<FaultSchedule>> {
    if events.is_empty() {
        return None;
    }
    let mut schedule = FaultSchedule::empty();
    for e in events {
        let mut set = FaultSet::empty();
        for &(u, v) in &e.global_links {
            set.fail_global_link(SwitchId(u), SwitchId(v));
        }
        for &(u, v) in &e.local_links {
            set.fail_local_link(SwitchId(u), SwitchId(v));
        }
        for &s in &e.switches {
            set.fail_switch(SwitchId(s));
        }
        for &(u, v, k) in &e.global_siblings {
            set.fail_global_sibling(SwitchId(u), SwitchId(v), k);
        }
        schedule = schedule.and_at(e.cycle, set);
    }
    Some(Arc::new(schedule))
}

/// The result of replaying a capsule.
pub struct Replay {
    /// The re-run job's record (outcome, timing, digest).
    pub record: JobRecord,
    /// True when the re-run reproduced the capsule's outcome.
    pub reproduced: bool,
    /// What was compared, for the replay report.
    pub expectation: String,
}

/// Re-runs the job a capsule describes under the same isolation and
/// budget, and checks the outcome against the recorded one: panics must
/// reproduce the exact message, watchdog trips the exact trip cycle;
/// wall-clock timeouts only the outcome kind (wall time is not
/// deterministic).
pub fn replay(capsule: &Capsule) -> Result<Replay, String> {
    let arr = tugal_topology::ArrangementSpec::parse(&capsule.arrangement)
        .ok_or_else(|| format!("unknown arrangement {:?}", capsule.arrangement))?;
    let topo = Arc::new(
        Dragonfly::with_shape(capsule.topology, arr.build().as_ref(), capsule.global_lag)
            .map_err(|e| format!("invalid topology: {e:?}"))?,
    );
    let provider = rebuild_provider(&capsule.provider, &topo)?;
    let pattern = rebuild_pattern(&capsule.pattern, &topo)?;
    let faults = rebuild_faults(&capsule.faults);
    let runner = ExperimentRunner::new(topo)
        .series(SeriesSpec {
            label: capsule.label.clone(),
            provider,
            pattern,
            routing: capsule.routing,
            cfg: capsule.cfg.clone(),
            faults,
        })
        .with_budget(JobBudget {
            max_cycles: capsule.budget_max_cycles,
            wall_limit_ms: capsule.budget_wall_ms,
        });
    let rate = f64::from_bits(capsule.rate_bits);
    let (_, _, records) = runner
        .run_recorded(&[rate], &[capsule.seed], |_| NoopObserver)
        .map_err(|e| format!("capsule config rejected: {e}"))?;
    let record = records
        .into_iter()
        .next()
        .ok_or_else(|| "runner scheduled no job".to_string())?;
    let (reproduced, expectation) = match (&record.outcome, capsule.outcome.as_str()) {
        (JobOutcome::Panicked(msg), "panicked") => (
            *msg == capsule.detail,
            format!("panic message == {:?}", capsule.detail),
        ),
        (JobOutcome::WatchdogTripped(stall), "watchdog-tripped") => (
            Some(stall.cycle) == capsule.trip_cycle,
            format!("trip cycle == {:?}", capsule.trip_cycle),
        ),
        (JobOutcome::TimedOut(_), "timed-out") => (
            true,
            "outcome kind only (wall time is not deterministic)".into(),
        ),
        _ => (
            false,
            format!(
                "outcome {} (capsule recorded {})",
                record.outcome.name(),
                capsule.outcome
            ),
        ),
    };
    Ok(Replay {
        record,
        reproduced,
        expectation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-tmp")
            .join(tag);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn capsule(digest: u64) -> Capsule {
        Capsule {
            version: CAPSULE_VERSION,
            label: "UGAL-L".into(),
            outcome: "panicked".into(),
            detail: "boom".into(),
            trip_cycle: None,
            topology: DragonflyParams::new(2, 4, 2, 5),
            arrangement: "absolute".into(),
            global_lag: 1,
            provider: ProviderSpec::Rule {
                rule: VlbRule::ClassLimit {
                    max_hops: 4,
                    frac_next: 0.6,
                },
                table_seed: 0x7065,
                balanced: true,
            },
            pattern: PatternSpec::Shift { dg: 1, ds: 0 },
            routing: RoutingAlgorithm::UgalL,
            cfg: Config::quick(),
            budget_max_cycles: 0,
            budget_wall_ms: 0,
            rate: 0.1,
            rate_bits: 0.1f64.to_bits(),
            seed: 7,
            digest,
            faults: vec![FaultEventSpec {
                cycle: 0,
                global_links: vec![(1, 9)],
                local_links: vec![],
                switches: vec![3],
                global_siblings: vec![],
            }],
        }
    }

    #[test]
    fn capsule_roundtrips_through_json() {
        let dir = tmp_dir("capsule-roundtrip");
        let c = capsule(0xabcd);
        let path = write_capsule_to(&dir, &c).unwrap();
        let back = read_capsule(&path).unwrap();
        assert_eq!(back.label, c.label);
        assert_eq!(back.provider, c.provider);
        assert_eq!(back.pattern, c.pattern);
        assert_eq!(back.rate_bits, c.rate_bits);
        assert_eq!(back.faults, c.faults);
        assert_eq!(format!("{:?}", back.cfg), format!("{:?}", c.cfg));
    }

    #[test]
    fn pruning_keeps_newest_and_spares_fixtures() {
        let dir = tmp_dir("capsule-prune");
        let fixture = dir.join("fixture_keepme.json");
        std::fs::write(&fixture, "{}").unwrap();
        for i in 0..6u64 {
            let path = write_capsule_to(&dir, &capsule(i)).unwrap();
            // Distinct mtimes so "newest" is well-defined on coarse clocks.
            let t = filetime_from_secs(1_700_000_000 + i);
            set_mtime(&path, t);
        }
        prune_capsules(&dir, 3);
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "capsule_0000000000000003.json",
                "capsule_0000000000000004.json",
                "capsule_0000000000000005.json",
                "fixture_keepme.json",
            ]
        );
    }

    fn filetime_from_secs(secs: u64) -> std::time::SystemTime {
        std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(secs)
    }

    /// Sets a file's mtime via its open handle (std-only).
    fn set_mtime(path: &Path, t: std::time::SystemTime) {
        let f = std::fs::File::options().write(true).open(path).unwrap();
        f.set_times(std::fs::FileTimes::new().set_modified(t))
            .unwrap();
    }

    #[test]
    fn fault_specs_roundtrip() {
        let mut set = FaultSet::empty();
        set.fail_global_link(SwitchId(1), SwitchId(9));
        set.fail_switch(SwitchId(3));
        set.fail_global_sibling(SwitchId(2), SwitchId(8), 1);
        let schedule = Arc::new(FaultSchedule::at(40, set));
        let specs = fault_specs(Some(&schedule));
        assert_eq!(specs[0].global_siblings, vec![(2, 8, 1)]);
        let back = rebuild_faults(&specs).unwrap();
        assert_eq!(back.events(), schedule.events());
        assert!(rebuild_faults(&[]).is_none());
    }

    #[test]
    fn pre_zoo_capsules_deserialize_to_the_paper_shape() {
        // A capsule serialized before arrangement/global_lag/global_siblings
        // existed: the fields are simply absent from the JSON.
        let mut c = capsule(0x01d);
        let mut json = serde_json::to_string(&c).unwrap();
        for cut in [
            "\"arrangement\":\"absolute\",",
            "\"global_lag\":1,",
            ",\"global_siblings\":[]",
        ] {
            assert!(json.contains(cut), "fixture drifted: {cut} not in {json}");
            json = json.replace(cut, "");
        }
        let back: Capsule = serde_json::from_str(&json).unwrap();
        assert_eq!(back.arrangement, "absolute");
        assert_eq!(back.global_lag, 1);
        c.faults[0].global_siblings.clear();
        assert_eq!(back.faults, c.faults);
    }
}
