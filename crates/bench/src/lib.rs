//! # Experiment harnesses
//!
//! One runnable target per table/figure of the paper (see DESIGN.md's
//! per-experiment index) plus ablation studies and Criterion
//! micro-benchmarks of the substrates.
//!
//! Every harness prints the series/rows the paper reports, as
//! tab-separated text prefixed with `#` comments, and also writes a JSON
//! record under `results/` so EXPERIMENTS.md numbers are regenerable.
//!
//! ## Fidelity modes
//!
//! By default harnesses run **quick** parameters (short measurement
//! windows, sampled pattern suites) sized for CI; set `TUGAL_FULL=1` for
//! paper-scale runs (10 000-cycle windows, 3 warmup windows, full
//! TYPE_1 suites, more seeds).  Quick and full runs produce the same
//! qualitative shapes; EXPERIMENTS.md records which mode produced the
//! stored numbers.

pub mod capsule;

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tugal::{compute_tvlb, conventional_provider, TUgalConfig};
use tugal_netsim::journal::Journal;
use tugal_netsim::runner::{ExperimentRunner, JobBudget, JobRecord, RunSummary, SeriesSpec};
use tugal_netsim::trace::TraceSink;
use tugal_netsim::{
    Config, CurvePoint, FaultSchedule, NoopObserver, RoutingAlgorithm, SweepOptions,
};
use tugal_obs::{render_stall, MetricsConfig, MetricsObserver, MetricsReport};
use tugal_routing::{PathProvider, RuleProvider, VlbRule};
use tugal_topology::{Dragonfly, DragonflyParams};
use tugal_traffic::{Shift, TrafficPattern, Uniform};

/// Prints a fatal setup error and exits with code 2 — the shared
/// error path of every harness binary (baseline files that cannot be
/// read, malformed JSON, invalid topologies, rejected configurations),
/// replacing the bare `unwrap`/`panic!` setup paths the binaries grew up
/// with.  Exit code 2 distinguishes *setup* failures from job failures
/// (see [`finish`]).
pub fn fatal(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("fatal: {context}: {err}");
    std::process::exit(2);
}

/// Jobs that failed (panicked, timed out, tripped a watchdog) across every
/// sweep this process ran; each failure was reported to stderr and, where
/// possible, written as a replay capsule under `logs/capsules/`.
static FAILED_JOBS: AtomicUsize = AtomicUsize::new(0);

/// How many jobs failed so far in this process.
pub fn failed_jobs() -> usize {
    FAILED_JOBS.load(Ordering::Relaxed)
}

/// Ends a harness process with the resilience exit-code convention:
/// 0 when every job completed, 3 when some jobs failed and were skipped
/// by the aggregation (their capsules are under `logs/capsules/`).
/// Setup errors exit 2 via [`fatal`] before any sweep runs.
pub fn finish() -> ! {
    let failed = failed_jobs();
    if failed > 0 {
        eprintln!(
            "{failed} job(s) failed and were skipped; replay capsules are under {}",
            capsule::capsule_dir().display()
        );
        std::process::exit(3);
    }
    std::process::exit(0);
}

/// True when `TUGAL_FULL=1`: paper-scale windows and pattern suites.
pub fn full_fidelity() -> bool {
    std::env::var("TUGAL_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Simulator configuration for the current fidelity mode (Table 3 network
/// parameters in both), with the `TUGAL_SHARDS` environment override
/// applied — so any harness binary can run its engine partitioned — and
/// the `TUGAL_CKPT`/`TUGAL_CKPT_EVERY` override, so any harness can run
/// with mid-simulation checkpointing (the runner keys each job's
/// checkpoint files by its journal digest).  The requested shard count
/// must divide the groups of every topology the harness sweeps;
/// [`ExperimentRunner::validate`] rejects the batch up front otherwise.
pub fn sim_config() -> Config {
    let cfg = if full_fidelity() {
        Config::paper_default()
    } else {
        Config::quick()
    };
    cfg.with_env_shards().with_env_ckpt()
}

/// Session-wide metrics override (set by harnesses like `fig_linkload`
/// that always want telemetry, regardless of the environment).
static METRICS_OVERRIDE: Mutex<Option<MetricsConfig>> = Mutex::new(None);

/// Forces a metrics configuration for every subsequent sweep in this
/// process, overriding the `TUGAL_METRICS*` environment variables.
pub fn force_metrics(cfg: MetricsConfig) {
    if let Ok(mut m) = METRICS_OVERRIDE.lock() {
        *m = Some(cfg);
    }
}

/// The metrics configuration for this process: a [`force_metrics`]
/// override if set, else `TUGAL_METRICS=1` (with optional
/// `TUGAL_METRICS_SAMPLE` / `TUGAL_METRICS_OCC` cycle cadences) from the
/// environment, else disabled — the default, which keeps every harness
/// running the un-instrumented engine.
pub fn metrics_config() -> MetricsConfig {
    if let Some(cfg) = METRICS_OVERRIDE.lock().ok().and_then(|m| m.clone()) {
        return cfg;
    }
    let on = std::env::var("TUGAL_METRICS")
        .map(|v| v == "1")
        .unwrap_or(false);
    if !on {
        return MetricsConfig::default();
    }
    let cadence = |key: &str| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    MetricsConfig {
        enabled: true,
        sample_every: cadence("TUGAL_METRICS_SAMPLE"),
        occupancy_every: cadence("TUGAL_METRICS_OCC"),
        per_channel: true,
    }
}

/// Accumulated run summary of every [`ExperimentRunner`] batch this
/// process scheduled (the one-line report satellite).
static RUN_SUMMARY: Mutex<Option<RunSummary>> = Mutex::new(None);

fn record_run_summary(s: &RunSummary) {
    if let Ok(mut m) = RUN_SUMMARY.lock() {
        match &mut *m {
            Some(acc) => acc.absorb(s),
            None => *m = Some(s.clone()),
        }
    }
}

/// The accumulated batch summary, if any sweep ran through the runner.
pub fn run_summary() -> Option<RunSummary> {
    RUN_SUMMARY.lock().ok().and_then(|m| m.clone())
}

/// Serializable mirror of [`tugal_model::LpStats`], recorded per
/// harness-chosen label into the `lp_stats` section of
/// `results/<id>.json` so stored numbers carry the LP solver's work
/// profile (pivots, refactorizations, warm-start hit rate, wall-clock)
/// next to the throughput figures they produced.
#[derive(Clone, serde::Serialize)]
pub struct LpStatsOut {
    /// LP solves performed.
    pub solves: u64,
    /// Simplex pivots across all solves.
    pub pivots: u64,
    /// Basis refactorizations across all solves.
    pub refactorizations: u64,
    /// Solves that entered with a non-empty warm basis.
    pub warm_attempts: u64,
    /// Warm attempts whose basis was accepted (no cold fallback).
    pub warm_hits: u64,
    /// Wall-clock spent inside the LP solver, in milliseconds.
    pub wall_ms: f64,
}

/// LP solve counters recorded by [`record_lp_stats`] in this process.
static LP_STATS: Mutex<BTreeMap<String, LpStatsOut>> = Mutex::new(BTreeMap::new());

/// Records the LP solve counters of one warm-start chain under `label`;
/// the next [`print_figure`] writes every recorded chain into the JSON
/// record.  Recording the same label twice keeps the later snapshot
/// (chains accumulate, so the last snapshot is the complete one).
pub fn record_lp_stats(label: &str, stats: &tugal_model::LpStats) {
    if let Ok(mut m) = LP_STATS.lock() {
        m.insert(
            label.to_string(),
            LpStatsOut {
                solves: stats.solves as u64,
                pivots: stats.pivots as u64,
                refactorizations: stats.refactorizations as u64,
                warm_attempts: stats.warm_attempts as u64,
                warm_hits: stats.warm_hits as u64,
                wall_ms: stats.wall_ms,
            },
        );
    }
}

/// Sweep options (replication seeds, bisection resolution) for the mode.
pub fn sweep_options() -> SweepOptions {
    if full_fidelity() {
        SweepOptions {
            seeds: vec![1, 2, 3, 4, 5, 6, 7, 8],
            resolution: 0.01,
        }
    } else {
        SweepOptions {
            seeds: vec![1, 2],
            resolution: 0.02,
        }
    }
}

/// The paper's four topologies (Table 2).
pub fn dfly(p: u32, a: u32, h: u32, g: u32) -> Arc<Dragonfly> {
    match Dragonfly::new(DragonflyParams::new(p, a, h, g)) {
        Ok(t) => Arc::new(t),
        Err(e) => fatal(
            &format!("constructing dfly({p},{a},{h},{g})"),
            format!("{e:?}"),
        ),
    }
}

/// A topology-zoo shape: `dfly(p,a,h,g)` under an arbitrary arrangement
/// and global-lag multiplier.  `spec` accepts anything
/// [`tugal_topology::ArrangementSpec::parse`] does (`"palmtree"`,
/// `"random:0x2007"`, …).
pub fn dfly_shape(p: u32, a: u32, h: u32, g: u32, spec: &str, lag: u32) -> Arc<Dragonfly> {
    let ctx = format!("constructing dfly({p},{a},{h},{g}) {spec} lag{lag}");
    let Some(arr) = tugal_topology::ArrangementSpec::parse(spec) else {
        fatal(&ctx, format!("unknown arrangement {spec:?}"));
    };
    match Dragonfly::with_shape(DragonflyParams::new(p, a, h, g), arr.build().as_ref(), lag) {
        Ok(t) => Arc::new(t),
        Err(e) => fatal(&ctx, format!("{e:?}")),
    }
}

/// Uniform random traffic, registered for capsule replay.
pub fn uniform(topo: &Arc<Dragonfly>) -> Arc<dyn TrafficPattern> {
    let p: Arc<dyn TrafficPattern> = Arc::new(Uniform::new(topo));
    capsule::register_pattern(&p, capsule::PatternSpec::Uniform);
    p
}

/// Shift traffic by `dg` groups / `ds` switches, registered for capsule
/// replay.
pub fn shift(topo: &Arc<Dragonfly>, dg: u32, ds: u32) -> Arc<dyn TrafficPattern> {
    let p: Arc<dyn TrafficPattern> = Arc::new(Shift::new(topo, dg, ds));
    capsule::register_pattern(&p, capsule::PatternSpec::Shift { dg, ds });
    p
}

/// Standard offered-load grid for latency curves.
pub fn rate_grid(max: f64) -> Vec<f64> {
    let steps = if full_fidelity() { 20 } else { 10 };
    (1..=steps).map(|i| max * i as f64 / steps as f64).collect()
}

/// Computes (or re-derives) the T-VLB provider for a topology.
///
/// Small topologies run Algorithm 1 (sampled suites in quick mode).  For
/// `dfly(13,26,13,27)` the explicit table does not fit in memory; in full
/// mode Algorithm 1 still runs (rule-based candidates), while quick mode
/// uses the dense-topology outcome (`60% 5-hop`) directly — the documented
/// shortcut of DESIGN.md §4 — so the figure remains reproducible on a
/// laptop.
pub fn tvlb_provider(topo: &Arc<Dragonfly>) -> (Arc<dyn PathProvider>, VlbRule) {
    let big = topo.num_switches() > 300;
    if big && !full_fidelity() {
        let rule = VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.6,
        };
        let provider: Arc<dyn PathProvider> = Arc::new(RuleProvider::new(topo.clone(), rule));
        capsule::register_provider(&provider, capsule::ProviderSpec::Sampled { rule });
        return (provider, rule);
    }
    let cfg = if full_fidelity() {
        TUgalConfig::default()
    } else {
        let mut c = TUgalConfig::quick();
        c.sweep.type1_sample = Some(8);
        c.sweep.type2_count = 4;
        c
    };
    // Algorithm 1's Step-1 sweep dominates harness runtime; figures sharing
    // a topology reuse the chosen rule through a small disk cache and
    // re-materialize the (deterministic) table + balance adjustment.  The
    // key digests the *full* TUgalConfig, so entries computed under any
    // other sweep/balance/simulation setting (or by older code) never leak
    // into a new run.
    let digest = format!("{:016x}", cfg.digest());
    record_digest(topo, &digest);
    let key = format!("{}{}|{digest}", topo.params(), topo.shape_suffix());
    if let Some(rule) = cache_lookup(&key) {
        let mut table = tugal_routing::PathTable::build_with_rule(topo, rule, 0x7065);
        if !rule.is_all() {
            tugal::balance::adjust(&mut table, topo, &tugal::BalanceOptions::default());
        }
        let provider: Arc<dyn PathProvider> =
            Arc::new(tugal_routing::TableProvider::new(topo.clone(), table));
        capsule::register_provider(&provider, tvlb_spec(rule));
        return (provider, rule);
    }
    let result = compute_tvlb(topo.clone(), &cfg);
    cache_store(&key, result.chosen);
    capsule::register_provider(&result.provider, tvlb_spec(result.chosen));
    (result.provider, result.chosen)
}

/// The capsule spec of a materialized T-VLB table: the cache's canonical
/// reconstruction (rule table under seed `0x7065`, balance-adjusted unless
/// the rule is all-paths).
fn tvlb_spec(rule: VlbRule) -> capsule::ProviderSpec {
    capsule::ProviderSpec::Rule {
        rule,
        table_seed: 0x7065,
        balanced: !rule.is_all(),
    }
}

/// `topology params → TUgalConfig digest` for every T-VLB cache lookup
/// this process performed; recorded into each `results/*.json` so stored
/// numbers name the exact Algorithm-1 configuration behind them.
static TVLB_DIGESTS: Mutex<BTreeMap<String, String>> = Mutex::new(BTreeMap::new());

fn record_digest(topo: &Arc<Dragonfly>, digest: &str) {
    if let Ok(mut m) = TVLB_DIGESTS.lock() {
        m.insert(
            format!("{}{}", topo.params(), topo.shape_suffix()),
            digest.to_string(),
        );
    }
}

fn cache_path() -> std::path::PathBuf {
    std::path::PathBuf::from("results/tvlb_cache.json")
}

/// Reads the whole cache map; a corrupt or partially written file is
/// reported once to stderr and treated as empty, so the next
/// [`cache_store`] regenerates it instead of caching silently dying.
fn cache_load() -> std::collections::HashMap<String, VlbRule> {
    let data = match std::fs::read_to_string(cache_path()) {
        Ok(d) => d,
        Err(_) => return Default::default(), // no cache yet
    };
    match serde_json::from_str(&data) {
        Ok(map) => map,
        Err(e) => {
            eprintln!(
                "warning: T-VLB cache {} is corrupt ({e:?}); ignoring it and regenerating",
                cache_path().display()
            );
            Default::default()
        }
    }
}

fn cache_lookup(key: &str) -> Option<VlbRule> {
    cache_load().get(key).copied()
}

fn cache_store(key: &str, rule: VlbRule) {
    let mut map = cache_load();
    map.insert(key.to_string(), rule);
    let _ = std::fs::create_dir_all("results");
    if let Ok(s) = serde_json::to_string_pretty(&map) {
        let _ = std::fs::write(cache_path(), s);
    }
}

/// Conventional-UGAL provider for a topology, registered for capsule
/// replay (the explicit all-paths table below 300 switches, sampled
/// all-VLB above — matching [`conventional_provider`]).
pub fn ugal_provider(topo: &Arc<Dragonfly>) -> Arc<dyn PathProvider> {
    let provider = conventional_provider(topo.clone(), 300);
    let spec = if topo.num_switches() <= 300 {
        capsule::ProviderSpec::AllPaths
    } else {
        capsule::ProviderSpec::Sampled { rule: VlbRule::All }
    };
    capsule::register_provider(&provider, spec);
    provider
}

/// One labelled latency-vs-load series of a figure.
pub struct Series {
    /// Legend label, matching the paper's figures.
    pub label: String,
    /// Curve points.
    pub points: Vec<CurvePoint>,
    /// Seed-merged telemetry per point, parallel to `points` — empty
    /// unless [`metrics_config`] enabled the metrics layer for this run.
    pub metrics: Vec<MetricsReport>,
}

/// Runs the standard figure body: for each (label, provider, routing),
/// a latency curve over `rates` under `pattern`.
///
/// All entries are expanded into one flat (series × rate × seed) job list
/// and scheduled through a single parallel batch by the
/// [`ExperimentRunner`], so a slow series cannot idle the workers finished
/// with a fast one.
#[allow(clippy::type_complexity)]
pub fn run_series(
    topo: &Arc<Dragonfly>,
    pattern: &Arc<dyn TrafficPattern>,
    entries: &[(&str, Arc<dyn PathProvider>, RoutingAlgorithm)],
    rates: &[f64],
    vcs_override: Option<u8>,
) -> Vec<Series> {
    let mut opts = sweep_options();
    if topo.num_switches() > 300 && !full_fidelity() {
        opts.seeds.truncate(1); // the 9k-node runs dominate quick-mode time
    }
    let specs: Vec<(String, Arc<dyn PathProvider>, RoutingAlgorithm, Config)> = entries
        .iter()
        .map(|(label, provider, routing)| {
            let mut cfg = sim_config().for_routing(*routing);
            if let Some(v) = vcs_override {
                cfg.num_vcs = cfg.num_vcs.max(v);
            }
            (label.to_string(), provider.clone(), *routing, cfg)
        })
        .collect();
    run_flat(topo, pattern, &specs, rates, &opts, None)
}

/// Like [`run_series`], with a fault schedule applied to every series in
/// the batch — the entry point of the `fig_faults` harness.  `None`
/// behaves exactly like [`run_series`] (the engine stays on its pristine
/// fast path).
#[allow(clippy::type_complexity)]
pub fn run_series_faulted(
    topo: &Arc<Dragonfly>,
    pattern: &Arc<dyn TrafficPattern>,
    entries: &[(&str, Arc<dyn PathProvider>, RoutingAlgorithm)],
    rates: &[f64],
    vcs_override: Option<u8>,
    faults: Option<Arc<FaultSchedule>>,
) -> Vec<Series> {
    let specs: Vec<(String, Arc<dyn PathProvider>, RoutingAlgorithm, Config)> = entries
        .iter()
        .map(|(label, provider, routing)| {
            let mut cfg = sim_config().for_routing(*routing);
            if let Some(v) = vcs_override {
                cfg.num_vcs = cfg.num_vcs.max(v);
            }
            (label.to_string(), provider.clone(), *routing, cfg)
        })
        .collect();
    run_flat(topo, pattern, &specs, rates, &sweep_options(), faults)
}

/// Like [`run_series`], but each entry carries its own fully-specified
/// simulator configuration — used by the sensitivity figures (link
/// latency, buffer depth, speedup, VC scheme).
#[allow(clippy::type_complexity)]
pub fn run_series_cfg(
    topo: &Arc<Dragonfly>,
    pattern: &Arc<dyn TrafficPattern>,
    entries: &[(String, Arc<dyn PathProvider>, RoutingAlgorithm, Config)],
    rates: &[f64],
) -> Vec<Series> {
    run_flat(topo, pattern, entries, rates, &sweep_options(), None)
}

/// Parses a `u64` environment knob (absent or malformed → 0).
fn env_u64(key: &str) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The per-job budget every sweep of this process runs under:
/// `TUGAL_JOB_MAX_CYCLES` (simulated-cycle ceiling) and
/// `TUGAL_JOB_WALL_MS` (wall-clock ceiling).  Unset → unlimited, which
/// also keeps job configs (and thus perf digests) untouched.
pub fn job_budget() -> JobBudget {
    JobBudget {
        max_cycles: env_u64("TUGAL_JOB_MAX_CYCLES"),
        wall_limit_ms: env_u64("TUGAL_JOB_WALL_MS"),
    }
}

/// The resume journal named by `TUGAL_JOURNAL`, if any.  An unusable path
/// is a warning, not an error: the sweep still runs, just without resume.
fn journal_from_env() -> Option<Arc<Journal>> {
    let path = std::env::var("TUGAL_JOURNAL").ok()?;
    if path.is_empty() {
        return None;
    }
    match Journal::open(std::path::Path::new(&path)) {
        Ok(j) => Some(Arc::new(j)),
        Err(e) => {
            eprintln!("warning: TUGAL_JOURNAL={path}: {e}; running without a resume journal");
            None
        }
    }
}

static TRACE_SINK: std::sync::OnceLock<Option<Arc<TraceSink>>> = std::sync::OnceLock::new();

/// The trace sink named by `TUGAL_TRACE`, if any — opened once per
/// process so every batch of a multi-sweep harness shares one JSONL file
/// and one `t_ms` timebase.  An unusable path is a warning, not an error.
pub fn trace_from_env() -> Option<Arc<TraceSink>> {
    TRACE_SINK
        .get_or_init(|| {
            let path = std::env::var("TUGAL_TRACE").ok()?;
            if path.is_empty() {
                return None;
            }
            match TraceSink::open(std::path::Path::new(&path)) {
                Ok(t) => Some(Arc::new(t)),
                Err(e) => {
                    eprintln!("warning: TUGAL_TRACE={path}: {e}; running without a trace");
                    None
                }
            }
        })
        .clone()
}

/// True when `TUGAL_PROFILE=1`: every job runs with a live
/// [`tugal_netsim::EngineProf`], so run summaries (and `job_end` trace
/// spans) carry per-phase attribution.  Off by default — the profiled and
/// unprofiled engines produce bit-identical results, but profiling is not
/// free.
pub fn profiling_on() -> bool {
    std::env::var("TUGAL_PROFILE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Reports every failed job of a batch: a stderr diagnostic (with the
/// rendered stall report where there is one), a replay capsule under
/// `logs/capsules/`, and the process-wide failure count behind
/// [`finish`]'s exit code.
#[allow(clippy::type_complexity)]
fn report_failures(
    topo: &Arc<Dragonfly>,
    pattern: &Arc<dyn TrafficPattern>,
    entries: &[(String, Arc<dyn PathProvider>, RoutingAlgorithm, Config)],
    faults: Option<&Arc<FaultSchedule>>,
    budget: JobBudget,
    records: &[JobRecord],
) {
    for rec in records.iter().filter(|r| r.outcome.is_failure()) {
        FAILED_JOBS.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "job FAILED ({}): {} @ rate {} seed {}",
            rec.outcome.name(),
            rec.label,
            rec.rate,
            rec.seed
        );
        match &rec.outcome {
            tugal_netsim::runner::JobOutcome::Panicked(msg) => eprintln!("  panic: {msg}"),
            other => {
                if let Some(stall) = other.stall() {
                    for line in render_stall(stall, Some(topo)).lines() {
                        eprintln!("  {line}");
                    }
                }
            }
        }
        let (_, provider, routing, cfg) = &entries[rec.series];
        if let Some(c) = capsule::capsule_for_failure(
            rec, topo, provider, pattern, *routing, cfg, budget, faults,
        ) {
            match capsule::write_capsule(&c) {
                Ok(path) => eprintln!("  capsule: {}", path.display()),
                Err(e) => eprintln!("  capsule write failed: {e}"),
            }
        }
    }
}

#[allow(clippy::type_complexity)]
fn run_flat(
    topo: &Arc<Dragonfly>,
    pattern: &Arc<dyn TrafficPattern>,
    entries: &[(String, Arc<dyn PathProvider>, RoutingAlgorithm, Config)],
    rates: &[f64],
    opts: &SweepOptions,
    faults: Option<Arc<FaultSchedule>>,
) -> Vec<Series> {
    let budget = job_budget();
    let mut runner = ExperimentRunner::new(topo.clone())
        .with_budget(budget)
        .with_profiling(profiling_on());
    if let Some(journal) = journal_from_env() {
        runner = runner.with_journal(journal);
    }
    if let Some(trace) = trace_from_env() {
        runner = runner.with_trace(trace);
    }
    for (label, provider, routing, cfg) in entries {
        runner = runner.series(SeriesSpec {
            label: label.clone(),
            provider: provider.clone(),
            pattern: pattern.clone(),
            routing: *routing,
            cfg: cfg.clone(),
            faults: faults.clone(),
        });
    }
    let mcfg = metrics_config();
    if !mcfg.enabled {
        let (curves, summary, records) =
            match runner.run_recorded(rates, &opts.seeds, |_| NoopObserver) {
                Ok(out) => out,
                Err(e) => fatal("invalid experiment configuration", e),
            };
        record_run_summary(&summary);
        report_failures(topo, pattern, entries, faults.as_ref(), budget, &records);
        return curves
            .into_iter()
            .map(|curve| Series {
                label: curve.label,
                points: curve.points.into_iter().map(|p| p.point).collect(),
                metrics: Vec::new(),
            })
            .collect();
    }
    // Instrumented path: one MetricsObserver per job, merged over seeds at
    // each point; the merged latency histogram upgrades the point's scalar
    // percentiles from the power-of-two estimate to exact values.  (Jobs
    // resumed from a journal return empty observers — their results were
    // simulated by the killed invocation — so resumed points under metrics
    // report journal results with empty telemetry.)
    let (curves, summary, records) =
        match runner.run_recorded(rates, &opts.seeds, |_job| MetricsObserver::new(topo, &mcfg)) {
            Ok(out) => out,
            Err(e) => fatal("invalid experiment configuration", e),
        };
    record_run_summary(&summary);
    report_failures(topo, pattern, entries, faults.as_ref(), budget, &records);
    curves
        .into_iter()
        .map(|curve| {
            let mut points = Vec::with_capacity(curve.points.len());
            let mut metrics = Vec::with_capacity(curve.points.len());
            for observed in curve.points {
                let mut seeds = observed.observers.into_iter();
                let mut merged = seeds.next().expect("at least one seed per point");
                for o in seeds {
                    merged.merge(&o);
                }
                let rep = merged.report();
                let mut point = observed.point;
                point.result = point
                    .result
                    .with_exact_percentiles(rep.latency.p50, rep.latency.p99);
                points.push(point);
                metrics.push(rep);
            }
            Series {
                label: curve.label,
                points,
                metrics,
            }
        })
        .collect()
}

/// Prints a figure: a `#` header, then one row per rate with one latency
/// column per series (`SAT` past saturation), and the per-series
/// saturation throughput line the paper quotes in the text.
pub fn print_figure(id: &str, title: &str, series: &[Series]) {
    println!("# {id}: {title}");
    println!(
        "# mode: {}",
        if full_fidelity() {
            "full (TUGAL_FULL=1)"
        } else {
            "quick"
        }
    );
    if series.is_empty() {
        println!("# (no series)");
        return;
    }
    print!("{:>8}", "load");
    for s in series {
        print!("\t{:>12}", s.label);
    }
    println!();
    let n_rates = series.first().map(|s| s.points.len()).unwrap_or(0);
    for i in 0..n_rates {
        print!("{:>8.3}", series[0].points[i].rate);
        for s in series {
            let r = &s.points[i].result;
            if r.saturated {
                print!("\t{:>12}", "SAT");
            } else {
                print!("\t{:>12.1}", r.avg_latency);
            }
        }
        println!();
    }
    for s in series {
        let sat = saturation_from_curve(&s.points);
        println!("# saturation[{}] ~ {:.3} packets/cycle/node", s.label, sat);
    }
    for s in series {
        let ms: f64 = s.points.iter().map(|p| p.elapsed_ms).sum();
        println!("# sim-time[{}] = {:.0} ms", s.label, ms);
    }
    if let Some(summary) = run_summary() {
        println!("# run: {}", summary.oneline());
    }
    write_json(id, series);
}

/// Last unsaturated rate of a curve (0 when even the first point
/// saturated).
pub fn saturation_from_curve(points: &[CurvePoint]) -> f64 {
    points
        .iter()
        .take_while(|p| !p.result.saturated)
        .map(|p| p.rate)
        .fold(0.0, f64::max)
}

/// Writes the series to `results/<id>.json`, including the wall-clock each
/// point cost, the T-VLB config digests behind any cached providers, the
/// batch run summary, and — when the metrics layer is on — one
/// [`MetricsReport`] per point under a `metrics` section.
fn write_json(id: &str, series: &[Series]) {
    #[derive(serde::Serialize)]
    struct Row {
        rate: f64,
        latency: f64,
        throughput: f64,
        saturated: bool,
        avg_hops: f64,
        vlb_fraction: f64,
        /// Median packet latency — exact when metrics ran, else the
        /// engine's power-of-two estimate.
        latency_p50: f64,
        /// 99th-percentile packet latency (same provenance as `p50`).
        latency_p99: f64,
        /// Wall-clock of this point's simulations, ms (summed over seeds).
        elapsed_ms: f64,
    }
    #[derive(serde::Serialize)]
    struct SummaryOut {
        jobs: u64,
        wall_ms: f64,
        sim_ms: f64,
        jobs_per_sec: f64,
        /// `(series label, rate, seed, ms)` of the slowest job.
        slowest: Option<(String, f64, u64, f64)>,
        /// Jobs that failed and were skipped by the aggregation.
        failed: u64,
        /// Jobs replayed from a resume journal instead of simulated.
        resumed: u64,
        /// Host parallelism the batch was scheduled over.
        host_threads: u64,
        /// Largest engine shard count among the batch's series.
        shards: u64,
    }
    #[derive(serde::Serialize)]
    struct Out {
        id: String,
        full_fidelity: bool,
        /// `topology params → TUgalConfig digest` used for T-VLB cache
        /// lookups while producing these series.
        tvlb_config_digests: BTreeMap<String, String>,
        series: Vec<(String, Vec<Row>)>,
        /// Batch scheduling summary (satellite of the metrics layer).
        run_summary: Option<SummaryOut>,
        /// Per-series telemetry, parallel to `series` rows; empty when the
        /// metrics layer was off.
        metrics: Vec<(String, Vec<MetricsReport>)>,
        /// LP solver work profile per warm-start chain (see
        /// [`record_lp_stats`]); empty when the harness ran no coarse-grain
        /// model solves.
        lp_stats: BTreeMap<String, LpStatsOut>,
    }
    let out = Out {
        id: id.to_string(),
        full_fidelity: full_fidelity(),
        tvlb_config_digests: TVLB_DIGESTS.lock().map(|m| m.clone()).unwrap_or_default(),
        series: series
            .iter()
            .map(|s| {
                (
                    s.label.clone(),
                    s.points
                        .iter()
                        .map(|p| Row {
                            rate: p.rate,
                            latency: p.result.avg_latency,
                            throughput: p.result.throughput,
                            saturated: p.result.saturated,
                            avg_hops: p.result.avg_hops,
                            vlb_fraction: p.result.vlb_fraction,
                            latency_p50: p.result.latency_p50,
                            latency_p99: p.result.latency_p99,
                            elapsed_ms: p.elapsed_ms,
                        })
                        .collect(),
                )
            })
            .collect(),
        run_summary: run_summary().map(|s| SummaryOut {
            jobs: s.jobs as u64,
            wall_ms: s.wall_ms,
            sim_ms: s.sim_ms,
            jobs_per_sec: s.jobs_per_sec,
            slowest: s.slowest,
            failed: s.failed as u64,
            resumed: s.resumed as u64,
            host_threads: s.host_threads as u64,
            shards: s.shards as u64,
        }),
        metrics: series
            .iter()
            .filter(|s| !s.metrics.is_empty())
            .map(|s| (s.label.clone(), s.metrics.clone()))
            .collect(),
        lp_stats: LP_STATS.lock().map(|m| m.clone()).unwrap_or_default(),
    };
    if std::fs::create_dir_all("results").is_ok() {
        if let Ok(f) = std::fs::File::create(format!("results/{id}.json")) {
            let mut w = std::io::BufWriter::new(f);
            let _ = serde_json::to_writer_pretty(&mut w, &out);
            let _ = w.flush();
        }
    }
}
