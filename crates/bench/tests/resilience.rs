//! End-to-end resilience contracts pinned by the issue:
//!
//! * a panicking job yields a capsule whose replay reproduces the panic;
//! * a sweep resumed from a journal is bit-identical to an uninterrupted
//!   run (the in-process equivalent of CI's kill-and-rerun smoke test).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use tugal_bench::capsule::{self, PatternSpec, ProviderSpec};
use tugal_bench::{dfly, shift, ugal_provider};
use tugal_netsim::journal::Journal;
use tugal_netsim::runner::{ExperimentRunner, JobOutcome, SeriesSpec};
use tugal_netsim::{Config, NoopObserver, RoutingAlgorithm};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-tmp")
        .join(tag);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The smoke-test network, with the harness helpers so provider and
/// pattern specs are registered (capsules come out replayable).
fn smoke_runner(cfg: Config) -> ExperimentRunner {
    let topo = dfly(2, 4, 2, 5);
    ExperimentRunner::new(topo.clone()).series(SeriesSpec {
        label: "UGAL-L".into(),
        provider: ugal_provider(&topo),
        pattern: shift(&topo, 1, 0),
        routing: RoutingAlgorithm::UgalL,
        cfg,
        faults: None,
    })
}

#[test]
fn panicking_job_capsule_replays() {
    let topo = dfly(2, 4, 2, 5);
    let provider = ugal_provider(&topo);
    let pattern = shift(&topo, 1, 0);
    let mut cfg = Config::quick().for_routing(RoutingAlgorithm::UgalL);
    cfg.num_vcs = 1; // Simulator::new panics: UGAL-L needs more VCs
    let runner = ExperimentRunner::new(topo.clone()).series(SeriesSpec {
        label: "UGAL-L".into(),
        provider: provider.clone(),
        pattern: pattern.clone(),
        routing: RoutingAlgorithm::UgalL,
        cfg: cfg.clone(),
        faults: None,
    });
    let (_, summary, records) = runner
        .run_recorded(&[0.1], &[7], |_| NoopObserver)
        .expect("structurally valid config");
    assert_eq!(summary.failed, 1);
    assert!(matches!(records[0].outcome, JobOutcome::Panicked(_)));

    // The harness helpers registered reconstructible specs, so the
    // capsule is replayable — not an Opaque record.
    let c = capsule::capsule_for_failure(
        &records[0],
        &topo,
        &provider,
        &pattern,
        RoutingAlgorithm::UgalL,
        &cfg,
        Default::default(),
        None,
    )
    .expect("failed job must produce a capsule");
    assert_eq!(c.outcome, "panicked");
    assert_eq!(c.provider, ProviderSpec::AllPaths);
    assert_eq!(c.pattern, PatternSpec::Shift { dg: 1, ds: 0 });

    // Round-trip through disk, then replay: the re-run must fail the
    // same way, with the exact same panic message.
    let dir = tmp_dir("resilience-capsule");
    let path = capsule::write_capsule_to(&dir, &c).unwrap();
    let back = capsule::read_capsule(&path).unwrap();
    let replay = capsule::replay(&back).unwrap();
    assert!(
        replay.reproduced,
        "replay did not reproduce: expected {}, got {:?}",
        replay.expectation, replay.record.outcome
    );
    assert!(matches!(replay.record.outcome, JobOutcome::Panicked(_)));
}

#[test]
fn journal_resume_is_bit_identical() {
    let cfg = Config::quick().for_routing(RoutingAlgorithm::UgalL);
    let rates = [0.05, 0.15];
    let seeds = [1, 2];
    let journal_path = tmp_dir("resilience-journal").join("journal.jsonl");
    let _ = std::fs::remove_file(&journal_path); // journals append

    // Reference: the whole sweep, no journal.
    let (_, _, reference) = smoke_runner(cfg.clone())
        .run_recorded(&rates, &seeds, |_| NoopObserver)
        .unwrap();

    // "Interrupted" run: only the first rate completes before the kill.
    let journal = Arc::new(Journal::open(&journal_path).unwrap());
    let (_, first_summary, _) = smoke_runner(cfg.clone())
        .with_journal(journal)
        .run_recorded(&rates[..1], &seeds, |_| NoopObserver)
        .unwrap();
    assert_eq!(first_summary.resumed, 0);

    // Re-invocation over the full sweep: the journaled jobs are replayed
    // from disk, the rest simulated fresh — and every outcome matches the
    // uninterrupted reference bit-for-bit.
    let journal = Arc::new(Journal::open(&journal_path).unwrap());
    let (_, summary, resumed_records) = smoke_runner(cfg)
        .with_journal(journal)
        .run_recorded(&rates, &seeds, |_| NoopObserver)
        .unwrap();
    assert_eq!(summary.jobs, 4);
    assert_eq!(summary.resumed, 2);
    assert_eq!(summary.failed, 0);
    assert_eq!(resumed_records.len(), reference.len());
    for (resumed, fresh) in resumed_records.iter().zip(&reference) {
        assert_eq!(resumed.digest, fresh.digest);
        assert_eq!(resumed.resumed, resumed.rate == rates[0]);
        let (JobOutcome::Ok(a), JobOutcome::Ok(b)) = (&resumed.outcome, &fresh.outcome) else {
            panic!("healthy sweep produced a failure");
        };
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "rate {} seed {}: resumed result diverged",
            resumed.rate,
            resumed.seed
        );
    }
}
