//! Schema pin for the `lp_stats` section of harness JSON records: the
//! tiny `fig_faults` smoke run must emit one LP-counter entry per
//! (pattern, rule) warm-start chain, with the invariants the counters
//! promise (every solve counted, warm hits bounded by attempts, wall
//! clock attributed).  The run itself also re-asserts, in-process, that
//! warm-started θ values are bit-identical to cold solves — a failed
//! assertion fails this test through the exit code.

use std::path::{Path, PathBuf};
use std::process::Command;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-tmp")
        .join(tag);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn fig_faults_tiny_records_lp_stats_schema() {
    // The harness writes results/ and logs/ relative to its cwd: run in a
    // scratch directory so the repo's real results stay untouched, and
    // scrub every harness knob the ambient environment might carry.
    let dir = tmp_dir("lp-stats-smoke");
    let _ = std::fs::remove_file(dir.join("results/fig_faults.json"));
    let status = Command::new(env!("CARGO_BIN_EXE_fig_faults"))
        .current_dir(&dir)
        .env("TUGAL_FAULTS_TINY", "1")
        .env_remove("TUGAL_FULL")
        .env_remove("TUGAL_SHARDS")
        .env_remove("TUGAL_JOURNAL")
        .env_remove("TUGAL_TRACE")
        .env_remove("TUGAL_PROFILE")
        .env_remove("TUGAL_METRICS")
        .status()
        .expect("fig_faults spawns");
    assert!(status.success(), "fig_faults exited with {status}");

    let data = std::fs::read_to_string(dir.join("results/fig_faults.json"))
        .expect("fig_faults wrote its JSON record");
    let json: serde::Value = serde_json::from_str(&data).expect("record parses");
    let serde::Value::Object(stats) = json
        .get("lp_stats")
        .expect("record has an lp_stats section")
    else {
        panic!("lp_stats is not an object");
    };

    // One chain per (deterministic pattern, rule): UR has no demand
    // matrix, so exactly the two SHIFT chains.
    assert_eq!(
        stats.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
        vec!["SHIFT T-UGAL", "SHIFT UGAL"],
        "unexpected chain labels"
    );
    for (label, entry) in stats {
        let get = |k: &str| match entry.get(k) {
            Some(&serde::Value::UInt(u)) => u,
            Some(&serde::Value::Int(i)) if i >= 0 => i as u64,
            other => panic!("{label}.{k} missing or not an integer: {other:?}"),
        };
        let solves = get("solves");
        let pivots = get("pivots");
        let refactorizations = get("refactorizations");
        let attempts = get("warm_attempts");
        let hits = get("warm_hits");
        let wall_ms = match entry.get("wall_ms") {
            Some(&serde::Value::Float(f)) => f,
            Some(&serde::Value::UInt(u)) => u as f64,
            other => panic!("{label}.wall_ms missing or not a number: {other:?}"),
        };
        // Four fractions → four solves, of which three can warm-start.
        assert_eq!(solves, 4, "{label}: solves");
        assert_eq!(attempts, 3, "{label}: warm_attempts");
        assert!(hits >= 1 && hits <= attempts, "{label}: hits {hits}");
        assert!(pivots > 0, "{label}: no pivots counted");
        // Every solve canonicalizes its final basis, so refactorizations
        // can never undercut solves.
        assert!(
            refactorizations >= solves,
            "{label}: {refactorizations} refactorizations < {solves} solves"
        );
        assert!(wall_ms > 0.0, "{label}: no wall clock attributed");
    }
}
